//! Criterion bench for the Fig. 3 experiment: wall-time cost of
//! regenerating one latency cell (DiOMP vs MPI RMA) — tracks harness
//! performance and guards the calibrated virtual-time results.

use criterion::{criterion_group, criterion_main, Criterion};
use diomp_apps::micro::{diomp_p2p_latency, mpi_p2p, RmaOp};
use diomp_sim::PlatformSpec;

fn bench(c: &mut Criterion) {
    let platform = PlatformSpec::platform_a();
    let mut g = c.benchmark_group("fig3_latency");
    g.sample_size(10);
    g.bench_function("diomp_put_1kb", |b| {
        b.iter(|| {
            let r = diomp_p2p_latency(&platform, RmaOp::Put, &[1024]);
            assert!(r[0].1 > 0.0);
        })
    });
    g.bench_function("mpi_put_1kb", |b| {
        b.iter(|| {
            let r = mpi_p2p(&platform, RmaOp::Put, &[1024], false);
            assert!(r[0].1 > 0.0);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
