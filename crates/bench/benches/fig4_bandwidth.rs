//! Criterion bench for the Fig. 4 experiment: one bandwidth cell per
//! implementation, including the Platform A put-anomaly path.

use criterion::{criterion_group, criterion_main, Criterion};
use diomp_apps::micro::{diomp_p2p_bandwidth, diomp_p2p_bandwidth_pipelined, mpi_p2p, RmaOp};
use diomp_sim::PlatformSpec;

fn bench(c: &mut Criterion) {
    let platform = PlatformSpec::platform_a();
    let mut g = c.benchmark_group("fig4_bandwidth");
    g.sample_size(10);
    g.bench_function("diomp_get_16mb", |b| {
        b.iter(|| {
            let r = diomp_p2p_bandwidth(&platform, RmaOp::Get, &[16 << 20]);
            assert!(r[0].1 > 10.0, "get should be near wire speed");
        })
    });
    g.bench_function("diomp_put_16mb_anomalous", |b| {
        b.iter(|| {
            let r = diomp_p2p_bandwidth(&platform, RmaOp::Put, &[16 << 20]);
            assert!(r[0].1 < 4.0, "put capped by the documented anomaly");
        })
    });
    g.bench_function("diomp_put_16mb_pipelined", |b| {
        b.iter(|| {
            // The chunked pipeline stages through host memory, which the
            // Platform A put cap does not affect: bandwidth recovers to
            // near wire speed.
            let r = diomp_p2p_bandwidth_pipelined(&platform, RmaOp::Put, &[16 << 20]);
            assert!(r[0].1 > 10.0, "pipelined put must clear the anomaly cap");
        })
    });
    g.bench_function("mpi_get_16mb", |b| {
        b.iter(|| {
            let r = mpi_p2p(&platform, RmaOp::Get, &[16 << 20], true);
            assert!(r[0].1 > 5.0);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
