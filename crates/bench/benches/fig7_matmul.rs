//! Criterion bench for the Fig. 7 experiment: one paper-scale matmul
//! point (N = 30240 on 16 GPUs) per implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use diomp_apps::cannon::{self, CannonConfig};
use diomp_device::DataMode;
use diomp_sim::PlatformSpec;

fn cfg() -> CannonConfig {
    CannonConfig {
        platform: PlatformSpec::platform_a(),
        gpus: 16,
        n: 30240,
        mode: DataMode::CostOnly,
        verify: false,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_matmul");
    g.sample_size(10);
    g.bench_function("diomp_n30240_16gpus", |b| {
        b.iter(|| {
            let r = cannon::diomp::run(&cfg());
            assert!(r.elapsed.as_ms() > 1.0);
        })
    });
    g.bench_function("mpi_n30240_16gpus", |b| {
        b.iter(|| {
            let r = cannon::mpi::run(&cfg());
            assert!(r.elapsed.as_ms() > 1.0);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
