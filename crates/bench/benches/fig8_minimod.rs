//! Criterion bench for the Fig. 8 experiment: one paper-scale Minimod
//! point (1200³ on 16 GPUs, 10 steps) per implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use diomp_apps::minimod::{self, HaloStyle, MinimodConfig};
use diomp_device::DataMode;
use diomp_sim::PlatformSpec;

fn cfg() -> MinimodConfig {
    MinimodConfig {
        platform: PlatformSpec::platform_a(),
        gpus: 16,
        nx: 1200,
        ny: 1200,
        nz: 1200,
        steps: 10,
        mode: DataMode::CostOnly,
        verify: false,
        halo: HaloStyle::Get,
        tuned: false,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_minimod");
    g.sample_size(10);
    g.bench_function("diomp_1200cubed_16gpus", |b| {
        b.iter(|| {
            let r = minimod::diomp::run(&cfg());
            assert!(r.elapsed.as_ms() > 1.0);
        })
    });
    g.bench_function("mpi_1200cubed_16gpus", |b| {
        b.iter(|| {
            let r = minimod::mpi::run(&cfg());
            assert!(r.elapsed.as_ms() > 1.0);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
