//! Ablation benches for the design decisions DESIGN.md calls out.
//!
//! Each ablation reports the *virtual-time* effect of a design choice by
//! running the simulation both ways inside the measured closure and
//! asserting the expected ordering; Criterion tracks the (wall-time)
//! harness cost so regressions in either dimension show up.

use criterion::{criterion_group, criterion_main, Criterion};
use diomp_core::{AllocKind, DiompConfig, DiompRuntime};
use diomp_sim::{Dur, PlatformSpec, Sim};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// D4 — asymmetric access: remote-pointer cache hit vs cold two-stage
/// access.
fn ablation_asym_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_asym_cache");
    g.sample_size(10);
    g.bench_function("cold_vs_cached", |b| {
        b.iter(|| {
            let cold = Arc::new(AtomicU64::new(0));
            let warm = Arc::new(AtomicU64::new(0));
            let (c2, w2) = (cold.clone(), warm.clone());
            let cfg =
                DiompConfig::on_platform(PlatformSpec::platform_a(), 2).with_heap(4 << 20);
            DiompRuntime::run(cfg, move |ctx, rank| {
                let mine = rank.alloc_asym(ctx, 4096).unwrap();
                let scratch = rank.alloc_sym(ctx, 256).unwrap();
                rank.barrier(ctx);
                if rank.rank == 0 {
                    let t0 = ctx.now();
                    rank.get_asym(ctx, 7, &mine, 0, scratch, 0, 64).unwrap();
                    rank.fence(ctx);
                    c2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
                    let t1 = ctx.now();
                    rank.get_asym(ctx, 7, &mine, 0, scratch, 64, 64).unwrap();
                    rank.fence(ctx);
                    w2.store(ctx.now().since(t1).as_nanos(), Ordering::Relaxed);
                }
                rank.barrier(ctx);
                rank.free_asym(ctx, mine);
            })
            .unwrap();
            let (cold, warm) = (cold.load(Ordering::Relaxed), warm.load(Ordering::Relaxed));
            assert!(warm * 3 < cold * 2, "cache must remove the extra round trip");
        })
    });
    g.finish();
}

/// D5 — bounded stream concurrency: sweep MAX_ACTIVE_STREAMS and check
/// that partial synchronisation keeps the pipeline moving.
fn ablation_streams(c: &mut Criterion) {
    use diomp_device::StreamPool;
    let mut g = c.benchmark_group("ablation_streams");
    g.sample_size(10);
    for bound in [2usize, 8, 32] {
        g.bench_function(format!("bound_{bound}"), |b| {
            b.iter(|| {
                let mut sim = Sim::new();
                let done = Arc::new(AtomicU64::new(0));
                let done2 = done.clone();
                sim.spawn("driver", move |ctx| {
                    let mut pool = StreamPool::new(bound);
                    for _ in 0..64 {
                        let s = pool.acquire(ctx);
                        pool.enqueue(s, ctx.now(), Dur::micros(10.0));
                        pool.release(s);
                    }
                    diomp_device::sync_device(ctx, &pool);
                    done2.store(ctx.now().nanos(), Ordering::Relaxed);
                });
                sim.run().unwrap();
                assert!(done.load(Ordering::Relaxed) > 0);
            })
        });
    }
    g.finish();
}

/// D6 — symmetric heap strategy: buddy (per-object free) vs linear
/// (phase reset) under a collective allocate/free churn.
fn ablation_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_alloc");
    g.sample_size(10);
    for (name, kind) in [("buddy", AllocKind::Buddy), ("linear", AllocKind::Linear)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = DiompConfig::on_platform(PlatformSpec::platform_a(), 1)
                    .with_allocator(kind)
                    .with_heap(8 << 20);
                DiompRuntime::run(cfg, move |ctx, rank| {
                    let mut held = Vec::new();
                    for i in 0..12 {
                        let p = rank.alloc_sym(ctx, 1024 * (i + 1)).unwrap();
                        held.push(p);
                    }
                    if kind == AllocKind::Buddy {
                        for p in held.drain(..) {
                            rank.free_sym(ctx, p);
                        }
                    }
                })
                .unwrap();
            })
        });
    }
    g.finish();
}

/// D-path — hierarchical path selection: GPUDirect P2P vs forced IPC
/// staging for intra-node puts (the paper's topology-aware transfer).
fn ablation_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_paths");
    g.sample_size(10);
    for (name, p2p) in [("p2p", true), ("ipc_staged", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let t = Arc::new(AtomicU64::new(0));
                let t2 = t.clone();
                let mut cfg =
                    DiompConfig::on_platform(PlatformSpec::platform_a(), 1).with_heap(4 << 20);
                if !p2p {
                    cfg = cfg.without_p2p();
                }
                DiompRuntime::run(cfg, move |ctx, rank| {
                    let ptr = rank.alloc_sym(ctx, 1 << 20).unwrap();
                    if rank.rank == 0 {
                        let t0 = ctx.now();
                        rank.put(ctx, 2, ptr, 0, ptr, 0, 512 << 10).unwrap();
                        rank.fence(ctx);
                        t2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
                    }
                    rank.barrier(ctx);
                })
                .unwrap();
                assert!(t.load(Ordering::Relaxed) > 0);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, ablation_asym_cache, ablation_streams, ablation_alloc, ablation_paths);
criterion_main!(benches);
