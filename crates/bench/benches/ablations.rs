//! Ablation benches for the design decisions DESIGN.md calls out.
//!
//! Each ablation reports the *virtual-time* effect of a design choice by
//! running the simulation both ways inside the measured closure and
//! asserting the expected ordering; Criterion tracks the (wall-time)
//! harness cost so regressions in either dimension show up.

use criterion::{criterion_group, criterion_main, Criterion};
use diomp_core::{AllocKind, DiompConfig, DiompRuntime, PipelineConfig};
use diomp_device::DataMode;
use diomp_sim::{ClusterSpec, Dur, PlatformSpec, Sim};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// D4 — asymmetric access: remote-pointer cache hit vs cold two-stage
/// access.
fn ablation_asym_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_asym_cache");
    g.sample_size(10);
    g.bench_function("cold_vs_cached", |b| {
        b.iter(|| {
            let cold = Arc::new(AtomicU64::new(0));
            let warm = Arc::new(AtomicU64::new(0));
            let (c2, w2) = (cold.clone(), warm.clone());
            let cfg =
                DiompConfig::builder_on(PlatformSpec::platform_a(), 2).with_heap(4 << 20).build();
            DiompRuntime::run(cfg, move |ctx, rank| {
                let mine = rank.alloc_asym(ctx, 4096).unwrap();
                let scratch = rank.alloc_sym(ctx, 256).unwrap();
                rank.barrier(ctx);
                if rank.rank == 0 {
                    let t0 = ctx.now();
                    rank.get_asym(ctx, 7, &mine, 0, scratch, 0, 64).unwrap();
                    rank.fence(ctx);
                    c2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
                    let t1 = ctx.now();
                    rank.get_asym(ctx, 7, &mine, 0, scratch, 64, 64).unwrap();
                    rank.fence(ctx);
                    w2.store(ctx.now().since(t1).as_nanos(), Ordering::Relaxed);
                }
                rank.barrier(ctx);
                rank.free_asym(ctx, mine);
            })
            .unwrap();
            let (cold, warm) = (cold.load(Ordering::Relaxed), warm.load(Ordering::Relaxed));
            assert!(warm * 3 < cold * 2, "cache must remove the extra round trip");
        })
    });
    g.finish();
}

/// D5 — bounded stream concurrency: sweep MAX_ACTIVE_STREAMS and check
/// that partial synchronisation keeps the pipeline moving.
fn ablation_streams(c: &mut Criterion) {
    use diomp_device::StreamPool;
    let mut g = c.benchmark_group("ablation_streams");
    g.sample_size(10);
    for bound in [2usize, 8, 32] {
        g.bench_function(format!("bound_{bound}"), |b| {
            b.iter(|| {
                let mut sim = Sim::new();
                let done = Arc::new(AtomicU64::new(0));
                let done2 = done.clone();
                sim.spawn("driver", move |ctx| {
                    let mut pool = StreamPool::new(bound);
                    for _ in 0..64 {
                        let s = pool.acquire(ctx);
                        pool.enqueue(s, ctx.now(), Dur::micros(10.0));
                        pool.release(s);
                    }
                    diomp_device::sync_device(ctx, &pool);
                    done2.store(ctx.now().nanos(), Ordering::Relaxed);
                });
                sim.run().unwrap();
                assert!(done.load(Ordering::Relaxed) > 0);
            })
        });
    }
    g.finish();
}

/// D6 — symmetric heap strategy: buddy (per-object free) vs linear
/// (phase reset) under a collective allocate/free churn.
fn ablation_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_alloc");
    g.sample_size(10);
    for (name, kind) in [("buddy", AllocKind::Buddy), ("linear", AllocKind::Linear)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = DiompConfig::builder_on(PlatformSpec::platform_a(), 1)
                    .with_allocator(kind)
                    .with_heap(8 << 20)
                    .build();
                DiompRuntime::run(cfg, move |ctx, rank| {
                    let mut held = Vec::new();
                    for i in 0..12 {
                        let p = rank.alloc_sym(ctx, 1024 * (i + 1)).unwrap();
                        held.push(p);
                    }
                    if kind == AllocKind::Buddy {
                        for p in held.drain(..) {
                            rank.free_sym(ctx, p);
                        }
                    }
                })
                .unwrap();
            })
        });
    }
    g.finish();
}

/// D-path — hierarchical path selection: GPUDirect P2P vs forced IPC
/// staging for intra-node puts (the paper's topology-aware transfer).
fn ablation_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_paths");
    g.sample_size(10);
    for (name, p2p) in [("p2p", true), ("ipc_staged", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let t = Arc::new(AtomicU64::new(0));
                let t2 = t.clone();
                let mut cfg =
                    DiompConfig::builder_on(PlatformSpec::platform_a(), 1).with_heap(4 << 20);
                if !p2p {
                    cfg = cfg.without_p2p();
                }
                let cfg = cfg.build();
                DiompRuntime::run(cfg, move |ctx, rank| {
                    let ptr = rank.alloc_sym(ctx, 1 << 20).unwrap();
                    if rank.rank == 0 {
                        let t0 = ctx.now();
                        rank.put(ctx, 2, ptr, 0, ptr, 0, 512 << 10).unwrap();
                        rank.fence(ctx);
                        t2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
                    }
                    rank.barrier(ctx);
                })
                .unwrap();
                assert!(t.load(Ordering::Relaxed) > 0);
            })
        });
    }
    g.finish();
}

/// Two single-GPU nodes in CostOnly mode: the pipeline/fence ablation rig.
fn internode_builder(heap: u64) -> diomp_core::DiompConfigBuilder {
    DiompConfig::builder(ClusterSpec {
        platform: PlatformSpec::platform_a(),
        nodes: 2,
        gpus_per_node: 1,
    })
    .with_mode(DataMode::CostOnly)
    .with_heap(heap)
}

fn internode_cfg(heap: u64) -> DiompConfig {
    internode_builder(heap).build()
}

/// Virtual µs for one 64 MiB inter-node put + fence under `cfg`.
fn put64_us(cfg: DiompConfig) -> f64 {
    let len = 64u64 << 20;
    let us = Arc::new(AtomicU64::new(0));
    let us2 = us.clone();
    DiompRuntime::run(cfg, move |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, len).unwrap();
        rank.barrier(ctx);
        if rank.rank == 0 {
            let t0 = ctx.now();
            rank.put(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
            rank.fence(ctx);
            us2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
        }
        rank.barrier(ctx);
    })
    .unwrap();
    us.load(Ordering::Relaxed) as f64 / 1e3
}

/// ISSUE 1 tentpole — chunked multi-queue pipelining: a pipelined 64 MiB
/// inter-node put must be *strictly faster* in simulated time than the
/// monolithic put (Platform A's direct device put is anomaly-capped;
/// staged chunks overlap D2H copies with uncapped host-source
/// injections, paper §3.2).
fn ablation_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pipeline");
    g.sample_size(10);
    g.bench_function("put64mib_pipelined_vs_monolithic", |b| {
        b.iter(|| {
            let mono = put64_us(internode_cfg(256 << 20));
            let piped = put64_us(
                internode_builder(256 << 20).with_pipeline(PipelineConfig::enabled()).build(),
            );
            assert!(
                piped < mono,
                "pipelined put must be strictly faster: {piped:.1}µs vs {mono:.1}µs"
            );
            println!(
                "  pipeline ablation: monolithic {mono:.1}µs, pipelined {piped:.1}µs \
                 ({:.1}x faster)",
                mono / piped
            );
        })
    });
    g.finish();
}

/// ISSUE 1 tentpole — batched `wait_all` fence: a 1000-put fence must
/// process measurably fewer scheduler entries than the per-event
/// baseline, at identical virtual time.
fn ablation_fence_batching(c: &mut Criterion) {
    let run = |batched: bool| {
        let n = 1000u64;
        let mut cfg = internode_builder(64 << 20);
        if !batched {
            cfg = cfg.without_batched_fence();
        }
        let cfg = cfg.build();
        DiompRuntime::run(cfg, move |ctx, rank| {
            let ptr = rank.alloc_sym(ctx, 256 << 10).unwrap();
            rank.barrier(ctx);
            if rank.rank == 0 {
                for _ in 0..n {
                    rank.put(ctx, 1, ptr, 0, ptr, 0, 256 << 10).unwrap();
                }
                rank.fence(ctx);
            }
            rank.barrier(ctx);
        })
        .unwrap()
    };
    let mut g = c.benchmark_group("ablation_fence_batching");
    g.sample_size(10);
    g.bench_function("fence1000_wait_all_vs_per_event", |b| {
        b.iter(|| {
            let batched = run(true);
            let unbatched = run(false);
            assert_eq!(batched.end_time, unbatched.end_time, "virtual time must not change");
            assert!(
                batched.entries_processed + 500 <= unbatched.entries_processed,
                "wait_all fence must save scheduler entries: {} vs {}",
                batched.entries_processed,
                unbatched.entries_processed
            );
            println!(
                "  fence ablation: per-event {} entries, wait_all {} entries ({} saved)",
                unbatched.entries_processed,
                batched.entries_processed,
                unbatched.entries_processed - batched.entries_processed
            );
        })
    });
    g.finish();
}

/// D12 — transport autotuner (ISSUE 4): the tuned parameters must come
/// from the platform tables (they differ across platforms), and the
/// protocol-selecting `CollEngine::Auto` must beat the pure ring at a
/// latency-bound size while matching it bit-for-bit above the crossover.
fn ablation_tuner(c: &mut Criterion) {
    use diomp_apps::micro::{diomp_collective_auto, diomp_collective_full, CollKind};
    use diomp_core::{CollEngine, Conduit, TuneTable};

    let mut g = c.benchmark_group("ablation_tuner");
    g.sample_size(10);
    g.bench_function("tuned_params_and_auto_vs_ring", |b| {
        b.iter(|| {
            let tables: Vec<TuneTable> = PlatformSpec::all()
                .iter()
                .map(|p| TuneTable::derive(p, Conduit::GasnetEx))
                .collect();
            let chunks: std::collections::HashSet<u64> =
                tables.iter().map(|t| t.pipeline.chunk_bytes).collect();
            assert!(chunks.len() >= 2, "tuned chunk sizes must differ across platforms");

            let platform = PlatformSpec::platform_a();
            let small = [32u64 << 10];
            let auto = diomp_collective_auto(&platform, 4, CollKind::AllReduce, &small);
            let ring = diomp_collective_full(
                &platform,
                4,
                CollKind::AllReduce,
                &small,
                CollEngine::default(),
            );
            assert!(
                auto[0].1 < ring[0].1,
                "auto must beat the ring at 32 KiB: {:.1}µs vs {:.1}µs",
                auto[0].1,
                ring[0].1
            );
            println!(
                "  tuner ablation: chunks {:?} B; 32KiB allreduce auto {:.1}µs vs ring {:.1}µs",
                tables.iter().map(|t| t.pipeline.chunk_bytes).collect::<Vec<_>>(),
                auto[0].1,
                ring[0].1
            );
        })
    });
    g.bench_function("dbt_mid_band_vs_ring", |b| {
        // D13 — the double-binary-tree mid band (ISSUE 5): at a mid-band
        // allreduce size the logarithmic-depth schedule must beat the
        // ring's 2(n−1) serial steps on the same links, and the per-op
        // ring tunings must come from the tables (the two op classes
        // derive different chunks on A).
        use diomp_apps::micro::diomp_collective_dbt;
        b.iter(|| {
            let platform = PlatformSpec::platform_a();
            let a = TuneTable::derive(&platform, Conduit::GasnetEx);
            assert_ne!(a.ring_bcast(), a.ring_allred(), "per-op ring tunings must differ on A");
            let mid = [1u64 << 20];
            let dbt = diomp_collective_dbt(&platform, 4, CollKind::AllReduce, &mid);
            let ring = diomp_collective_full(
                &platform,
                4,
                CollKind::AllReduce,
                &mid,
                CollEngine::default(),
            );
            assert!(
                dbt[0].1 < ring[0].1,
                "DBT must beat the ring at 1 MiB: {:.1}µs vs {:.1}µs",
                dbt[0].1,
                ring[0].1
            );
            println!(
                "  dbt ablation: 1MiB allreduce dbt {:.1}µs vs ring {:.1}µs",
                dbt[0].1, ring[0].1
            );
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_asym_cache,
    ablation_streams,
    ablation_alloc,
    ablation_paths,
    ablation_pipeline,
    ablation_fence_batching,
    ablation_tuner
);
criterion_main!(benches);
