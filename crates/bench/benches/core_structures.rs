//! Criterion micro-benchmarks of the hot runtime data structures: the
//! wall-time cost of the simulator itself (event arena, scheduler
//! handoff, allocators, bandwidth curves).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diomp_core::BuddyAlloc;
use diomp_sim::{BwCurve, Dur, Sim};

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_churn", |b| {
        b.iter(|| {
            let mut alloc = BuddyAlloc::new(1 << 20, 64);
            let mut held = Vec::with_capacity(64);
            for i in 0..256u64 {
                if i % 3 == 0 && !held.is_empty() {
                    let off = held.swap_remove((i as usize * 7) % held.len());
                    alloc.free(off);
                } else if let Some(off) = alloc.alloc(64 + (i % 13) * 256) {
                    held.push(off);
                }
            }
            for off in held {
                alloc.free(off);
            }
            assert!(alloc.fully_coalesced());
        })
    });
}

fn bench_scheduler_handoff(c: &mut Criterion) {
    c.bench_function("des_ping_pong_1000_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            for r in 0..2 {
                sim.spawn(format!("t{r}"), |ctx| {
                    for _ in 0..250 {
                        ctx.delay(Dur::nanos(10));
                    }
                });
            }
            let rep = sim.run().unwrap();
            black_box(rep.entries_processed);
        })
    });
}

fn bench_event_churn(c: &mut Criterion) {
    c.bench_function("event_arena_recycling", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            sim.spawn("t", |ctx| {
                for _ in 0..500 {
                    let ev = ctx.new_event();
                    ctx.complete(ev);
                    ctx.wait_free(ev);
                }
            });
            sim.run().unwrap();
        })
    });
}

fn bench_bw_curve(c: &mut Criterion) {
    let curve = BwCurve::new(vec![(1024, 2.0), (1 << 16, 8.0), (1 << 22, 20.0), (1 << 26, 24.0)]);
    c.bench_function("bw_curve_interpolation", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for shift in 8..26 {
                acc += curve.gbps(black_box(1u64 << shift));
            }
            black_box(acc);
        })
    });
}

criterion_group!(benches, bench_buddy, bench_scheduler_handoff, bench_event_churn, bench_bw_curve);
criterion_main!(benches);
