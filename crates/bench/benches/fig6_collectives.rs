//! Criterion bench for the Fig. 6 experiment: one collective heatmap
//! cell per library (OMPCCL vs MPI) at 4 MB on 64 A100s, plus the
//! ISSUE 2 acceptance gate — the *emergent* ring-protocol curves must
//! stay within tolerance of the calibrated whole-collective profiles
//! across the Fig. 6 size sweep on all three platforms.

use criterion::{criterion_group, criterion_main, Criterion};
use diomp_apps::micro::{
    diomp_collective, diomp_collective_profiled, fig6_nodes, mpi_collective, CollKind,
};
use diomp_sim::PlatformSpec;

/// Per-cell cap on |log10(t_ring / t_profile)|. The loosest cells are the
/// fitted LL-protocol dips (e.g. RCCL's very fast small-message
/// broadcast) that a Simple-protocol ring structurally cannot reproduce.
const CELL_TOL: f64 = 0.80;
/// Cap on the mean |log10| deviation across a platform/op sweep.
const MAE_TOL: f64 = 0.45;
/// Cap at the largest message: the ring's self-calibrated link efficiency
/// must land the emergent asymptote on the curve's top control point.
const ASYMPTOTE_TOL: f64 = 0.15;

fn assert_ring_tracks_profile(tag: &str, platform: &PlatformSpec, kind: CollKind, sizes: &[u64]) {
    let nodes = fig6_nodes(platform);
    let ring = diomp_collective(platform, nodes, kind, sizes);
    let prof = diomp_collective_profiled(platform, nodes, kind, sizes);
    let lgs: Vec<f64> = ring.iter().zip(&prof).map(|(r, p)| (r.1 / p.1).log10()).collect();
    for (i, lg) in lgs.iter().enumerate() {
        assert!(
            lg.abs() <= CELL_TOL,
            "{tag} {kind:?} @ {} B: emergent {:.1}us vs profile {:.1}us (log10 {lg:.2} > {CELL_TOL})",
            sizes[i],
            ring[i].1,
            prof[i].1,
        );
    }
    let mae = lgs.iter().map(|l| l.abs()).sum::<f64>() / lgs.len() as f64;
    assert!(mae <= MAE_TOL, "{tag} {kind:?}: MAE {mae:.2} > {MAE_TOL}");
    let last = lgs.last().unwrap();
    assert!(
        last.abs() <= ASYMPTOTE_TOL,
        "{tag} {kind:?}: asymptote off by log10 {last:.2} (> {ASYMPTOTE_TOL})"
    );
}

fn bench(c: &mut Criterion) {
    let platform = PlatformSpec::platform_a();
    let nodes = fig6_nodes(&platform);
    let mut g = c.benchmark_group("fig6_collectives");
    g.sample_size(10);
    g.bench_function("ompccl_allreduce_4mb_64gpus", |b| {
        b.iter(|| {
            let r = diomp_collective(&platform, nodes, CollKind::AllReduce, &[4 << 20]);
            assert!(r[0].1 > 0.0);
        })
    });
    g.bench_function("mpi_allreduce_4mb_64gpus", |b| {
        b.iter(|| {
            let r = mpi_collective(&platform, nodes, CollKind::AllReduce, &[4 << 20]);
            assert!(r[0].1 > 0.0);
        })
    });
    // The acceptance gate: anchor sizes spanning the latency-, mid- and
    // bandwidth-dominated regimes of both Fig. 6 heatmap rows. The sweep
    // is a deterministic virtual-time simulation, so it runs ONCE here
    // rather than inside b.iter (the criterion shim would repeat the
    // identical 48-run sweep three times for zero extra signal); the
    // timed closure keeps one cheap representative cell.
    for (tag, platform) in [
        ("A", PlatformSpec::platform_a()),
        ("B", PlatformSpec::platform_b()),
        ("C", PlatformSpec::platform_c()),
    ] {
        assert_ring_tracks_profile(
            tag,
            &platform,
            CollKind::Broadcast,
            &[32 << 10, 512 << 10, 4 << 20, 64 << 20],
        );
        assert_ring_tracks_profile(
            tag,
            &platform,
            CollKind::AllReduce,
            &[128 << 10, 1 << 20, 16 << 20, 64 << 20],
        );
    }
    println!("  ring-vs-profile tolerance gate OK (3 platforms x 2 ops x 4 sizes)");
    g.bench_function("ring_engine_tracks_calibrated_profiles", |b| {
        b.iter(|| {
            assert_ring_tracks_profile(
                "A",
                &PlatformSpec::platform_a(),
                CollKind::AllReduce,
                &[1 << 20],
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
