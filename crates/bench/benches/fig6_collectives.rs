//! Criterion bench for the Fig. 6 experiment: one collective heatmap
//! cell per library (OMPCCL vs MPI) at 4 MB on 64 A100s.

use criterion::{criterion_group, criterion_main, Criterion};
use diomp_apps::micro::{diomp_collective, fig6_nodes, mpi_collective, CollKind};
use diomp_sim::PlatformSpec;

fn bench(c: &mut Criterion) {
    let platform = PlatformSpec::platform_a();
    let nodes = fig6_nodes(&platform);
    let mut g = c.benchmark_group("fig6_collectives");
    g.sample_size(10);
    g.bench_function("ompccl_allreduce_4mb_64gpus", |b| {
        b.iter(|| {
            let r = diomp_collective(&platform, nodes, CollKind::AllReduce, &[4 << 20]);
            assert!(r[0].1 > 0.0);
        })
    });
    g.bench_function("mpi_allreduce_4mb_64gpus", |b| {
        b.iter(|| {
            let r = mpi_collective(&platform, nodes, CollKind::AllReduce, &[4 << 20]);
            assert!(r[0].1 > 0.0);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
