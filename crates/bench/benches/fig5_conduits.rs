//! Criterion bench for the Fig. 5 experiment: GASNet-EX vs GPI-2 put
//! over NDR InfiniBand.

use criterion::{criterion_group, criterion_main, Criterion};
use diomp_apps::micro::{diomp_p2p, RmaOp};
use diomp_core::Conduit;
use diomp_sim::PlatformSpec;

fn bench(c: &mut Criterion) {
    let platform = PlatformSpec::platform_c();
    let mut g = c.benchmark_group("fig5_conduits");
    g.sample_size(10);
    for (name, conduit) in [("gasnet_put_8kb", Conduit::GasnetEx), ("gpi_put_8kb", Conduit::Gpi2)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = diomp_p2p(&platform, conduit, RmaOp::Put, &[8 << 10], true);
                assert!(r[0].1 > 0.0);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
