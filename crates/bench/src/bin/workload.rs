//! Multi-tenant workload scenario driver (ISSUE 7 tentpole).
//!
//! Replays the canonical 8-job contention scenario — two High, four
//! Normal and two Low QoS tenants overlapping on two platform-A nodes —
//! plus its idle single-tenant reference, and prints per-job p50/p99
//! collective latency and achieved-vs-table wire bandwidth. With
//! `--json PATH` the same rows are emitted as `BENCH_*.json`.
//!
//! Usage:
//!   workload [--json PATH]

use diomp_apps::workload::{canonical_idle_workload, canonical_workload, run_workload};
use diomp_bench::report::{json_path_from_args, write_if_requested, BenchRecord};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let mut records = Vec::new();

    let idle = run_workload(&canonical_idle_workload(true));
    let loaded = run_workload(&canonical_workload(true));

    println!(
        "{:>10} {:>7} {:>10} {:>10} {:>10} {:>9}",
        "job", "qos", "p50", "p99", "achieved", "of-table"
    );
    for (scenario, rep) in [("idle", &idle), ("8job", &loaded)] {
        for j in &rep.jobs {
            println!(
                "{:>10} {:>7} {:>8.1}us {:>8.1}us {:>6.2}GB/s {:>8.1}%",
                format!("{scenario}/{}", j.name),
                format!("{:?}", j.qos),
                j.p50_us,
                j.p99_us,
                j.achieved_gbps,
                100.0 * j.achieved_gbps / j.table_gbps,
            );
            records.push(BenchRecord {
                name: format!("workload/{scenario}/{}_p50", j.name),
                value: j.p50_us,
                unit: "us".into(),
                entries_processed: None,
                sim_wall_ms: None,
            });
            records.push(BenchRecord {
                name: format!("workload/{scenario}/{}_p99", j.name),
                value: j.p99_us,
                unit: "us".into(),
                entries_processed: None,
                sim_wall_ms: None,
            });
            records.push(BenchRecord {
                name: format!("workload/{scenario}/{}_achieved_gbps", j.name),
                value: j.achieved_gbps,
                unit: "GB/s".into(),
                entries_processed: None,
                sim_wall_ms: None,
            });
        }
        println!(
            "{:>10} makespan {:.1}us, {} scheduler entries",
            scenario, rep.makespan_us, rep.entries_processed
        );
        records.push(BenchRecord::with_entries(
            format!("workload/{scenario}/makespan"),
            rep.makespan_us,
            "us",
            rep.entries_processed,
        ));
    }
    write_if_requested(json_path.as_deref(), &records);
}
