//! Listings 1–2 — the programmability comparison: halo-exchange lines of
//! code, paper listings vs this repository's implementations.

use diomp_apps::loc;

fn main() {
    println!("== Halo-exchange lines of code (paper §4.5, Listings 1–2) ==\n");
    println!("{:<34} {:>6}", "implementation", "LoC");
    for row in loc::loc_table() {
        println!("{:<34} {:>6}", row.name, row.lines);
    }
    let t = loc::loc_table();
    println!(
        "\npaper ratio (MPI/DiOMP): {:.1}×   this repo: {:.1}×   (paper claims ≈2×)",
        t[1].lines as f64 / t[0].lines as f64,
        t[3].lines as f64 / t[2].lines as f64
    );
}
