//! Scale sweep — scheduler cost of the simulator itself at O(10k)
//! ranks: one 16 MB allreduce over {256, 1024, 4096} single-GPU nodes
//! × {ring, dbt, auto}, in cost-only mode on the NDR-IB platform.
//!
//! Each cell runs the **coalesced** drivers (closed-form phase fast
//! paths + chunk-event coalescing) and, wherever the uncoalesced path
//! is still tractable, a **forced-explicit** reference arm
//! ([`diomp_sim::Sim::force_explicit_schedules`]). The sweep
//! hard-asserts that virtual time is bit-identical between the two arms
//! at every scale both run — the coalesced march is an optimisation of
//! the scheduler, never of the model — and reports the entry reduction
//! and the simulator's own wall-clock side by side.
//!
//! The explicit ring arm is skipped at 4096 ranks: its schedule is
//! ~33.5 M chunk sends (2(n−1) steps × n tokens), which is exactly the
//! regime the coalesced march exists for. The DBT schedule stays
//! O(n·chunks), so its explicit arm runs at every scale and carries the
//! measured ≥50× entry-reduction gate at 4096.
//!
//! `--json PATH` emits every cell as `BENCH_*.json` records with the
//! run's entry count and simulator wall-clock.

use diomp_apps::micro::{scale_allreduce, ScaleEngine, ScaleRun};
use diomp_bench::report::{json_path_from_args, BenchRecord};

/// Swept rank counts (= node counts: one GPU per node).
pub const SCALES: [usize; 3] = [256, 1024, 4096];
/// Swept engines.
pub const ENGINES: [ScaleEngine; 3] = [ScaleEngine::Ring, ScaleEngine::Dbt, ScaleEngine::Auto];
/// Fixed payload: 16 MB splits into uniform per-rank tokens at every
/// swept scale (2^24 / 4-byte elements divides by 256, 1024 and 4096).
pub const PAYLOAD: u64 = 16 << 20;

/// Is the uncoalesced reference arm tractable for this cell? Ring-shaped
/// schedules (ring itself, and Auto at this payload) materialise
/// 2(n−1)·n sends — ~33.5 M at 4096 ranks, beyond a smoke budget — so
/// their explicit arms stop at 1024. DBT is O(n·chunks) and runs
/// everywhere.
pub fn explicit_feasible(nranks: usize, eng: ScaleEngine) -> bool {
    match eng {
        ScaleEngine::Dbt => true,
        ScaleEngine::Ring | ScaleEngine::Auto => nranks <= 1024,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let mut records = Vec::new();
    println!("fig_scale — 16MB allreduce, platform C, 1 GPU/node, cost-only");
    println!(
        "{:>6} {:>5} {:>12} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "ranks", "eng", "virt_ms", "entries", "entries_ex", "ratio", "wall_ms", "wall_ex_ms"
    );
    for &n in &SCALES {
        for &eng in &ENGINES {
            let fast = scale_allreduce(n, eng, PAYLOAD, false);
            let tag = format!("fig_scale/allred16MB_{n}_{}", eng.tag());
            records.push(BenchRecord::with_sim_cost(
                format!("{tag}/coalesced"),
                fast.end_ns as f64 / 1000.0,
                "us",
                fast.entries,
                fast.sim_wall_ms,
            ));
            records.push(BenchRecord {
                name: format!("{tag}/coalesced_chunks"),
                value: fast.coalesced as f64,
                unit: "chunks".into(),
                entries_processed: None,
                sim_wall_ms: None,
            });
            let explicit: Option<ScaleRun> = explicit_feasible(n, eng).then(|| {
                let ex = scale_allreduce(n, eng, PAYLOAD, true);
                assert_eq!(
                    ex.end_ns, fast.end_ns,
                    "{tag}: coalesced virtual time diverged from the explicit driver \
                     ({} vs {} ns)",
                    fast.end_ns, ex.end_ns
                );
                records.push(BenchRecord::with_sim_cost(
                    format!("{tag}/explicit"),
                    ex.end_ns as f64 / 1000.0,
                    "us",
                    ex.entries,
                    ex.sim_wall_ms,
                ));
                records.push(BenchRecord {
                    name: format!("{tag}/entry_ratio"),
                    value: ex.entries as f64 / fast.entries as f64,
                    unit: "x".into(),
                    entries_processed: None,
                    sim_wall_ms: None,
                });
                ex
            });
            let (ex_e, ratio, ex_w) = match &explicit {
                Some(ex) => (
                    format!("{}", ex.entries),
                    format!("{:.1}", ex.entries as f64 / fast.entries as f64),
                    format!("{:.1}", ex.sim_wall_ms),
                ),
                None => ("-".into(), "-".into(), "-".into()),
            };
            println!(
                "{n:>6} {:>5} {:>12.3} {:>12} {ex_e:>12} {ratio:>8} {:>10.1} {ex_w:>10}",
                eng.tag(),
                fast.end_ns as f64 / 1e6,
                fast.entries,
                fast.sim_wall_ms,
            );
        }
    }
    diomp_bench::report::write_if_requested(json_path.as_deref(), &records);
}
