//! Fig. 5 — the two DiOMP conduits compared: GASNet-EX vs GPI-2 Put/Get
//! bandwidth over NDR InfiniBand, 32 B – 128 KB. `--json PATH` emits
//! every cell as a `BENCH_*.json` record.

use diomp_apps::micro::{diomp_p2p, RmaOp};
use diomp_bench::report::{json_path_from_args, BenchRecord};
use diomp_bench::{paper, size_label};
use diomp_core::Conduit;
use diomp_sim::PlatformSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let mut records: Vec<BenchRecord> = Vec::new();
    let sizes = &paper::FIG5_SIZES;
    let c = PlatformSpec::platform_c();
    let gas_get = diomp_p2p(&c, Conduit::GasnetEx, RmaOp::Get, sizes, true);
    let gas_put = diomp_p2p(&c, Conduit::GasnetEx, RmaOp::Put, sizes, true);
    let gpi_get = diomp_p2p(&c, Conduit::Gpi2, RmaOp::Get, sizes, true);
    let gpi_put = diomp_p2p(&c, Conduit::Gpi2, RmaOp::Put, sizes, true);
    println!("== Fig. 5: conduit bandwidth over NDR InfiniBand (GB/s) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "size", "GASNet Get", "GASNet Put", "GPI Get", "GPI Put"
    );
    for i in 0..sizes.len() {
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            size_label(sizes[i]),
            gas_get[i].1,
            gas_put[i].1,
            gpi_get[i].1,
            gpi_put[i].1
        );
        let sz = size_label(sizes[i]);
        for (series, row) in [
            ("gasnet_get", &gas_get),
            ("gasnet_put", &gas_put),
            ("gpi_get", &gpi_get),
            ("gpi_put", &gpi_put),
        ] {
            records.push(BenchRecord {
                name: format!("fig5/{series}_{sz}"),
                value: row[i].1,
                unit: "GB/s".into(),
                entries_processed: None,
                sim_wall_ms: None,
            });
        }
    }
    println!("\npaper shape: GPI-2 Put outperforms GASNet-EX Put in the small/medium");
    println!("range; all four converge as the wire saturates.");
    diomp_bench::report::write_if_requested(json_path.as_deref(), &records);
}
