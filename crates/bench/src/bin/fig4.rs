//! Fig. 4 — point-to-point RMA bandwidth, 1/64 MB – 1 GB. Higher is
//! better. Platform A reproduces the documented DiOMP-Put driver anomaly
//! (run with `--no-anomaly` for the corrected curve).

use diomp_apps::micro::{diomp_p2p_bandwidth, mpi_p2p, RmaOp};
use diomp_bench::{paper, size_label};
use diomp_sim::PlatformSpec;

fn main() {
    let no_anomaly = std::env::args().any(|a| a == "--no-anomaly");
    let sizes = &paper::FIG4_SIZES;
    for (name, mut platform, max) in [
        ("(a) Slingshot 11 + A100", PlatformSpec::platform_a(), 64 << 20),
        ("(b) Slingshot 11 + MI250X", PlatformSpec::platform_b(), 1 << 30),
        ("(c) NDR InfiniBand + Grace Hopper", PlatformSpec::platform_c(), 1 << 30),
    ] {
        if no_anomaly {
            platform.put_anomaly_gbps = None;
        }
        let sizes: Vec<u64> = sizes.iter().copied().filter(|&s| s <= max).collect();
        println!("\n== Fig. 4{name}: bandwidth (GB/s) ==");
        let dg = diomp_p2p_bandwidth(&platform, RmaOp::Get, &sizes);
        let dp = diomp_p2p_bandwidth(&platform, RmaOp::Put, &sizes);
        let mg = mpi_p2p(&platform, RmaOp::Get, &sizes, true);
        let mp = mpi_p2p(&platform, RmaOp::Put, &sizes, true);
        println!(
            "{:>8} {:>11} {:>11} {:>11} {:>11}",
            "size", "DiOMP Get", "DiOMP Put", "MPI Get", "MPI Put"
        );
        for i in 0..sizes.len() {
            println!(
                "{:>8} {:>11.2} {:>11.2} {:>11.2} {:>11.2}",
                size_label(sizes[i]),
                dg[i].1,
                dp[i].1,
                mg[i].1,
                mp[i].1
            );
        }
    }
    println!("\npaper shape: DiOMP above MPI everywhere except the documented");
    println!("Platform A DiOMP-Put anomaly (external driver issue, Fig. 4a).");
}
