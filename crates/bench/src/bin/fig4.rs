//! Fig. 4 — point-to-point RMA bandwidth, 1/64 MB – 1 GB. Higher is
//! better. Platform A reproduces the documented DiOMP-Put driver anomaly
//! (run with `--no-anomaly` for the corrected curve, or compare the
//! `DiOMP Put*` column: the chunked large-message pipeline dodges the cap
//! by staging through host memory; `Put+` is the transport autotuner's
//! knee-derived pipeline, `PipelineConfig::auto`). `--json PATH`
//! additionally emits `BENCH_*.json` rows carrying each run's
//! scheduler-entry count.

use diomp_apps::micro::{diomp_p2p_bandwidth, diomp_p2p_full, mpi_p2p, RmaOp};
use diomp_bench::report::{json_path_from_args, BenchRecord};
use diomp_bench::{paper, size_label};
use diomp_core::{Conduit, PipelineConfig};
use diomp_sim::PlatformSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let no_anomaly = args.iter().any(|a| a == "--no-anomaly");
    let json_path = json_path_from_args(&args);
    let mut records: Vec<BenchRecord> = Vec::new();
    let sizes = &paper::FIG4_SIZES;
    for (tag, name, mut platform, max) in [
        ("a", "(a) Slingshot 11 + A100", PlatformSpec::platform_a(), 64 << 20),
        ("b", "(b) Slingshot 11 + MI250X", PlatformSpec::platform_b(), 1 << 30),
        ("c", "(c) NDR InfiniBand + Grace Hopper", PlatformSpec::platform_c(), 1 << 30),
    ] {
        if no_anomaly {
            platform.put_anomaly_gbps = None;
        }
        let sizes: Vec<u64> = sizes.iter().copied().filter(|&s| s <= max).collect();
        println!("\n== Fig. 4{name}: bandwidth (GB/s) ==");
        let dg = diomp_p2p_bandwidth(&platform, RmaOp::Get, &sizes);
        let dp = diomp_p2p_full(
            &platform,
            Conduit::GasnetEx,
            RmaOp::Put,
            &sizes,
            true,
            PipelineConfig::disabled(),
        );
        let dpp = diomp_p2p_full(
            &platform,
            Conduit::GasnetEx,
            RmaOp::Put,
            &sizes,
            true,
            PipelineConfig::enabled(),
        );
        let dpt = diomp_p2p_full(
            &platform,
            Conduit::GasnetEx,
            RmaOp::Put,
            &sizes,
            true,
            PipelineConfig::auto(&platform, Conduit::GasnetEx),
        );
        let mg = mpi_p2p(&platform, RmaOp::Get, &sizes, true);
        let mp = mpi_p2p(&platform, RmaOp::Put, &sizes, true);
        println!(
            "{:>8} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "size", "DiOMP Get", "DiOMP Put", "DiOMP Put*", "DiOMP Put+", "MPI Get", "MPI Put"
        );
        for i in 0..sizes.len() {
            println!(
                "{:>8} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>11.2}",
                size_label(sizes[i]),
                dg[i].1,
                dp[i].1,
                dpp[i].1,
                dpt[i].1,
                mg[i].1,
                mp[i].1
            );
            records.push(BenchRecord::with_entries(
                format!("fig4{tag}/diomp_put_{}", size_label(sizes[i])),
                dp[i].1,
                "GB/s",
                dp[i].2,
            ));
            records.push(BenchRecord::with_entries(
                format!("fig4{tag}/diomp_put_pipelined_{}", size_label(sizes[i])),
                dpp[i].1,
                "GB/s",
                dpp[i].2,
            ));
            records.push(BenchRecord::with_entries(
                format!("fig4{tag}/diomp_put_tuned_{}", size_label(sizes[i])),
                dpt[i].1,
                "GB/s",
                dpt[i].2,
            ));
        }
    }
    println!("\n(*) chunked large-message pipeline enabled (PipelineConfig::enabled()).");
    println!("(+) transport-autotuned pipeline (PipelineConfig::auto, knee-derived).");
    println!("paper shape: DiOMP above MPI everywhere except the documented");
    println!("Platform A DiOMP-Put anomaly (external driver issue, Fig. 4a),");
    println!("which the pipelined put dodges by staging chunks through host memory.");
    diomp_bench::report::write_if_requested(json_path.as_deref(), &records);
}
