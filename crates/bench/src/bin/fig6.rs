//! Fig. 6 — collective latency heatmaps: `log10(t_MPI / t_DiOMP)` for
//! Broadcast (32 KB–64 MB) and AllReduce (128 KB–64 MB) on the paper's
//! three platforms (64 A100s, 64 GCDs, 16 GH200s). The DiOMP side runs
//! through the emergent chunk-pipelined ring engine by default; pass
//! `--profile` for the calibrated whole-collective curve fit (ablation)
//! or `--auto` for the transport autotuner's protocol-selecting engine
//! (LL/tree small-message fast paths, ring above the crossover — the
//! configuration that reproduces the fitted small-size dips).
//! `--json PATH` emits every cell — DiOMP µs with the run's
//! scheduler-entry count, MPI µs, and the log-ratio — as `BENCH_*.json`
//! records.

use diomp_apps::micro::{diomp_collective_full, fig6_nodes, log_ratio, mpi_collective, CollKind};
use diomp_bench::report::{json_path_from_args, BenchRecord};
use diomp_bench::{mae, paper, print_ratio_row, sign_agreement, size_label};
use diomp_core::{
    crossover_bytes, dbt_crossover_bytes, default_nrings, CollEngine, Conduit, ReduceOp, Tuner,
    XcclOp,
};
use diomp_sim::PlatformSpec;

/// Which DiOMP engine the run measures; `Auto` is derived per platform.
#[derive(Clone, Copy)]
enum EngineSel {
    Ring,
    Profile,
    Auto,
}

impl EngineSel {
    fn for_platform(self, platform: &PlatformSpec) -> CollEngine {
        match self {
            EngineSel::Ring => CollEngine::default(),
            EngineSel::Profile => CollEngine::Profile,
            EngineSel::Auto => Tuner::new(platform, Conduit::GasnetEx).coll_engine(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_op(
    kind: CollKind,
    op_tag: &str,
    sizes: &[u64],
    sel: EngineSel,
    records: &mut Vec<BenchRecord>,
    refs: [(&str, &str, PlatformSpec, &[f64]); 3],
) {
    for (tag, name, platform, paper_row) in refs {
        let engine = sel.for_platform(&platform);
        let nodes = fig6_nodes(&platform);
        // Under --auto, show where the three-regime dispatcher switches
        // protocol for this op at this scale (LL/tree below the first
        // boundary, double binary tree in the mid band, ring above).
        if let CollEngine::Auto(ac) = engine {
            let op = match kind {
                CollKind::Broadcast => XcclOp::Broadcast { root: 0 },
                CollKind::AllReduce => XcclOp::AllReduce { op: ReduceOp::SumF32 },
            };
            let n = nodes * platform.gpus_per_node;
            let nrings = default_nrings(&platform);
            let ll = crossover_bytes(&platform, &op, n, nrings, &ac);
            let dbt = dbt_crossover_bytes(&platform, &op, n, nrings, &ac).max(ll);
            if dbt > ll {
                println!(
                    "   [{tag}] auto regimes: LL/tree <= {}, DBT <= {}, ring above",
                    size_label(ll),
                    size_label(dbt)
                );
            } else {
                println!("   [{tag}] auto regimes: LL/tree <= {}, ring above", size_label(ll));
            }
        }
        let mpi = mpi_collective(&platform, nodes, kind, sizes);
        let full = diomp_collective_full(&platform, nodes, kind, sizes, engine);
        let diomp: Vec<(u64, f64)> = full.iter().map(|&(s, us, _)| (s, us)).collect();
        let ratio = log_ratio(&mpi, &diomp);
        print_ratio_row(name, sizes, &ratio, paper_row);
        println!(
            "   sign agreement {:.0}%   MAE {:.2}",
            100.0 * sign_agreement(&ratio, paper_row),
            mae(&ratio, paper_row)
        );
        // Tag the DiOMP rows with the engine so ring and --profile
        // artifacts stay distinguishable side by side.
        let eng = match engine {
            CollEngine::Profile => "diomp_profile",
            CollEngine::Ring(_) => "diomp",
            CollEngine::Dbt(_) => "diomp_dbt",
            CollEngine::Auto(_) => "diomp_auto",
            CollEngine::ReductionServer(_) => "diomp_rserver",
        };
        for (i, &(s, us, entries)) in full.iter().enumerate() {
            let sz = size_label(s);
            records.push(BenchRecord::with_entries(
                format!("fig6/{op_tag}_{tag}_{sz}/{eng}"),
                us,
                "us",
                entries,
            ));
            records.push(BenchRecord {
                name: format!("fig6/{op_tag}_{tag}_{sz}/mpi"),
                value: mpi[i].1,
                unit: "us".into(),
                entries_processed: None,
                sim_wall_ms: None,
            });
            records.push(BenchRecord {
                name: format!("fig6/{op_tag}_{tag}_{sz}/log_ratio"),
                value: ratio[i].1,
                unit: "log10".into(),
                entries_processed: None,
                sim_wall_ms: None,
            });
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let engine = if args.iter().any(|a| a == "--profile") {
        EngineSel::Profile
    } else if args.iter().any(|a| a == "--auto") {
        EngineSel::Auto
    } else {
        EngineSel::Ring
    };
    let mut records = Vec::new();
    println!("Fig. 6(a) Broadcast — log10(MPI/DiOMP), positive = DiOMP faster");
    run_op(
        CollKind::Broadcast,
        "bcast",
        &paper::FIG6_BCAST_SIZES,
        engine,
        &mut records,
        [
            (
                "A",
                "Slingshot 11 + A100 (64 GPUs)",
                PlatformSpec::platform_a(),
                &paper::FIG6_BCAST_A,
            ),
            ("C", "NDR IB + GH200 (16 GPUs)", PlatformSpec::platform_c(), &paper::FIG6_BCAST_C),
            (
                "B",
                "Slingshot 11 + MI250X (64 GCDs)",
                PlatformSpec::platform_b(),
                &paper::FIG6_BCAST_B,
            ),
        ],
    );
    println!("\nFig. 6(b) AllReduce(sum) — log10(MPI/DiOMP)");
    run_op(
        CollKind::AllReduce,
        "allred",
        &paper::FIG6_ALLRED_SIZES,
        engine,
        &mut records,
        [
            (
                "A",
                "Slingshot 11 + A100 (64 GPUs)",
                PlatformSpec::platform_a(),
                &paper::FIG6_ALLRED_A,
            ),
            ("C", "NDR IB + GH200 (16 GPUs)", PlatformSpec::platform_c(), &paper::FIG6_ALLRED_C),
            (
                "B",
                "Slingshot 11 + MI250X (64 GCDs)",
                PlatformSpec::platform_b(),
                &paper::FIG6_ALLRED_B,
            ),
        ],
    );
    diomp_bench::report::write_if_requested(json_path.as_deref(), &records);
}
