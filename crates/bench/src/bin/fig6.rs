//! Fig. 6 — collective latency heatmaps: `log10(t_MPI / t_DiOMP)` for
//! Broadcast (32 KB–64 MB) and AllReduce (128 KB–64 MB) on the paper's
//! three platforms (64 A100s, 64 GCDs, 16 GH200s).

use diomp_apps::micro::{diomp_collective, fig6_nodes, log_ratio, mpi_collective, CollKind};
use diomp_bench::{mae, paper, print_ratio_row, sign_agreement};
use diomp_sim::PlatformSpec;

fn run_op(kind: CollKind, sizes: &[u64], refs: [(&str, PlatformSpec, &[f64]); 3]) {
    for (name, platform, paper_row) in refs {
        let nodes = fig6_nodes(&platform);
        let mpi = mpi_collective(&platform, nodes, kind, sizes);
        let diomp = diomp_collective(&platform, nodes, kind, sizes);
        let ratio = log_ratio(&mpi, &diomp);
        print_ratio_row(name, sizes, &ratio, paper_row);
        println!(
            "   sign agreement {:.0}%   MAE {:.2}",
            100.0 * sign_agreement(&ratio, paper_row),
            mae(&ratio, paper_row)
        );
    }
}

fn main() {
    println!("Fig. 6(a) Broadcast — log10(MPI/DiOMP), positive = DiOMP faster");
    run_op(
        CollKind::Broadcast,
        &paper::FIG6_BCAST_SIZES,
        [
            ("Slingshot 11 + A100 (64 GPUs)", PlatformSpec::platform_a(), &paper::FIG6_BCAST_A),
            ("NDR IB + GH200 (16 GPUs)", PlatformSpec::platform_c(), &paper::FIG6_BCAST_C),
            ("Slingshot 11 + MI250X (64 GCDs)", PlatformSpec::platform_b(), &paper::FIG6_BCAST_B),
        ],
    );
    println!("\nFig. 6(b) AllReduce(sum) — log10(MPI/DiOMP)");
    run_op(
        CollKind::AllReduce,
        &paper::FIG6_ALLRED_SIZES,
        [
            ("Slingshot 11 + A100 (64 GPUs)", PlatformSpec::platform_a(), &paper::FIG6_ALLRED_A),
            ("NDR IB + GH200 (16 GPUs)", PlatformSpec::platform_c(), &paper::FIG6_ALLRED_C),
            ("Slingshot 11 + MI250X (64 GCDs)", PlatformSpec::platform_b(), &paper::FIG6_ALLRED_B),
        ],
    );
}
