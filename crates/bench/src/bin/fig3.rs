//! Fig. 3 — point-to-point RMA latency, 4 B – 8 KB: DiOMP Put/Get vs MPI
//! Put/Get on the three platforms. Lower is better; the paper's headline
//! is DiOMP's flat ~5 µs curve against MPI's climbing one. The DiOMP
//! side runs through the transport autotuner's default path
//! (`PipelineConfig::auto` via `diomp_p2p_latency`); every Fig. 3 size
//! sits below the tuned chunk knee, so the published flat curves are
//! what the tuned configuration itself produces — `bench_gate` locks
//! the 8 KB put latency per platform. `--json PATH` emits every cell as
//! a `BENCH_*.json` record.

use diomp_apps::micro::{diomp_p2p_latency, mpi_p2p, RmaOp};
use diomp_bench::report::{json_path_from_args, BenchRecord};
use diomp_bench::{paper, size_label};
use diomp_sim::PlatformSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let mut records: Vec<BenchRecord> = Vec::new();
    let sizes = &paper::FIG3_SIZES;
    for (tag, name, platform) in [
        ("a", "(a) Slingshot 11 + A100", PlatformSpec::platform_a()),
        ("b", "(b) Slingshot 11 + MI250X", PlatformSpec::platform_b()),
        ("c", "(c) NDR InfiniBand + Grace Hopper", PlatformSpec::platform_c()),
    ] {
        println!("\n== Fig. 3{name}: latency (µs) ==");
        let dg = diomp_p2p_latency(&platform, RmaOp::Get, sizes);
        let dp = diomp_p2p_latency(&platform, RmaOp::Put, sizes);
        let mg = mpi_p2p(&platform, RmaOp::Get, sizes, false);
        let mp = mpi_p2p(&platform, RmaOp::Put, sizes, false);
        println!(
            "{:>8} {:>11} {:>11} {:>11} {:>11}",
            "size", "DiOMP Get", "DiOMP Put", "MPI Get", "MPI Put"
        );
        for i in 0..sizes.len() {
            println!(
                "{:>8} {:>11.2} {:>11.2} {:>11.2} {:>11.2}",
                size_label(sizes[i]),
                dg[i].1,
                dp[i].1,
                mg[i].1,
                mp[i].1
            );
            let sz = size_label(sizes[i]);
            for (series, row) in
                [("diomp_get", &dg), ("diomp_put", &dp), ("mpi_get", &mg), ("mpi_put", &mp)]
            {
                records.push(BenchRecord {
                    name: format!("fig3{tag}/{series}_{sz}"),
                    value: row[i].1,
                    unit: "us".into(),
                    entries_processed: None,
                    sim_wall_ms: None,
                });
            }
        }
    }
    println!("\npaper shape: DiOMP nearly flat (~5 µs on A/B, ~6 µs on C); MPI above it");
    println!("and climbing with size (C: MPI an order of magnitude higher).");
    diomp_bench::report::write_if_requested(json_path.as_deref(), &records);
}
