//! Fig. 3 — point-to-point RMA latency, 4 B – 8 KB: DiOMP Put/Get vs MPI
//! Put/Get on the three platforms. Lower is better; the paper's headline
//! is DiOMP's flat ~5 µs curve against MPI's climbing one.

use diomp_apps::micro::{diomp_p2p_latency, mpi_p2p, RmaOp};
use diomp_bench::{paper, size_label};
use diomp_sim::PlatformSpec;

fn main() {
    let sizes = &paper::FIG3_SIZES;
    for (name, platform) in [
        ("(a) Slingshot 11 + A100", PlatformSpec::platform_a()),
        ("(b) Slingshot 11 + MI250X", PlatformSpec::platform_b()),
        ("(c) NDR InfiniBand + Grace Hopper", PlatformSpec::platform_c()),
    ] {
        println!("\n== Fig. 3{name}: latency (µs) ==");
        let dg = diomp_p2p_latency(&platform, RmaOp::Get, sizes);
        let dp = diomp_p2p_latency(&platform, RmaOp::Put, sizes);
        let mg = mpi_p2p(&platform, RmaOp::Get, sizes, false);
        let mp = mpi_p2p(&platform, RmaOp::Put, sizes, false);
        println!(
            "{:>8} {:>11} {:>11} {:>11} {:>11}",
            "size", "DiOMP Get", "DiOMP Put", "MPI Get", "MPI Put"
        );
        for i in 0..sizes.len() {
            println!(
                "{:>8} {:>11.2} {:>11.2} {:>11.2} {:>11.2}",
                size_label(sizes[i]),
                dg[i].1,
                dp[i].1,
                mg[i].1,
                mp[i].1
            );
        }
    }
    println!("\npaper shape: DiOMP nearly flat (~5 µs on A/B, ~6 µs on C); MPI above it");
    println!("and climbing with size (C: MPI an order of magnitude higher).");
}
