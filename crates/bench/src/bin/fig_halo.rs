//! Halo-exchange protocol comparison — the paper's notification-driven
//! Minimod scenario (GASPI §4.1 + §4.5), beyond the published figures.
//!
//! Compares the three DiOMP halo styles and the MPI baseline on the
//! InfiniBand platform (the only one carrying GPI-2):
//!
//! * `get`      — pull-based `ompx_get` + fence + per-step barrier,
//! * `ordered`  — push `ompx_put_notify`, per-id ordered `notify_wait`
//!   drain, per-step barrier (ids reused each step),
//! * `waitsome` — push with step-parity ids, one ranged
//!   `notify_waitsome` drain, **no per-step barrier**,
//! * `mpi`      — Isend/Irecv/Waitall + barrier (Listing 2).
//!
//! Two sections: a Functional run asserting all four styles end on
//! byte-identical wavefields, then a CostOnly rank sweep reporting
//! per-step time and scheduler entries. The binary asserts the waitsome
//! drain costs fewer scheduler entries than ordered per-id waits at
//! every rank count ≥ 4 (the win of ranged notifications: the parity
//! scheme they enable replaces the per-step barrier).

use diomp_apps::minimod::{self, HaloStyle, MinimodConfig};
use diomp_bench::report::{json_path_from_args, BenchRecord};
use diomp_device::DataMode;
use diomp_sim::PlatformSpec;

const STYLES: [(&str, HaloStyle); 3] = [
    ("get", HaloStyle::Get),
    ("ordered", HaloStyle::NotifyOrdered),
    ("waitsome", HaloStyle::NotifyWaitsome),
];

fn cfg(gpus: usize, grid: usize, steps: usize, mode: DataMode, halo: HaloStyle) -> MinimodConfig {
    MinimodConfig {
        platform: PlatformSpec::platform_c(),
        gpus,
        nx: grid,
        ny: grid,
        nz: grid,
        steps,
        mode,
        verify: mode == DataMode::Functional,
        halo,
        tuned: false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let mut records: Vec<BenchRecord> = Vec::new();

    // -- Correctness: byte-identical wavefields across every style. -----
    println!("== halo correctness: 24³ × 5 steps on 4 GH200 nodes (Functional) ==");
    let reference = minimod::mpi::run(&cfg(4, 24, 5, DataMode::Functional, HaloStyle::Get))
        .wavefield
        .expect("functional run captures the wavefield");
    for (name, halo) in STYLES {
        let r = minimod::diomp::run(&cfg(4, 24, 5, DataMode::Functional, halo));
        assert!(r.verified, "{name}: serial-reference verification failed");
        let w = r.wavefield.expect("functional run captures the wavefield");
        assert_eq!(w, reference, "{name}: wavefield diverged from the MPI baseline");
        println!("  {name:<9} wavefield identical to MPI ({} bytes)", w.len());
    }

    // -- Scale: per-step time and scheduler entries vs rank count. ------
    const GRID: usize = 480;
    const STEPS: usize = 10;
    println!("\n== halo protocols at scale: {GRID}³ × {STEPS} steps (CostOnly) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}   (ms/step | entries)",
        "GPUs", "get", "ordered", "waitsome", "mpi"
    );
    for gpus in [4usize, 8, 16] {
        let mut row = format!("{gpus:>6}");
        let mut entries = std::collections::HashMap::new();
        for (name, halo) in STYLES {
            let r = minimod::diomp::run(&cfg(gpus, GRID, STEPS, DataMode::CostOnly, halo));
            let ms = r.elapsed.as_ms() / STEPS as f64;
            row.push_str(&format!(" {ms:>7.3}|{:<6}", r.entries));
            entries.insert(name, r.entries);
            records.push(BenchRecord::with_entries(
                format!("fig_halo/{name}_ms_per_step_{gpus}gpus"),
                ms,
                "ms",
                r.entries,
            ));
        }
        let m = minimod::mpi::run(&cfg(gpus, GRID, STEPS, DataMode::CostOnly, HaloStyle::Get));
        let ms = m.elapsed.as_ms() / STEPS as f64;
        row.push_str(&format!(" {ms:>7.3}|{:<6}", m.entries));
        records.push(BenchRecord::with_entries(
            format!("fig_halo/mpi_ms_per_step_{gpus}gpus"),
            ms,
            "ms",
            m.entries,
        ));
        println!("{row}");
        // The acceptance assertion: ranged waitsome + parity ids (no
        // per-step barrier) must beat ordered per-id waits on scheduler
        // entries at every measured rank count (all ≥ 4).
        let (ws, ord) = (entries["waitsome"], entries["ordered"]);
        assert!(
            ws < ord,
            "{gpus} GPUs: waitsome ({ws} entries) must beat ordered per-id waits ({ord})"
        );
        records.push(BenchRecord {
            name: format!("fig_halo/waitsome_entry_saving_{gpus}gpus"),
            value: (ord - ws) as f64,
            unit: "entries".into(),
            entries_processed: None,
            sim_wall_ms: None,
        });
    }
    println!("\nwaitsome < ordered scheduler entries at every rank count ≥ 4: OK");

    diomp_bench::report::write_if_requested(json_path.as_deref(), &records);
}
