//! Fig. 8 — Minimod (1200³ grid) speedup: DiOMP vs MPI on platforms A
//! and B, both normalised to MPI's single-node time (the paper's
//! baseline). Steady-state per-step times make speedups step-count
//! invariant, so the harness simulates 40 steps instead of 1000.

use diomp_apps::minimod::{self, HaloStyle, MinimodConfig};
use diomp_bench::paper;
use diomp_bench::report::{json_path_from_args, BenchRecord};
use diomp_device::DataMode;
use diomp_sim::PlatformSpec;

const SIM_STEPS: usize = 40;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let mut records: Vec<BenchRecord> = Vec::new();
    for (tag, name, platform, gpus, peaks) in [
        (
            "a",
            "(a) Slingshot 11 + A100",
            PlatformSpec::platform_a(),
            &paper::FIG8_GPUS_A[..],
            paper::FIG8_PEAK_A,
        ),
        (
            "b",
            "(b) Slingshot 11 + MI250X",
            PlatformSpec::platform_b(),
            &paper::FIG8_GPUS_B[..],
            paper::FIG8_PEAK_B,
        ),
    ] {
        let cfg = |g: usize| MinimodConfig {
            platform: platform.clone(),
            gpus: g,
            nx: paper::FIG8_GRID,
            ny: paper::FIG8_GRID,
            nz: paper::FIG8_GRID,
            steps: SIM_STEPS,
            mode: DataMode::CostOnly,
            verify: false,
            halo: HaloStyle::Get,
            tuned: false,
        };
        println!(
            "\n== Fig. 8{name}: Minimod speedup vs MPI {}-GPU baseline ({} of {} steps simulated) ==",
            gpus[0],
            SIM_STEPS,
            paper::FIG8_STEPS
        );
        let base = minimod::mpi::run(&cfg(gpus[0])).elapsed.as_nanos() as f64;
        println!("{:>6} {:>10} {:>10}", "GPUs", "DiOMP", "MPI");
        let mut last = (0.0, 0.0);
        for &g in gpus {
            let d = base / minimod::diomp::run(&cfg(g)).elapsed.as_nanos() as f64;
            let m = base / minimod::mpi::run(&cfg(g)).elapsed.as_nanos() as f64;
            println!("{g:>6} {d:>10.2} {m:>10.2}");
            for (series_tag, v) in [("diomp", d), ("mpi", m)] {
                records.push(BenchRecord {
                    name: format!("fig8{tag}/{series_tag}_speedup_{g}gpus"),
                    value: v,
                    unit: "x".into(),
                    entries_processed: None,
                    sim_wall_ms: None,
                });
            }
            last = (d, m);
        }
        println!(
            "peak: DiOMP {:.1} (paper ≈{:.1}), MPI {:.1} (paper ≈{:.1})",
            last.0, peaks.0, last.1, peaks.1
        );
    }
    diomp_bench::report::write_if_requested(json_path.as_deref(), &records);
}
