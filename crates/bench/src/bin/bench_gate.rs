//! CI perf-regression gate.
//!
//! Re-runs a deterministic subset of the fig4 bandwidth measurements and
//! the ISSUE 1/2/4/5 ablation measurements (chunked-pipeline put,
//! batched fence, ring vs profile collectives, the transport
//! autotuner's tuned pipeline, the LL/tree and double-binary-tree
//! collective fast paths, and the table-tuned ring chunking), emits
//! them as `BENCH_*.json`, and compares against the committed baseline.
//! Both the simulated metric (GB/s, µs) and the scheduler-entry count
//! (`entries_processed`, the wall-clock cost the batched wait-groups
//! optimise) are gated: a regression beyond 10% in either fails the
//! build. The ISSUE 4/5 acceptance relations are additionally *hard
//! asserts* inside the measurement pass: `CollEngine::Auto` must beat
//! the pure ring at ≤64 KiB on every platform for broadcast and
//! allreduce, never lose to it in the 1 MiB mid band, and stay within
//! 5 % of it at 16 MiB; the pinned DBT engine must beat the ring at its
//! platform's mid-band allreduce cell; the tuned ring chunking must not
//! regress the legacy constants at 64 MiB. Everything measured is a
//! virtual-time quantity, so the baseline is machine-independent.
//!
//! Usage:
//!   bench_gate [--json PATH] [--baseline PATH] [--update]
//!
//! `--update` rewrites the baseline file with the current measurements
//! (run after an intentional performance change and commit the result)
//! and prints a before/after diff of every row it refreshed.

use diomp_apps::micro::{
    diomp_collective_auto, diomp_collective_dbt, diomp_collective_full, diomp_collective_rserver,
    diomp_collective_served, diomp_p2p_full, diomp_p2p_latency, fig6_nodes, scale_allreduce,
    CollKind, RmaOp, ScaleEngine,
};
use diomp_apps::minimod::{self, HaloStyle, MinimodConfig};
use diomp_bench::report::{
    json_path_from_args, parse_json, write_if_requested, write_json, BenchRecord,
};
use diomp_bench::size_label;
use diomp_core::{CollEngine, Conduit, DiompConfig, DiompRuntime, PipelineConfig};
use diomp_device::DataMode;
use diomp_sim::{ClusterSpec, PlatformSpec};

/// Allowed relative slack before a change counts as a regression.
const TOLERANCE: f64 = 0.10;

fn measure() -> Vec<BenchRecord> {
    let mut records = Vec::new();

    // Fig. 4 put bandwidth, monolithic vs chunk-pipelined, all platforms.
    let sizes = [4u64 << 20, 64 << 20];
    for (tag, platform) in [
        ("a", PlatformSpec::platform_a()),
        ("b", PlatformSpec::platform_b()),
        ("c", PlatformSpec::platform_c()),
    ] {
        for (suffix, pipe) in
            [("", PipelineConfig::disabled()), ("_pipelined", PipelineConfig::enabled())]
        {
            let rows = diomp_p2p_full(&platform, Conduit::GasnetEx, RmaOp::Put, &sizes, true, pipe);
            for (s, gbps, entries) in rows {
                records.push(BenchRecord::with_entries(
                    format!("fig4{tag}/diomp_put{suffix}_{}", size_label(s)),
                    gbps,
                    "GB/s",
                    entries,
                ));
            }
        }
    }

    // Batched-fence ablation (ISSUE 1): virtual time and entry count of a
    // 1000-put fence with wait_all batching on.
    let fence_cfg = DiompConfig::builder(ClusterSpec {
        platform: PlatformSpec::platform_a(),
        nodes: 2,
        gpus_per_node: 1,
    })
    .with_mode(DataMode::CostOnly)
    .with_heap(64 << 20)
    .build();
    let rep = DiompRuntime::run(fence_cfg, |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, 256 << 10).unwrap();
        rank.barrier(ctx);
        if rank.rank == 0 {
            for _ in 0..1000 {
                rank.put(ctx, 1, ptr, 0, ptr, 0, 256 << 10).unwrap();
            }
            rank.fence(ctx);
        }
        rank.barrier(ctx);
    })
    .unwrap();
    records.push(BenchRecord::with_entries(
        "ablation/fence1000_batched",
        rep.end_time.as_us(),
        "us",
        rep.entries_processed,
    ));

    // Notified halo exchange (ISSUE 3): per-step time and scheduler
    // entries of the minimod halo styles at 8 ranks on the InfiniBand
    // platform. Gates both the notification machinery's virtual-time
    // cost and the entry saving of the barrier-free waitsome drain.
    for (name, halo) in
        [("ordered", HaloStyle::NotifyOrdered), ("waitsome", HaloStyle::NotifyWaitsome)]
    {
        let halo_cfg = MinimodConfig {
            platform: PlatformSpec::platform_c(),
            gpus: 8,
            nx: 240,
            ny: 240,
            nz: 240,
            steps: 10,
            mode: DataMode::CostOnly,
            verify: false,
            halo,
            tuned: false,
        };
        let r = minimod::diomp::run(&halo_cfg);
        records.push(BenchRecord::with_entries(
            format!("fig_halo/{name}_us_per_step_8gpus"),
            r.elapsed.as_us() / halo_cfg.steps as f64,
            "us",
            r.entries,
        ));
    }

    // Ring-collective engine (ISSUE 2): emergent vs profiled allreduce on
    // 64 A100s; the entry count gates the progress loop's scheduler cost
    // (what wait_any_batched keeps bounded).
    for (name, engine) in [("ring", CollEngine::default()), ("profile", CollEngine::Profile)] {
        let rows = diomp_collective_full(
            &PlatformSpec::platform_a(),
            16,
            CollKind::AllReduce,
            &[1 << 20, 64 << 20],
            engine,
        );
        for (s, us, entries) in rows {
            records.push(BenchRecord::with_entries(
                format!("fig6/allred_A_{}/{name}", size_label(s)),
                us,
                "us",
                entries,
            ));
        }
    }

    // Transport autotuner (ISSUE 4). (a) Tuned pipeline: the knee-derived
    // parameters must clear the Fig. 4a put cap like the hand-tuned
    // explicit config does — locked per platform.
    for (tag, platform) in [
        ("a", PlatformSpec::platform_a()),
        ("b", PlatformSpec::platform_b()),
        ("c", PlatformSpec::platform_c()),
    ] {
        let tuned = PipelineConfig::auto(&platform, Conduit::GasnetEx);
        let rows =
            diomp_p2p_full(&platform, Conduit::GasnetEx, RmaOp::Put, &[64 << 20], true, tuned);
        for (s, gbps, entries) in rows {
            records.push(BenchRecord::with_entries(
                format!("fig4{tag}/diomp_put_tuned_{}", size_label(s)),
                gbps,
                "GB/s",
                entries,
            ));
        }
        // Small-message P2P latency through the tuned default path (the
        // fig3 headline: flat µs-scale latency must survive the tuner).
        let lat = diomp_p2p_latency(&platform, RmaOp::Put, &[8 << 10]);
        records.push(BenchRecord {
            name: format!("fig3{tag}/diomp_put_8KB"),
            value: lat[0].1,
            unit: "us".into(),
            entries_processed: None,
            sim_wall_ms: None,
        });
    }

    // (b) Collective protocol selection: CollEngine::Auto vs the pure
    // ring at the Fig. 6 device counts, across all three regimes. The
    // ISSUE 4/5 acceptance relations are asserted outright: the LL/tree
    // path wins at small sizes, the mid band (1 MiB, PR 5's double
    // binary tree) never loses to the ring, and the large sizes stay
    // within 5 %. The baseline rows then lock the achieved latencies in
    // CI.
    for (tag, platform) in [
        ("A", PlatformSpec::platform_a()),
        ("B", PlatformSpec::platform_b()),
        ("C", PlatformSpec::platform_c()),
    ] {
        let nodes = fig6_nodes(&platform);
        for (op_tag, kind) in [("bcast", CollKind::Broadcast), ("allred", CollKind::AllReduce)] {
            let sizes = [32u64 << 10, 64 << 10, 1 << 20, 16 << 20];
            let auto = diomp_collective_auto(&platform, nodes, kind, &sizes);
            let ring = diomp_collective_full(&platform, nodes, kind, &sizes, CollEngine::default());
            for (&(s, auto_us, auto_entries), &(_, ring_us, ring_entries)) in auto.iter().zip(&ring)
            {
                if s <= 64 << 10 {
                    assert!(
                        auto_us < ring_us,
                        "{op_tag}/{tag}@{}: Auto ({auto_us:.1}µs) must beat the ring \
                         ({ring_us:.1}µs) at small sizes",
                        size_label(s)
                    );
                } else if s <= 1 << 20 {
                    // Mid band: Auto runs the DBT where it is priced to
                    // win and the (tuned) ring otherwise — either way it
                    // must not lose to the untuned ring.
                    assert!(
                        auto_us <= ring_us * 1.01,
                        "{op_tag}/{tag}@{}: Auto ({auto_us:.1}µs) must not lose to the ring \
                         ({ring_us:.1}µs) in the mid band",
                        size_label(s)
                    );
                } else {
                    assert!(
                        auto_us <= ring_us * 1.05,
                        "{op_tag}/{tag}@{}: Auto ({auto_us:.1}µs) must stay within 5% of the \
                         ring ({ring_us:.1}µs) at large sizes",
                        size_label(s)
                    );
                }
                let sz = size_label(s);
                records.push(BenchRecord::with_entries(
                    format!("fig6/{op_tag}_{tag}_{sz}/auto"),
                    auto_us,
                    "us",
                    auto_entries,
                ));
                // Lock the small/mid-size ring reference so the
                // auto-vs-ring gap stays visible in history — except
                // A/allred@1MB, which the ring-vs-profile section above
                // already records (one row per name keeps the baseline
                // lookups unambiguous).
                if s <= 1 << 20 && !(tag == "A" && op_tag == "allred" && s == 1 << 20) {
                    records.push(BenchRecord::with_entries(
                        format!("fig6/{op_tag}_{tag}_{sz}/ring"),
                        ring_us,
                        "us",
                        ring_entries,
                    ));
                }
            }
        }

        // (c) The double-binary-tree engine itself (PR 5 tentpole),
        // pinned via CollEngine::Dbt: it must beat the ring outright at
        // a mid-band allreduce cell on every platform — 1 MiB on A and
        // C; 512 KiB on B, whose calibrated link efficiency (2.7 % of
        // the wire) starves ring and tree alike so only the latency
        // overhead is saveable and its band closes just past 512 KiB.
        // The large-size no-harm relation is Auto's (asserted above at
        // 16 MiB — the dispatcher prices the DBT out of the band there);
        // the raw 16 MiB DBT row is still locked in the baseline so a
        // schedule regression shows up in history.
        let win_cell = if platform.id == diomp_sim::PlatformId::B { 512u64 << 10 } else { 1 << 20 };
        let sizes = [win_cell, 16 << 20];
        let dbt = diomp_collective_dbt(&platform, nodes, CollKind::AllReduce, &sizes);
        let ring = diomp_collective_full(
            &platform,
            nodes,
            CollKind::AllReduce,
            &sizes,
            CollEngine::default(),
        );
        for (&(s, dbt_us, dbt_entries), &(_, ring_us, _)) in dbt.iter().zip(&ring) {
            if s == win_cell {
                assert!(
                    dbt_us < ring_us,
                    "allred/{tag}@{}: DBT ({dbt_us:.1}µs) must beat the ring ({ring_us:.1}µs) \
                     in the mid band",
                    size_label(s)
                );
            }
            records.push(BenchRecord::with_entries(
                format!("fig6/allred_{tag}_{}/dbt", size_label(s)),
                dbt_us,
                "us",
                dbt_entries,
            ));
        }
    }

    // (d) Table-tuned ring chunking (PR 5): RingConfig::auto must do no
    // harm vs the legacy 128 KiB/4 constants at the bandwidth-bound top
    // end, locked on the 64 GPU / 64 MiB allreduce cell.
    let op = diomp_core::XcclOp::AllReduce { op: diomp_core::ReduceOp::SumF32 };
    let platform = PlatformSpec::platform_a();
    let tuned_rc =
        diomp_core::RingConfig::auto(&platform, &op, diomp_core::default_nrings(&platform));
    let tuned = diomp_collective_full(
        &platform,
        16,
        CollKind::AllReduce,
        &[64 << 20],
        CollEngine::Ring(tuned_rc),
    );
    let legacy = diomp_collective_full(
        &platform,
        16,
        CollKind::AllReduce,
        &[64 << 20],
        CollEngine::default(),
    );
    assert!(
        tuned[0].1 <= legacy[0].1 * 1.05,
        "tuned ring chunking ({:.1}µs) must not regress the legacy constants ({:.1}µs)",
        tuned[0].1,
        legacy[0].1
    );
    records.push(BenchRecord::with_entries(
        "fig6/allred_A_64MB/ring_tuned",
        tuned[0].1,
        "us",
        tuned[0].2,
    ));

    // (e) Fault-injection hooks (ISSUE 6): with nothing armed — or with a
    // plan whose windows, task prefixes and keys never match — the
    // injection hooks must cost *nothing*: same virtual end time, same
    // scheduler entry count, bit for bit. Hard-asserted here; the locked
    // ratio row keeps the zero-cost claim visible in CI history.
    {
        use diomp_sim::{fault_key, CtrlFault, Dur, FaultPlan, Sim};
        let run = |armed: bool| {
            let mut sim = Sim::new();
            if armed {
                // Inert plan: a straggle prefix no task carries and a
                // control key no protocol consumes. Arming it switches
                // every injection hook on (the per-transfer perturb
                // lookup, the per-delay straggle scaling) with nothing
                // to fire.
                let plan = FaultPlan::new()
                    .straggle("no-such-task", 2000)
                    .ctrl_fault(fault_key("bench-inert", 0, 0), CtrlFault::Drop);
                sim.set_fault_plan(plan);
            }
            let cfg = DiompConfig::builder(ClusterSpec {
                platform: PlatformSpec::platform_a(),
                nodes: 2,
                gpus_per_node: 1,
            })
            .with_mode(DataMode::CostOnly)
            .with_heap(8 << 20)
            .build();
            let shared = DiompRuntime::build(&sim, cfg);
            for r in 0..2 {
                let shared = shared.clone();
                sim.spawn(format!("diomp-rank{r}"), move |ctx| {
                    let mut rank = diomp_core::DiompRank {
                        shared,
                        rank: r,
                        cache: diomp_core::PtrCache::new(),
                        rma_retries: 0,
                    };
                    let ptr = rank.alloc_sym(ctx, 1 << 20).unwrap();
                    rank.barrier(ctx);
                    if rank.rank == 0 {
                        for _ in 0..32 {
                            rank.put(ctx, 1, ptr, 0, ptr, 0, 1 << 20).unwrap();
                        }
                        rank.fence(ctx);
                    }
                    rank.barrier(ctx);
                    let world = rank.shared.world_group();
                    rank.allreduce(ctx, &world, ptr, 256 << 10, diomp_core::ReduceOp::SumF64);
                    ctx.delay(Dur::micros(5.0));
                    rank.barrier(ctx);
                });
            }
            let rep = sim.run().unwrap();
            (rep.end_time, rep.entries_processed)
        };
        let clean = run(false);
        let armed = run(true);
        assert_eq!(
            clean, armed,
            "disarmed/inert fault hooks must be zero-cost: clean {clean:?} vs armed {armed:?}"
        );
        records.push(BenchRecord::with_entries(
            "chaos/fault_off_overhead",
            armed.0.as_us() / clean.0.as_us(),
            "x",
            armed.1,
        ));
    }

    // (f) Multi-tenant shared-fabric contention + QoS (ISSUE 7
    // tentpole): the canonical 8-job scenario — two High, four Normal,
    // two Low tenants overlapping on two platform-A nodes. Hard-asserted
    // relations: a lone tenant on a contention-armed sim replays the
    // disarmed run bit-identically; every class's p99 stays under its
    // weighted-fair-share bound; the High tenants' p99 under full 8-way
    // load stays within a fixed factor of idle. The per-class p99 rows
    // and the makespan are then locked in the baseline.
    {
        use diomp_apps::workload::{canonical_idle_workload, canonical_workload, run_workload};
        use diomp_sim::QosClass;

        let disarmed = run_workload(&canonical_idle_workload(false));
        let idle = run_workload(&canonical_idle_workload(true));
        assert_eq!(
            disarmed.end_time, idle.end_time,
            "a lone tenant must replay bit-identically whether or not contention is armed"
        );
        let idle_p99 = idle.jobs[0].p99_us;

        let loaded = run_workload(&canonical_workload(true));
        let class_p99 = |q: QosClass| {
            loaded.jobs.iter().filter(|j| j.qos == q).map(|j| j.p99_us).fold(0.0, f64::max)
        };
        let total_w: u64 = loaded.jobs.iter().map(|j| j.qos.weight_milli() as u64).sum();
        for (tag, q) in
            [("high", QosClass::High), ("normal", QosClass::Normal), ("low", QosClass::Low)]
        {
            let p99 = class_p99(q);
            // Weighted fair sharing bounds any class's slowdown by the
            // inverse of its weight share (wire time scales by at most
            // Σw/w_q; software overheads don't scale at all); 25% slack
            // covers scheduling quantisation.
            let bound = idle_p99 * (total_w as f64 / q.weight_milli() as f64) * 1.25;
            assert!(
                p99 <= bound,
                "tenancy/{tag}: p99 {p99:.1}µs exceeds the fair-share bound {bound:.1}µs \
                 (idle {idle_p99:.1}µs)"
            );
            records.push(BenchRecord {
                name: format!("tenancy/8job_{tag}_p99"),
                value: p99,
                unit: "us".into(),
                entries_processed: (tag == "high").then_some(loaded.entries_processed),
                sim_wall_ms: None,
            });
        }
        let qos_factor = class_p99(QosClass::High) / idle_p99;
        assert!(
            qos_factor <= 4.0,
            "tenancy: High p99 under 8-way load is {qos_factor:.2}x idle (must stay ≤ 4x)"
        );
        records.push(BenchRecord {
            name: "tenancy/qos_high_p99_factor".into(),
            value: qos_factor,
            unit: "x".into(),
            entries_processed: None,
            sim_wall_ms: None,
        });
        records.push(BenchRecord::with_entries(
            "tenancy/8job_makespan",
            loaded.makespan_us,
            "us",
            loaded.entries_processed,
        ));
        // Achieved-vs-table bandwidth of the busiest High tenant, locked
        // so a fair-queue pricing regression shows up as lost wire share.
        let high = loaded
            .jobs
            .iter()
            .find(|j| j.qos == QosClass::High)
            .expect("canonical scenario has High tenants");
        records.push(BenchRecord {
            name: "tenancy/8job_high_achieved_frac".into(),
            value: high.achieved_gbps / high.table_gbps,
            unit: "x".into(),
            entries_processed: None,
            sim_wall_ms: None,
        });
    }

    // (g) Work conservation of the weighted fair queue itself: eight
    // saturating flows on one raw link must jointly achieve the link's
    // table bandwidth — the fluid scheduler may never idle a wire that
    // has backlogged flows. Hard-asserted within 2%; the ratio row keeps
    // the claim in CI history.
    {
        use diomp_sim::{Dur, Sim, SimTime};
        let sim = Sim::new();
        sim.enable_contention();
        let h = sim.handle();
        let bpns = 25.0; // one 25 GB/s NIC port
        let res = h.new_resource(bpns, Dur::micros(1.0));
        let weights = [4000u32, 4000, 1000, 1000, 1000, 1000, 250, 250];
        let flows: Vec<_> = weights.iter().map(|&w| h.new_flow(w)).collect();
        let mut sim = sim;
        for (i, &flow) in flows.iter().enumerate() {
            let h = sim.handle();
            sim.spawn(format!("flow{i}"), move |ctx| {
                let evs: Vec<_> =
                    (0..10).map(|_| h.transfer_qos(res, flow, SimTime::ZERO, 4 << 20)).collect();
                for ev in evs {
                    ctx.wait_free(ev);
                }
            });
        }
        sim.run().unwrap();
        let stats: Vec<_> = flows.iter().map(|&f| h.flow_stats(f)).collect();
        let first = stats.iter().filter_map(|s| s.first_start).min().expect("flows ran");
        let last = stats.iter().map(|s| s.last_depart).max().expect("flows ran");
        let total_bytes: u64 = stats.iter().map(|s| s.bytes).sum();
        let achieved = total_bytes as f64 / last.since(first).as_nanos() as f64;
        let frac = achieved / bpns;
        assert!(
            (0.98..=1.02).contains(&frac),
            "work conservation: 8 backlogged flows achieved {frac:.4}x of link capacity"
        );
        records.push(BenchRecord {
            name: "tenancy/work_conservation".into(),
            value: frac,
            unit: "x".into(),
            entries_processed: None,
            sim_wall_ms: None,
        });
    }

    // (h) In-network reduction offload (ISSUE 8 tentpole): on a cluster
    // whose trailing half is carved out as data-passive reduction
    // servers, the server schedule must beat both client-side protocols
    // outright at the injection-bound sizes — every client NIC moves
    // each byte once instead of ≈2× — and the four-regime Auto
    // dispatcher must track the best engine within 5 % across the whole
    // size range. All engines are timed on the *same* server-equipped
    // communicator (same membership, same client-only fold), differing
    // only in which protocol moves the bytes; the ring and DBT run
    // their table-tuned chunking so the baseline is the strongest
    // client-side configuration.
    for (tag, platform, clients, servers) in
        [("A", PlatformSpec::platform_a(), 8usize, 8usize), ("C", PlatformSpec::platform_c(), 8, 8)]
    {
        let nodes = clients + servers;
        let op = diomp_core::XcclOp::AllReduce { op: diomp_core::ReduceOp::SumF32 };
        let rc =
            diomp_core::RingConfig::auto(&platform, &op, diomp_core::default_nrings(&platform));
        let sizes = [256u64 << 10, 1 << 20, 16 << 20, 64 << 20];
        let ring = diomp_collective_served(
            &platform,
            nodes,
            servers,
            CollKind::AllReduce,
            &sizes,
            CollEngine::Ring(rc),
        );
        let dbt = diomp_collective_served(
            &platform,
            nodes,
            servers,
            CollKind::AllReduce,
            &sizes,
            CollEngine::Dbt(rc),
        );
        let rsv = diomp_collective_rserver(&platform, nodes, servers, CollKind::AllReduce, &sizes);
        let auto_engine = diomp_core::Tuner::new(&platform, Conduit::GasnetEx).coll_engine();
        let auto = diomp_collective_served(
            &platform,
            nodes,
            servers,
            CollKind::AllReduce,
            &sizes,
            auto_engine,
        );
        for i in 0..sizes.len() {
            let (s, ring_us, ring_entries) = ring[i];
            let (_, dbt_us, _) = dbt[i];
            let (_, rsv_us, rsv_entries) = rsv[i];
            let (_, auto_us, auto_entries) = auto[i];
            let sz = size_label(s);
            let best_client = ring_us.min(dbt_us);
            if s >= 16 << 20 {
                assert!(
                    rsv_us < best_client,
                    "rserver/{tag}@{sz}: the server schedule ({rsv_us:.1}µs) must beat the best \
                     client-side protocol (ring {ring_us:.1}µs, dbt {dbt_us:.1}µs) at \
                     injection-bound sizes"
                );
            }
            // No-harm across the whole range: below its server band the
            // dispatcher prices among the client-side protocols (the
            // fourth regime only opens above the DBT boundary, by
            // design), so the reference there is the ring fallback —
            // the same engine section (b) gates Auto against on
            // server-free communicators; inside the win region it must
            // track the best of all three — i.e. actually take the
            // offload.
            let best = if s >= 16 << 20 { best_client.min(rsv_us) } else { ring_us };
            assert!(
                auto_us <= best * 1.05,
                "rserver/{tag}@{sz}: Auto ({auto_us:.1}µs) must stay within 5% of the best \
                 engine ({best:.1}µs) on a server-equipped communicator"
            );
            records.push(BenchRecord::with_entries(
                format!("rserver/allred_{tag}_{sz}/rsv"),
                rsv_us,
                "us",
                rsv_entries,
            ));
            records.push(BenchRecord::with_entries(
                format!("rserver/allred_{tag}_{sz}/auto"),
                auto_us,
                "us",
                auto_entries,
            ));
            // The client-side reference at the asserted win cells, so
            // the offload margin stays visible in CI history.
            if s >= 16 << 20 {
                records.push(BenchRecord::with_entries(
                    format!("rserver/allred_{tag}_{sz}/ring"),
                    ring_us,
                    "us",
                    ring_entries,
                ));
            }
        }
    }

    // The server-offload tenant scenario: the canonical 8-job mix with
    // one tenant provisioned a reduction-server node. Its fan-back
    // bytes must land on its own server flow (per-tenant fabric
    // accounting stays total) and nobody else's; the single-tenant
    // armed==disarmed identity must survive the second flow.
    {
        use diomp_apps::workload::{run_workload, server_idle_workload, server_workload};
        let disarmed = run_workload(&server_idle_workload(false));
        let armed = run_workload(&server_idle_workload(true));
        assert_eq!(
            disarmed.end_time, armed.end_time,
            "a lone server-equipped tenant must replay bit-identically under the fair queue"
        );
        let loaded = run_workload(&server_workload(true));
        for (i, j) in loaded.jobs.iter().enumerate() {
            if i == 1 {
                assert!(
                    j.server_flow_bytes > 0,
                    "the server tenant's fan-back must be charged to its server flow"
                );
            } else {
                assert_eq!(
                    j.server_flow_bytes, 0,
                    "{}: a serverless tenant must never be charged server traffic",
                    j.name
                );
            }
        }
        records.push(BenchRecord::with_entries(
            "rserver/8job_server_flow_bytes",
            loaded.jobs[1].server_flow_bytes as f64,
            "bytes",
            loaded.entries_processed,
        ));
    }

    // (i) Elastic rank-failure recovery (ISSUE 9 tentpole): the
    // canonical 8-job mix with rank 3 killed halfway through the
    // collective stream. Hard-asserted relations: arming the recovery
    // layer on a healthy fabric costs at most 5% (the checkpoint-epoch
    // no-harm bound — checkpoints charge real modelled copy time at HBM
    // rate) and never shrinks or retries; under the kill every
    // surviving job still completes all its iterations, the affected
    // tenants shrink, and the worst per-job recovery latency stays
    // inside the honest rebuild cost (detection timeout + rollback +
    // backoff + a full communicator re-init, which `xccl_init_us`
    // dominates at ~90 ms). The recovery makespan, worst recovery
    // latency and checkpoint overhead are locked in the baseline.
    {
        use diomp_apps::workload::{
            canonical_workload, recovery_idle_workload, recovery_workload, run_workload,
        };
        let disarmed = run_workload(&canonical_workload(true));
        let armed_idle = run_workload(&recovery_idle_workload());
        let overhead = armed_idle.end_time.as_us() / disarmed.end_time.as_us();
        assert!(
            overhead <= 1.05,
            "recovery: an armed-but-idle recovery layer costs {overhead:.4}x (must stay ≤ 1.05x)"
        );
        assert!(
            armed_idle.jobs.iter().all(|j| j.retries == 0 && j.recovery_us == 0.0),
            "recovery: a healthy fabric must never shrink or retry"
        );
        records.push(BenchRecord {
            name: "recovery/checkpoint_overhead".into(),
            value: overhead,
            unit: "x".into(),
            entries_processed: None,
            sim_wall_ms: None,
        });

        let rec = run_workload(&recovery_workload());
        let shrunk = rec.jobs.iter().filter(|j| j.retries > 0).count();
        assert!(
            shrunk >= 4,
            "recovery: the mid-stream kill must force most tenants to shrink (saw {shrunk}/8)"
        );
        let worst = rec.jobs.iter().map(|j| j.recovery_us).fold(0.0, f64::max);
        assert!(worst > 0.0, "recovery: a shrink must report a nonzero recovery latency");
        assert!(
            worst <= 120_000.0,
            "recovery: worst per-job recovery latency {worst:.0}µs exceeds the rebuild bound"
        );
        for j in &rec.jobs {
            assert_eq!(
                j.samples, 12,
                "recovery/{}: every surviving job must complete all its iterations",
                j.name
            );
        }
        records.push(BenchRecord::with_entries(
            "recovery/8job_makespan",
            rec.makespan_us,
            "us",
            rec.entries_processed,
        ));
        records.push(BenchRecord {
            name: "recovery/worst_recovery_us".into(),
            value: worst,
            unit: "us".into(),
            entries_processed: None,
            sim_wall_ms: None,
        });
    }

    // (j) Simulator scale-out (ISSUE 10 tentpole): the coalesced
    // schedule drivers at O(10k) ranks. Hard-asserted relations: the
    // coalesced arm's virtual time is bit-identical to the
    // forced-explicit driver at every cell where the explicit arm is
    // still tractable; the 4096-rank DBT cell — the largest scale the
    // uncoalesced path can still reach — shows ≥50× fewer scheduler
    // entries; the 4096-rank ring/auto cells (whose explicit schedule
    // is ~33.5M sends, beyond any smoke budget) are bounded
    // analytically against that send count; and under optimized builds
    // every 4096-rank coalesced cell finishes inside an absolute
    // simulator wall-clock budget. Virtual time and entry counts are
    // machine-independent and locked in the baseline; `sim_wall_ms`
    // rides along in the JSON for CI history but is never
    // baseline-compared.
    {
        const SCALE_PAYLOAD: u64 = 16 << 20;
        // The uncoalesced ring/auto schedule at n ranks: 2(n−1) steps ×
        // n tokens (one chunk per token at this payload).
        let ring_sends = |n: u64| 2 * (n - 1) * n;
        let mut cell = |n: usize, eng: ScaleEngine, explicit_arm: bool| {
            let fast = scale_allreduce(n, eng, SCALE_PAYLOAD, false);
            let tag = format!("scale/allred16MB_{n}_{}", eng.tag());
            assert!(
                fast.coalesced > 0,
                "{tag}: the coalesced drivers must run (0 chunks coalesced)"
            );
            records.push(BenchRecord::with_sim_cost(
                format!("{tag}/coalesced"),
                fast.end_ns as f64 / 1000.0,
                "us",
                fast.entries,
                fast.sim_wall_ms,
            ));
            if explicit_arm {
                let ex = scale_allreduce(n, eng, SCALE_PAYLOAD, true);
                assert_eq!(
                    ex.end_ns, fast.end_ns,
                    "{tag}: coalesced virtual time must be bit-identical to the explicit driver"
                );
                assert_eq!(ex.coalesced, 0, "{tag}: the forced-explicit arm must not coalesce");
                let ratio = ex.entries as f64 / fast.entries as f64;
                assert!(
                    ratio >= 50.0,
                    "{tag}: only {ratio:.1}x fewer scheduler entries than the explicit driver \
                     (must be ≥ 50x: {} vs {})",
                    fast.entries,
                    ex.entries
                );
                records.push(BenchRecord {
                    name: format!("{tag}/entry_ratio"),
                    value: ratio,
                    unit: "x".into(),
                    entries_processed: None,
                    sim_wall_ms: None,
                });
            } else {
                // Explicit arm intractable: bound the coalesced entry
                // count against the schedule's known send count.
                let bound = ring_sends(n as u64) / 50;
                assert!(
                    fast.entries <= bound,
                    "{tag}: {} entries exceeds 1/50th of the {} uncoalesced sends",
                    fast.entries,
                    ring_sends(n as u64)
                );
            }
            fast
        };
        for eng in [ScaleEngine::Ring, ScaleEngine::Dbt, ScaleEngine::Auto] {
            cell(256, eng, true);
        }
        let big_ring = cell(4096, ScaleEngine::Ring, false);
        let big_dbt = cell(4096, ScaleEngine::Dbt, true);
        let big_auto = cell(4096, ScaleEngine::Auto, false);
        // Absolute simulator wall-clock budget for the 4096-rank sweep,
        // only meaningful on optimized builds (CI runs the gate with
        // --release). Local release runs finish each cell in 3–10 s;
        // 60 s/cell absorbs slow shared runners.
        if !cfg!(debug_assertions) {
            for (eng, run) in [("ring", &big_ring), ("dbt", &big_dbt), ("auto", &big_auto)] {
                assert!(
                    run.sim_wall_ms < 60_000.0,
                    "scale/allred16MB_4096_{eng}: simulator took {:.0} ms wall \
                     (budget 60000 ms)",
                    run.sim_wall_ms
                );
            }
        }
    }
    records
}

/// Print a before/after diff of refreshed baseline rows (`--update`).
fn print_update_diff(old: &[BenchRecord], new: &[BenchRecord]) {
    // Relative change in percent; a zero baseline moving to any nonzero
    // value is an unbounded change, not "no change".
    let pct = |old: f64, new: f64| {
        if old == 0.0 {
            if new == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (new - old) / old * 100.0
        }
    };
    let mut changed = 0usize;
    for n in new {
        match old.iter().find(|o| o.name == n.name) {
            None => {
                changed += 1;
                println!("  + {:<46} {:>12.3} {}", n.name, n.value, n.unit);
            }
            Some(o) => {
                let value_delta = pct(o.value, n.value);
                // A row gaining or losing its gated entries dimension is
                // itself a change worth surfacing.
                let entries_note = match (o.entries_processed, n.entries_processed) {
                    (Some(oe), Some(ne)) => {
                        let d = pct(oe as f64, ne as f64);
                        (d.abs() > 0.1).then(|| format!(", entries {d:+.1}%"))
                    }
                    (None, Some(ne)) => Some(format!(", entries now tracked ({ne})")),
                    (Some(oe), None) => Some(format!(", entries no longer tracked (was {oe})")),
                    (None, None) => None,
                };
                if value_delta.abs() > 0.1 || entries_note.is_some() {
                    changed += 1;
                    println!(
                        "  ~ {:<46} {:>12.3} -> {:>12.3} {} ({:+.1}%{})",
                        n.name,
                        o.value,
                        n.value,
                        n.unit,
                        value_delta,
                        entries_note.unwrap_or_default()
                    );
                }
            }
        }
    }
    for o in old {
        if !new.iter().any(|n| n.name == o.name) {
            changed += 1;
            println!("  - {:<46} (row removed)", o.name);
        }
    }
    if changed == 0 {
        println!("  (no rows changed beyond 0.1%)");
    }
}

/// True when `current` regressed vs `base` beyond the tolerance, for a
/// metric where `higher_better` says which direction is good.
fn regressed(base: f64, current: f64, higher_better: bool) -> bool {
    if higher_better {
        current < base * (1.0 - TOLERANCE)
    } else {
        current > base * (1.0 + TOLERANCE)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: --baseline requires a path argument");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "bench/baseline.json".to_string());
    let update = args.iter().any(|a| a == "--update");

    let current = measure();
    println!("{:>46} {:>12} {:>8} {:>12}", "benchmark", "value", "unit", "entries");
    for r in &current {
        println!(
            "{:>46} {:>12.3} {:>8} {:>12}",
            r.name,
            r.value,
            r.unit,
            r.entries_processed.map_or("-".to_string(), |e| e.to_string())
        );
    }
    write_if_requested(json_path.as_deref(), &current);
    if update {
        // Before/after diff of what the refresh changes, so intentional
        // performance shifts are visible in the commit that lands them.
        match std::fs::read_to_string(&baseline_path).map(|t| parse_json(&t)) {
            Ok(Ok(old)) => {
                println!("refreshing {baseline_path}:");
                print_update_diff(&old, &current);
            }
            _ => println!("no readable previous baseline at {baseline_path}; writing fresh"),
        }
        write_json(std::path::Path::new(&baseline_path), &current).expect("write baseline json");
        println!("updated baseline {baseline_path}");
        return;
    }

    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {baseline_path}: {e}");
        eprintln!("hint: regenerate with `bench_gate --update` and commit it");
        std::process::exit(2);
    });
    let baseline = parse_json(&text).unwrap_or_else(|e| {
        eprintln!("error: malformed baseline {baseline_path}: {e}");
        std::process::exit(2);
    });

    let mut failures = Vec::new();
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.name == b.name) else {
            failures.push(format!("{}: present in baseline but no longer measured", b.name));
            continue;
        };
        let higher_better = b.unit == "GB/s" || b.unit == "x";
        if regressed(b.value, c.value, higher_better) {
            failures.push(format!(
                "{}: {} {} vs baseline {} (>{:.0}% worse)",
                b.name,
                c.value,
                c.unit,
                b.value,
                TOLERANCE * 100.0
            ));
        }
        if let (Some(be), Some(ce)) = (b.entries_processed, c.entries_processed) {
            if regressed(be as f64, ce as f64, false) {
                failures.push(format!(
                    "{}: {} scheduler entries vs baseline {} (>{:.0}% more)",
                    b.name,
                    ce,
                    be,
                    TOLERANCE * 100.0
                ));
            }
        }
    }
    if failures.is_empty() {
        println!(
            "perf gate OK: {} benchmarks within {:.0}% of {baseline_path}",
            baseline.len(),
            TOLERANCE * 100.0
        );
    } else {
        eprintln!("perf gate FAILED ({} regressions):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("(if intentional, regenerate with `bench_gate --update` and commit)");
        std::process::exit(1);
    }
}
