//! CI perf-regression gate.
//!
//! Re-runs a deterministic subset of the fig4 bandwidth measurements and
//! the ISSUE 1/2 ablation measurements (chunked-pipeline put, batched
//! fence, ring vs profile collectives), emits them as `BENCH_*.json`,
//! and compares against the committed baseline. Both the simulated
//! metric (GB/s, µs) and the scheduler-entry count (`entries_processed`,
//! the wall-clock cost the batched wait-groups optimise) are gated: a
//! regression beyond 10% in either fails the build. Everything measured
//! is a virtual-time quantity, so the baseline is machine-independent.
//!
//! Usage:
//!   bench_gate [--json PATH] [--baseline PATH] [--update]
//!
//! `--update` rewrites the baseline file with the current measurements
//! (run after an intentional performance change and commit the result).

use diomp_apps::micro::{diomp_collective_full, diomp_p2p_full, CollKind, RmaOp};
use diomp_apps::minimod::{self, HaloStyle, MinimodConfig};
use diomp_bench::report::{
    json_path_from_args, parse_json, write_if_requested, write_json, BenchRecord,
};
use diomp_bench::size_label;
use diomp_core::{CollEngine, Conduit, DiompConfig, DiompRuntime, PipelineConfig};
use diomp_device::DataMode;
use diomp_sim::{ClusterSpec, PlatformSpec};

/// Allowed relative slack before a change counts as a regression.
const TOLERANCE: f64 = 0.10;

fn measure() -> Vec<BenchRecord> {
    let mut records = Vec::new();

    // Fig. 4 put bandwidth, monolithic vs chunk-pipelined, all platforms.
    let sizes = [4u64 << 20, 64 << 20];
    for (tag, platform) in [
        ("a", PlatformSpec::platform_a()),
        ("b", PlatformSpec::platform_b()),
        ("c", PlatformSpec::platform_c()),
    ] {
        for (suffix, pipe) in
            [("", PipelineConfig::disabled()), ("_pipelined", PipelineConfig::enabled())]
        {
            let rows = diomp_p2p_full(&platform, Conduit::GasnetEx, RmaOp::Put, &sizes, true, pipe);
            for (s, gbps, entries) in rows {
                records.push(BenchRecord::with_entries(
                    format!("fig4{tag}/diomp_put{suffix}_{}", size_label(s)),
                    gbps,
                    "GB/s",
                    entries,
                ));
            }
        }
    }

    // Batched-fence ablation (ISSUE 1): virtual time and entry count of a
    // 1000-put fence with wait_all batching on.
    let fence_cfg = DiompConfig::new(ClusterSpec {
        platform: PlatformSpec::platform_a(),
        nodes: 2,
        gpus_per_node: 1,
    })
    .with_mode(DataMode::CostOnly)
    .with_heap(64 << 20);
    let rep = DiompRuntime::run(fence_cfg, |ctx, rank| {
        let ptr = rank.alloc_sym(ctx, 256 << 10).unwrap();
        rank.barrier(ctx);
        if rank.rank == 0 {
            for _ in 0..1000 {
                rank.put(ctx, 1, ptr, 0, ptr, 0, 256 << 10).unwrap();
            }
            rank.fence(ctx);
        }
        rank.barrier(ctx);
    })
    .unwrap();
    records.push(BenchRecord::with_entries(
        "ablation/fence1000_batched",
        rep.end_time.as_us(),
        "us",
        rep.entries_processed,
    ));

    // Notified halo exchange (ISSUE 3): per-step time and scheduler
    // entries of the minimod halo styles at 8 ranks on the InfiniBand
    // platform. Gates both the notification machinery's virtual-time
    // cost and the entry saving of the barrier-free waitsome drain.
    for (name, halo) in
        [("ordered", HaloStyle::NotifyOrdered), ("waitsome", HaloStyle::NotifyWaitsome)]
    {
        let halo_cfg = MinimodConfig {
            platform: PlatformSpec::platform_c(),
            gpus: 8,
            nx: 240,
            ny: 240,
            nz: 240,
            steps: 10,
            mode: DataMode::CostOnly,
            verify: false,
            halo,
        };
        let r = minimod::diomp::run(&halo_cfg);
        records.push(BenchRecord::with_entries(
            format!("fig_halo/{name}_us_per_step_8gpus"),
            r.elapsed.as_us() / halo_cfg.steps as f64,
            "us",
            r.entries,
        ));
    }

    // Ring-collective engine (ISSUE 2): emergent vs profiled allreduce on
    // 64 A100s; the entry count gates the progress loop's scheduler cost
    // (what wait_any_batched keeps bounded).
    for (name, engine) in [("ring", CollEngine::default()), ("profile", CollEngine::Profile)] {
        let rows = diomp_collective_full(
            &PlatformSpec::platform_a(),
            16,
            CollKind::AllReduce,
            &[1 << 20, 64 << 20],
            engine,
        );
        for (s, us, entries) in rows {
            records.push(BenchRecord::with_entries(
                format!("fig6/allred_A_{}/{name}", size_label(s)),
                us,
                "us",
                entries,
            ));
        }
    }
    records
}

/// True when `current` regressed vs `base` beyond the tolerance, for a
/// metric where `higher_better` says which direction is good.
fn regressed(base: f64, current: f64, higher_better: bool) -> bool {
    if higher_better {
        current < base * (1.0 - TOLERANCE)
    } else {
        current > base * (1.0 + TOLERANCE)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: --baseline requires a path argument");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "bench/baseline.json".to_string());
    let update = args.iter().any(|a| a == "--update");

    let current = measure();
    println!("{:>46} {:>12} {:>8} {:>12}", "benchmark", "value", "unit", "entries");
    for r in &current {
        println!(
            "{:>46} {:>12.3} {:>8} {:>12}",
            r.name,
            r.value,
            r.unit,
            r.entries_processed.map_or("-".to_string(), |e| e.to_string())
        );
    }
    write_if_requested(json_path.as_deref(), &current);
    if update {
        write_json(std::path::Path::new(&baseline_path), &current).expect("write baseline json");
        println!("updated baseline {baseline_path}");
        return;
    }

    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {baseline_path}: {e}");
        eprintln!("hint: regenerate with `bench_gate --update` and commit it");
        std::process::exit(2);
    });
    let baseline = parse_json(&text).unwrap_or_else(|e| {
        eprintln!("error: malformed baseline {baseline_path}: {e}");
        std::process::exit(2);
    });

    let mut failures = Vec::new();
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.name == b.name) else {
            failures.push(format!("{}: present in baseline but no longer measured", b.name));
            continue;
        };
        let higher_better = b.unit == "GB/s" || b.unit == "x";
        if regressed(b.value, c.value, higher_better) {
            failures.push(format!(
                "{}: {} {} vs baseline {} (>{:.0}% worse)",
                b.name,
                c.value,
                c.unit,
                b.value,
                TOLERANCE * 100.0
            ));
        }
        if let (Some(be), Some(ce)) = (b.entries_processed, c.entries_processed) {
            if regressed(be as f64, ce as f64, false) {
                failures.push(format!(
                    "{}: {} scheduler entries vs baseline {} (>{:.0}% more)",
                    b.name,
                    ce,
                    be,
                    TOLERANCE * 100.0
                ));
            }
        }
    }
    if failures.is_empty() {
        println!(
            "perf gate OK: {} benchmarks within {:.0}% of {baseline_path}",
            baseline.len(),
            TOLERANCE * 100.0
        );
    } else {
        eprintln!("perf gate FAILED ({} regressions):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("(if intentional, regenerate with `bench_gate --update` and commit)");
        std::process::exit(1);
    }
}
