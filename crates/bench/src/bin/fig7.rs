//! Fig. 7 — ring matmul strong scaling (N = 30240): DiOMP vs MPI+OpenMP
//! speedup over the single-node baseline on platforms A and B. The paper
//! observes superlinear scaling (shrinking per-rank working sets).

use diomp_apps::cannon::{self, CannonConfig};
use diomp_bench::paper;
use diomp_bench::report::{json_path_from_args, BenchRecord};
use diomp_device::DataMode;
use diomp_sim::PlatformSpec;

type Speedups = Vec<(usize, f64)>;

fn series(platform: &PlatformSpec, gpus: &[usize]) -> (Speedups, Speedups) {
    let cfg = |g: usize| CannonConfig {
        platform: platform.clone(),
        gpus: g,
        n: paper::FIG7_N,
        mode: DataMode::CostOnly,
        verify: false,
    };
    let d = cannon::speedup_series(|g| cannon::diomp::run(&cfg(g)), gpus, None);
    let m = cannon::speedup_series(|g| cannon::mpi::run(&cfg(g)), gpus, None);
    (d, m)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = json_path_from_args(&args);
    let mut records: Vec<BenchRecord> = Vec::new();
    for (tag, name, platform, gpus, peaks) in [
        (
            "a",
            "(a) Slingshot 11 + A100",
            PlatformSpec::platform_a(),
            &paper::FIG7_GPUS_A[..],
            paper::FIG7_PEAK_A,
        ),
        (
            "b",
            "(b) Slingshot 11 + MI250X",
            PlatformSpec::platform_b(),
            &paper::FIG7_GPUS_B[..],
            paper::FIG7_PEAK_B,
        ),
    ] {
        println!("\n== Fig. 7{name}: matmul speedup vs {}-GPU baseline ==", gpus[0]);
        let (d, m) = series(&platform, gpus);
        println!("{:>6} {:>10} {:>10}", "GPUs", "DiOMP", "MPI");
        for (dd, mm) in d.iter().zip(&m) {
            println!("{:>6} {:>10.2} {:>10.2}", dd.0, dd.1, mm.1);
            for (series_tag, v) in [("diomp", dd.1), ("mpi", mm.1)] {
                records.push(BenchRecord {
                    name: format!("fig7{tag}/{series_tag}_speedup_{}gpus", dd.0),
                    value: v,
                    unit: "x".into(),
                    entries_processed: None,
                    sim_wall_ms: None,
                });
            }
        }
        println!(
            "peak: DiOMP {:.1} (paper ≈{:.1}), MPI {:.1} (paper ≈{:.1}); superlinear = speedup > {}",
            d.last().unwrap().1,
            peaks.0,
            m.last().unwrap().1,
            peaks.1,
            gpus.last().unwrap() / gpus[0],
        );
    }
    diomp_bench::report::write_if_requested(json_path.as_deref(), &records);
}
