//! Calibration probe (maintenance tool): prints raw MPI and DiOMP
//! collective times per Fig. 6 cell so the XCCL achieved-bandwidth curves
//! in `diomp-sim::platform` can be refitted after MPI-side changes.
//!
//! The DiOMP column runs the *profile* engine on purpose: refitting the
//! `CollProfile` curves from ring-engine output would be circular (the
//! ring's link efficiency is itself derived from those curves). The
//! `ring_us` column is printed alongside for cross-checking the emergent
//! protocol, never for fitting.

use diomp_apps::micro::{
    diomp_collective, diomp_collective_profiled, fig6_nodes, mpi_collective, CollKind,
};
use diomp_bench::paper;
use diomp_sim::PlatformSpec;

fn main() {
    for (pname, platform) in [
        ("A", PlatformSpec::platform_a()),
        ("B", PlatformSpec::platform_b()),
        ("C", PlatformSpec::platform_c()),
    ] {
        let nodes = fig6_nodes(&platform);
        for (op, opname, sizes) in [
            (CollKind::Broadcast, "bcast", &paper::FIG6_BCAST_SIZES[..]),
            (CollKind::AllReduce, "allred", &paper::FIG6_ALLRED_SIZES[..]),
        ] {
            let mpi = mpi_collective(&platform, nodes, op, sizes);
            let diomp = diomp_collective_profiled(&platform, nodes, op, sizes);
            let ring = diomp_collective(&platform, nodes, op, sizes);
            for ((&(s, m), &(_, d)), &(_, r)) in mpi.iter().zip(&diomp).zip(&ring) {
                println!("{pname} {opname} {s} mpi_us={m:.2} diomp_us={d:.2} ring_us={r:.2}");
            }
        }
    }
}
