//! Calibration probe (maintenance tool): prints raw MPI and DiOMP
//! collective times per Fig. 6 cell so the XCCL achieved-bandwidth curves
//! in `diomp-sim::platform` can be refitted after MPI-side changes.

use diomp_apps::micro::{diomp_collective, fig6_nodes, mpi_collective, CollKind};
use diomp_bench::paper;
use diomp_sim::PlatformSpec;

fn main() {
    for (pname, platform) in [
        ("A", PlatformSpec::platform_a()),
        ("B", PlatformSpec::platform_b()),
        ("C", PlatformSpec::platform_c()),
    ] {
        let nodes = fig6_nodes(&platform);
        for (op, opname, sizes) in [
            (CollKind::Broadcast, "bcast", &paper::FIG6_BCAST_SIZES[..]),
            (CollKind::AllReduce, "allred", &paper::FIG6_ALLRED_SIZES[..]),
        ] {
            let mpi = mpi_collective(&platform, nodes, op, sizes);
            let diomp = diomp_collective(&platform, nodes, op, sizes);
            for (&(s, m), &(_, d)) in mpi.iter().zip(&diomp) {
                println!("{pname} {opname} {s} mpi_us={m:.2} diomp_us={d:.2}");
            }
        }
    }
}
