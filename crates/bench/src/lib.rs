//! # diomp-bench — the figure-regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (run with
//! `cargo run -p diomp-bench --release --bin figN`), plus Criterion
//! micro-benchmarks and the DESIGN.md ablations under `benches/`.
//!
//! The [`paper`] module embeds the published reference values so every
//! binary prints *paper vs. measured* side by side; `EXPERIMENTS.md`
//! records the comparison.

#![warn(missing_docs)]

/// Reference values transcribed from the paper's figures.
pub mod paper {
    /// Fig. 6 message sizes for Broadcast (bytes): 32 KB … 64 MB.
    pub const FIG6_BCAST_SIZES: [u64; 12] = [
        32 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
        32 << 20,
        64 << 20,
    ];

    /// Fig. 6 message sizes for AllReduce (bytes): 128 KB … 64 MB.
    pub const FIG6_ALLRED_SIZES: [u64; 10] = [
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
        32 << 20,
        64 << 20,
    ];

    /// Fig. 6a published `log10(MPI/DiOMP)` — Broadcast, Slingshot-11 + A100.
    pub const FIG6_BCAST_A: [f64; 12] =
        [-0.07, -0.15, -0.10, -0.02, -0.41, -0.26, -0.11, 0.01, 0.10, 0.18, 0.22, 0.57];
    /// Fig. 6a — Broadcast, NDR IB + GH200.
    pub const FIG6_BCAST_C: [f64; 12] =
        [-0.14, -0.26, -0.23, -0.05, 0.09, 0.24, 0.34, 0.42, 0.47, 0.53, 0.45, 0.57];
    /// Fig. 6a — Broadcast, Slingshot-11 + MI250X.
    pub const FIG6_BCAST_B: [f64; 12] =
        [0.16, 0.34, 0.45, 0.34, 0.24, 0.18, 0.18, 0.15, 0.12, 0.03, 0.05, 0.00];

    /// Fig. 6b — AllReduce(sum), Slingshot-11 + A100.
    pub const FIG6_ALLRED_A: [f64; 10] =
        [-0.15, 0.03, 0.15, 0.34, 0.40, 0.43, 0.64, 0.85, 1.02, 1.10];
    /// Fig. 6b — AllReduce, NDR IB + GH200.
    pub const FIG6_ALLRED_C: [f64; 10] =
        [-0.27, -0.27, -0.18, 0.12, 0.22, 0.32, 0.33, 0.36, 0.29, 0.30];
    /// Fig. 6b — AllReduce, Slingshot-11 + MI250X.
    pub const FIG6_ALLRED_B: [f64; 10] =
        [-0.53, -0.39, -0.40, -0.33, -0.38, -0.31, -0.28, -0.31, -0.05, -0.00];

    /// Fig. 3 message sizes (bytes): 4 B … 8 KB.
    pub const FIG3_SIZES: [u64; 12] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

    /// Fig. 4 message sizes (bytes): 1/64 MB … 1 GB.
    pub const FIG4_SIZES: [u64; 9] = [
        1 << 14, // 1/64 MB
        1 << 16, // 1/16 MB
        1 << 18, // 1/4 MB
        1 << 20,
        4 << 20,
        16 << 20,
        64 << 20,
        256 << 20,
        1 << 30,
    ];

    /// Fig. 5 message sizes (bytes): 32 B … 128 KB.
    pub const FIG5_SIZES: [u64; 7] =
        [32, 128, 512, 2 << 10, 8 << 10, 32 << 10, 128 << 10];

    /// Fig. 7 GPU counts, platform A (paper: 4–40 A100s).
    pub const FIG7_GPUS_A: [usize; 10] = [4, 8, 12, 16, 20, 24, 28, 32, 36, 40];
    /// Fig. 7 GPU counts, platform B (paper: 8–64 GCDs).
    pub const FIG7_GPUS_B: [usize; 8] = [8, 16, 24, 32, 40, 48, 56, 64];
    /// Fig. 7 matrix dimension.
    pub const FIG7_N: usize = 30240;
    /// Fig. 7 approximate peak speedups read off the plots (DiOMP, MPI).
    pub const FIG7_PEAK_A: (f64, f64) = (20.0, 17.5);
    /// Fig. 7 peak speedups on platform B.
    pub const FIG7_PEAK_B: (f64, f64) = (25.0, 21.0);

    /// Fig. 8 GPU counts, platform A (4–32).
    pub const FIG8_GPUS_A: [usize; 8] = [4, 8, 12, 16, 20, 24, 28, 32];
    /// Fig. 8 GPU counts, platform B (8–64).
    pub const FIG8_GPUS_B: [usize; 8] = [8, 16, 24, 32, 40, 48, 56, 64];
    /// Fig. 8 grid edge (1200³).
    pub const FIG8_GRID: usize = 1200;
    /// Paper step count (the harness simulates fewer steps and reports
    /// speedups, which are step-count invariant in steady state).
    pub const FIG8_STEPS: usize = 1000;
    /// Fig. 8 approximate peak speedups read off the plots (DiOMP, MPI).
    pub const FIG8_PEAK_A: (f64, f64) = (4.8, 4.2);
    /// Fig. 8 peak speedups on platform B.
    pub const FIG8_PEAK_B: (f64, f64) = (4.6, 4.0);
}

/// Format a byte size the way the paper labels its axes.
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Print a two-series table: `size | a | b`.
pub fn print_two_series(
    title: &str,
    ah: &str,
    bh: &str,
    a: &[(u64, f64)],
    b: &[(u64, f64)],
    unit: &str,
) {
    println!("\n== {title} ==");
    println!("{:>10} {:>14} {:>14}", "size", ah, bh);
    for (&(s, av), &(_, bv)) in a.iter().zip(b) {
        println!("{:>10} {av:>13.2}{unit} {bv:>13.2}{unit}", size_label(s));
    }
}

/// Print measured vs paper rows for a log-ratio series.
pub fn print_ratio_row(platform: &str, sizes: &[u64], measured: &[(u64, f64)], paper: &[f64]) {
    println!("\n-- {platform} --");
    println!("{:>10} {:>10} {:>10} {:>8}", "size", "measured", "paper", "delta");
    for ((&s, &(s2, m)), &p) in sizes.iter().zip(measured).zip(paper) {
        assert_eq!(s, s2);
        println!("{:>10} {m:>10.2} {p:>10.2} {:>8.2}", size_label(s), m - p);
    }
}

/// Mean absolute error between a measured log-ratio series and the paper.
pub fn mae(measured: &[(u64, f64)], paper: &[f64]) -> f64 {
    let n = measured.len() as f64;
    measured.iter().zip(paper).map(|(&(_, m), &p)| (m - p).abs()).sum::<f64>() / n
}

/// Fraction of cells whose winner (sign) matches the paper.
/// Cells with |paper| < 0.05 count as matches when |measured| < 0.15
/// (both "roughly tied").
pub fn sign_agreement(measured: &[(u64, f64)], paper: &[f64]) -> f64 {
    let n = measured.len() as f64;
    let hits = measured
        .iter()
        .zip(paper)
        .filter(|(&(_, m), &p)| {
            if p.abs() < 0.05 {
                m.abs() < 0.15
            } else {
                m.signum() == p.signum()
            }
        })
        .count();
    hits as f64 / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_axis_style() {
        assert_eq!(size_label(4), "4B");
        assert_eq!(size_label(32 << 10), "32KB");
        assert_eq!(size_label(64 << 20), "64MB");
    }

    #[test]
    fn sign_agreement_counts_ties_loosely() {
        let measured = vec![(1u64, 0.10), (2, -0.3), (3, 0.4)];
        let paper = [0.01, -0.5, 0.3];
        assert!((sign_agreement(&measured, &paper) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_is_mean_of_absolute_deltas() {
        let measured = vec![(1u64, 0.2), (2, -0.2)];
        let paper = [0.0, 0.0];
        assert!((mae(&measured, &paper) - 0.2).abs() < 1e-12);
    }
}
