//! # diomp-bench — the figure-regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (run with
//! `cargo run -p diomp-bench --release --bin figN`), plus Criterion
//! micro-benchmarks and the DESIGN.md ablations under `benches/`.
//!
//! The [`paper`] module embeds the published reference values so every
//! binary prints *paper vs. measured* side by side; `EXPERIMENTS.md`
//! records the comparison.

#![warn(missing_docs)]

/// Reference values transcribed from the paper's figures.
pub mod paper {
    /// Fig. 6 message sizes for Broadcast (bytes): 32 KB … 64 MB.
    pub const FIG6_BCAST_SIZES: [u64; 12] = [
        32 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
        32 << 20,
        64 << 20,
    ];

    /// Fig. 6 message sizes for AllReduce (bytes): 128 KB … 64 MB.
    pub const FIG6_ALLRED_SIZES: [u64; 10] = [
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
        32 << 20,
        64 << 20,
    ];

    /// Fig. 6a published `log10(MPI/DiOMP)` — Broadcast, Slingshot-11 + A100.
    pub const FIG6_BCAST_A: [f64; 12] =
        [-0.07, -0.15, -0.10, -0.02, -0.41, -0.26, -0.11, 0.01, 0.10, 0.18, 0.22, 0.57];
    /// Fig. 6a — Broadcast, NDR IB + GH200.
    pub const FIG6_BCAST_C: [f64; 12] =
        [-0.14, -0.26, -0.23, -0.05, 0.09, 0.24, 0.34, 0.42, 0.47, 0.53, 0.45, 0.57];
    /// Fig. 6a — Broadcast, Slingshot-11 + MI250X.
    pub const FIG6_BCAST_B: [f64; 12] =
        [0.16, 0.34, 0.45, 0.34, 0.24, 0.18, 0.18, 0.15, 0.12, 0.03, 0.05, 0.00];

    /// Fig. 6b — AllReduce(sum), Slingshot-11 + A100.
    pub const FIG6_ALLRED_A: [f64; 10] =
        [-0.15, 0.03, 0.15, 0.34, 0.40, 0.43, 0.64, 0.85, 1.02, 1.10];
    /// Fig. 6b — AllReduce, NDR IB + GH200.
    pub const FIG6_ALLRED_C: [f64; 10] =
        [-0.27, -0.27, -0.18, 0.12, 0.22, 0.32, 0.33, 0.36, 0.29, 0.30];
    /// Fig. 6b — AllReduce, Slingshot-11 + MI250X.
    pub const FIG6_ALLRED_B: [f64; 10] =
        [-0.53, -0.39, -0.40, -0.33, -0.38, -0.31, -0.28, -0.31, -0.05, -0.00];

    /// Fig. 3 message sizes (bytes): 4 B … 8 KB.
    pub const FIG3_SIZES: [u64; 12] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

    /// Fig. 4 message sizes (bytes): 1/64 MB … 1 GB.
    pub const FIG4_SIZES: [u64; 9] = [
        1 << 14, // 1/64 MB
        1 << 16, // 1/16 MB
        1 << 18, // 1/4 MB
        1 << 20,
        4 << 20,
        16 << 20,
        64 << 20,
        256 << 20,
        1 << 30,
    ];

    /// Fig. 5 message sizes (bytes): 32 B … 128 KB.
    pub const FIG5_SIZES: [u64; 7] = [32, 128, 512, 2 << 10, 8 << 10, 32 << 10, 128 << 10];

    /// Fig. 7 GPU counts, platform A (paper: 4–40 A100s).
    pub const FIG7_GPUS_A: [usize; 10] = [4, 8, 12, 16, 20, 24, 28, 32, 36, 40];
    /// Fig. 7 GPU counts, platform B (paper: 8–64 GCDs).
    pub const FIG7_GPUS_B: [usize; 8] = [8, 16, 24, 32, 40, 48, 56, 64];
    /// Fig. 7 matrix dimension.
    pub const FIG7_N: usize = 30240;
    /// Fig. 7 approximate peak speedups read off the plots (DiOMP, MPI).
    pub const FIG7_PEAK_A: (f64, f64) = (20.0, 17.5);
    /// Fig. 7 peak speedups on platform B.
    pub const FIG7_PEAK_B: (f64, f64) = (25.0, 21.0);

    /// Fig. 8 GPU counts, platform A (4–32).
    pub const FIG8_GPUS_A: [usize; 8] = [4, 8, 12, 16, 20, 24, 28, 32];
    /// Fig. 8 GPU counts, platform B (8–64).
    pub const FIG8_GPUS_B: [usize; 8] = [8, 16, 24, 32, 40, 48, 56, 64];
    /// Fig. 8 grid edge (1200³).
    pub const FIG8_GRID: usize = 1200;
    /// Paper step count (the harness simulates fewer steps and reports
    /// speedups, which are step-count invariant in steady state).
    pub const FIG8_STEPS: usize = 1000;
    /// Fig. 8 approximate peak speedups read off the plots (DiOMP, MPI).
    pub const FIG8_PEAK_A: (f64, f64) = (4.8, 4.2);
    /// Fig. 8 peak speedups on platform B.
    pub const FIG8_PEAK_B: (f64, f64) = (4.6, 4.0);
}

/// Machine-readable benchmark emission (`BENCH_*.json`).
///
/// Every record carries the virtual-time metric *and* the backing
/// simulation's scheduler-entry count, so `BENCH_*.json` history tracks
/// wall-clock scheduler cost (what the batched `wait_all` fence
/// optimises) alongside simulated performance.
pub mod report {
    use std::io::Write;

    /// One benchmark result row.
    #[derive(Debug, Clone, PartialEq)]
    pub struct BenchRecord {
        /// Benchmark identifier, e.g. `fig4a/diomp_put_16mb`.
        pub name: String,
        /// The measured metric value.
        pub value: f64,
        /// Metric unit, e.g. `GB/s` or `us`.
        pub unit: String,
        /// `SimReport::entries_processed` of the backing run, when known.
        pub entries_processed: Option<u64>,
        /// `SimReport::sim_wall_ms` of the backing run, when known: the
        /// simulator's *own* wall-clock cost in milliseconds, tracked
        /// next to the entry count so the scale sweep can gate both the
        /// algorithmic metric (entries) and its realised cost (wall).
        pub sim_wall_ms: Option<f64>,
    }

    impl BenchRecord {
        /// Row with a known scheduler-entry count.
        pub fn with_entries(
            name: impl Into<String>,
            value: f64,
            unit: impl Into<String>,
            entries: u64,
        ) -> Self {
            BenchRecord {
                name: name.into(),
                value,
                unit: unit.into(),
                entries_processed: Some(entries),
                sim_wall_ms: None,
            }
        }

        /// Row carrying the backing run's full scheduler cost: entry
        /// count *and* simulator wall-clock.
        pub fn with_sim_cost(
            name: impl Into<String>,
            value: f64,
            unit: impl Into<String>,
            entries: u64,
            sim_wall_ms: f64,
        ) -> Self {
            BenchRecord {
                name: name.into(),
                value,
                unit: unit.into(),
                entries_processed: Some(entries),
                sim_wall_ms: Some(sim_wall_ms),
            }
        }

        fn to_json(&self) -> String {
            let mut s = String::from("{");
            s.push_str(&format!("\"name\":\"{}\",", escape(&self.name)));
            s.push_str(&format!("\"value\":{},", fmt_f64(self.value)));
            s.push_str(&format!("\"unit\":\"{}\"", escape(&self.unit)));
            if let Some(e) = self.entries_processed {
                s.push_str(&format!(",\"entries_processed\":{e}"));
            }
            if let Some(w) = self.sim_wall_ms {
                s.push_str(&format!(",\"sim_wall_ms\":{}", fmt_f64(w)));
            }
            s.push('}');
            s
        }
    }

    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }

    fn fmt_f64(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Serialise records as a JSON array.
    pub fn to_json(records: &[BenchRecord]) -> String {
        let rows: Vec<String> = records.iter().map(BenchRecord::to_json).collect();
        format!("[{}]", rows.join(","))
    }

    /// Write records to a `BENCH_*.json` file.
    pub fn write_json(path: &std::path::Path, records: &[BenchRecord]) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(to_json(records).as_bytes())?;
        f.write_all(b"\n")
    }

    /// Parse the value of a `--json PATH` argument from an argv slice.
    /// Exits with status 2 when `--json` is present without a path —
    /// shared by every fig binary so the CLI behaves identically.
    pub fn json_path_from_args(args: &[String]) -> Option<std::path::PathBuf> {
        args.iter().position(|a| a == "--json").map(|i| {
            args.get(i + 1).map(std::path::PathBuf::from).unwrap_or_else(|| {
                eprintln!("error: --json requires a path argument");
                std::process::exit(2);
            })
        })
    }

    /// Shared epilogue of every fig binary: when `--json PATH` was given,
    /// write the records there and report the count.
    pub fn write_if_requested(json_path: Option<&std::path::Path>, records: &[BenchRecord]) {
        if let Some(path) = json_path {
            write_json(path, records).expect("write BENCH json");
            println!("wrote {} records to {}", records.len(), path.display());
        }
    }

    /// Parse a `BENCH_*.json` array produced by [`to_json`] back into
    /// records (the regression gate reads the committed baseline with
    /// this; the emitter and parser are round-trip tested together).
    /// Returns an error string describing the first malformed row.
    pub fn parse_json(text: &str) -> Result<Vec<BenchRecord>, String> {
        let body = text.trim();
        let body = body
            .strip_prefix('[')
            .and_then(|b| b.strip_suffix(']'))
            .ok_or("expected a JSON array")?;
        let mut out = Vec::new();
        for row in split_objects(body)? {
            let name = field_str(&row, "name").ok_or_else(|| format!("row missing name: {row}"))?;
            let unit = field_str(&row, "unit").ok_or_else(|| format!("row missing unit: {row}"))?;
            let raw_value =
                field_raw(&row, "value").ok_or_else(|| format!("row missing value: {row}"))?;
            // The emitter writes non-finite values as `null` (fmt_f64);
            // read them back as NaN so one bad metric cannot poison the
            // whole baseline parse.
            let value = if raw_value.trim() == "null" {
                f64::NAN
            } else {
                // Trim: pretty-printed JSON (`"value": 3.18`) is valid and
                // f64's FromStr rejects surrounding whitespace.
                raw_value.trim().parse::<f64>().map_err(|e| format!("bad value in {row}: {e}"))?
            };
            let entries_processed = match field_raw(&row, "entries_processed") {
                Some(raw) => Some(
                    raw.trim().parse::<u64>().map_err(|e| format!("bad entries in {row}: {e}"))?,
                ),
                None => None,
            };
            let sim_wall_ms = match field_raw(&row, "sim_wall_ms") {
                Some(raw) if raw.trim() == "null" => Some(f64::NAN),
                Some(raw) => {
                    Some(raw.trim().parse::<f64>().map_err(|e| format!("bad wall in {row}: {e}"))?)
                }
                None => None,
            };
            out.push(BenchRecord { name, value, unit, entries_processed, sim_wall_ms });
        }
        Ok(out)
    }

    /// Split `{..},{..}` (no nested objects in our format) into rows.
    fn split_objects(body: &str) -> Result<Vec<String>, String> {
        let mut rows = Vec::new();
        let mut depth = 0usize;
        let mut in_str = false;
        let mut esc = false;
        let mut cur = String::new();
        for c in body.chars() {
            if esc {
                cur.push(c);
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => {
                    cur.push(c);
                    esc = true;
                }
                '"' => {
                    cur.push(c);
                    in_str = !in_str;
                }
                '{' if !in_str => {
                    depth += 1;
                    if depth == 1 {
                        cur.clear();
                    } else {
                        cur.push(c);
                    }
                }
                '}' if !in_str => {
                    depth = depth.checked_sub(1).ok_or("unbalanced braces")?;
                    if depth == 0 {
                        rows.push(cur.clone());
                    } else {
                        cur.push(c);
                    }
                }
                _ => {
                    if depth > 0 {
                        cur.push(c);
                    }
                }
            }
        }
        if depth != 0 || in_str {
            return Err("truncated JSON".to_string());
        }
        Ok(rows)
    }

    /// Raw (unquoted) text of `"key":<raw>` up to the next top-level comma.
    fn field_raw(row: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\":");
        let start = row.find(&pat)? + pat.len();
        let rest = &row[start..];
        let mut end = rest.len();
        let mut in_str = false;
        let mut esc = false;
        for (i, c) in rest.char_indices() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                ',' if !in_str => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        Some(rest[..end].to_string())
    }

    /// Decoded string value of `"key":"..."`.
    fn field_str(row: &str, key: &str) -> Option<String> {
        let raw = field_raw(row, key)?;
        let raw = raw.trim();
        let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
        let mut out = String::new();
        let mut esc = false;
        let mut it = inner.chars();
        while let Some(c) = it.next() {
            if esc {
                match c {
                    'n' => out.push('\n'),
                    'u' => {
                        let code: String = (&mut it).take(4).collect();
                        let v = u32::from_str_radix(&code, 16).ok()?;
                        out.push(char::from_u32(v)?);
                    }
                    other => out.push(other),
                }
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else {
                out.push(c);
            }
        }
        Some(out)
    }
}

/// Format a byte size the way the paper labels its axes.
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Print a two-series table: `size | a | b`.
pub fn print_two_series(
    title: &str,
    ah: &str,
    bh: &str,
    a: &[(u64, f64)],
    b: &[(u64, f64)],
    unit: &str,
) {
    println!("\n== {title} ==");
    println!("{:>10} {:>14} {:>14}", "size", ah, bh);
    for (&(s, av), &(_, bv)) in a.iter().zip(b) {
        println!("{:>10} {av:>13.2}{unit} {bv:>13.2}{unit}", size_label(s));
    }
}

/// Print measured vs paper rows for a log-ratio series.
pub fn print_ratio_row(platform: &str, sizes: &[u64], measured: &[(u64, f64)], paper: &[f64]) {
    println!("\n-- {platform} --");
    println!("{:>10} {:>10} {:>10} {:>8}", "size", "measured", "paper", "delta");
    for ((&s, &(s2, m)), &p) in sizes.iter().zip(measured).zip(paper) {
        assert_eq!(s, s2);
        println!("{:>10} {m:>10.2} {p:>10.2} {:>8.2}", size_label(s), m - p);
    }
}

/// Mean absolute error between a measured log-ratio series and the paper.
pub fn mae(measured: &[(u64, f64)], paper: &[f64]) -> f64 {
    let n = measured.len() as f64;
    measured.iter().zip(paper).map(|(&(_, m), &p)| (m - p).abs()).sum::<f64>() / n
}

/// Fraction of cells whose winner (sign) matches the paper.
/// Cells with |paper| < 0.05 count as matches when |measured| < 0.15
/// (both "roughly tied").
pub fn sign_agreement(measured: &[(u64, f64)], paper: &[f64]) -> f64 {
    let n = measured.len() as f64;
    let hits = measured
        .iter()
        .zip(paper)
        .filter(
            |(&(_, m), &p)| {
                if p.abs() < 0.05 {
                    m.abs() < 0.15
                } else {
                    m.signum() == p.signum()
                }
            },
        )
        .count();
    hits as f64 / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_axis_style() {
        assert_eq!(size_label(4), "4B");
        assert_eq!(size_label(32 << 10), "32KB");
        assert_eq!(size_label(64 << 20), "64MB");
    }

    #[test]
    fn sign_agreement_counts_ties_loosely() {
        let measured = vec![(1u64, 0.10), (2, -0.3), (3, 0.4)];
        let paper = [0.01, -0.5, 0.3];
        assert!((sign_agreement(&measured, &paper) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_is_mean_of_absolute_deltas() {
        let measured = vec![(1u64, 0.2), (2, -0.2)];
        let paper = [0.0, 0.0];
        assert!((mae(&measured, &paper) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bench_records_serialise_with_entries() {
        use crate::report::{to_json, BenchRecord};
        let rows = vec![
            BenchRecord::with_sim_cost("fig4a/put_16mb", 3.15, "GB/s", 1234, 0.5),
            BenchRecord {
                name: "x\"y".into(),
                value: 2.0,
                unit: "us".into(),
                entries_processed: None,
                sim_wall_ms: None,
            },
        ];
        let json = to_json(&rows);
        assert_eq!(
            json,
            "[{\"name\":\"fig4a/put_16mb\",\"value\":3.15,\"unit\":\"GB/s\",\
             \"entries_processed\":1234,\"sim_wall_ms\":0.5},\
             {\"name\":\"x\\\"y\",\"value\":2,\"unit\":\"us\"}]"
        );
    }

    #[test]
    fn bench_json_parses_back_to_the_same_records() {
        use crate::report::{parse_json, to_json, BenchRecord};
        let rows = vec![
            BenchRecord::with_entries("fig4a/put_16MB", 3.15, "GB/s", 1234),
            BenchRecord {
                name: "odd\"name\\x".into(),
                value: -2.5,
                unit: "us".into(),
                entries_processed: None,
                sim_wall_ms: None,
            },
        ];
        let back = parse_json(&to_json(&rows)).unwrap();
        assert_eq!(back, rows);
        assert_eq!(parse_json("[]").unwrap(), vec![]);
        assert!(parse_json("{").is_err());
        // Non-finite values are emitted as `null` and read back as NaN
        // instead of failing the whole parse.
        let nan_row = vec![BenchRecord {
            name: "bad".into(),
            value: f64::NAN,
            unit: "us".into(),
            entries_processed: None,
            sim_wall_ms: None,
        }];
        let parsed = parse_json(&to_json(&nan_row)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].value.is_nan());
    }

    #[test]
    fn bench_json_roundtrips_to_disk() {
        use crate::report::{write_json, BenchRecord};
        let dir = std::env::temp_dir().join("diomp_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        write_json(&path, &[BenchRecord::with_entries("a", 1.0, "us", 7)]).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("\"entries_processed\":7"));
        std::fs::remove_file(&path).unwrap();
    }
}
