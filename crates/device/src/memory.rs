//! Device memory: modelled address space with optional real backing.
//!
//! Every device owns a flat address space of `capacity` bytes. In
//! [`DataMode::Functional`] the space is backed by real host memory so
//! copies and kernels move and compute real bytes (tests, examples,
//! correctness runs). In [`DataMode::CostOnly`] only the *bookkeeping*
//! exists — allocations, offsets and sizes are tracked and timing is
//! charged, but no bytes move. This lets the paper-scale experiments
//! (7 GiB matrices, 1200³ grids) run on a laptop through exactly the same
//! code path that the correctness tests exercise at small sizes.

use parking_lot::Mutex;

/// Whether simulated memory is really backed (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataMode {
    /// Real bytes: copies copy, kernels compute, results are checkable.
    Functional,
    /// Bookkeeping + timing only: for paper-scale parameter sweeps.
    CostOnly,
}

/// Errors from device memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Allocation would exceed device capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// Access outside the device address space.
    OutOfBounds {
        /// Offset of the access.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// Free of an offset that is not an allocation start.
    BadFree {
        /// The offending offset.
        offset: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory { requested, available } => {
                write!(f, "device OOM: requested {requested} B, available {available} B")
            }
            MemError::OutOfBounds { offset, len, capacity } => {
                write!(f, "device access [{offset}, +{len}) outside capacity {capacity}")
            }
            MemError::BadFree { offset } => write!(f, "free of non-allocated offset {offset}"),
        }
    }
}
impl std::error::Error for MemError {}

/// The memory of one device.
pub struct DeviceMem {
    capacity: u64,
    mode: DataMode,
    /// Real backing (Functional mode only). Grown lazily to the high-water
    /// mark so small tests stay small.
    backing: Mutex<Vec<u8>>,
}

impl DeviceMem {
    /// Create a device memory of `capacity` modelled bytes.
    pub fn new(capacity: u64, mode: DataMode) -> Self {
        DeviceMem { capacity, mode, backing: Mutex::new(Vec::new()) }
    }

    /// Modelled capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The data mode this memory was created with.
    pub fn mode(&self) -> DataMode {
        self.mode
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), MemError> {
        if offset.checked_add(len).is_none_or(|end| end > self.capacity) {
            return Err(MemError::OutOfBounds { offset, len, capacity: self.capacity });
        }
        Ok(())
    }

    fn ensure_backing(&self, backing: &mut Vec<u8>, end: u64) {
        let end = end as usize;
        if backing.len() < end {
            backing.resize(end, 0);
        }
    }

    /// Copy bytes out of device memory. Unwritten memory reads as zero.
    /// In `CostOnly` mode the output is zero-filled.
    pub fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), MemError> {
        self.check(offset, out.len() as u64)?;
        if self.mode == DataMode::CostOnly {
            out.fill(0);
            return Ok(());
        }
        let backing = self.backing.lock();
        let start = offset as usize;
        let have = backing.len().saturating_sub(start).min(out.len());
        if have > 0 {
            out[..have].copy_from_slice(&backing[start..start + have]);
        }
        out[have..].fill(0);
        Ok(())
    }

    /// Copy bytes into device memory. A no-op (besides bounds checking) in
    /// `CostOnly` mode.
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<(), MemError> {
        self.check(offset, data.len() as u64)?;
        if self.mode == DataMode::CostOnly {
            return Ok(());
        }
        let mut backing = self.backing.lock();
        self.ensure_backing(&mut backing, offset + data.len() as u64);
        backing[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Device-to-device copy within this memory.
    pub fn copy_within(&self, src: u64, dst: u64, len: u64) -> Result<(), MemError> {
        self.check(src, len)?;
        self.check(dst, len)?;
        if self.mode == DataMode::CostOnly || len == 0 {
            return Ok(());
        }
        let mut backing = self.backing.lock();
        self.ensure_backing(&mut backing, (src + len).max(dst + len));
        backing.copy_within(src as usize..(src + len) as usize, dst as usize);
        Ok(())
    }

    /// Run `f` over a mutable view of `[offset, offset+len)` — the kernel
    /// execution hook. Returns `false` (without running `f`) in `CostOnly`
    /// mode.
    pub fn with_slice_mut<R>(
        &self,
        offset: u64,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<Option<R>, MemError> {
        self.check(offset, len)?;
        if self.mode == DataMode::CostOnly {
            return Ok(None);
        }
        let mut backing = self.backing.lock();
        self.ensure_backing(&mut backing, offset + len);
        Ok(Some(f(&mut backing[offset as usize..(offset + len) as usize])))
    }

    /// Like [`Self::with_slice_mut`] but for two disjoint ranges (e.g. a
    /// GEMM reading one buffer and accumulating into another).
    pub fn with_two_slices_mut<R>(
        &self,
        a: (u64, u64),
        b: (u64, u64),
        f: impl FnOnce(&mut [u8], &mut [u8]) -> R,
    ) -> Result<Option<R>, MemError> {
        self.check(a.0, a.1)?;
        self.check(b.0, b.1)?;
        assert!(
            a.0 + a.1 <= b.0 || b.0 + b.1 <= a.0,
            "with_two_slices_mut ranges must be disjoint"
        );
        if self.mode == DataMode::CostOnly {
            return Ok(None);
        }
        let mut backing = self.backing.lock();
        self.ensure_backing(&mut backing, (a.0 + a.1).max(b.0 + b.1));
        let (first, second) = if a.0 < b.0 { (a, b) } else { (b, a) };
        let (lo, hi) = backing.split_at_mut(second.0 as usize);
        let sa = &mut lo[first.0 as usize..(first.0 + first.1) as usize];
        let sb = &mut hi[..second.1 as usize];
        let r = if a.0 < b.0 { f(sa, sb) } else { f(sb, sa) };
        Ok(Some(r))
    }
}

/// A first-fit free-list allocator over a device address space — the
/// `cudaMalloc`-style allocator used by the *baseline* (non-DiOMP) memory
/// path. The DiOMP runtime replaces this with its own segment allocators
/// (paper §3.1); see `diomp-core::galloc`.
pub struct FreeListAlloc {
    capacity: u64,
    /// Sorted, coalesced free ranges `(offset, len)`.
    free: Vec<(u64, u64)>,
    /// Live allocations `(offset, len)`, for validation.
    live: Vec<(u64, u64)>,
}

impl FreeListAlloc {
    /// Allocator over `[0, capacity)`.
    pub fn new(capacity: u64) -> Self {
        FreeListAlloc { capacity, free: vec![(0, capacity)], live: Vec::new() }
    }

    /// Allocate `len` bytes aligned to `align` (power of two).
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<u64, MemError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let len = len.max(1);
        for i in 0..self.free.len() {
            let (off, flen) = self.free[i];
            let aligned = (off + align - 1) & !(align - 1);
            let pad = aligned - off;
            if flen >= pad + len {
                // Carve [aligned, aligned+len) out of the free block.
                self.free.remove(i);
                if pad > 0 {
                    self.free.insert(i, (off, pad));
                }
                let rest = flen - pad - len;
                if rest > 0 {
                    let at = self.free.partition_point(|r| r.0 < aligned + len);
                    self.free.insert(at, (aligned + len, rest));
                }
                let at = self.live.partition_point(|r| r.0 < aligned);
                self.live.insert(at, (aligned, len));
                return Ok(aligned);
            }
        }
        Err(MemError::OutOfMemory { requested: len, available: self.largest_free() })
    }

    /// Free a previous allocation by its start offset.
    pub fn free(&mut self, offset: u64) -> Result<(), MemError> {
        let i = self
            .live
            .binary_search_by_key(&offset, |r| r.0)
            .map_err(|_| MemError::BadFree { offset })?;
        let (off, len) = self.live.remove(i);
        let at = self.free.partition_point(|r| r.0 < off);
        self.free.insert(at, (off, len));
        // Coalesce with neighbours.
        if at + 1 < self.free.len() && self.free[at].0 + self.free[at].1 == self.free[at + 1].0 {
            self.free[at].1 += self.free[at + 1].1;
            self.free.remove(at + 1);
        }
        if at > 0 && self.free[at - 1].0 + self.free[at - 1].1 == self.free[at].0 {
            self.free[at - 1].1 += self.free[at].1;
            self.free.remove(at);
        }
        Ok(())
    }

    /// Total bytes currently free.
    pub fn total_free(&self) -> u64 {
        self.free.iter().map(|r| r.1).sum()
    }

    /// Largest single free block.
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|r| r.1).max().unwrap_or(0)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Capacity this allocator manages.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_memory_roundtrips() {
        let m = DeviceMem::new(1 << 20, DataMode::Functional);
        m.write(100, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 6];
        m.read(98, &mut out).unwrap();
        assert_eq!(out, [0, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn cost_only_memory_reads_zero() {
        let m = DeviceMem::new(1 << 40, DataMode::CostOnly); // 1 TiB, no backing
        m.write(1 << 39, &[9; 16]).unwrap();
        let mut out = [7u8; 16];
        m.read(1 << 39, &mut out).unwrap();
        assert_eq!(out, [0; 16]);
    }

    #[test]
    fn bounds_are_enforced() {
        let m = DeviceMem::new(1024, DataMode::Functional);
        assert!(matches!(m.write(1020, &[0; 8]), Err(MemError::OutOfBounds { .. })));
        let mut out = [0u8; 8];
        assert!(matches!(m.read(1020, &mut out), Err(MemError::OutOfBounds { .. })));
    }

    #[test]
    fn copy_within_moves_bytes() {
        let m = DeviceMem::new(1024, DataMode::Functional);
        m.write(0, &[5, 6, 7]).unwrap();
        m.copy_within(0, 512, 3).unwrap();
        let mut out = [0u8; 3];
        m.read(512, &mut out).unwrap();
        assert_eq!(out, [5, 6, 7]);
    }

    #[test]
    fn two_slices_disjoint_views() {
        let m = DeviceMem::new(1024, DataMode::Functional);
        m.write(0, &[1, 1, 1, 1]).unwrap();
        let ran = m
            .with_two_slices_mut((0, 4), (512, 4), |a, b| {
                b.copy_from_slice(a);
            })
            .unwrap();
        assert!(ran.is_some());
        let mut out = [0u8; 4];
        m.read(512, &mut out).unwrap();
        assert_eq!(out, [1, 1, 1, 1]);
    }

    #[test]
    fn free_list_allocates_aligned_and_coalesces() {
        let mut a = FreeListAlloc::new(1024);
        let x = a.alloc(100, 64).unwrap();
        assert_eq!(x % 64, 0);
        let y = a.alloc(100, 64).unwrap();
        let z = a.alloc(100, 64).unwrap();
        a.free(y).unwrap();
        a.free(x).unwrap();
        a.free(z).unwrap();
        assert_eq!(a.total_free(), 1024);
        assert_eq!(a.free.len(), 1, "freed blocks must coalesce to one");
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn free_list_oom_and_bad_free() {
        let mut a = FreeListAlloc::new(256);
        let _x = a.alloc(200, 1).unwrap();
        assert!(matches!(a.alloc(100, 1), Err(MemError::OutOfMemory { .. })));
        assert!(matches!(a.free(5), Err(MemError::BadFree { .. })));
    }

    #[test]
    fn free_list_reuses_holes_first_fit() {
        let mut a = FreeListAlloc::new(1024);
        let x = a.alloc(128, 1).unwrap();
        let _y = a.alloc(128, 1).unwrap();
        a.free(x).unwrap();
        let z = a.alloc(64, 1).unwrap();
        assert_eq!(z, x, "first-fit should reuse the first hole");
    }
}
