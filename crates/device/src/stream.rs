//! Streams and the bounded stream pool.
//!
//! Reproduces the event/stream management of paper §3.2:
//!
//! * **Lazy allocation** — streams are created on demand, never
//!   preallocated.
//! * **Stream reuse** — idle pool streams are reused before new ones are
//!   created.
//! * **Bounded concurrency** — at most `MAX_ACTIVE_STREAMS` streams are in
//!   flight; when the bound is hit, the runtime *partially synchronises*:
//!   it waits for the completed half of the busy streams, releases them,
//!   and reuses one, sustaining pipeline throughput without unbounded
//!   device queue growth.
//!
//! A stream is an ordered work queue: each enqueued operation starts when
//! both the stream's previous work and the operation's own resources are
//! ready. The stream's `tail` is the virtual completion time of its last
//! operation — "synchronising" a stream means sleeping until its tail.

use diomp_sim::{Ctx, Dur, EventId, SimHandle, SimTime};

/// Default bound on in-flight streams per device (paper §3.2,
/// `MAX_ACTIVE_STREAMS`).
pub const MAX_ACTIVE_STREAMS: usize = 16;

/// Handle to a pool stream (index into the device's pool).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamId(pub usize);

#[derive(Debug, Clone)]
struct StreamState {
    tail: SimTime,
    in_use: bool,
}

/// Pool statistics (exposed for the `ablation_streams` bench and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Streams created (lazy allocations).
    pub created: u64,
    /// Acquisitions satisfied by reusing an idle stream.
    pub reused: u64,
    /// Partial synchronisations forced by the concurrency bound.
    pub partial_syncs: u64,
}

/// Per-device stream pool with bounded concurrency.
pub struct StreamPool {
    max_active: usize,
    streams: Vec<StreamState>,
    stats: StreamStats,
}

impl StreamPool {
    /// Pool with the given concurrency bound (≥ 1).
    pub fn new(max_active: usize) -> Self {
        assert!(max_active >= 1, "stream bound must be at least 1");
        StreamPool { max_active, streams: Vec::new(), stats: StreamStats::default() }
    }

    /// Acquire a stream, applying the lazy-allocation / reuse /
    /// partial-sync policy. May block (in virtual time) when the
    /// concurrency bound forces a partial synchronisation.
    pub fn acquire(&mut self, ctx: &mut Ctx) -> StreamId {
        // 1. Reuse a *quiescent* idle stream (tail already passed): new
        //    work must not queue behind an unrelated in-flight transfer.
        let now = ctx.now();
        if let Some(i) = self.streams.iter().position(|s| !s.in_use && s.tail <= now) {
            self.streams[i].in_use = true;
            self.stats.reused += 1;
            return StreamId(i);
        }
        // 2. Lazily create a new stream while under the bound.
        if self.streams.len() < self.max_active {
            self.streams.push(StreamState { tail: ctx.now(), in_use: true });
            self.stats.created += 1;
            return StreamId(self.streams.len() - 1);
        }
        // 3. At the bound, fall back to the earliest-tail idle stream
        //    (work queues behind its pending ops — CUDA semantics).
        if let Some((i, _)) =
            self.streams.iter().enumerate().filter(|(_, s)| !s.in_use).min_by_key(|(_, s)| s.tail)
        {
            self.streams[i].in_use = true;
            self.stats.reused += 1;
            return StreamId(i);
        }
        // 3. Bound reached: partial synchronisation. Wait for the earlier
        //    half of the busy streams (by completion time) and release them.
        self.stats.partial_syncs += 1;
        let mut tails: Vec<SimTime> = self.streams.iter().map(|s| s.tail).collect();
        tails.sort_unstable();
        let horizon = tails[(tails.len() - 1) / 2]; // median tail
        ctx.sleep_until(horizon);
        let now = ctx.now();
        for s in &mut self.streams {
            if s.tail <= now {
                s.in_use = false;
            }
        }
        let i = self
            .streams
            .iter()
            .position(|s| !s.in_use)
            .expect("partial sync must release at least one stream");
        self.streams[i].in_use = true;
        self.stats.reused += 1;
        StreamId(i)
    }

    /// Return a stream to the pool. Pending work keeps its ordering: a
    /// future user of the stream queues behind the current tail, matching
    /// CUDA/HIP stream semantics.
    pub fn release(&mut self, s: StreamId) {
        self.streams[s.0].in_use = false;
    }

    /// Enqueue `work` on the stream starting no earlier than `ready`
    /// (resource availability); returns the completion time.
    pub fn enqueue_from(&mut self, s: StreamId, ready: SimTime, work: Dur) -> SimTime {
        let st = &mut self.streams[s.0];
        let start = st.tail.max(ready);
        st.tail = start + work;
        st.tail
    }

    /// Enqueue work of duration `work` at the current time.
    pub fn enqueue(&mut self, s: StreamId, now: SimTime, work: Dur) -> SimTime {
        self.enqueue_from(s, now, work)
    }

    /// Force the stream tail to at least `t` (used when an operation's
    /// completion is computed externally, e.g. by a fabric transfer).
    pub fn advance_tail(&mut self, s: StreamId, t: SimTime) {
        let st = &mut self.streams[s.0];
        st.tail = st.tail.max(t);
    }

    /// Record an event on the stream: returns an event that completes at
    /// the stream's current tail (CUDA `cudaEventRecord` semantics).
    pub fn record_event(&self, h: &SimHandle, s: StreamId) -> EventId {
        let ev = h.new_event();
        h.complete_at(ev, self.streams[s.0].tail);
        ev
    }

    /// Completion time of the stream's last enqueued operation.
    pub fn tail(&self, s: StreamId) -> SimTime {
        self.streams[s.0].tail
    }

    /// Latest tail across all streams (device-synchronise horizon).
    pub fn max_tail(&self) -> SimTime {
        self.streams.iter().map(|s| s.tail).max().unwrap_or(SimTime::ZERO)
    }

    /// Number of streams ever created.
    pub fn created(&self) -> usize {
        self.streams.len()
    }

    /// Pool statistics.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

/// Block until the stream's work completes (`cudaStreamSynchronize`).
pub fn sync_stream(ctx: &mut Ctx, pool: &StreamPool, s: StreamId) {
    ctx.sleep_until(pool.tail(s));
}

/// Block until all work on the device completes (`cudaDeviceSynchronize`).
pub fn sync_device(ctx: &mut Ctx, pool: &StreamPool) {
    ctx.sleep_until(pool.max_tail());
}

#[cfg(test)]
mod tests {
    use super::*;
    use diomp_sim::Sim;

    #[test]
    fn streams_are_lazy_and_reused() {
        let mut sim = Sim::new();
        sim.spawn("t", |ctx| {
            let mut pool = StreamPool::new(8);
            let a = pool.acquire(ctx);
            assert_eq!(pool.stats().created, 1);
            pool.release(a);
            let b = pool.acquire(ctx);
            assert_eq!(b, a, "idle stream is reused, not recreated");
            assert_eq!(pool.stats().reused, 1);
            assert_eq!(pool.created(), 1);
        });
        sim.run().unwrap();
    }

    #[test]
    fn enqueue_orders_work_fifo() {
        let mut sim = Sim::new();
        sim.spawn("t", |ctx| {
            let mut pool = StreamPool::new(2);
            let s = pool.acquire(ctx);
            let t1 = pool.enqueue(s, ctx.now(), Dur::micros(10.0));
            let t2 = pool.enqueue(s, ctx.now(), Dur::micros(5.0));
            assert_eq!(t1, SimTime(10_000));
            assert_eq!(t2, SimTime(15_000), "second op queues behind first");
        });
        sim.run().unwrap();
    }

    #[test]
    fn bound_forces_partial_sync_of_half() {
        let mut sim = Sim::new();
        sim.spawn("t", |ctx| {
            let mut pool = StreamPool::new(4);
            // Occupy all four streams with staggered completion times.
            for i in 0..4 {
                let s = pool.acquire(ctx);
                pool.enqueue(s, ctx.now(), Dur::micros(10.0 * (i + 1) as f64));
            }
            assert_eq!(pool.stats().partial_syncs, 0);
            // Fifth acquisition must partially synchronise: wait for the
            // median tail (20 µs) and release the completed half.
            let _s = pool.acquire(ctx);
            assert_eq!(pool.stats().partial_syncs, 1);
            assert_eq!(ctx.now(), SimTime(20_000), "waited for median tail only");
            assert_eq!(pool.created(), 4, "no new stream created at the bound");
        });
        sim.run().unwrap();
    }

    #[test]
    fn record_event_completes_at_tail() {
        let mut sim = Sim::new();
        sim.spawn("t", |ctx| {
            let mut pool = StreamPool::new(2);
            let s = pool.acquire(ctx);
            pool.enqueue(s, ctx.now(), Dur::micros(7.0));
            let ev = pool.record_event(ctx.handle(), s);
            ctx.wait_free(ev);
            assert_eq!(ctx.now(), SimTime(7_000));
        });
        sim.run().unwrap();
    }

    #[test]
    fn sync_device_waits_for_all_streams() {
        let mut sim = Sim::new();
        sim.spawn("t", |ctx| {
            let mut pool = StreamPool::new(4);
            let a = pool.acquire(ctx);
            let b = pool.acquire(ctx);
            pool.enqueue(a, ctx.now(), Dur::micros(3.0));
            pool.enqueue(b, ctx.now(), Dur::micros(9.0));
            sync_device(ctx, &pool);
            assert_eq!(ctx.now(), SimTime(9_000));
        });
        sim.run().unwrap();
    }

    #[test]
    fn released_stream_keeps_its_tail_ordering() {
        let mut sim = Sim::new();
        sim.spawn("t", |ctx| {
            let mut pool = StreamPool::new(1);
            let s = pool.acquire(ctx);
            pool.enqueue(s, ctx.now(), Dur::micros(10.0));
            pool.release(s);
            let s2 = pool.acquire(ctx);
            assert_eq!(s2, s);
            let done = pool.enqueue(s2, ctx.now(), Dur::micros(1.0));
            assert_eq!(done, SimTime(11_000), "new work queues behind old tail");
        });
        sim.run().unwrap();
    }
}
