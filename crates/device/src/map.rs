//! The libomptarget-style mapping table.
//!
//! OpenMP target offloading tracks, per device, which host objects are
//! *present* on the device: a table of `H-Ptr → (D-Ptr, Size, Flags,
//! RefCount)` (paper Fig. 1a). `target enter data` / map clauses increment
//! reference counts and trigger allocation + H2D on first presence;
//! `target exit data` decrements and triggers D2H (`from`) and
//! deallocation on last release.
//!
//! The DiOMP runtime *extends* each entry with a segment offset
//! (`Seg_offset`, paper Fig. 1b) so the same object is addressable by RMA
//! without re-registration; that extension lives in `diomp-core` and
//! reuses this table via [`MapEntry::seg_offset`].

use std::collections::HashMap;

/// Opaque identity of a host object (stands in for the host pointer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct HostId(pub u64);

/// OpenMP map-clause kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapKind {
    /// `map(to:)` — copy host→device at entry.
    To,
    /// `map(from:)` — copy device→host at exit.
    From,
    /// `map(tofrom:)` — both.
    ToFrom,
    /// `map(alloc:)` — allocate only.
    Alloc,
}

impl MapKind {
    /// Does entry to the region copy host→device?
    pub fn copies_in(self) -> bool {
        matches!(self, MapKind::To | MapKind::ToFrom)
    }

    /// Does exit from the region copy device→host?
    pub fn copies_out(self) -> bool {
        matches!(self, MapKind::From | MapKind::ToFrom)
    }
}

/// One row of the mapping table.
#[derive(Clone, Debug)]
pub struct MapEntry {
    /// Device-memory offset of the object.
    pub d_off: u64,
    /// Object size in bytes.
    pub size: u64,
    /// Map kind recorded at first mapping.
    pub kind: MapKind,
    /// Present-table reference count.
    pub refcount: u32,
    /// DiOMP extension: offset inside the PGAS segment (paper Fig. 1b).
    pub seg_offset: Option<u64>,
}

/// Result of a lookup-or-insert on the mapping table.
#[derive(Debug, PartialEq, Eq)]
pub enum MapOutcome {
    /// Object was absent: caller must allocate and (for `to` maps) copy in.
    New,
    /// Object already present: refcount bumped, no transfer needed.
    Present {
        /// Device offset recorded at first mapping.
        d_off: u64,
    },
}

/// Per-device mapping table.
#[derive(Default)]
pub struct MappingTable {
    entries: HashMap<HostId, MapEntry>,
}

impl MappingTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `host`; bump the refcount when present.
    pub fn enter(&mut self, host: HostId) -> MapOutcome {
        match self.entries.get_mut(&host) {
            Some(e) => {
                e.refcount += 1;
                MapOutcome::Present { d_off: e.d_off }
            }
            None => MapOutcome::New,
        }
    }

    /// Record a fresh mapping after the caller allocated device memory.
    pub fn insert(&mut self, host: HostId, d_off: u64, size: u64, kind: MapKind) {
        let prev = self
            .entries
            .insert(host, MapEntry { d_off, size, kind, refcount: 1, seg_offset: None });
        assert!(prev.is_none(), "insert over live mapping for {host:?}");
    }

    /// Attach the DiOMP segment offset to an entry (paper Fig. 1b).
    pub fn set_seg_offset(&mut self, host: HostId, seg_offset: u64) {
        self.entries.get_mut(&host).expect("set_seg_offset on unmapped object").seg_offset =
            Some(seg_offset);
    }

    /// Present-table lookup without refcount changes.
    pub fn lookup(&self, host: HostId) -> Option<&MapEntry> {
        self.entries.get(&host)
    }

    /// Decrement the refcount; returns the entry when it drops to zero
    /// (caller performs D2H for `from` maps and frees device memory).
    pub fn exit(&mut self, host: HostId) -> Option<MapEntry> {
        let e = self.entries.get_mut(&host).expect("exit on unmapped object");
        assert!(e.refcount > 0);
        e.refcount -= 1;
        if e.refcount == 0 {
            self.entries.remove(&host)
        } else {
            None
        }
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no objects are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_enter_is_new_then_present() {
        let mut t = MappingTable::new();
        let h = HostId(1);
        assert_eq!(t.enter(h), MapOutcome::New);
        t.insert(h, 4096, 256, MapKind::ToFrom);
        assert_eq!(t.enter(h), MapOutcome::Present { d_off: 4096 });
        assert_eq!(t.lookup(h).unwrap().refcount, 2);
    }

    #[test]
    fn exit_releases_only_at_zero() {
        let mut t = MappingTable::new();
        let h = HostId(9);
        t.insert(h, 0, 64, MapKind::To);
        assert_eq!(t.enter(h), MapOutcome::Present { d_off: 0 });
        assert!(t.exit(h).is_none(), "refcount 2→1 keeps the mapping");
        let freed = t.exit(h).expect("refcount 1→0 releases");
        assert_eq!(freed.size, 64);
        assert!(t.is_empty());
    }

    #[test]
    fn seg_offset_extension_sticks() {
        let mut t = MappingTable::new();
        let h = HostId(3);
        t.insert(h, 128, 64, MapKind::Alloc);
        t.set_seg_offset(h, 128);
        assert_eq!(t.lookup(h).unwrap().seg_offset, Some(128));
    }

    #[test]
    fn map_kind_transfer_direction() {
        assert!(MapKind::To.copies_in() && !MapKind::To.copies_out());
        assert!(!MapKind::From.copies_in() && MapKind::From.copies_out());
        assert!(MapKind::ToFrom.copies_in() && MapKind::ToFrom.copies_out());
        assert!(!MapKind::Alloc.copies_in() && !MapKind::Alloc.copies_out());
    }

    #[test]
    #[should_panic(expected = "exit on unmapped")]
    fn exit_unmapped_panics() {
        let mut t = MappingTable::new();
        let _ = t.exit(HostId(42));
    }
}
