//! # diomp-device — simulated GPU devices
//!
//! The device substrate of the DiOMP-Offloading reproduction: what CUDA /
//! HSA plus `libomptarget`'s device layer provide on real systems.
//!
//! * [`DeviceMem`] / [`FreeListAlloc`] — modelled device memory with
//!   optional real backing ([`DataMode`]).
//! * [`StreamPool`] — lazy, reused, concurrency-bounded streams with
//!   partial synchronisation (paper §3.2).
//! * [`Device`] / [`DeviceTable`] — devices bound to the cluster topology
//!   (HBM, copy engines, PCIe, NVLink/xGMI port, NIC).
//! * [`copy`] — H2D/D2H/D2D-local/D2D-peer/IPC-staged transfers that move
//!   real bytes at modelled times.
//! * [`KernelCost`] — calibrated kernel cost models (GEMM with the D7
//!   cache-efficiency term, memory-bound stencils).
//! * [`MappingTable`] / [`TargetDevice`] — the libomptarget present table
//!   and `#pragma omp target` execution flow.

#![warn(missing_docs)]

pub mod copy;
mod gpu;
mod kernels;
mod map;
mod memory;
mod omptarget;
mod stream;

pub use copy::HostBuf;
pub use gpu::{Device, DeviceTable, KernelBody};
pub use kernels::{gemm_efficiency, KernelCost};
pub use map::{HostId, MapEntry, MapKind, MapOutcome, MappingTable};
pub use memory::{DataMode, DeviceMem, FreeListAlloc, MemError};
pub use omptarget::{MapArg, TargetDevice};
pub use stream::{sync_device, sync_stream, StreamId, StreamPool, StreamStats, MAX_ACTIVE_STREAMS};
