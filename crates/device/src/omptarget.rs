//! Target-region execution: the `#pragma omp target` analogue.
//!
//! [`TargetDevice`] bundles a device with its mapping table and exposes
//! `target_enter` / `target` / `target_exit`, reproducing the baseline
//! libomptarget flow of paper Fig. 1a: per-region data mapping, H2D for
//! `to` clauses, kernel launch, D2H for `from` clauses, reference-counted
//! presence. The MPI+OpenMP baseline applications run on this layer; the
//! DiOMP runtime replaces the allocation path (see `diomp-core`) while
//! reusing the same mapping semantics.

use std::sync::Arc;

use diomp_sim::{Ctx, SimHandle, SimTime};
use parking_lot::Mutex;

use crate::copy::{d2h, h2d, HostBuf};
use crate::gpu::{Device, KernelBody};
use crate::kernels::KernelCost;
use crate::map::{HostId, MapKind, MapOutcome, MappingTable};
use crate::memory::MemError;
use crate::stream::StreamId;

/// One map clause: a host buffer plus its mapping kind.
pub struct MapArg {
    /// Host object identity (key into the mapping table).
    pub host: HostId,
    /// The host storage.
    pub buf: HostBuf,
    /// Mapping kind.
    pub kind: MapKind,
}

impl MapArg {
    /// Convenience constructor.
    pub fn new(host: HostId, buf: HostBuf, kind: MapKind) -> Self {
        MapArg { host, buf, kind }
    }
}

/// A device together with its OpenMP mapping state.
pub struct TargetDevice {
    /// The underlying device.
    pub dev: Arc<Device>,
    /// The libomptarget present table.
    pub table: Mutex<MappingTable>,
}

impl TargetDevice {
    /// Wrap a device.
    pub fn new(dev: Arc<Device>) -> Self {
        TargetDevice { dev, table: Mutex::new(MappingTable::new()) }
    }

    /// Map objects onto the device (`target enter data`). Allocates +
    /// copies `to`/`tofrom` objects that are not yet present; returns when
    /// all transfers are complete.
    pub fn target_enter(&self, ctx: &mut Ctx, maps: &[MapArg]) -> Result<(), MemError> {
        let mut done = SimTime::ZERO;
        for m in maps {
            let outcome = self.table.lock().enter(m.host);
            match outcome {
                MapOutcome::Present { .. } => {}
                MapOutcome::New => {
                    let d_off = self.dev.malloc(m.buf.len(), 256)?;
                    self.table.lock().insert(m.host, d_off, m.buf.len(), m.kind);
                    if m.kind.copies_in() {
                        let t = h2d(ctx.handle(), &self.dev, &m.buf, 0, d_off, m.buf.len())?;
                        done = done.max(t);
                    }
                }
            }
        }
        ctx.sleep_until(done);
        Ok(())
    }

    /// Unmap objects (`target exit data`): on last release, copy back
    /// `from`/`tofrom` objects and free device memory.
    pub fn target_exit(&self, ctx: &mut Ctx, maps: &[MapArg]) -> Result<(), MemError> {
        let mut done = SimTime::ZERO;
        for m in maps {
            let released = self.table.lock().exit(m.host);
            if let Some(entry) = released {
                if m.kind.copies_out() {
                    let t = d2h(ctx.handle(), &self.dev, entry.d_off, &m.buf, 0, entry.size)?;
                    done = done.max(t);
                }
                self.dev.mfree(entry.d_off)?;
            }
        }
        ctx.sleep_until(done);
        Ok(())
    }

    /// Device offset of a mapped object (`omp_get_mapped_ptr`).
    pub fn mapped_offset(&self, host: HostId) -> Option<u64> {
        self.table.lock().lookup(host).map(|e| e.d_off)
    }

    /// Execute a full target region: enter maps, launch the kernel on
    /// `stream`, wait for it (OpenMP target regions are synchronous unless
    /// `nowait`), and exit maps.
    pub fn target(
        &self,
        ctx: &mut Ctx,
        stream: StreamId,
        maps: &[MapArg],
        cost: &KernelCost,
        body: Option<KernelBody>,
    ) -> Result<(), MemError> {
        self.target_enter(ctx, maps)?;
        let end = self.dev.launch(ctx.handle(), stream, cost, body);
        ctx.sleep_until(end);
        self.target_exit(ctx, maps)?;
        Ok(())
    }

    /// Launch without waiting (`target ... nowait`): returns the kernel
    /// completion time. Maps must already be present.
    pub fn target_nowait(
        &self,
        h: &SimHandle,
        stream: StreamId,
        cost: &KernelCost,
        body: Option<KernelBody>,
    ) -> SimTime {
        self.dev.launch(h, stream, cost, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::DeviceTable;
    use crate::memory::DataMode;
    use diomp_sim::{ClusterSpec, Dur, PlatformSpec, Sim, Topology};

    fn boot(sim: &Sim) -> Arc<DeviceTable> {
        let spec = ClusterSpec { platform: PlatformSpec::platform_a(), nodes: 1, gpus_per_node: 1 };
        let topo = Arc::new(Topology::build(&sim.handle(), spec));
        DeviceTable::build(&sim.handle(), topo, DataMode::Functional, Some(1 << 20))
    }

    #[test]
    fn target_region_copies_computes_and_copies_back() {
        let mut sim = Sim::new();
        let devs = boot(&sim);
        sim.spawn("t", move |ctx| {
            let td = TargetDevice::new(devs.dev(0).clone());
            let x = HostBuf::from_f64(&[1.0, 2.0, 3.0, 4.0]);
            let maps = vec![MapArg::new(HostId(1), x.clone(), MapKind::ToFrom)];
            let s = td.dev.acquire_stream(ctx);
            let d_off_holder = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
            td.target_enter(ctx, &maps).unwrap();
            *d_off_holder.lock() = td.mapped_offset(HostId(1)).unwrap();
            let d_off = *d_off_holder.lock();
            // Kernel: double every element.
            let body: KernelBody = Box::new(move |mem| {
                mem.with_slice_mut(d_off, 32, |s| {
                    for c in s.chunks_exact_mut(8) {
                        let v = f64::from_le_bytes(c.try_into().unwrap());
                        c.copy_from_slice(&(v * 2.0).to_le_bytes());
                    }
                })
                .unwrap();
            });
            let end =
                td.dev.launch(ctx.handle(), s, &KernelCost::Fixed(Dur::micros(2.0)), Some(body));
            ctx.sleep_until(end);
            td.target_exit(ctx, &maps).unwrap();
            assert_eq!(x.to_f64(), vec![2.0, 4.0, 6.0, 8.0]);
            assert!(td.table.lock().is_empty(), "exit must release the mapping");
        });
        sim.run().unwrap();
    }

    #[test]
    fn nested_enter_reuses_presence_without_copies() {
        let mut sim = Sim::new();
        let devs = boot(&sim);
        sim.spawn("t", move |ctx| {
            let td = TargetDevice::new(devs.dev(0).clone());
            let x = HostBuf::zeroed(1024);
            let maps = vec![MapArg::new(HostId(7), x, MapKind::To)];
            td.target_enter(ctx, &maps).unwrap();
            let t0 = ctx.now();
            td.target_enter(ctx, &maps).unwrap(); // present: no transfer
            assert_eq!(ctx.now(), t0, "second enter must not move data");
            td.target_exit(ctx, &maps).unwrap();
            assert_eq!(td.table.lock().len(), 1, "still mapped once");
            td.target_exit(ctx, &maps).unwrap();
            assert!(td.table.lock().is_empty());
        });
        sim.run().unwrap();
    }

    #[test]
    fn device_allocator_reclaims_on_exit() {
        let mut sim = Sim::new();
        let devs = boot(&sim);
        sim.spawn("t", move |ctx| {
            let td = TargetDevice::new(devs.dev(0).clone());
            let free0 = td.dev.alloc.lock().total_free();
            let x = HostBuf::zeroed(4096);
            let maps = vec![MapArg::new(HostId(2), x, MapKind::Alloc)];
            td.target_enter(ctx, &maps).unwrap();
            assert!(td.dev.alloc.lock().total_free() < free0);
            td.target_exit(ctx, &maps).unwrap();
            assert_eq!(td.dev.alloc.lock().total_free(), free0);
        });
        sim.run().unwrap();
    }
}
