//! Simulated compute devices and the cluster-wide device table.

use std::collections::HashSet;
use std::sync::Arc;

use diomp_sim::{Ctx, DevLoc, Dur, GpuSpec, ResourceId, SimHandle, SimTime, Topology};
use parking_lot::Mutex;

use crate::kernels::KernelCost;
use crate::memory::{DataMode, DeviceMem, FreeListAlloc, MemError};
use crate::stream::{StreamId, StreamPool, MAX_ACTIVE_STREAMS};

/// Work executed by a kernel over the device memory when the simulated
/// kernel completes (Functional mode only).
pub type KernelBody = Box<dyn FnOnce(&DeviceMem) + Send + 'static>;

/// One simulated GPU (or MI250X GCD).
pub struct Device {
    /// Location in the cluster.
    pub loc: DevLoc,
    /// Flat device index across the job.
    pub flat: usize,
    /// Hardware model.
    pub spec: GpuSpec,
    /// Device memory.
    pub mem: DeviceMem,
    /// Stream pool (lazy, bounded; paper §3.2).
    pub pool: Mutex<StreamPool>,
    /// Baseline `cudaMalloc`-style allocator (the DiOMP runtime bypasses
    /// this and manages the segment itself).
    pub alloc: Mutex<FreeListAlloc>,
    /// Kernel engine availability: kernels on one device serialise.
    compute_free: Mutex<SimTime>,
    /// Local D2D copy engine.
    pub d2d_engine: ResourceId,
    /// Host link (PCIe / C2C) — from the shared topology.
    pub pcie: ResourceId,
    /// Intra-node GPU fabric port — from the shared topology.
    pub port: ResourceId,
    /// NIC used for inter-node traffic — from the shared topology.
    pub nic: ResourceId,
    /// Peers for which GPUDirect P2P has been enabled.
    peers: Mutex<HashSet<usize>>,
    /// Peers whose memory we have opened via IPC handles.
    ipc_open: Mutex<HashSet<usize>>,
}

impl Device {
    /// Enable direct peer access (`cudaDeviceEnablePeerAccess`). Idempotent.
    pub fn enable_peer(&self, peer_flat: usize) {
        self.peers.lock().insert(peer_flat);
    }

    /// Is direct peer access enabled towards `peer_flat`?
    pub fn peer_enabled(&self, peer_flat: usize) -> bool {
        self.peers.lock().contains(&peer_flat)
    }

    /// Open an IPC memory handle to a same-node peer. Returns the one-time
    /// setup cost to charge (zero if already open).
    pub fn open_ipc(&self, peer_flat: usize, setup: Dur) -> Dur {
        if self.ipc_open.lock().insert(peer_flat) {
            setup
        } else {
            Dur::ZERO
        }
    }

    /// Allocate device memory with the baseline allocator.
    pub fn malloc(&self, len: u64, align: u64) -> Result<u64, MemError> {
        self.alloc.lock().alloc(len, align)
    }

    /// Free baseline-allocated device memory.
    pub fn mfree(&self, offset: u64) -> Result<(), MemError> {
        self.alloc.lock().free(offset)
    }

    /// Launch a kernel on a stream: charges the compute engine and the
    /// stream queue, schedules `body` at completion (Functional mode), and
    /// returns the completion time.
    pub fn launch(
        self: &Arc<Self>,
        h: &SimHandle,
        stream: StreamId,
        cost: &KernelCost,
        body: Option<KernelBody>,
    ) -> SimTime {
        let work = cost.duration(&self.spec);
        let launch = Dur::micros(self.spec.launch_us);
        let mut pool = self.pool.lock();
        // The kernel may start once the stream reaches it *and* the
        // device's kernel engine is free; kernels on one device serialise.
        let queued = pool.tail(stream).max(h.now()) + launch;
        let end = {
            let mut free = self.compute_free.lock();
            let start = queued.max(*free);
            let end = start + work;
            *free = end;
            end
        };
        pool.advance_tail(stream, end);
        drop(pool);
        if let Some(body) = body {
            let dev = Arc::clone(self);
            h.schedule_at(end, move |_| body(&dev.mem));
        }
        end
    }

    /// Synchronise a stream (block in virtual time until its tail).
    pub fn sync_stream(&self, ctx: &mut Ctx, stream: StreamId) {
        let tail = self.pool.lock().tail(stream);
        ctx.sleep_until(tail);
    }

    /// Synchronise the whole device.
    pub fn sync(&self, ctx: &mut Ctx) {
        let tail = self.pool.lock().max_tail();
        ctx.sleep_until(tail);
    }

    /// Acquire a stream from the pool (may partially synchronise).
    pub fn acquire_stream(&self, ctx: &mut Ctx) -> StreamId {
        self.pool.lock().acquire(ctx)
    }

    /// Release a stream back to the pool.
    pub fn release_stream(&self, stream: StreamId) {
        self.pool.lock().release(stream);
    }
}

/// All devices of a simulated job, plus the topology they live in.
pub struct DeviceTable {
    devices: Vec<Arc<Device>>,
    /// The shared cluster topology.
    pub topo: Arc<Topology>,
    /// Data mode all device memories were created with.
    pub mode: DataMode,
}

impl DeviceTable {
    /// Instantiate one device per `(node, gpu)` of the topology.
    ///
    /// `mem_capacity` overrides the modelled memory size when `Some`
    /// (tests use small capacities to exercise OOM paths).
    pub fn build(
        h: &SimHandle,
        topo: Arc<Topology>,
        mode: DataMode,
        mem_capacity: Option<u64>,
    ) -> Arc<DeviceTable> {
        let spec = topo.spec.platform.gpu.clone();
        let cap = mem_capacity.unwrap_or((spec.mem_gib * (1u64 << 30) as f64) as u64);
        let mut devices = Vec::new();
        for flat in 0..topo.spec.total_gpus() {
            let loc = topo.dev_loc(flat);
            let d2d_engine = h.new_resource(spec.d2d_gbps, Dur::micros(0.01));
            devices.push(Arc::new(Device {
                loc,
                flat,
                spec: spec.clone(),
                mem: DeviceMem::new(cap, mode),
                pool: Mutex::new(StreamPool::new(MAX_ACTIVE_STREAMS)),
                alloc: Mutex::new(FreeListAlloc::new(cap)),
                compute_free: Mutex::new(SimTime::ZERO),
                d2d_engine,
                pcie: topo.pcie(loc),
                port: topo.gpu_port(loc),
                nic: topo.nic_for(loc),
                peers: Mutex::new(HashSet::new()),
                ipc_open: Mutex::new(HashSet::new()),
            }));
        }
        Arc::new(DeviceTable { devices, topo, mode })
    }

    /// Device by flat index.
    pub fn dev(&self, flat: usize) -> &Arc<Device> {
        &self.devices[flat]
    }

    /// Number of devices in the job.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the job has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterate over all devices.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Device>> {
        self.devices.iter()
    }
}
