//! Kernel cost models.
//!
//! A [`KernelCost`] converts a kernel's arithmetic/memory footprint into a
//! virtual duration for a given [`GpuSpec`]. Kernels may additionally
//! carry a *body* (see [`crate::Device::launch`]) that performs the real
//! computation on the backing memory in Functional mode — so correctness
//! tests exercise exactly the code path the paper-scale sweeps time.

use diomp_sim::{Dur, GpuSpec};

/// Fraction of peak FLOP/s a well-tuned GEMM reaches on huge operands.
const GEMM_EFF_MAX: f64 = 0.95;
/// GEMM efficiency floor for operands far larger than the L2 (streaming
/// regime).
const GEMM_EFF_MIN: f64 = 0.30;
/// Working-set size at which GEMM efficiency sits halfway between floor
/// and peak (bytes). Together with the floor/peak this calibrates the
/// *superlinear* strong-scaling of Fig. 7 (DESIGN.md D7): as the per-rank
/// stripes shrink, blocked GEMM re-reads operands from cache instead of
/// HBM and per-FLOP efficiency rises — the paper observes ~2× between the
/// 4-GPU and 40-GPU working sets.
const GEMM_WS_HALF: f64 = 512.0 * 1024.0 * 1024.0;

/// Fraction of peak HBM bandwidth achieved by a tuned stencil kernel.
const STENCIL_HBM_EFF: f64 = 0.72;

/// Fraction of peak FLOP/s achieved by generic elementwise kernels.
const ELEMENTWISE_EFF: f64 = 0.55;

/// Cost model of one kernel launch.
#[derive(Clone, Debug)]
pub enum KernelCost {
    /// Dense matrix multiply `C[m×n] += A[m×k] · B[k×n]`.
    Gemm {
        /// Rows of A/C.
        m: u64,
        /// Columns of B/C.
        n: u64,
        /// Inner dimension.
        k: u64,
        /// Element width in bytes (4 ⇒ FP32 rate, 8 ⇒ FP64 rate).
        dtype: u64,
    },
    /// Memory-bound stencil sweep (Minimod's 8th-order acoustic kernel).
    Stencil {
        /// Grid cells updated.
        cells: u64,
        /// Effective DRAM traffic per cell, bytes (reads + writes after
        /// cache filtering).
        bytes_per_cell: f64,
        /// FLOPs per cell (for the compute ceiling).
        flops_per_cell: f64,
    },
    /// Bandwidth-bound elementwise pass over `bytes` of memory.
    MemBound {
        /// DRAM bytes moved.
        bytes: u64,
    },
    /// Compute-bound kernel of `flops` floating-point operations.
    Compute {
        /// Total FLOPs.
        flops: u64,
        /// Element width in bytes (4 ⇒ FP32 rate, 8 ⇒ FP64 rate).
        dtype: u64,
    },
    /// Fixed duration (tests, ablations).
    Fixed(Dur),
}

/// Calibrated GEMM efficiency as a function of operand working set
/// (DESIGN.md D7). Returns a fraction of peak FLOP/s.
pub fn gemm_efficiency(spec: &GpuSpec, m: u64, n: u64, k: u64, dtype: u64) -> f64 {
    let ws = ((m * k + k * n + m * n) * dtype) as f64;
    // Logistic-style interpolation in working-set size: small operands
    // (cache-resident panels) run near peak; huge operands stream from HBM.
    let x = ws / (GEMM_WS_HALF * (spec.l2_mib / 40.0).max(0.25));
    GEMM_EFF_MIN + (GEMM_EFF_MAX - GEMM_EFF_MIN) / (1.0 + x)
}

impl KernelCost {
    /// FLOP/ns for the given element width.
    fn rate(spec: &GpuSpec, dtype: u64) -> f64 {
        let tflops = if dtype >= 8 { spec.fp64_tflops } else { spec.fp32_tflops };
        tflops * 1e3 // 1 TFLOP/s = 1e3 FLOP/ns
    }

    /// Modelled execution duration on `spec` (excluding launch latency,
    /// which [`crate::Device::launch`] adds).
    pub fn duration(&self, spec: &GpuSpec) -> Dur {
        match *self {
            KernelCost::Gemm { m, n, k, dtype } => {
                let flops = (2 * m * n * k) as f64;
                let eff = gemm_efficiency(spec, m, n, k, dtype);
                Dur::nanos((flops / (Self::rate(spec, dtype) * eff)).ceil() as u64)
            }
            KernelCost::Stencil { cells, bytes_per_cell, flops_per_cell } => {
                let mem_ns = cells as f64 * bytes_per_cell / (spec.hbm_gbps * STENCIL_HBM_EFF);
                let comp_ns =
                    cells as f64 * flops_per_cell / (Self::rate(spec, 4) * ELEMENTWISE_EFF);
                Dur::nanos(mem_ns.max(comp_ns).ceil() as u64)
            }
            KernelCost::MemBound { bytes } => {
                Dur::nanos((bytes as f64 / (spec.hbm_gbps * STENCIL_HBM_EFF)).ceil() as u64)
            }
            KernelCost::Compute { flops, dtype } => Dur::nanos(
                (flops as f64 / (Self::rate(spec, dtype) * ELEMENTWISE_EFF)).ceil() as u64,
            ),
            KernelCost::Fixed(d) => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> GpuSpec {
        diomp_sim::PlatformSpec::platform_a().gpu
    }

    #[test]
    fn gemm_time_scales_with_flops() {
        let spec = a100();
        let small = KernelCost::Gemm { m: 256, n: 256, k: 256, dtype: 8 }.duration(&spec);
        let big = KernelCost::Gemm { m: 512, n: 512, k: 512, dtype: 8 }.duration(&spec);
        let ratio = big.as_nanos() as f64 / small.as_nanos() as f64;
        assert!(
            (7.0..9.5).contains(&ratio),
            "8x flops should be ~8x time at similar efficiency, got {ratio}"
        );
    }

    #[test]
    fn gemm_efficiency_rises_as_working_set_shrinks() {
        let spec = a100();
        // Per-rank Cannon stripes for N=30240 at P=4 vs P=40.
        let e4 = gemm_efficiency(&spec, 7560, 7560, 30240, 8);
        let e40 = gemm_efficiency(&spec, 756, 756, 30240, 8);
        assert!(e40 > 1.35 * e4, "paper Fig. 7 superlinearity needs ≥1.35×, got {}", e40 / e4);
        assert!(e4 >= GEMM_EFF_MIN && e40 <= GEMM_EFF_MAX);
    }

    #[test]
    fn fp32_runs_faster_than_fp64_on_a100() {
        let spec = a100();
        let f64t = KernelCost::Compute { flops: 1 << 30, dtype: 8 }.duration(&spec);
        let f32t = KernelCost::Compute { flops: 1 << 30, dtype: 4 }.duration(&spec);
        assert!(f32t < f64t);
    }

    #[test]
    fn stencil_is_memory_bound_on_a100() {
        let spec = a100();
        // Minimod-style: ~34 B/cell of DRAM traffic, 67 flops/cell.
        let c = KernelCost::Stencil { cells: 1 << 20, bytes_per_cell: 34.0, flops_per_cell: 67.0 };
        let mem_only = KernelCost::MemBound { bytes: (34u64) << 20 }.duration(&spec);
        let t = c.duration(&spec);
        // Within 1% of the pure-bandwidth time ⇒ the memory term dominated.
        let diff = (t.as_nanos() as f64 - mem_only.as_nanos() as f64).abs();
        assert!(diff / (mem_only.as_nanos() as f64) < 0.01, "stencil should be memory-bound");
    }

    #[test]
    fn fixed_cost_is_passed_through() {
        let spec = a100();
        assert_eq!(KernelCost::Fixed(Dur::micros(3.0)).duration(&spec), Dur::micros(3.0));
    }
}
