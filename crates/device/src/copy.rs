//! Data-movement primitives: H2D / D2H / D2D (local, peer, IPC-staged).
//!
//! Every primitive reserves the modelled link resources, returns the
//! virtual completion time, and — in Functional mode — schedules the real
//! byte movement at that time so causality is exact (a rank polling the
//! target cannot observe bytes before the modelled arrival).
//!
//! Payloads are snapshotted at initiation (DMA-at-start semantics), so a
//! source buffer may be reused as soon as the call returns, matching what
//! a synchronous `cudaMemcpy` from pinned staging would guarantee.

use std::sync::Arc;

use diomp_sim::{SimHandle, SimTime};
use parking_lot::Mutex;

use crate::gpu::Device;
use crate::memory::{DataMode, MemError};

/// A host-side buffer that device copies can read/write. Cloning shares
/// the storage. `phantom` buffers carry only a length (CostOnly runs).
#[derive(Clone)]
pub struct HostBuf {
    len: u64,
    data: Option<Arc<Mutex<Vec<u8>>>>,
}

impl HostBuf {
    /// A real host buffer initialised from `bytes`.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        HostBuf { len: bytes.len() as u64, data: Some(Arc::new(Mutex::new(bytes))) }
    }

    /// A zero-initialised real host buffer.
    pub fn zeroed(len: u64) -> Self {
        HostBuf::from_bytes(vec![0; len as usize])
    }

    /// A size-only buffer for CostOnly runs.
    pub fn phantom(len: u64) -> Self {
        HostBuf { len, data: None }
    }

    /// A real buffer holding `vals` as little-endian f64s.
    pub fn from_f64(vals: &[f64]) -> Self {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        HostBuf::from_bytes(bytes)
    }

    /// A real buffer holding `vals` as little-endian f32s.
    pub fn from_f32(vals: &[f32]) -> Self {
        let mut bytes = Vec::with_capacity(vals.len() * 4);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        HostBuf::from_bytes(bytes)
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is this a real (backed) buffer?
    pub fn is_backed(&self) -> bool {
        self.data.is_some()
    }

    /// Copy of the raw bytes (zeros for phantom buffers).
    pub fn to_bytes(&self) -> Vec<u8> {
        match &self.data {
            Some(d) => d.lock().clone(),
            None => vec![0; self.len as usize],
        }
    }

    /// Interpret the contents as little-endian f64s.
    pub fn to_f64(&self) -> Vec<f64> {
        self.to_bytes().chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
    }

    /// Interpret the contents as little-endian f32s.
    pub fn to_f32(&self) -> Vec<f32> {
        self.to_bytes().chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
    }

    /// Overwrite `[off, off+src.len)` with `src` (no-op for phantom).
    pub fn write(&self, off: u64, src: &[u8]) {
        if let Some(d) = &self.data {
            let mut d = d.lock();
            let end = off as usize + src.len();
            assert!(end <= d.len(), "HostBuf write out of bounds");
            d[off as usize..end].copy_from_slice(src);
        }
    }

    /// Read `out.len()` bytes from `off` (zeros for phantom).
    pub fn read(&self, off: u64, out: &mut [u8]) {
        match &self.data {
            Some(d) => {
                let d = d.lock();
                let end = off as usize + out.len();
                assert!(end <= d.len(), "HostBuf read out of bounds");
                out.copy_from_slice(&d[off as usize..end]);
            }
            None => out.fill(0),
        }
    }
}

/// Validate `[off, off+len)` against a host buffer, with overflow-safe
/// arithmetic — a bad range is a typed error at initiation, never a
/// panic inside the deferred byte-movement closure.
fn check_host(buf: &HostBuf, off: u64, len: u64) -> Result<(), MemError> {
    if off.checked_add(len).is_none_or(|end| end > buf.len()) {
        return Err(MemError::OutOfBounds { offset: off, len, capacity: buf.len() });
    }
    Ok(())
}

/// Validate `[off, off+len)` against a device memory (overflow-safe).
fn check_dev(dev: &Device, off: u64, len: u64) -> Result<(), MemError> {
    if off.checked_add(len).is_none_or(|end| end > dev.mem.capacity()) {
        return Err(MemError::OutOfBounds { offset: off, len, capacity: dev.mem.capacity() });
    }
    Ok(())
}

fn snapshot_host(src: &HostBuf, off: u64, len: u64) -> Option<Vec<u8>> {
    src.data.as_ref().map(|d| {
        let d = d.lock();
        d[off as usize..(off + len) as usize].to_vec()
    })
}

fn snapshot_dev(dev: &Device, off: u64, len: u64) -> Result<Option<Vec<u8>>, MemError> {
    if dev.mem.mode() == DataMode::CostOnly {
        // Bounds are still validated so CostOnly runs catch addressing bugs.
        let mut probe = [0u8; 0];
        dev.mem.read(off.min(dev.mem.capacity()), &mut probe)?;
        if off + len > dev.mem.capacity() {
            return Err(MemError::OutOfBounds { offset: off, len, capacity: dev.mem.capacity() });
        }
        return Ok(None);
    }
    let mut buf = vec![0u8; len as usize];
    dev.mem.read(off, &mut buf)?;
    Ok(Some(buf))
}

/// Host → device copy over the device's host link. Returns completion time.
pub fn h2d(
    h: &SimHandle,
    dev: &Arc<Device>,
    src: &HostBuf,
    src_off: u64,
    d_off: u64,
    len: u64,
) -> Result<SimTime, MemError> {
    check_dev(dev, d_off, len)?;
    check_host(src, src_off, len)?;
    let tr = h.transfer(dev.pcie, len);
    if let Some(bytes) = snapshot_host(src, src_off, len) {
        let dev = Arc::clone(dev);
        h.schedule_at(tr.arrive, move |_| {
            dev.mem.write(d_off, &bytes).expect("bounds pre-checked");
        });
    }
    Ok(tr.arrive)
}

/// Device → host copy over the device's host link. Bytes land in `dst` at
/// the returned completion time.
pub fn d2h(
    h: &SimHandle,
    dev: &Arc<Device>,
    d_off: u64,
    dst: &HostBuf,
    dst_off: u64,
    len: u64,
) -> Result<SimTime, MemError> {
    check_dev(dev, d_off, len)?;
    check_host(dst, dst_off, len)?;
    let tr = h.transfer(dev.pcie, len);
    if let Some(bytes) = snapshot_dev(dev, d_off, len)? {
        let dst = dst.clone();
        h.schedule_at(tr.arrive, move |_| {
            dst.write(dst_off, &bytes);
        });
    }
    Ok(tr.arrive)
}

/// Local device-to-device copy (same device) over its copy engine.
pub fn d2d_local(
    h: &SimHandle,
    dev: &Arc<Device>,
    src_off: u64,
    dst_off: u64,
    len: u64,
) -> Result<SimTime, MemError> {
    check_dev(dev, src_off, len)?;
    check_dev(dev, dst_off, len)?;
    let tr = h.transfer(dev.d2d_engine, len);
    if let Some(bytes) = snapshot_dev(dev, src_off, len)? {
        let dev = Arc::clone(dev);
        h.schedule_at(tr.arrive, move |_| {
            dev.mem.write(dst_off, &bytes).expect("bounds pre-checked");
        });
    }
    Ok(tr.arrive)
}

/// Direct peer copy over the intra-node GPU fabric (GPUDirect P2P).
/// Requires `src.enable_peer(dst.flat)` to have been called and the
/// devices to share a node.
pub fn d2d_peer(
    h: &SimHandle,
    src: &Arc<Device>,
    src_off: u64,
    dst: &Arc<Device>,
    dst_off: u64,
    len: u64,
) -> Result<SimTime, MemError> {
    assert_eq!(src.loc.node, dst.loc.node, "P2P requires same-node devices");
    assert!(src.peer_enabled(dst.flat), "peer access not enabled");
    check_dev(src, src_off, len)?;
    check_dev(dst, dst_off, len)?;
    let tr = h.transfer(src.port, len);
    if let Some(bytes) = snapshot_dev(src, src_off, len)? {
        let dst = Arc::clone(dst);
        h.schedule_at(tr.arrive, move |_| {
            dst.mem.write(dst_off, &bytes).expect("bounds pre-checked");
        });
    }
    Ok(tr.arrive)
}

/// IPC-staged copy between same-node devices owned by different processes:
/// D2H over the source host link, a bounce through host shared memory, and
/// H2D over the destination host link, pipelined.
pub fn d2d_ipc(
    h: &SimHandle,
    src: &Arc<Device>,
    src_off: u64,
    dst: &Arc<Device>,
    dst_off: u64,
    len: u64,
    shm: diomp_sim::ResourceId,
) -> Result<SimTime, MemError> {
    assert_eq!(src.loc.node, dst.loc.node, "IPC staging is intra-node");
    check_dev(src, src_off, len)?;
    check_dev(dst, dst_off, len)?;
    // Pipelined three-stage path: each stage is charged for the full
    // payload (contention-accurate); the chained start times give an
    // arrival close to `latencies + bytes/bottleneck`.
    let t1 = h.transfer(src.pcie, len);
    let t2 = h.transfer_from(shm, t1.start, len);
    let t3 = h.transfer_from(dst.pcie, t2.start, len);
    let arrive = t1.arrive.max(t2.arrive).max(t3.arrive);
    if let Some(bytes) = snapshot_dev(src, src_off, len)? {
        let dst = Arc::clone(dst);
        h.schedule_at(arrive, move |_| {
            dst.mem.write(dst_off, &bytes).expect("bounds pre-checked");
        });
    }
    Ok(arrive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::DeviceTable;
    use diomp_sim::{ClusterSpec, PlatformSpec, Sim, Topology};

    fn table(sim: &Sim, mode: DataMode) -> Arc<DeviceTable> {
        let spec = ClusterSpec { platform: PlatformSpec::platform_a(), nodes: 1, gpus_per_node: 2 };
        let topo = Arc::new(Topology::build(&sim.handle(), spec));
        DeviceTable::build(&sim.handle(), topo, mode, Some(1 << 20))
    }

    #[test]
    fn h2d_then_d2h_roundtrips_bytes() {
        let mut sim = Sim::new();
        let devs = table(&sim, DataMode::Functional);
        sim.spawn("t", move |ctx| {
            let dev = devs.dev(0);
            let src = HostBuf::from_bytes(vec![1, 2, 3, 4, 5]);
            let done = h2d(ctx.handle(), dev, &src, 0, 64, 5).unwrap();
            ctx.sleep_until(done);
            let dst = HostBuf::zeroed(5);
            let done = d2h(ctx.handle(), dev, 64, &dst, 0, 5).unwrap();
            ctx.sleep_until(done);
            assert_eq!(dst.to_bytes(), vec![1, 2, 3, 4, 5]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn bytes_invisible_before_arrival() {
        let mut sim = Sim::new();
        let devs = table(&sim, DataMode::Functional);
        sim.spawn("t", move |ctx| {
            let dev = devs.dev(0);
            let src = HostBuf::from_bytes(vec![9; 16]);
            let done = h2d(ctx.handle(), dev, &src, 0, 0, 16).unwrap();
            assert!(done > ctx.now());
            let mut probe = [0u8; 16];
            dev.mem.read(0, &mut probe).unwrap();
            assert_eq!(probe, [0; 16], "data must not appear early");
            ctx.sleep_until(done);
            dev.mem.read(0, &mut probe).unwrap();
            assert_eq!(probe, [9; 16]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn peer_copy_requires_enablement_and_moves_bytes() {
        let mut sim = Sim::new();
        let devs = table(&sim, DataMode::Functional);
        sim.spawn("t", move |ctx| {
            let (a, b) = (devs.dev(0).clone(), devs.dev(1).clone());
            a.mem.write(0, &[7; 8]).unwrap();
            a.enable_peer(b.flat);
            let done = d2d_peer(ctx.handle(), &a, 0, &b, 128, 8).unwrap();
            ctx.sleep_until(done);
            let mut out = [0u8; 8];
            b.mem.read(128, &mut out).unwrap();
            assert_eq!(out, [7; 8]);
        });
        sim.run().unwrap();
    }

    #[test]
    #[should_panic(expected = "peer access not enabled")]
    fn peer_copy_without_enablement_panics() {
        let mut sim = Sim::new();
        let devs = table(&sim, DataMode::Functional);
        sim.spawn("t", move |ctx| {
            let (a, b) = (devs.dev(0).clone(), devs.dev(1).clone());
            let _ = d2d_peer(ctx.handle(), &a, 0, &b, 0, 8);
        });
        let _ = sim.run();
    }

    #[test]
    fn ipc_staged_copy_is_slower_than_p2p() {
        let mut sim = Sim::new();
        let devs = table(&sim, DataMode::Functional);
        sim.spawn("t", move |ctx| {
            let (a, b) = (devs.dev(0).clone(), devs.dev(1).clone());
            a.enable_peer(b.flat);
            let len = 1 << 19;
            let t_p2p = d2d_peer(ctx.handle(), &a, 0, &b, 0, len).unwrap();
            let shm = devs.topo.shm(0);
            let t_ipc = d2d_ipc(ctx.handle(), &a, 0, &b, 0, len, shm).unwrap();
            // P2P rides 300 GB/s NVLink; IPC bounces over 25 GB/s PCIe.
            assert!(
                t_ipc.since(ctx.now()).as_nanos() > 3 * t_p2p.since(ctx.now()).as_nanos(),
                "staged path must be much slower"
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn cost_only_copies_charge_time_but_move_nothing() {
        let mut sim = Sim::new();
        let devs = table(&sim, DataMode::CostOnly);
        sim.spawn("t", move |ctx| {
            let dev = devs.dev(0);
            let src = HostBuf::phantom(1 << 18);
            let done = h2d(ctx.handle(), dev, &src, 0, 0, 1 << 18).unwrap();
            assert!(done > ctx.now(), "time is still charged");
            ctx.sleep_until(done);
            let mut probe = [0u8; 4];
            dev.mem.read(0, &mut probe).unwrap();
            assert_eq!(probe, [0; 4]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn out_of_bounds_copy_is_rejected() {
        let mut sim = Sim::new();
        let devs = table(&sim, DataMode::Functional);
        sim.spawn("t", move |ctx| {
            let dev = devs.dev(0);
            let src = HostBuf::zeroed(16);
            let err = h2d(ctx.handle(), dev, &src, 0, (1 << 20) - 4, 16);
            assert!(matches!(err, Err(MemError::OutOfBounds { .. })));
        });
        sim.run().unwrap();
    }
}
