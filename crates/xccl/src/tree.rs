//! Binomial-tree schedules for the small-message fast path.
//!
//! A ring needs `n−1` (chain ops) or `2(n−1)` (allreduce) serial steps;
//! below the bandwidth crossover those steps are pure latency. The tree
//! schedules here finish in `⌈log2 n⌉` rounds instead: in broadcast
//! round `k`, the `2^k` payload holders each forward to the peer `2^k`
//! positions away; reduction mirrors the rounds in reverse. The LL
//! engine (`crate::ll`) executes these hop lists over the simulated
//! links with single fused payload+flag messages.

/// Number of binomial rounds needed to span `n` participants.
pub(crate) fn rounds(n: usize) -> u32 {
    (n.max(1) as u64).next_power_of_two().trailing_zeros()
}

/// Binomial broadcast hop list over `n` ring positions rooted at `root`:
/// `(src, dst)` pairs in round-major order, so every hop's source has
/// already received the payload by the time the hop is processed.
pub(crate) fn bcast_hops(n: usize, root: usize) -> Vec<(usize, usize)> {
    let mut hops = Vec::with_capacity(n.saturating_sub(1));
    let mut k = 1;
    while k < n {
        for v in 0..k {
            if v + k < n {
                hops.push(((v + root) % n, (v + k + root) % n));
            }
        }
        k <<= 1;
    }
    hops
}

/// Binomial reduction hop list toward `root`: the mirror image of
/// [`bcast_hops`] with rounds reversed, so by the time a node sends its
/// partial up the tree, every contribution from its own subtree has
/// already been folded in.
pub(crate) fn reduce_hops(n: usize, root: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut k = 1;
    while k < n {
        spans.push(k);
        k <<= 1;
    }
    let mut hops = Vec::with_capacity(n.saturating_sub(1));
    for &k in spans.iter().rev() {
        for v in 0..k {
            if v + k < n {
                hops.push(((v + k + root) % n, (v + root) % n));
            }
        }
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_reaches_every_position_exactly_once() {
        for n in 1..20usize {
            for root in [0, n / 2, n - 1] {
                let hops = bcast_hops(n, root % n);
                assert_eq!(hops.len(), n - 1, "n={n}: one receive per non-root");
                let mut have = vec![false; n];
                have[root % n] = true;
                for (s, d) in hops {
                    assert!(have[s], "n={n}: sender {s} forwards before receiving");
                    assert!(!have[d], "n={n}: {d} received twice");
                    have[d] = true;
                }
                assert!(have.iter().all(|&h| h), "n={n}: all positions covered");
            }
        }
    }

    #[test]
    fn reduce_folds_every_contribution_toward_root() {
        for n in 1..20usize {
            let root = 1 % n;
            let hops = reduce_hops(n, root);
            assert_eq!(hops.len(), n - 1);
            // A node must not send after it has already sent (its partial
            // would be stale), and every non-root sends exactly once.
            let mut sent = vec![false; n];
            for (s, d) in hops {
                assert!(!sent[s], "n={n}: {s} sends twice");
                assert!(!sent[d], "n={n}: {d} receives after sending");
                sent[s] = true;
            }
            assert!(!sent[root], "root never sends");
            assert_eq!(sent.iter().filter(|&&s| s).count(), n - 1);
        }
    }

    #[test]
    fn round_counts_are_logarithmic() {
        assert_eq!(rounds(1), 0);
        assert_eq!(rounds(2), 1);
        assert_eq!(rounds(8), 3);
        assert_eq!(rounds(9), 4);
        assert_eq!(rounds(64), 6);
    }
}
