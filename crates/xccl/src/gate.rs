//! The collective rendezvous gate.
//!
//! A device-side collective starts when *every* participating rank has
//! called it (NCCL semantics: the kernel blocks until peers arrive). The
//! gate collects each rank's device buffers, and when the last rank
//! arrives it computes the modelled completion time, schedules the real
//! data movement, and releases everyone at the completion instant.

use std::collections::VecDeque;

use diomp_sim::{Ctx, EventId, SimTime};
use parking_lot::Mutex;

/// One device-resident buffer contributed to a collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceBuf {
    /// Flat device index.
    pub flat: usize,
    /// Offset in the device address space.
    pub off: u64,
}

pub(crate) struct Arrival {
    pub bufs: Vec<DeviceBuf>,
}

struct Episode {
    ev: EventId,
    arrivals: Vec<Option<Arrival>>,
    arrived: usize,
    inside: usize,
    done_at: Option<SimTime>,
}

/// Rendezvous gate over `n` ranks.
pub(crate) struct CollGate {
    n: usize,
    episodes: Mutex<VecDeque<Episode>>,
}

impl CollGate {
    pub(crate) fn new(n: usize) -> Self {
        CollGate { n, episodes: Mutex::new(VecDeque::new()) }
    }

    /// Arrive with this rank's buffers. When the gate fills, `finish` is
    /// called once (by the last arrival, in task context) with all
    /// arrivals in rank order; it returns the collective completion time.
    /// Every participant blocks until then. Returns the completion time.
    pub(crate) fn arrive(
        &self,
        ctx: &mut Ctx,
        idx: usize,
        bufs: Vec<DeviceBuf>,
        finish: impl FnOnce(&mut Ctx, &[Arrival]) -> SimTime,
    ) -> SimTime {
        assert!(idx < self.n);
        let ev = {
            let mut eps = self.episodes.lock();
            let needs_new = eps.back().map(|e| e.arrived == self.n).unwrap_or(true);
            if needs_new {
                eps.push_back(Episode {
                    ev: ctx.new_event(),
                    arrivals: (0..self.n).map(|_| None).collect(),
                    arrived: 0,
                    inside: 0,
                    done_at: None,
                });
            }
            let ep = eps.back_mut().unwrap();
            assert!(ep.arrivals[idx].is_none(), "rank {idx} arrived twice at a collective");
            ep.arrivals[idx] = Some(Arrival { bufs });
            ep.arrived += 1;
            ep.inside += 1;
            ep.ev
        };
        // The last arrival computes the outcome outside the lock (it may
        // charge delays on its own task).
        let is_last = {
            let eps = self.episodes.lock();
            let ep = eps.iter().find(|e| e.ev == ev).unwrap();
            ep.arrived == self.n && ep.done_at.is_none()
        };
        if is_last {
            let arrivals: Vec<Arrival> = {
                let eps = self.episodes.lock();
                let ep = eps.iter().find(|e| e.ev == ev).unwrap();
                ep.arrivals
                    .iter()
                    .map(|a| {
                        let a = a.as_ref().expect("missing arrival");
                        Arrival { bufs: a.bufs.clone() }
                    })
                    .collect()
            };
            let done = finish(ctx, &arrivals);
            {
                let mut eps = self.episodes.lock();
                let ep = eps.iter_mut().find(|e| e.ev == ev).unwrap();
                ep.done_at = Some(done);
            }
            ctx.complete_at(ev, done);
        }
        ctx.wait(ev);
        let mut eps = self.episodes.lock();
        let pos = eps.iter().position(|e| e.ev == ev).expect("episode vanished");
        let done = eps[pos].done_at.expect("episode completed without a time");
        eps[pos].inside -= 1;
        if eps[pos].inside == 0 {
            let ep = eps.remove(pos).unwrap();
            ctx.free_event(ep.ev);
        }
        done
    }
}
