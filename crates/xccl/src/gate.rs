//! The collective rendezvous gate.
//!
//! A device-side collective starts when *every* participating rank has
//! called it (NCCL semantics: the kernel blocks until peers arrive). The
//! gate collects each rank's device buffers, and when the last rank
//! arrives it computes the modelled completion time, schedules the real
//! data movement, and releases everyone at the completion instant.

use std::collections::VecDeque;

use diomp_sim::{Ctx, EventId, SimTime, Wait};
use parking_lot::Mutex;

/// A collective abandoned at the rendezvous gate: a member rank died
/// before arriving, so the gate can never fill. Surviving callers get
/// this instead of a completion time; no buffer byte has been touched —
/// data semantics only ever run when the gate fills — so the caller can
/// shrink the communicator and re-run the collective from its last
/// checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollAbort {
    /// Virtual time at which the survivor gave up waiting.
    pub at: SimTime,
}

/// One device-resident buffer contributed to a collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceBuf {
    /// Flat device index.
    pub flat: usize,
    /// Offset in the device address space.
    pub off: u64,
}

pub(crate) struct Arrival {
    pub bufs: Vec<DeviceBuf>,
}

struct Episode {
    ev: EventId,
    arrivals: Vec<Option<Arrival>>,
    arrived: usize,
    inside: usize,
    done_at: Option<SimTime>,
    /// A survivor abandoned this episode after a timeout confirmed a
    /// dead member. Aborted episodes can never fill; later calls open a
    /// fresh episode instead of joining this one.
    aborted: bool,
}

/// Rendezvous gate over `n` ranks.
pub(crate) struct CollGate {
    n: usize,
    episodes: Mutex<VecDeque<Episode>>,
}

impl CollGate {
    pub(crate) fn new(n: usize) -> Self {
        CollGate { n, episodes: Mutex::new(VecDeque::new()) }
    }

    /// Arrive with this rank's buffers under a wait discipline. When the
    /// gate fills, `finish` is called once (by the last arrival, in task
    /// context) with all arrivals in rank order; it returns the
    /// collective completion time, and every participant blocks until
    /// then.
    ///
    /// With [`Wait::Block`] a call cannot fail — one event, one park per
    /// rank, the historical rendezvous. With [`Wait::Until`]
    /// each park is bounded: when the deadline fires before the gate
    /// fills, `dead` is consulted (the caller's health probe). If it
    /// confirms a dead member the arrival is withdrawn — the episode is
    /// marked aborted, this rank's buffers are removed untouched, and
    /// [`CollAbort`] is returned. Otherwise the rank re-parks for
    /// another budget: a slow peer is a straggler, not a corpse. An
    /// episode that already filled is never aborted — the collective is
    /// in flight and completes normally (rank kills take effect at
    /// collective boundaries, which is what keeps chaos replay
    /// deterministic).
    pub(crate) fn arrive_with(
        &self,
        ctx: &mut Ctx,
        idx: usize,
        bufs: Vec<DeviceBuf>,
        wait: Wait,
        mut dead: impl FnMut(&mut Ctx) -> bool,
        finish: impl FnOnce(&mut Ctx, &[Arrival]) -> SimTime,
    ) -> Result<SimTime, CollAbort> {
        assert!(idx < self.n);
        let ev = {
            let mut eps = self.episodes.lock();
            let needs_new = eps.back().map(|e| e.arrived == self.n || e.aborted).unwrap_or(true);
            if needs_new {
                eps.push_back(Episode {
                    ev: ctx.new_event(),
                    arrivals: (0..self.n).map(|_| None).collect(),
                    arrived: 0,
                    inside: 0,
                    done_at: None,
                    aborted: false,
                });
            }
            let ep = eps.back_mut().unwrap();
            assert!(ep.arrivals[idx].is_none(), "rank {idx} arrived twice at a collective");
            ep.arrivals[idx] = Some(Arrival { bufs });
            ep.arrived += 1;
            ep.inside += 1;
            ep.ev
        };
        // The last arrival computes the outcome outside the lock (it may
        // charge delays on its own task).
        let is_last = {
            let eps = self.episodes.lock();
            let ep = eps.iter().find(|e| e.ev == ev).unwrap();
            ep.arrived == self.n && ep.done_at.is_none()
        };
        if is_last {
            let arrivals: Vec<Arrival> = {
                let eps = self.episodes.lock();
                let ep = eps.iter().find(|e| e.ev == ev).unwrap();
                ep.arrivals
                    .iter()
                    .map(|a| {
                        let a = a.as_ref().expect("missing arrival");
                        Arrival { bufs: a.bufs.clone() }
                    })
                    .collect()
            };
            let done = finish(ctx, &arrivals);
            {
                let mut eps = self.episodes.lock();
                let ep = eps.iter_mut().find(|e| e.ev == ev).unwrap();
                ep.done_at = Some(done);
            }
            ctx.complete_at(ev, done);
        }
        loop {
            match ctx.wait_with(ev, wait) {
                Ok(()) => break,
                Err(_) => {
                    // Full by arrival count, not by done_at: the last
                    // arrival may still be inside `finish` (virtual time
                    // passes while it prices and schedules the data
                    // movement), and an episode every rank reached is in
                    // flight even before its completion time is known.
                    let filled =
                        self.episodes.lock().iter().any(|e| e.ev == ev && e.arrived == self.n);
                    // A filled episode is in flight: the deadline only
                    // means the collective outlives the budget. Re-park.
                    if !filled && dead(ctx) {
                        let mut eps = self.episodes.lock();
                        let pos = eps.iter().position(|e| e.ev == ev).expect("episode vanished");
                        let ep = &mut eps[pos];
                        ep.aborted = true;
                        ep.inside -= 1;
                        if ep.inside == 0 {
                            let ep = eps.remove(pos).unwrap();
                            // Never completed: release, don't free.
                            ctx.handle().release_event(ep.ev);
                        }
                        return Err(CollAbort { at: ctx.now() });
                    }
                }
            }
        }
        let mut eps = self.episodes.lock();
        let pos = eps.iter().position(|e| e.ev == ev).expect("episode vanished");
        let done = eps[pos].done_at.expect("episode completed without a time");
        eps[pos].inside -= 1;
        if eps[pos].inside == 0 {
            let ep = eps.remove(pos).unwrap();
            ctx.free_event(ep.ev);
        }
        Ok(done)
    }
}
