//! Collective operation kinds and their data semantics.

use diomp_device::DeviceTable;
use diomp_fabric::ReduceOp;

use crate::gate::DeviceBuf;

/// Which collective to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum XcclOp {
    /// Broadcast from the device at ring position `root`.
    Broadcast {
        /// Ring position of the source device.
        root: usize,
    },
    /// All-reduce: every device ends with the element-wise reduction.
    AllReduce {
        /// Reduction operator.
        op: ReduceOp,
    },
    /// Reduce to the device at ring position `root`.
    Reduce {
        /// Ring position of the destination device.
        root: usize,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// All-gather: device `i`'s `len` bytes land at offset `i*len` of
    /// every device's buffer (buffers must be `n*len` long).
    AllGather,
}

impl XcclOp {
    /// Total bytes a bandwidth-optimal ring moves per device port for a
    /// payload of `len` bytes on `n` devices — the factor applied to the
    /// profile's achieved-bandwidth curve.
    pub fn wire_factor(&self, n: usize) -> f64 {
        let n = n as f64;
        match self {
            // Pipelined ring broadcast: every device receives the payload once.
            XcclOp::Broadcast { .. } => (n - 1.0) / n,
            // Ring reduce-scatter + allgather.
            XcclOp::AllReduce { .. } => 2.0 * (n - 1.0) / n,
            XcclOp::Reduce { .. } => (n - 1.0) / n,
            XcclOp::AllGather => (n - 1.0) / n,
        }
    }

    /// Apply the collective's data semantics on the real buffer bytes.
    /// `bufs` are in ring order; `len` is the per-device payload size.
    /// No-op when buffers are unbacked (CostOnly mode).
    pub fn apply(&self, devs: &DeviceTable, bufs: &[DeviceBuf], len: u64) {
        if devs.mode == diomp_device::DataMode::CostOnly {
            return;
        }
        let read = |b: &DeviceBuf, off: u64, n: u64| -> Vec<u8> {
            let mut v = vec![0u8; n as usize];
            devs.dev(b.flat).mem.read(b.off + off, &mut v).expect("xccl read in bounds");
            v
        };
        let write = |b: &DeviceBuf, off: u64, bytes: &[u8]| {
            devs.dev(b.flat).mem.write(b.off + off, bytes).expect("xccl write in bounds");
        };
        match self {
            XcclOp::Broadcast { root } => {
                let payload = read(&bufs[*root], 0, len);
                for (i, b) in bufs.iter().enumerate() {
                    if i != *root {
                        write(b, 0, &payload);
                    }
                }
            }
            XcclOp::AllReduce { op } => {
                let mut acc = read(&bufs[0], 0, len);
                for b in &bufs[1..] {
                    op.combine(&mut acc, &read(b, 0, len));
                }
                for b in bufs {
                    write(b, 0, &acc);
                }
            }
            XcclOp::Reduce { root, op } => {
                let mut acc = read(&bufs[0], 0, len);
                for b in &bufs[1..] {
                    op.combine(&mut acc, &read(b, 0, len));
                }
                write(&bufs[*root], 0, &acc);
            }
            XcclOp::AllGather => {
                let parts: Vec<Vec<u8>> = bufs.iter().map(|b| read(b, 0, len)).collect();
                for b in bufs {
                    for (i, part) in parts.iter().enumerate() {
                        write(b, i as u64 * len, part);
                    }
                }
            }
        }
    }

    /// Element alignment the ring engine must respect when splitting the
    /// payload: reductions may never split an element across a segment
    /// boundary; pure data movement has byte granularity.
    pub fn elem_align(&self) -> u64 {
        match self {
            XcclOp::AllReduce { op } | XcclOp::Reduce { op, .. } => op.elem_bytes(),
            XcclOp::Broadcast { .. } | XcclOp::AllGather => 1,
        }
    }

    /// The profile used for this op (broadcast-shaped or allreduce-shaped).
    pub(crate) fn profile<'a>(
        &self,
        coll: &'a diomp_sim::CollModels,
    ) -> &'a diomp_sim::CollProfile {
        match self {
            XcclOp::Broadcast { .. } | XcclOp::AllGather => &coll.xccl_bcast,
            XcclOp::AllReduce { .. } | XcclOp::Reduce { .. } => &coll.xccl_allreduce,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_factors_match_ring_algebra() {
        let b = XcclOp::Broadcast { root: 0 };
        let a = XcclOp::AllReduce { op: ReduceOp::SumF64 };
        assert!((b.wire_factor(4) - 0.75).abs() < 1e-12);
        assert!((a.wire_factor(4) - 1.5).abs() < 1e-12);
        assert!(a.wire_factor(64) > b.wire_factor(64));
    }
}
