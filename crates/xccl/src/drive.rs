//! Shared chunk-schedule drivers for the protocol engines.
//!
//! The ring, DBT and reduction-server engines all compile their
//! collective into the same normal form — a table of chunk sends, each
//! pinned to a per-edge FIFO *lane*, enabled by the *arrival* of zero or
//! more upstream sends, and bounded by a per-lane in-flight window — and
//! hand it to one of two drivers here:
//!
//! * [`drive_schedule`] — the **explicit** driver: every chunk is a
//!   kernel event plus a scheduled completion action, and the progress
//!   loop parks on [`Ctx::wait_any_batched`]. This is the reference
//!   semantics (and the only driver that supports an armed contention
//!   model, whose weighted-fair queues reorder completions at runtime).
//! * [`drive_schedule_fast`] — the **coalesced** driver: the identical
//!   schedule is priced arithmetically against the live link resources
//!   (same reservation calls, same rounding, same fault perturbation)
//!   without allocating a single kernel event; the whole collective
//!   collapses to one coalesced wake entry carrying the chunk count.
//!   Virtual time, per-resource watermarks and flow statistics are
//!   bit-identical to the explicit driver — the property tests in
//!   `tests/fastpath.rs` pin this across engines, sizes and fault plans.
//!
//! Dependencies are precomputed into a CSR [`DepTable`] (replacing the
//! old per-probe `&dyn Fn` closure) and arrivals tracked in a packed
//! [`BitSet`], so the hot loop is monomorphic and allocation-free.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use diomp_sim::{Ctx, Dur, EventId, FlowId, ResourceId, SimTime};

/// One chunk transfer as the drivers see it: the link resource it
/// occupies, its FIFO lane, its wire bytes (payload already scaled by
/// the edge's link efficiency), and the QoS flow the transfer is
/// charged to.
pub(crate) struct ChunkSend {
    pub(crate) res: ResourceId,
    pub(crate) lane: u32,
    pub(crate) wire: u64,
    pub(crate) flow: FlowId,
}

/// Precomputed send dependencies in compressed-sparse-row form: row `i`
/// lists the send indices whose *arrival* enables send `i`. Replaces
/// the per-probe `deps_met: &dyn Fn(usize, &[bool])` closure the
/// drivers used to take — the probe is now an indexed slice walk over a
/// bitset, monomorphic and branch-predictable.
pub(crate) struct DepTable {
    off: Vec<u32>,
    idx: Vec<u32>,
}

impl DepTable {
    /// Start a table expecting `sends` rows and about `deps` total edges.
    pub(crate) fn with_capacity(sends: usize, deps: usize) -> Self {
        let mut off = Vec::with_capacity(sends + 1);
        off.push(0);
        DepTable { off, idx: Vec::with_capacity(deps) }
    }

    /// Append the dependency row of the next send. Must be called once
    /// per send, in send-index order.
    pub(crate) fn push_row(&mut self, deps: impl IntoIterator<Item = u32>) {
        self.idx.extend(deps);
        self.off.push(self.idx.len() as u32);
    }

    /// Have all of send `si`'s dependencies arrived?
    #[inline]
    fn met(&self, si: usize, arrived: &BitSet) -> bool {
        self.idx[self.off[si] as usize..self.off[si + 1] as usize]
            .iter()
            .all(|&d| arrived.get(d as usize))
    }

    /// Number of dependency rows (= sends) pushed so far.
    pub(crate) fn rows(&self) -> usize {
        self.off.len() - 1
    }
}

/// Packed arrival flags, one bit per send (replaces `Vec<bool>`).
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }
}

/// Should a collective schedule take the event-free coalesced driver?
///
/// Armed contention forces the explicit driver: the weighted-fair
/// queues re-price in-service transfers whenever the backlogged flow
/// set changes, which only the live event machinery models. An armed
/// *fault plan* does **not** force the explicit driver — the coalesced
/// driver prices every reservation through the same kernel path, so
/// per-edge degradation windows perturb the arithmetic march exactly as
/// they perturb explicit events (the fast path disarms per edge, not
/// per run). [`diomp_sim::Sim::force_explicit_schedules`] pins the
/// explicit driver for A/B comparison (the bench gate's uncoalesced
/// reference runs).
pub(crate) fn fast_path_ok(ctx: &Ctx) -> bool {
    !ctx.contention_armed() && !ctx.explicit_schedules_forced()
}

/// Drive a chunked send schedule to completion with explicit events —
/// the reference progress loop shared by the ring, DBT and
/// reduction-server engines. Every lane is a FIFO of send indices; a
/// lane head is issued once every dependency in `deps` has arrived and
/// the lane has a free slot (`window`), charging `step_d` of per-chunk
/// processing before the wire bytes occupy the resource. In-flight
/// completions drain with [`Ctx::wait_any_batched`] — one wake per park
/// — and arrivals enable downstream sends.
///
/// Each chunk is charged to its own [`ChunkSend::flow`] — normally the
/// issuing communicator's QoS flow, but the reduction-server engine
/// charges server fan-back to the communicator's dedicated server flow —
/// so that on a contention-armed simulator concurrent collectives
/// fair-share each link by QoS weight. Disarmed (the default), the
/// charge is bit-identical to a plain FIFO `transfer_from`.
pub(crate) fn drive_schedule(
    ctx: &mut Ctx,
    sends: &[ChunkSend],
    lanes: &[Vec<u32>],
    window: usize,
    step_d: Dur,
    deps: &DepTable,
) {
    debug_assert_eq!(deps.rows(), sends.len());
    let window = window.max(1);
    let nlanes = lanes.len();
    let mut lane_next = vec![0usize; nlanes];
    let mut lane_inflight = vec![0usize; nlanes];
    let mut arrived = BitSet::new(sends.len());
    let mut inflight: Vec<(EventId, u32)> = Vec::new();
    let mut evs: Vec<EventId> = Vec::new();
    loop {
        // Issue every lane head whose dependencies have arrived, up to
        // the per-edge slot window.
        for l in 0..nlanes {
            while lane_next[l] < lanes[l].len() && lane_inflight[l] < window {
                let si = lanes[l][lane_next[l]] as usize;
                if !deps.met(si, &arrived) {
                    break;
                }
                // Per-chunk processing (reduce / copy / flag check)
                // before the chunk is injected on the edge's link.
                let ready = ctx.now() + step_d;
                let ev =
                    ctx.handle().transfer_qos(sends[si].res, sends[si].flow, ready, sends[si].wire);
                inflight.push((ev, si as u32));
                lane_next[l] += 1;
                lane_inflight[l] += 1;
            }
        }
        if inflight.is_empty() {
            assert!(
                lane_next.iter().zip(lanes).all(|(&nx, l)| nx == l.len()),
                "chunk schedule stalled with sends outstanding"
            );
            break;
        }
        evs.clear();
        evs.extend(inflight.iter().map(|&(ev, _)| ev));
        let _ = ctx.wait_any_batched(&evs);
        // Retire everything that completed at this instant.
        inflight.retain(|&(ev, si)| {
            if ctx.event_done(ev) {
                ctx.free_event(ev);
                arrived.set(si as usize);
                lane_inflight[sends[si as usize].lane as usize] -= 1;
                false
            } else {
                true
            }
        });
    }
}

/// Drive the identical schedule without events: an arithmetic march
/// that replays the explicit driver's decisions exactly.
///
/// The explicit loop only ever acts at *arrival instants*: the task
/// wakes at the earliest in-flight completion, retires everything that
/// arrived at that instant, then runs one issue pass over the lanes in
/// index order. This march reproduces that literally — a local min-heap
/// of `(arrive, issue_seq)` stands in for the kernel's event queue, and
/// each issue reserves the real link resource through
/// [`diomp_sim::SimHandle::transfer_flow`]: the same serialisation
/// (`free_at`), the same integer rounding, the same fault-window
/// perturbation and the same flow accounting as the event path, minus
/// the event. The kernel clock stays frozen at the issue instant for
/// the whole march (reservations land in the virtual future, exactly as
/// the FIFO resource model already allows), and the march ends in a
/// single [`Ctx::sleep_until_coalesced`] wake carrying the chunk count
/// — one heap entry standing in for every per-chunk completion.
///
/// Caller contract: contention must be disarmed ([`fast_path_ok`]).
pub(crate) fn drive_schedule_fast(
    ctx: &mut Ctx,
    sends: &[ChunkSend],
    lanes: &[Vec<u32>],
    window: usize,
    step_d: Dur,
    deps: &DepTable,
) {
    debug_assert_eq!(deps.rows(), sends.len());
    let window = window.max(1);
    let nlanes = lanes.len();
    let mut lane_next = vec![0usize; nlanes];
    let mut lane_inflight = vec![0usize; nlanes];
    let mut arrived = BitSet::new(sends.len());
    // Pending in-flight arrivals, earliest first; `seq` breaks arrival
    // ties by issue order, mirroring the kernel queue's FIFO tiebreak.
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u32)>> = BinaryHeap::new();
    let mut seq = 0u32;
    let mut t = ctx.now();
    loop {
        // Issue pass at instant `t` — identical lane scan order to the
        // explicit driver's pass at the same wake instant.
        for l in 0..nlanes {
            while lane_next[l] < lanes[l].len() && lane_inflight[l] < window {
                let si = lanes[l][lane_next[l]] as usize;
                if !deps.met(si, &arrived) {
                    break;
                }
                let ready = t + step_d;
                let tr = ctx.handle().transfer_flow(
                    sends[si].res,
                    sends[si].flow,
                    ready,
                    sends[si].wire,
                );
                heap.push(Reverse((tr.arrive, seq, si as u32)));
                seq += 1;
                lane_next[l] += 1;
                lane_inflight[l] += 1;
            }
        }
        let Some(&Reverse((at, _, _))) = heap.peek() else {
            assert!(
                lane_next.iter().zip(lanes).all(|(&nx, l)| nx == l.len()),
                "chunk schedule stalled with sends outstanding"
            );
            break;
        };
        // Retire every arrival at this instant, exactly as the explicit
        // loop retires every event completed at its wake instant.
        t = at;
        while let Some(&Reverse((a, _, si))) = heap.peek() {
            if a != t {
                break;
            }
            heap.pop();
            arrived.set(si as usize);
            lane_inflight[sends[si as usize].lane as usize] -= 1;
        }
    }
    // One coalesced wake standing in for every per-chunk completion.
    ctx.sleep_until_coalesced(t, sends.len() as u64);
}
