//! The LL-style small-message engine: fused eager sends over binomial
//! trees.
//!
//! NCCL's LL ("low latency") protocol sends small payloads as fused
//! data+flag lines: one eager message per peer, no chunk windowing, no
//! separate completion handshake — the receiver polls the flag that
//! arrives *with* the data. That is what produces the small-size dips of
//! the fitted Fig. 6 curves which a pure chunk-pipelined ring cannot
//! reproduce: below the bandwidth crossover the ring pays `n−1` (or
//! `2(n−1)`) serial step latencies where a tree pays `⌈log2 n⌉`.
//!
//! This module executes the [`crate::tree`] schedules over the simulated
//! links with exactly that transport: each hop charges one small
//! software overhead ([`AutoConfig::ll_hop_ns`], derived by the
//! transport autotuner from the platform's conduit tables — a fused
//! write needs only the conduit's initiation cost, not the ring
//! engine's per-step processing), then injects the whole payload as one
//! message on the sender's link resource. Link FIFO serialisation and
//! contention with concurrent traffic still apply — the schedule is
//! closed-form per hop but the resources are shared.
//!
//! [`crossover_bytes`] is the dispatch rule of [`CollEngine::Auto`]: it
//! prices both protocols from the same platform tables the engines use
//! and returns the largest size at which the LL/tree path still wins
//! with a safety margin; above it, `Auto` falls back to the ring
//! unchanged.
//!
//! [`CollEngine::Auto`]: crate::CollEngine::Auto

use diomp_fabric::FabricWorld;
use diomp_sim::{Ctx, Dur, PlatformSpec, SimTime};

use crate::ops::XcclOp;
use crate::ring::{self, RingConfig};
use crate::tree;

/// Require the modelled fast-path time to beat the modelled ring time
/// by this factor before a protocol switch is chosen: the closed forms
/// are estimates, and a missed win is cheaper than a regression above
/// the crossover. Shared by the LL and DBT crossovers so both
/// boundaries are priced with the same conservatism.
pub(crate) const SAFETY: f64 = 1.25;

/// Configuration of the [`CollEngine::Auto`](crate::CollEngine::Auto)
/// engine: the small-message fast path, the mid-band double-binary-tree
/// band, and the ring fallback.
///
/// Constructed by the transport autotuner (`diomp-core`'s `Tuner`
/// derives the LL hop cost and the tuned ring configs from the active
/// conduit's tables); [`AutoConfig::for_platform`] gives the
/// GASNet-EX-based derivation when only the platform is known.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AutoConfig {
    /// Ring engine used above the crossovers for broadcast-shaped ops
    /// (broadcast, and all-gather — which has no latency-bound regime;
    /// every byte must travel anyway). This is the *live* ring the
    /// dispatcher falls back to, and the one both crossover closed
    /// forms price against — the two may never diverge (the pre-PR 5
    /// bug priced the switch against `RingConfig::default()` even when
    /// the engine ran a custom ring).
    pub ring_bcast: RingConfig,
    /// Ring engine used above the crossovers for allreduce-shaped ops
    /// (allreduce, reduce) — tuned separately because the per-step
    /// processing cost of a reduction differs from a copy in the
    /// platform tables.
    pub ring_allred: RingConfig,
    /// Per-hop software cost of one fused payload+flag eager send, in
    /// nanoseconds (integer so the engine selector stays `Eq`). Derived
    /// from the conduit tables: write initiation (+ GPU registration or
    /// notification post), with no separate completion round.
    pub ll_hop_ns: u64,
    /// Fraction of raw inter-node wire bandwidth one fused eager send
    /// achieves, in thousandths (integer for `Eq`). Comes from the same
    /// conduit tables as the hop cost, so a GPI-2-tuned engine prices
    /// its wire term with GPI-2's efficiency, not GASNet's.
    pub wire_eff_milli: u16,
    /// Hard ceiling on the LL/tree fast path regardless of what the
    /// model says — a guardrail keeping `Auto` conservative where the
    /// closed forms are least trustworthy.
    pub small_max_bytes: u64,
    /// Hard ceiling on the double-binary-tree mid band (the upper
    /// regime boundary can never exceed it). `0` disables the mid band
    /// entirely — `Auto` then degenerates to the two-regime LL/ring
    /// dispatcher.
    pub mid_max_bytes: u64,
}

impl AutoConfig {
    /// Derive the LL transport cost from the platform's GASNet-EX tables
    /// (initiator software + GPU segment registration,
    /// [`PlatformSpec::gasnet_op_overhead_us`]; the flag rides in the
    /// same message for free — that is the LL trick), and the ring
    /// fallbacks from the same tables via [`RingConfig::auto`] at the
    /// platform's full-node rail count.
    pub fn for_platform(p: &PlatformSpec) -> Self {
        let nrings = crate::ring::default_nrings(p);
        Self::for_conduit(
            p.gasnet_op_overhead_us(),
            p.gasnet.eff,
            RingConfig::auto(p, &XcclOp::Broadcast { root: 0 }, nrings),
            RingConfig::auto(p, &XcclOp::AllReduce { op: diomp_fabric::ReduceOp::SumF32 }, nrings),
        )
    }

    /// Build from a conduit's per-operation overhead (µs), asymptotic
    /// wire efficiency, and the *live* ring configurations the engine
    /// will fall back to — the single place the fixed-point conversions
    /// live, shared by [`Self::for_platform`] and the core `Tuner`'s
    /// per-conduit derivation. Threading the rings through here is what
    /// keeps the crossover pricing honest: the closed forms price the
    /// switch against exactly the ring that runs above it.
    pub fn for_conduit(
        op_overhead_us: f64,
        wire_eff: f64,
        ring_bcast: RingConfig,
        ring_allred: RingConfig,
    ) -> Self {
        debug_assert!(
            op_overhead_us.is_finite() && op_overhead_us >= 0.0,
            "conduit op overhead must be finite and non-negative, got {op_overhead_us}"
        );
        debug_assert!(
            wire_eff.is_finite() && wire_eff > 0.0 && wire_eff <= 1.0,
            "conduit wire efficiency must be a positive fraction in (0, 1], got {wire_eff}"
        );
        AutoConfig {
            ring_bcast,
            ring_allred,
            ll_hop_ns: (op_overhead_us * 1000.0).ceil() as u64,
            // Clamp at conversion time so even a sub-half-milli (but
            // positive) efficiency keeps a representable floor instead
            // of silently collapsing to a 1000× slower wire at read
            // time (the pre-PR 5 clamp lived in `wire_eff()` and masked
            // misconfigured conduits).
            wire_eff_milli: (wire_eff * 1000.0).round().clamp(1.0, 1000.0) as u16,
            // LL fused sends eagerly push the *whole* payload per hop:
            // a genuinely small-message regime. The pre-PR 5 1 MiB
            // ceiling was generous because the only alternative was the
            // ring; with the DBT covering the mid band, the LL guardrail
            // retreats to a faithful small-message bound.
            small_max_bytes: 256 << 10,
            mid_max_bytes: 8 << 20,
        }
    }

    /// The live ring configuration the dispatcher falls back to for
    /// `op` — per op class, because the platform tables price a
    /// reduction step differently from a copy step.
    pub fn ring_for(&self, op: &XcclOp) -> RingConfig {
        match op {
            XcclOp::Broadcast { .. } | XcclOp::AllGather => self.ring_bcast,
            XcclOp::AllReduce { .. } | XcclOp::Reduce { .. } => self.ring_allred,
        }
    }

    /// The wire efficiency as a fraction. The conversion in
    /// [`Self::for_conduit`] guarantees at least one thousandth, so no
    /// read-time clamp is needed (or wanted — it would mask a zeroed
    /// field as a 1000× slower wire).
    pub(crate) fn wire_eff(&self) -> f64 {
        f64::from(self.wire_eff_milli) / 1000.0
    }
}

/// The size below which [`CollEngine::Auto`](crate::CollEngine::Auto)
/// takes the LL/tree fast path for `op` on `n` devices (`nrings` ring
/// rails on the fallback), in bytes. `0` means the ring always wins
/// (notably: all-gather, and single-device communicators).
///
/// Both sides are priced from the platform tables: the tree side pays
/// `⌈log2 n⌉` (doubled for allreduce: reduce + broadcast) rounds of
/// fused-send overhead + wire latency + payload at the conduit's
/// asymptotic single-message bandwidth; the ring side pays its full
/// step count at the ring engine's calibrated per-step cost plus
/// chunk-pipelined wire time on the rail bandwidth. The crossover is
/// the largest power-of-two size where the tree estimate, inflated by a
/// 25 % safety margin, still undercuts the ring estimate.
pub fn crossover_bytes(
    platform: &PlatformSpec,
    op: &XcclOp,
    n: usize,
    nrings: usize,
    ac: &AutoConfig,
) -> u64 {
    if n < 2 || matches!(op, XcclOp::AllGather) {
        return 0;
    }
    let rounds = tree::rounds(n) as f64;
    let small_hops = match op {
        XcclOp::AllReduce { .. } => 2.0 * rounds,
        _ => rounds,
    };
    let ll_hop_us = ac.ll_hop_ns as f64 / 1000.0;
    let lat = platform.net.latency_us;
    // One fused message per hop at the tuned conduit's achieved rate.
    let ll_bw = platform.net.nic_gbps * ac.wire_eff() * 1e3; // B/µs
    let ring_chunk = ac.ring_for(op).chunk_bytes;
    let mut best = 0u64;
    for shift in 10..=40u32 {
        let s = 1u64 << shift;
        if s > ac.small_max_bytes {
            break;
        }
        let t_small = small_hops * (ll_hop_us + lat + s as f64 / ll_bw);
        // Ring side: the shared closed form both crossovers price
        // against, on the live ring chunking.
        let t_ring = ring::model_time_us(platform, op, n, nrings, ring_chunk, s as f64);
        if t_small * SAFETY <= t_ring {
            best = s;
        } else {
            break;
        }
    }
    best
}

/// Execute the LL/tree schedule for a small collective and return the
/// modelled completion instant. Runs in the last-arriving rank's task
/// like the ring engine, but the schedule is closed-form: each hop
/// charges the sender's link resource directly (so concurrent traffic
/// still contends) and no progress loop or chunk windowing is needed —
/// one fused message per tree edge, which is also why this path costs
/// almost no scheduler entries.
///
/// `root_pos` is the ring position of the root for rooted ops; the
/// symmetric allreduce reduces to position 0 and broadcasts back.
pub(crate) fn execute(
    ctx: &mut Ctx,
    world: &FabricWorld,
    order: &[usize],
    op: XcclOp,
    root_pos: Option<usize>,
    len: u64,
    ac: AutoConfig,
) -> SimTime {
    let platform = &world.platform;
    let profile = op.profile(&platform.coll);
    let hop = Dur::nanos(ac.ll_hop_ns.max(1));
    let n = order.len();
    let t0 = ctx.now() + Dur::micros(profile.launch_us);
    if n <= 1 || len == 0 {
        return t0;
    }
    let h = ctx.handle().clone();
    // One fused message per hop: sender-side software, then the payload
    // on the sender's outbound link (NIC across nodes, GPU-fabric port
    // within one). `combine` charges the receiver's fold for reductions.
    let send = |t: &mut Vec<SimTime>, s: usize, d: usize, combine: bool| {
        let sd = world.devs.dev(order[s]);
        let dd = world.devs.dev(order[d]);
        let (res, eff) = if sd.loc.node == dd.loc.node {
            (sd.port, ring::INTRA_EFF)
        } else {
            (sd.nic, ac.wire_eff())
        };
        let wire = ((len as f64 / eff).ceil() as u64).max(1);
        let tr = h.transfer_from(res, t[s] + hop, wire);
        let at = if combine { tr.arrive + hop } else { tr.arrive };
        t[d] = t[d].max(at);
    };
    let done = match op {
        XcclOp::Broadcast { .. } => {
            let root = root_pos.expect("broadcast without a root");
            let mut t = vec![SimTime::ZERO; n];
            t[root] = t0;
            for (s, d) in tree::bcast_hops(n, root) {
                send(&mut t, s, d, false);
            }
            t.into_iter().max().unwrap()
        }
        XcclOp::Reduce { .. } => {
            let root = root_pos.expect("reduce without a root");
            let mut t = vec![t0; n];
            for (s, d) in tree::reduce_hops(n, root) {
                send(&mut t, s, d, true);
            }
            t[root]
        }
        XcclOp::AllReduce { .. } => {
            // Reduce to position 0, broadcast back: 2·⌈log2 n⌉ rounds.
            let mut t = vec![t0; n];
            for (s, d) in tree::reduce_hops(n, 0) {
                send(&mut t, s, d, true);
            }
            let mut t2 = vec![SimTime::ZERO; n];
            t2[0] = t[0];
            for (s, d) in tree::bcast_hops(n, 0) {
                send(&mut t2, s, d, false);
            }
            t2.into_iter().max().unwrap()
        }
        XcclOp::AllGather => unreachable!("all-gather never takes the LL path"),
    };
    // Receive-side flag poll of the final fused line.
    done + hop
}

#[cfg(test)]
mod tests {
    use super::*;
    use diomp_fabric::ReduceOp;

    #[test]
    fn crossover_is_zero_for_allgather_and_tiny_comms() {
        let p = PlatformSpec::platform_a();
        let ac = AutoConfig::for_platform(&p);
        assert_eq!(crossover_bytes(&p, &XcclOp::AllGather, 8, 4, &ac), 0);
        assert_eq!(crossover_bytes(&p, &XcclOp::Broadcast { root: 0 }, 1, 1, &ac), 0);
    }

    #[test]
    fn crossovers_are_positive_and_bounded_at_paper_scale() {
        // At the Fig. 6 device counts the tree must win somewhere below
        // the guardrail on every platform, for both measured ops.
        for (p, n, nrings) in [
            (PlatformSpec::platform_a(), 64usize, 4usize),
            (PlatformSpec::platform_b(), 64, 4),
            (PlatformSpec::platform_c(), 16, 1),
        ] {
            let ac = AutoConfig::for_platform(&p);
            for op in [XcclOp::Broadcast { root: 0 }, XcclOp::AllReduce { op: ReduceOp::SumF32 }] {
                let cut = crossover_bytes(&p, &op, n, nrings, &ac);
                assert!(
                    (64 << 10..=ac.small_max_bytes).contains(&cut),
                    "{}: {op:?} crossover {cut} must cover the small regime",
                    p.name
                );
            }
        }
    }

    #[test]
    fn crossover_tracks_the_live_ring_config() {
        // The PR 5 headline bugfix: the LL↔ring switch point must be
        // priced against the ring Auto actually falls back to, so
        // changing the live ring chunking must move the crossover.
        let p = PlatformSpec::platform_c();
        let op = XcclOp::Broadcast { root: 0 };
        let mut ac = AutoConfig::for_platform(&p);
        let tuned = crossover_bytes(&p, &op, 16, 1, &ac);
        // A monolithic (unpipelined) ring pays the whole segment's wire
        // time on every hop, so the modelled ring slows down and the
        // fast path must extend.
        ac.ring_bcast = RingConfig { chunk_bytes: u64::MAX, max_inflight: 2 };
        let mono = crossover_bytes(&p, &op, 16, 1, &ac);
        assert!(
            mono > tuned,
            "crossover must move with the ring chunk: {mono} (monolithic) vs {tuned} (tuned)"
        );
        // The per-op threading matters too: an allreduce-config change
        // must not move the broadcast crossover.
        let mut ac2 = AutoConfig::for_platform(&p);
        ac2.ring_allred = RingConfig { chunk_bytes: u64::MAX, max_inflight: 2 };
        assert_eq!(crossover_bytes(&p, &op, 16, 1, &ac2), tuned);
    }

    #[test]
    fn wire_eff_round_trips_at_the_extremes() {
        let rings = (RingConfig::default(), RingConfig::default());
        for eff in [0.001, 0.0004, 0.5, 0.9995, 1.0] {
            let ac = AutoConfig::for_conduit(1.0, eff, rings.0, rings.1);
            let got = ac.wire_eff();
            assert!(got > 0.0, "eff {eff} must never collapse to zero");
            assert!(got <= 1.0, "eff {eff} must stay a fraction, got {got}");
            // Fixed-point granularity is one thousandth; the conversion
            // floor is the only deviation allowed beyond rounding.
            assert!(
                (got - eff).abs() <= 0.0005 + 1e-12 || (eff < 0.0005 && got == 0.001),
                "eff {eff} round-tripped to {got}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "wire efficiency")]
    #[cfg(debug_assertions)]
    fn zero_wire_efficiency_is_rejected_not_masked() {
        // The pre-PR 5 clamp silently turned a zeroed efficiency into a
        // 1000× slower wire; now the constructor refuses it outright.
        let _ = AutoConfig::for_conduit(1.0, 0.0, RingConfig::default(), RingConfig::default());
    }

    #[test]
    fn crossover_derives_from_the_tables_not_constants() {
        // Same shape, different platforms -> different crossovers.
        let ac_a = AutoConfig::for_platform(&PlatformSpec::platform_a());
        let ac_b = AutoConfig::for_platform(&PlatformSpec::platform_b());
        assert_ne!(ac_a.ll_hop_ns, ac_b.ll_hop_ns);
        let op = XcclOp::AllReduce { op: ReduceOp::SumF32 };
        let a = crossover_bytes(&PlatformSpec::platform_a(), &op, 64, 4, &ac_a);
        let b = crossover_bytes(&PlatformSpec::platform_b(), &op, 64, 4, &ac_b);
        // B's calibrated RCCL allreduce is far from the wire rate, so the
        // tree stays ahead much longer there than on A.
        assert!(b >= a, "platform B should keep the fast path at least as long as A");
    }
}
