//! The reduction-server engine: in-network allreduce offload onto
//! dedicated server ranks ([`CollEngine::ReductionServer`]).
//!
//! DiOMP's thesis is moving work off the host critical path; this engine
//! takes it to the logical end by offloading the *collective itself*.
//! Optcast-style reduction servers (a Rust NCCL-plugin design) dedicate
//! aggregation ranks with their own NICs: every GPU client sends each
//! byte **once** (a partitioned stripe to the server that owns it) and
//! receives each result byte **once**, instead of circulating the
//! payload `2(n−1)/n` times around a ring — and the reduce arithmetic
//! leaves the GPU ranks entirely.
//!
//! The schedule, per rail (the communicator's existing multi-NIC rail
//! machinery — rail rotation varies each node's *leader*, spreading the
//! upload across the node's NICs exactly like the ring's boundary
//! crossings):
//!
//! 1. **Chain up** — each client node block chain-reduces its members'
//!    contributions over the intra-node GPU fabric into the block's
//!    leader (sending the whole rail slice to the servers from every
//!    GPU would multiply the client NIC load `gpus_per_node`-fold and
//!    lose to the ring outright in the sender-charged link model).
//! 2. **Upload** — the leader stripes the rail slice across the live
//!    server devices and injects each stripe chunk on its NIC: `s /
//!    nrings` outbound bytes per client NIC, *half* the ring's
//!    `≈ 2s/nrings`.
//! 3. **Fold** — the stripe's owner reduces the arriving client copies;
//!    the per-chunk fold is charged at the engine's calibrated step cost
//!    when the result chunk is issued.
//! 4. **Fan back** — the owner sends the reduced chunk to every client
//!    leader on its *own* NIC (`client_blocks · s / server_nics` per
//!    server NIC — the dimension server provisioning buys down), charged
//!    to the communicator's dedicated **server flow** so multi-tenant
//!    WFQ accounting stays per-job but server traffic is separately
//!    observable in `flow_stats`.
//! 5. **Chain down** — the leader chain-broadcasts the chunk through
//!    its block.
//!
//! Everything is chunk-pipelined through the shared
//! [`ring::drive_schedule`] progress loop (per-edge FIFO lanes, bounded
//! in-flight windows, completions drained with the batched wait-any):
//! stripe `k` folds while stripe `k+1` is on the wire.
//!
//! **Membership semantics.** Server ranks are communicator members — they
//! arrive at the collective gate like everyone else — but they are
//! *infrastructure*: for allreduce on a server-equipped communicator the
//! data result is the element-wise reduction over the **client** ranks'
//! buffers (in ring order — the sequential reference association, like
//! the DBT engine), delivered to every client; server buffers pass
//! through untouched. This holds for every engine on such a
//! communicator, so engines stay byte-comparable. Ops other than
//! allreduce (and allreduce with every server dead) fall back to the
//! ring schedule over the full rails — the engine degrades, it never
//! hangs.
//!
//! [`crossover_bytes`] prices this schedule against the **live** ring
//! configuration from the same calibrated tables (the PR 5 rule: the
//! switch point and the fallback may never diverge);
//! [`CollEngine::Auto`](crate::CollEngine::Auto) uses it as the *fourth*
//! regime above the double-binary-tree band when the communicator has
//! live servers.
//!
//! [`CollEngine::ReductionServer`]: crate::CollEngine::ReductionServer

use diomp_fabric::FabricWorld;
use diomp_sim::{Ctx, Dur, FlowId, PlatformSpec, ResourceId, SimTime};

use crate::drive;
use crate::ll::{AutoConfig, SAFETY};
use crate::ops::XcclOp;
use crate::ring::{self, Rail, RingConfig};

/// Finest useful split of one server's share of a rail slice, in
/// chunks. Chunks are dealt round-robin across the live servers, so
/// each server's fan-back starts as soon as its first chunk lands and
/// pipelines through the whole upload; a few chunks per server is
/// enough overlap grain (contiguous per-server stripes instead would
/// serialise the tail: the last stripe's owner only starts fanning back
/// once the upload is essentially complete, costing a second full
/// wire pass — measured, that erases the entire win). Beyond this
/// floor, finer splits multiply scheduler entries — the gated
/// wall-clock cost — without buying overlap, the same trade the ring
/// engine's segment floor makes.
const STRIPE_CHUNKS: u64 = 4;

/// Floor on the dealt-chunk grain: below this, per-chunk step cost on
/// the leaders' upload lanes outweighs the overlap a finer deal buys.
const MIN_GRAIN: u64 = 4 << 10;

/// The emergent schedule's overhead over the pure bandwidth bound, like
/// the DBT crossover's fill penalty: uploads from many leaders interleave
/// on each server NIC and the fold turn-around couples the two wire
/// legs. The shared `SAFETY` margin absorbs the spread.
const FILL_PENALTY: f64 = 1.5;

/// Where the dedicated server nodes are carved from the communicator's
/// node-major ring order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServerPlacement {
    /// The last nodes of the ring order (default — keeps client ranks'
    /// ring positions, and therefore existing rooted-op root indices,
    /// stable when servers are added).
    #[default]
    Tail,
    /// The first nodes of the ring order.
    Head,
}

/// Reduction-server designation for a communicator
/// ([`CommOpts::servers`](crate::CommOpts)): how many whole nodes of the
/// communicator are dedicated server nodes, and where they are carved
/// from. `nodes == 0` (the default) disables the server path entirely —
/// the communicator behaves exactly as before this engine existed.
///
/// Servers are designated in node granularity because the win condition
/// is about NICs: every device of a server node serves (owns stripes on
/// its own NIC), and at least one node always remains a client.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerSpec {
    /// Number of whole nodes dedicated as reduction servers (capped at
    /// `nodes − 1` so at least one client node remains; 0 disables).
    pub nodes: usize,
    /// Which end of the node-major order the server nodes come from.
    pub placement: ServerPlacement,
}

impl ServerSpec {
    /// Designate `nodes` tail nodes as reduction servers.
    pub fn tail(nodes: usize) -> Self {
        ServerSpec { nodes, placement: ServerPlacement::Tail }
    }

    /// Is the server path enabled at all?
    pub fn enabled(&self) -> bool {
        self.nodes > 0
    }
}

/// The resolved server set a communicator carries (None when
/// [`ServerSpec::nodes`] is 0): which nodes are infrastructure, which
/// devices are live stripe owners, and the dedicated QoS flow their
/// fan-back traffic is charged to.
pub(crate) struct ServerSet {
    /// Node ids carved out as reduction servers — the *membership*
    /// boundary: these nodes' ranks are excluded from allreduce data
    /// semantics regardless of link health.
    pub(crate) nodes: Vec<usize>,
    /// Live stripe owners (flat device indices): server devices whose
    /// NIC the health vector marked alive at init. Dead servers are
    /// blacklisted and the stripes re-split over the survivors; empty
    /// means every server is dead and the schedule falls back to the
    /// ring.
    pub(crate) devs: Vec<usize>,
    /// Dedicated flow for server fan-back traffic: same QoS weight as
    /// the owning job (WFQ accounting stays per-job) but separately
    /// observable in `flow_stats`.
    pub(crate) flow: FlowId,
}

/// The NIC-level shape of a server-equipped communicator — the inputs
/// [`crossover_bytes`] prices the schedule from. Derived live by the
/// communicator (so dead-server blacklisting re-prices the crossover),
/// or built explicitly by tests and the autotuner's documented tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerLayout {
    /// Client node blocks (each chain-reduces to a rotated leader).
    pub client_blocks: usize,
    /// Live server devices — the stripe owners.
    pub server_devs: usize,
    /// Distinct NICs among the live server devices: the fan-back
    /// dimension (`client_blocks · s / server_nics` per server NIC).
    pub server_nics: usize,
    /// Devices per client block (the intra-node chain length).
    pub chain: usize,
}

impl ServerLayout {
    /// The layout a full-node communicator on `platform` with
    /// `client_nodes + server_nodes` nodes resolves to when every server
    /// NIC is healthy — what the autotuner's documented tables and the
    /// bench clusters use.
    pub fn full_nodes(platform: &PlatformSpec, client_nodes: usize, server_nodes: usize) -> Self {
        let gpn = platform.gpus_per_node.max(1);
        ServerLayout {
            client_blocks: client_nodes,
            server_devs: server_nodes * gpn,
            server_nics: server_nodes * platform.net.nics_per_node.max(1),
            chain: gpn,
        }
    }
}

/// Closed-form estimate of the reduction-server schedule's completion
/// time for an `s`-byte allreduce, in µs — same calibrated scalars
/// (`ring::tuning_for`) as the ring and DBT models, so the fourth
/// regime is priced from the same tables as the other three.
///
/// Structure: the two wire legs — `s/nrings` upload per client leader
/// NIC and `client_blocks·s/server_nics` fan-back per server NIC —
/// overlap almost entirely in the pipelined schedule (the estimate is
/// the larger plus a 30 % residual of the smaller, the ring model's
/// overlap rule), plus the pipeline fill: the intra-node chains up and
/// down, one upload and one fan-back hop carrying a stripe chunk, and
/// the fold step, inflated by the shared fill penalty.
pub fn model_time_us(
    platform: &PlatformSpec,
    op: &XcclOp,
    nrings: usize,
    layout: &ServerLayout,
    chunk_bytes: u64,
    s: f64,
) -> f64 {
    let t = ring::tuning_for(platform, op, nrings);
    let lat = platform.net.latency_us;
    let bw = platform.net.nic_gbps * t.inter_eff * 1e3; // B/µs per edge
    let nrings_f = nrings.max(1) as f64;
    let nb = layout.client_blocks.max(1) as f64;
    let nics = layout.server_nics.max(1) as f64;
    let chain = layout.chain.saturating_sub(1) as f64;
    let up = s / nrings_f / bw;
    let down = nb * s / nics / bw;
    let stripe = s / (nrings_f * layout.server_devs.max(1) as f64);
    let cw = stripe.min(chunk_bytes.max(1) as f64);
    let fill = 2.0 * chain * (t.step_us + lat) + 2.0 * (t.step_us + lat + cw / bw) + t.step_us;
    let (hi, lo) = if up > down { (up, down) } else { (down, up) };
    hi + 0.3 * lo + FILL_PENALTY * fill
}

/// The size from which
/// [`CollEngine::Auto`](crate::CollEngine::Auto) hands `op` to the
/// reduction servers — the *lower* boundary of the fourth regime, in
/// bytes. `0` means the servers never win (no live servers, too few
/// NICs for the fan-back to beat the ring's circulation, or a
/// non-allreduce op — only the symmetric allreduce has a server
/// schedule).
///
/// Both sides are priced from the platform tables on the **live**
/// ring chunking ([`AutoConfig::ring_for`]) — the PR 5 rule. The
/// fourth regime is a *top* band, so the crossover is the start of the
/// winning run that extends to the top of the scan: the smallest
/// power-of-two size from which the server estimate, inflated by the
/// shared 25 % safety margin, undercuts the ring estimate at **every**
/// larger size. A transient small-size latency win that loses the
/// bandwidth race at scale (the starved-fan-back case) does not open
/// the band. Because the layout is an argument, the boundary moves
/// with the live server set: fewer live server NICs → slower fan-back
/// → a vanished crossover; and the dispatcher clamps an open cut above
/// the live DBT/ring boundaries, so the comm-level band also moves
/// with the live ring configuration.
pub fn crossover_bytes(
    platform: &PlatformSpec,
    op: &XcclOp,
    n: usize,
    nrings: usize,
    layout: &ServerLayout,
    ac: &AutoConfig,
) -> u64 {
    if n < 2
        || layout.server_devs == 0
        || layout.client_blocks == 0
        || !matches!(op, XcclOp::AllReduce { .. })
    {
        return 0;
    }
    let ring_chunk = ac.ring_for(op).chunk_bytes;
    let mut cut = 0u64;
    for shift in 10..=40u32 {
        let s = 1u64 << shift;
        let t_rsv = model_time_us(platform, op, nrings, layout, ring_chunk, s as f64);
        let t_ring = ring::model_time_us(platform, op, n, nrings, ring_chunk, s as f64);
        if t_rsv * SAFETY <= t_ring {
            if cut == 0 {
                cut = s;
            }
        } else {
            // A loss anywhere above resets the band: the top band must
            // win from its boundary all the way up.
            cut = 0;
        }
    }
    cut
}

/// One chunk transfer of the server schedule.
struct Send {
    res: ResourceId,
    lane: u32,
    bytes: u64,
    /// Link efficiency at this edge (intra-node fabric or NIC share).
    eff: f64,
    /// Flow the transfer is charged to: the communicator flow for client
    /// traffic, the dedicated server flow for fan-back.
    flow: FlowId,
    /// Chain predecessor / fan-back arrival enabling this send.
    dep: Option<u32>,
    /// Fan-in group (index into the group table): a fan-back send is
    /// enabled only once *every* client upload of its (stripe, chunk)
    /// has arrived — the fold's inputs.
    fanin: Option<u32>,
}

/// Execute the reduction-server allreduce schedule in the calling task's
/// context, advancing virtual time to the emergent completion instant.
/// Mirrors `ring::execute`/`dbt::execute`: per-rail payload slices,
/// per-edge FIFO lanes, `cfg.max_inflight` chunks outstanding per lane,
/// completions drained with the batched wait-any.
#[allow(clippy::too_many_arguments)] // one arg per schedule dimension; a struct would be ceremony
pub(crate) fn execute(
    ctx: &mut Ctx,
    world: &FabricWorld,
    rails: &[Rail],
    flow: FlowId,
    srv: &ServerSet,
    op: XcclOp,
    len: u64,
    cfg: RingConfig,
) -> SimTime {
    debug_assert!(matches!(op, XcclOp::AllReduce { .. }), "only allreduce has a server schedule");
    let platform = &world.platform;
    let t = ring::tuning_for(platform, &op, rails.len());
    ctx.delay(Dur::micros(t.launch_us));
    let n = rails.first().map_or(0, |r| r.order.len());
    if n <= 1 || len == 0 || srv.devs.is_empty() {
        return ctx.now();
    }
    let health = world.health();
    let elem = op.elem_align();
    let slices = ring::split_aligned(len, rails.len(), elem);
    let chunk_bytes = cfg.chunk_bytes.max(1);

    // Per-edge FIFO lane kinds, keyed by the *sending* rail position:
    // intra-node chain hops up and down, the leader's stripe uploads,
    // and the server's fan-back (charged on its own NIC).
    const CHAIN_UP: usize = 0;
    const UP: usize = 1;
    const DOWN: usize = 2;
    const CHAIN_DOWN: usize = 3;
    let nlanes = rails.len() * n * 4;
    let mut sends: Vec<Send> = Vec::new();
    let mut fanins: Vec<Vec<u32>> = Vec::new();
    for (ri, rail) in rails.iter().enumerate() {
        let (_, slen) = slices[ri];
        if slen == 0 {
            continue;
        }
        // Rail position of every flat device (servers included — rails
        // span the full communicator).
        let mut pos = vec![u32::MAX; world.devs.len()];
        for (i, &f) in rail.order.iter().enumerate() {
            pos[f] = i as u32;
        }
        // Client node blocks in this rail's rotated order; server nodes
        // are infrastructure and contribute no data, so they form no
        // blocks. Each block is rotated so a live-NIC member leads
        // (the rail rotation already varies the natural leader per
        // rail — that is what spreads the upload across the node's
        // NICs; the health rotation only steps in when a leader's NIC
        // is dead).
        let mut blocks: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let node = world.devs.dev(rail.order[i]).loc.node;
            if srv.nodes.contains(&node) {
                continue;
            }
            match blocks.last_mut() {
                Some(b) if world.devs.dev(rail.order[*b.last().unwrap()]).loc.node == node => {
                    b.push(i)
                }
                _ => blocks.push(vec![i]),
            }
        }
        for b in &mut blocks {
            if let Some(k) = b
                .iter()
                .position(|&p| health.link_factor_milli(world.devs.dev(rail.order[p]).nic) != 0)
            {
                b.rotate_left(k);
            }
        }
        if blocks.is_empty() {
            continue;
        }
        let lane_of = |p: usize, kind: usize| (((ri * n) + p) * 4 + kind) as u32;
        let edge = |src: usize, dst: usize| -> (ResourceId, f64) {
            let sd = world.devs.dev(rail.order[src]);
            let dd = world.devs.dev(rail.order[dst]);
            if sd.loc.node == dd.loc.node {
                (sd.port, t.intra_eff)
            } else {
                (sd.nic, t.inter_eff)
            }
        };
        // Round-robin chunk striping (optcast's layout): chunk `c` of
        // the rail slice belongs to server `c mod ndevs`, so every
        // server's inbound chunks — and therefore its fan-back — are
        // spread evenly across the upload timeline.
        // Grain: aim for STRIPE_CHUNKS chunks per server (the dealing
        // only smooths the tail if each server owns several), floored so
        // per-chunk step cost stays negligible and capped at the ring
        // chunk so an explicitly coarse config is honoured.
        let ndevs = srv.devs.len();
        let raw = slen.div_ceil(STRIPE_CHUNKS * ndevs as u64);
        let grain = raw.clamp(MIN_GRAIN.min(slen.max(1)), chunk_bytes.max(MIN_GRAIN));
        let nchunks = slen.div_ceil(grain) as usize;
        for (c, &(_, cb)) in ring::split_aligned(slen, nchunks, elem).iter().enumerate() {
            if cb == 0 {
                continue;
            }
            let sp = pos[srv.devs[c % ndevs]] as usize;
            {
                let group = fanins.len() as u32;
                fanins.push(Vec::with_capacity(blocks.len()));
                // Chain up + upload: every client block reduces this
                // chunk to its leader, which injects it toward the
                // stripe's owner on its NIC.
                for m in &blocks {
                    let mut prev: Option<u32> = None;
                    for k in (1..m.len()).rev() {
                        let (res, eff) = edge(m[k], m[k - 1]);
                        let idx = sends.len() as u32;
                        sends.push(Send {
                            res,
                            lane: lane_of(m[k], CHAIN_UP),
                            bytes: cb,
                            eff,
                            flow,
                            dep: prev,
                            fanin: None,
                        });
                        prev = Some(idx);
                    }
                    let (res, eff) = edge(m[0], sp);
                    let idx = sends.len() as u32;
                    sends.push(Send {
                        res,
                        lane: lane_of(m[0], UP),
                        bytes: cb,
                        eff,
                        flow,
                        dep: prev,
                        fanin: None,
                    });
                    fanins[group as usize].push(idx);
                }
                // Fold + fan back + chain down: once every block's copy
                // of this chunk has arrived, the owner issues the
                // reduced chunk to each leader (paying the fold's step
                // cost at issue), and leaders chain it through their
                // blocks.
                for m in &blocks {
                    let (res, eff) = edge(sp, m[0]);
                    let idx = sends.len() as u32;
                    sends.push(Send {
                        res,
                        lane: lane_of(sp, DOWN),
                        bytes: cb,
                        eff,
                        flow: srv.flow,
                        dep: None,
                        fanin: Some(group),
                    });
                    let mut prev = Some(idx);
                    for k in 1..m.len() {
                        let (res, eff) = edge(m[k - 1], m[k]);
                        let i2 = sends.len() as u32;
                        sends.push(Send {
                            res,
                            lane: lane_of(m[k - 1], CHAIN_DOWN),
                            bytes: cb,
                            eff,
                            flow,
                            dep: prev,
                            fanin: None,
                        });
                        prev = Some(i2);
                    }
                }
            }
        }
    }
    if sends.is_empty() {
        return ctx.now();
    }

    // ---- per-edge FIFO lanes (generation order is already FIFO) ----
    let mut lanes: Vec<Vec<u32>> = vec![Vec::new(); nlanes];
    for (i, s) in sends.iter().enumerate() {
        lanes[s.lane as usize].push(i as u32);
    }

    // ---- progress loop (shared with the ring and DBT engines) ----
    let issues: Vec<drive::ChunkSend> = sends
        .iter()
        .map(|s| drive::ChunkSend {
            res: s.res,
            lane: s.lane,
            wire: ((s.bytes as f64 / s.eff).ceil() as u64).max(1),
            flow: s.flow,
        })
        .collect();
    // Fan-in groups inline into the CSR rows: a fan-back send's
    // dependencies are every upload of its stripe group.
    let mut deps = drive::DepTable::with_capacity(sends.len(), 2 * sends.len());
    for s in &sends {
        deps.push_row(
            s.dep
                .into_iter()
                .chain(s.fanin.into_iter().flat_map(|g| fanins[g as usize].iter().copied())),
        );
    }
    let step = Dur::micros(t.step_us);
    if drive::fast_path_ok(ctx) {
        drive::drive_schedule_fast(ctx, &issues, &lanes, cfg.max_inflight, step, &deps);
    } else {
        drive::drive_schedule(ctx, &issues, &lanes, cfg.max_inflight, step, &deps);
    }
    // Receive-side processing of the final chunk.
    ctx.delay(Dur::micros(t.step_us));
    ctx.now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diomp_fabric::ReduceOp;

    fn allred() -> XcclOp {
        XcclOp::AllReduce { op: ReduceOp::SumF32 }
    }

    #[test]
    fn crossover_is_zero_without_servers_or_for_non_allreduce() {
        let p = PlatformSpec::platform_a();
        let ac = AutoConfig::for_platform(&p);
        let none = ServerLayout { client_blocks: 8, server_devs: 0, server_nics: 0, chain: 4 };
        assert_eq!(crossover_bytes(&p, &allred(), 32, 4, &none, &ac), 0);
        let live = ServerLayout::full_nodes(&p, 8, 8);
        assert_eq!(crossover_bytes(&p, &XcclOp::Broadcast { root: 0 }, 64, 4, &live, &ac), 0);
        assert_eq!(crossover_bytes(&p, &XcclOp::AllGather, 64, 4, &live, &ac), 0);
    }

    #[test]
    fn provisioned_servers_win_at_large_sizes_on_every_platform() {
        // The bench clusters: client nodes matched by server nodes. The
        // fourth regime must open at or below 16 MiB — the size the
        // bench gate hard-asserts the emergent win at.
        for (p, c, s) in [
            (PlatformSpec::platform_a(), 8usize, 8usize),
            (PlatformSpec::platform_b(), 4, 4),
            (PlatformSpec::platform_c(), 8, 8),
        ] {
            let ac = AutoConfig::for_platform(&p);
            let gpn = p.gpus_per_node;
            let layout = ServerLayout::full_nodes(&p, c, s);
            let nrings = crate::ring::default_nrings(&p);
            let cut = crossover_bytes(&p, &allred(), (c + s) * gpn, nrings, &layout, &ac);
            assert!(
                cut > 0 && cut <= 16 << 20,
                "{}: server crossover {cut} must open by 16 MiB",
                p.name
            );
        }
    }

    #[test]
    fn starved_server_nics_never_win() {
        // One server node against many clients: the fan-back NIC
        // serialises every client's result and the model must refuse
        // the switch at any size.
        let p = PlatformSpec::platform_a();
        let ac = AutoConfig::for_platform(&p);
        let layout = ServerLayout::full_nodes(&p, 15, 1);
        assert_eq!(crossover_bytes(&p, &allred(), 64, 4, &layout, &ac), 0);
    }

    #[test]
    fn open_band_never_loses_above_its_boundary() {
        // The top-band invariant behind the scan rule: wherever the
        // crossover opens, the modelled server time keeps undercutting
        // the modelled ring time (with the safety margin) at every
        // larger power of two — no re-entrant ring band above it.
        let p = PlatformSpec::platform_a();
        let ac = AutoConfig::for_platform(&p);
        let layout = ServerLayout::full_nodes(&p, 8, 8);
        let chunk = ac.ring_allred.chunk_bytes;
        let cut = crossover_bytes(&p, &allred(), 64, 4, &layout, &ac);
        assert!(cut > 0);
        let mut s = cut;
        while s <= 1 << 30 {
            let t_rsv = model_time_us(&p, &allred(), 4, &layout, chunk, s as f64);
            let t_ring = ring::model_time_us(&p, &allred(), 64, 4, chunk, s as f64);
            assert!(t_rsv * SAFETY <= t_ring, "loss inside the open band at {s} bytes");
            s *= 2;
        }
    }

    #[test]
    fn crossover_tracks_the_live_server_set() {
        // The other live config: blacklisting server NICs slows the
        // fan-back, so the crossover must retreat (rise or vanish) as
        // the live server set shrinks — dead-server re-pricing.
        let p = PlatformSpec::platform_a();
        let ac = AutoConfig::for_platform(&p);
        let full = ServerLayout::full_nodes(&p, 8, 8);
        let cut_full = crossover_bytes(&p, &allred(), 64, 4, &full, &ac);
        let half = ServerLayout { server_devs: 16, server_nics: 16, ..full };
        let cut_half = crossover_bytes(&p, &allred(), 64, 4, &half, &ac);
        assert!(cut_full > 0);
        assert!(
            cut_half > cut_full || cut_half == 0,
            "fewer live server NICs must delay the crossover: {cut_half} vs {cut_full}"
        );
    }

    #[test]
    fn server_spec_defaults_disabled_and_caps_nothing() {
        let d = ServerSpec::default();
        assert!(!d.enabled());
        assert_eq!(d.placement, ServerPlacement::Tail);
        assert!(ServerSpec::tail(2).enabled());
    }
}
