//! The ring-protocol engine: chunk-pipelined ring collectives executed
//! over the simulated links (paper §3.3, Fig. 6).
//!
//! Instead of pricing a collective with a calibrated whole-collective
//! curve ([`CollEngine::Profile`]), this engine *runs the protocol*: the
//! payload is split across `nrings` rails (one ring per NIC, NCCL's
//! multi-rail layout), each rail executes its 2(n−1) (allreduce) or n−1
//! (broadcast/allgather/reduce) ring steps as chunked transfers over the
//! simulated link resources — intra-node GPU-fabric ports and inter-node
//! NIC ports — with several chunks in flight per ring edge, exactly the
//! machinery PR 1's `PipelineConfig` built for point-to-point RMA. The
//! Fig. 6 size-dependence then *emerges* from protocol structure (step
//! count, pipeline fill, link serialisation, rail aggregation); only the
//! per-platform constants (launch cost, per-step overhead, link
//! efficiency at the bottleneck) remain calibration parameters, derived
//! from the same [`diomp_sim::CollProfile`] tables the profile engine
//! uses.
//!
//! Execution model: the last rank to arrive at the collective gate runs
//! a *progress loop* in its own task context. Every ring edge is a FIFO
//! lane of chunk sends; a send is issued once its upstream dependency
//! (the same chunk's arrival one step earlier) has completed and the
//! lane has a free buffer slot (`max_inflight`). In-flight completions
//! are drained with [`diomp_sim::Ctx::wait_any_batched`] — one wake-entry
//! per park instead of one per pending event, which is what makes a
//! 64-GPU, thousands-of-chunks collective cheap to schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use diomp_device::{DataMode, DeviceTable};
use diomp_fabric::FabricWorld;
use diomp_sim::{BwCurve, Ctx, Dur, FlowId, PlatformSpec, ResourceId, SimTime};

use crate::drive::{self, ChunkSend, DepTable};
use crate::gate::DeviceBuf;
use crate::ops::XcclOp;

/// Fraction of the per-edge bottleneck bandwidth one collective chunk
/// must achieve under the engine's per-chunk step overhead — the knee
/// query that sizes ring (and DBT) chunks from the platform tables.
/// Unlike the RMA pipeline's throughput-oriented 95 % knee, collective
/// chunks sit at the *latency–bandwidth balance point* (the 50 % knee,
/// where one chunk's wire time equals the per-chunk step cost): a
/// chunk is the pipeline grain of an `(n−1)`-hop traversal, so an
/// oversized chunk multiplies straight into the serial path — measured
/// on every paper platform, the emergent engines are flat-optimal from
/// this knee up to the segment-pipelining bound and regress beyond it.
const RING_KNEE_FRAC: f64 = 0.5;

/// Ring chunk boundaries are kept 4 KiB-aligned (matches the RMA
/// pipeline's staging granularity; reductions re-align to elements when
/// the payload is split).
const RING_CHUNK_ALIGN: u64 = 4 << 10;

/// Finest useful split of one allreduce ring segment, in chunks (the
/// floor the engine applies on top of the configured grain for huge
/// payloads whose segments dwarf the chunk size).
const ALLRED_TOKEN_CHUNKS: u64 = 4;

/// Chunk-pipeline knobs of the ring engine (mirrors the shape of PR 1's
/// RMA `PipelineConfig`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RingConfig {
    /// Pipeline granularity: a ring step's payload is split into chunks
    /// of this size so several chunks are in flight per step and the
    /// pipeline fill overlaps ring-step latency.
    pub chunk_bytes: u64,
    /// Outstanding chunk sends per ring edge (NCCL-style buffer slots).
    pub max_inflight: usize,
}

impl RingConfig {
    /// Defaults tuned for the paper's platforms: 128 KiB chunks, 4 slots
    /// per edge.
    pub fn new() -> Self {
        RingConfig { chunk_bytes: 128 << 10, max_inflight: 4 }
    }

    /// Derive the chunk size and in-flight window from the platform
    /// tables for `op` on `nrings` rails, instead of hard-coding
    /// 128 KiB / 4 — the transport autotuner's ring tuning (same knee
    /// machinery as the RMA `PipelineConfig::auto`).
    ///
    /// Every chunk pays the engine's per-step processing cost
    /// (`Tuning::step_us`, calibrated from the platform's collective
    /// tables) before touching the wire, so a chunk send follows the
    /// `s / (step + s/B)` saturation curve at the per-edge bottleneck
    /// bandwidth (`inter_eff × nic_gbps`, the rail's share of the
    /// calibrated asymptote). The chunk sits at that curve's
    /// 50 % knee (`RING_KNEE_FRAC`); the window covers wire latency plus one
    /// step per in-flight chunk, exactly like the RMA pipeline's
    /// latency-cover derivation. The same tuned configuration drives
    /// the double-binary-tree engine's chunk pipeline (the `dbt` module)
    /// — both engines share the per-edge grain, so the `Auto`
    /// dispatcher's mid band and ring fallback run on one live config.
    pub fn auto(platform: &PlatformSpec, op: &XcclOp, nrings: usize) -> Self {
        let t = tuning_for(platform, op, nrings);
        let edge_gbps = platform.net.nic_gbps * t.inter_eff;
        let curve = BwCurve::saturation(t.step_us, edge_gbps);
        let chunk_bytes =
            curve.knee_bytes(RING_KNEE_FRAC).div_ceil(RING_CHUNK_ALIGN) * RING_CHUNK_ALIGN;
        let chunk_us = chunk_bytes as f64 / (edge_gbps * 1e3);
        let cover = (platform.net.latency_us + t.step_us) / chunk_us;
        // One slot in flight, one covering latency + step, one spare so
        // a ragged tail chunk never serialises behind a full one — the
        // same shape as the RMA pipeline's window derivation.
        let max_inflight = (cover.ceil() as usize + 2).clamp(3, 8);
        RingConfig { chunk_bytes, max_inflight }
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Which completion-time engine a communicator uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollEngine {
    /// Calibrated whole-collective profile (the curve-fit path, kept for
    /// ablation against the emergent protocol).
    Profile,
    /// Chunk-pipelined ring protocol over the simulated links (default).
    Ring(RingConfig),
    /// Chunk-pipelined double-binary-tree protocol (the mid-band
    /// bandwidth algorithm, the `dbt` module): two complementary trees each
    /// reduce+broadcast half the payload in `⌈log2 n⌉` rounds instead of
    /// the ring's `2(n−1)` serial steps. Exposed as a first-class engine
    /// so benches and tests can pin it; [`CollEngine::Auto`] selects it
    /// per size. All-gather has no tree schedule and falls back to the
    /// ring with the same chunking under this engine.
    Dbt(RingConfig),
    /// Chunk-pipelined reduction-server offload (the `rserver` module):
    /// the communicator's dedicated server ranks
    /// ([`CommOpts::servers`](crate::CommOpts)) receive partitioned
    /// stripes from every client, fold them, and fan results back, so
    /// each client NIC moves every byte once instead of `2(n−1)/n`
    /// times. Only allreduce has a server schedule; other ops — and
    /// allreduce on a communicator with no live servers — fall back to
    /// the ring with the same chunking.
    ReductionServer(RingConfig),
    /// Protocol auto-selection (the transport autotuner's engine): a
    /// four-regime dispatcher priced per (op, size, device count) from
    /// the platform tables (configured by
    /// [`AutoConfig`](crate::ll::AutoConfig)). Small collectives run as
    /// LL-style fused eager sends over binomial trees (the LL engine);
    /// the mid band runs the double-binary-tree protocol; above the
    /// upper crossover — and always for all-gather — the configured ring
    /// takes over, unless the communicator has live reduction servers
    /// and the payload clears the server crossover, in which case the
    /// reduction-server schedule takes the top band.
    Auto(crate::ll::AutoConfig),
}

impl Default for CollEngine {
    fn default() -> Self {
        CollEngine::Ring(RingConfig::default())
    }
}

/// One ring edge: the link resource the source device transmits on.
#[derive(Clone, Copy, Debug)]
struct Edge {
    res: ResourceId,
    /// Crosses a node boundary (NIC) rather than the intra-node fabric.
    inter: bool,
}

/// One rail: a rotated device order plus its per-edge link assignment.
///
/// Rail `r` rotates each node's device block left by `r`, so the device
/// that crosses the node boundary — and therefore the NIC charged for
/// the crossing — differs per rail. That is how `nrings` concurrent
/// rings aggregate multi-NIC bandwidth on platforms A/B.
#[derive(Clone, Debug)]
pub(crate) struct Rail {
    /// Devices in this rail's ring order.
    pub(crate) order: Vec<usize>,
    edges: Vec<Edge>,
}

impl Rail {
    /// True when any ring edge of this rail runs over a link the health
    /// vector marks dead (factor 0). Such a rail would replay every
    /// chunk 1000× slow on the dead edge; the communicator blacklists it
    /// at init instead, re-splitting the payload over the survivors —
    /// NCCL's channel-disable on a downed NIC.
    pub(crate) fn uses_dead_link(&self, health: &diomp_fabric::HealthVec) -> bool {
        self.edges.iter().any(|e| health.link_factor_milli(e.res) == 0)
    }
}

/// Build the `nrings` rails over the node-major global ring order.
pub(crate) fn build_rails(world: &FabricWorld, order: &[usize], nrings: usize) -> Vec<Rail> {
    // Group the node-major order into per-node blocks.
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    for &f in order {
        let node = world.devs.dev(f).loc.node;
        match blocks.last_mut() {
            Some(b) if world.devs.dev(*b.last().unwrap()).loc.node == node => b.push(f),
            _ => blocks.push(vec![f]),
        }
    }
    (0..nrings.max(1))
        .map(|r| {
            let mut ord = Vec::with_capacity(order.len());
            for b in &blocks {
                let k = r % b.len();
                ord.extend(b[k..].iter().copied().chain(b[..k].iter().copied()));
            }
            let n = ord.len();
            let edges = (0..n)
                .map(|i| {
                    let a = world.devs.dev(ord[i]);
                    let b = world.devs.dev(ord[(i + 1) % n]);
                    if a.loc.node == b.loc.node {
                        Edge { res: a.port, inter: false }
                    } else {
                        Edge { res: a.nic, inter: true }
                    }
                })
                .collect();
            Rail { order: ord, edges }
        })
        .collect()
}

/// Calibrated per-op constants of the ring engine, derived from the same
/// platform tables the profile engine reads. The *structure* (steps,
/// chunks, rails, link serialisation) is the protocol's; these scalars
/// pin what each primitive costs on the platform:
///
/// * `launch_us` / `step_us` — the profile's launch cost and per-hop
///   processing overhead (kernel step, reduce, flag check),
/// * `inter_eff` — fraction of raw NIC bandwidth the library achieves at
///   the inter-node bottleneck, chosen so the emergent large-message
///   asymptote lands on the calibrated curve's top control point
///   (`curve_bw ≈ nrings × nic_gbps × eff`),
/// * `intra_eff` — fixed high fraction for the fast intra-node fabric,
///   which is never the bottleneck on the paper's platforms.
pub(crate) struct Tuning {
    pub(crate) launch_us: f64,
    pub(crate) step_us: f64,
    pub(crate) inter_eff: f64,
    pub(crate) intra_eff: f64,
}

pub(crate) const INTRA_EFF: f64 = 0.90;
const MIN_EFF: f64 = 0.01;
const MAX_EFF: f64 = 0.98;

/// The rail count a full-node communicator on this platform discovers
/// (`min(nics_per_node, gpus_per_node)` — the layout `XcclComm::init`
/// derives). The autotuner tunes ring parameters against this count;
/// communicators over partial nodes may discover fewer rails, in which
/// case the per-edge efficiency calibration shifts slightly but the
/// chunk/window shape remains table-derived.
pub fn default_nrings(platform: &PlatformSpec) -> usize {
    platform.net.nics_per_node.min(platform.gpus_per_node).max(1)
}

pub(crate) fn tuning_for(platform: &PlatformSpec, op: &XcclOp, nrings: usize) -> Tuning {
    let profile = op.profile(&platform.coll);
    let top_bw = profile.curve.points.last().expect("BwCurve is non-empty").1;
    let agg = nrings.max(1) as f64 * platform.net.nic_gbps;
    Tuning {
        launch_us: profile.launch_us,
        step_us: profile.hop_us,
        inter_eff: (top_bw / agg).clamp(MIN_EFF, MAX_EFF),
        intra_eff: INTRA_EFF,
    }
}

/// Closed-form estimate of the ring engine's completion time for a
/// payload of `s` bytes under `chunk_bytes` chunking, in µs — the
/// pricing model both protocol crossovers ([`crate::ll`],
/// [`crate::dbt`]) compare against, so the switch points track the live
/// ring configuration.
///
/// Structure, calibrated against the emergent engine, per op class:
///
/// * **Allreduce** (symmetric, `n` tokens in flight): the serial
///   latency chain pays every hop's step + wire latency but only the
///   *node-boundary* hops' chunk wire time (intra-node hops ride the
///   fast GPU fabric); the bottleneck NIC edge serialises the whole
///   rail traffic (`hops × seg`). The two overlap almost entirely in
///   the pipelined schedule, so the estimate is the larger plus a 30 %
///   residual of the smaller (fill/drain that cannot overlap).
/// * **Broadcast / reduce** (one token per rail): the token's own
///   traversal *is* the critical path — every hop pays step + latency
///   plus one chunk's wire time, the remainder of the segment drains
///   once behind it, and the fixed root injects every rail's slice on
///   its single NIC (the root-bound floor).
pub(crate) fn model_time_us(
    platform: &PlatformSpec,
    op: &XcclOp,
    n: usize,
    nrings: usize,
    chunk_bytes: u64,
    s: f64,
) -> f64 {
    let t = tuning_for(platform, op, nrings);
    let lat = platform.net.latency_us;
    let bw = platform.net.nic_gbps * t.inter_eff * 1e3; // B/µs per edge
    let nrings_f = nrings.max(1) as f64;
    let chunk = chunk_bytes.max(1) as f64;
    match op {
        XcclOp::AllReduce { .. } => {
            let hops = 2 * (n - 1);
            let seg = s / (n as f64 * nrings_f);
            let cw = seg.min(chunk);
            let nodes = n.div_ceil(platform.gpus_per_node.max(1));
            let lat_chain = hops as f64 * (t.step_us + lat) + hops.min(2 * nodes) as f64 * cw / bw;
            let wire = hops as f64 * seg / bw;
            lat_chain.max(wire) + 0.3 * lat_chain.min(wire)
        }
        _ => {
            let hops = (n - 1) as f64;
            let seg = s / nrings_f;
            let cw = seg.min(chunk);
            let path = hops * (t.step_us + lat + cw / bw) + (seg - chunk).max(0.0) / bw;
            path.max(s / bw)
        }
    }
}

/// Split `total` bytes into `parts` near-equal pieces whose boundaries
/// fall on `align`-byte element boundaries; any ragged tail rides with
/// the last non-empty piece. Returns `(offset, len)` per piece.
pub(crate) fn split_aligned(total: u64, parts: usize, align: u64) -> Vec<(u64, u64)> {
    let parts = parts.max(1);
    let align = align.max(1);
    let units = total / align;
    let base = units / parts as u64;
    let extra = units % parts as u64;
    let mut out = Vec::with_capacity(parts);
    let mut off = 0u64;
    for i in 0..parts as u64 {
        let len = (base + u64::from(i < extra)) * align;
        out.push((off, len));
        off += len;
    }
    // Ragged tail bytes (len not a multiple of align) go to the last piece.
    if off < total {
        let last = out.last_mut().unwrap();
        last.1 += total - off;
    }
    out
}

/// One chunk transfer over one ring edge.
struct Send {
    res: ResourceId,
    lane: u32,
    /// Ring step (= hop index of the owning chunk's path).
    step: u32,
    /// Token ordinal within the rail (segment / contribution index).
    tok: u32,
    /// Chunk ordinal within the token.
    chunk: u32,
    bytes: u64,
    /// Index of the send whose arrival enables this one (same chunk, one
    /// step earlier on the upstream edge).
    dep: Option<u32>,
    inter: bool,
}

/// Execute the ring schedule in the calling task's context, advancing
/// virtual time to the collective's emergent completion instant.
///
/// `root_flat` is the flat device index of the broadcast/reduce root
/// (ignored for symmetric ops).
#[allow(clippy::too_many_arguments)] // one arg per schedule dimension; a struct would be ceremony
pub(crate) fn execute(
    ctx: &mut Ctx,
    platform: &PlatformSpec,
    rails: &[Rail],
    flow: FlowId,
    op: XcclOp,
    root_flat: Option<usize>,
    len: u64,
    cfg: RingConfig,
) -> SimTime {
    let t = tuning_for(platform, &op, rails.len());
    ctx.delay(Dur::micros(t.launch_us));
    let n = rails.first().map_or(0, |r| r.order.len());
    if n <= 1 {
        return ctx.now();
    }

    // ---- build the send table: every (rail, token, chunk, hop) ----
    let elem = op.elem_align();
    let slices = split_aligned(len, rails.len(), elem);
    let chunk_bytes = cfg.chunk_bytes.max(1);

    // Scale-out fast path: a single-rail allreduce owns one lane per
    // ring edge, each on a private link resource, so the schedule can
    // be marched h-major in closed form without materialising the
    // O(n²·chunks) send table at all (33.5M sends at 4096 ranks). The
    // march prices every chunk through the same kernel reservation
    // calls as the explicit driver — bit-identical virtual time — and
    // jumps the structurally identical steady-state rows in one charge.
    if matches!(op, XcclOp::AllReduce { .. })
        && rails.len() == 1
        && drive::fast_path_ok(ctx)
        && distinct_edge_resources(&rails[0])
    {
        let (_, slen) = slices[0];
        if slen == 0 {
            return ctx.now();
        }
        march_allreduce(ctx, &rails[0], flow, slen, elem, chunk_bytes, &cfg, &t);
        // Receive-side processing of the final chunk.
        ctx.delay(Dur::micros(t.step_us));
        return ctx.now();
    }
    let mut sends: Vec<Send> = Vec::new();
    for (ri, rail) in rails.iter().enumerate() {
        let (_, slen) = slices[ri];
        // Tokens: `(bytes, first edge)` flows, each traversing `hops`
        // consecutive edges. Ring allreduce = reduce-scatter + allgather:
        // segment j starts on edge j and travels 2(n−1) hops; the chain
        // ops travel n−1 hops from their root.
        let (tokens, hops): (Vec<(u64, usize)>, usize) = match op {
            XcclOp::AllReduce { .. } => (
                split_aligned(slen, n, elem).into_iter().map(|(_, l)| l).zip(0..n).collect(),
                2 * (n - 1),
            ),
            XcclOp::AllGather => ((0..n).map(|j| (slen, j)).collect(), n - 1),
            XcclOp::Broadcast { .. } => {
                let root = rail_pos(rail, root_flat);
                (vec![(slen, root)], n - 1)
            }
            XcclOp::Reduce { .. } => {
                let root = rail_pos(rail, root_flat);
                (vec![(slen, (root + 1) % n)], n - 1)
            }
        };
        for (tok, &(bytes, start)) in tokens.iter().enumerate() {
            if bytes == 0 {
                // Empty segment/rail share: nothing flows. Tokens are
                // independent, so skipping one leaves no dangling deps —
                // and a sub-segment payload (len < n elements) would
                // otherwise pay the full O(rails·n²) schedule in phantom
                // 1-byte sends.
                continue;
            }
            // Allreduce tokens (the n ring segments) already pipeline
            // against each other, so splitting each one beyond a few
            // chunks buys no extra overlap — measured flat on every
            // platform — while multiplying scheduler entries, the gated
            // wall-clock cost. Floor the per-token grain accordingly;
            // the chain ops keep the configured grain (their single
            // token *is* the pipeline).
            let tok_chunk = match op {
                XcclOp::AllReduce { .. } => chunk_bytes.max(bytes.div_ceil(ALLRED_TOKEN_CHUNKS)),
                _ => chunk_bytes,
            };
            let nchunks = bytes.div_ceil(tok_chunk);
            for c in 0..nchunks {
                let cb = tok_chunk.min(bytes - c * tok_chunk);
                let mut dep: Option<u32> = None;
                for h in 0..hops {
                    let e = (start + h) % n;
                    let idx = sends.len() as u32;
                    sends.push(Send {
                        res: rail.edges[e].res,
                        lane: (ri * n + e) as u32,
                        step: h as u32,
                        tok: tok as u32,
                        chunk: c as u32,
                        bytes: cb,
                        dep,
                        inter: rail.edges[e].inter,
                    });
                    dep = Some(idx);
                }
            }
        }
    }
    if sends.is_empty() {
        return ctx.now();
    }

    // ---- per-edge FIFO lanes, processed in (step, token, chunk) order --
    let nlanes = rails.len() * n;
    let mut lanes: Vec<Vec<u32>> = vec![Vec::new(); nlanes];
    for (i, s) in sends.iter().enumerate() {
        lanes[s.lane as usize].push(i as u32);
    }
    for lane in &mut lanes {
        lane.sort_by_key(|&i| {
            let s = &sends[i as usize];
            (s.step, s.tok, s.chunk)
        });
    }

    // ---- progress loop (shared with the DBT engine) ----
    let issues: Vec<ChunkSend> = sends
        .iter()
        .map(|s| {
            let eff = if s.inter { t.inter_eff } else { t.intra_eff };
            ChunkSend {
                res: s.res,
                lane: s.lane,
                wire: ((s.bytes as f64 / eff).ceil() as u64).max(1),
                flow,
            }
        })
        .collect();
    let mut deps = DepTable::with_capacity(sends.len(), sends.len());
    for s in &sends {
        deps.push_row(s.dep);
    }
    let step = Dur::micros(t.step_us);
    if drive::fast_path_ok(ctx) {
        drive::drive_schedule_fast(ctx, &issues, &lanes, cfg.max_inflight, step, &deps);
    } else {
        drive::drive_schedule(ctx, &issues, &lanes, cfg.max_inflight, step, &deps);
    }
    // Receive-side processing of the final chunk.
    ctx.delay(Dur::micros(t.step_us));
    ctx.now()
}

/// Every ring edge of the rail transmits on its own link resource (no
/// port or NIC carries two edges). This is what makes the h-major march
/// exact with a per-lane free-list of reservations: lanes never contend
/// for a resource, so pricing them row-major instead of in global issue
/// order commutes. A single rail satisfies this on every paper platform
/// (one boundary NIC per node block, one fabric port per device); the
/// guard keeps the fast path honest on exotic topologies.
fn distinct_edge_resources(rail: &Rail) -> bool {
    let mut ids: Vec<usize> = rail.edges.iter().map(|e| e.res.index()).collect();
    ids.sort_unstable();
    ids.windows(2).all(|w| w[0] != w[1])
}

/// March the single-rail ring-allreduce schedule h-major — hop by hop,
/// one row of `n` tokens per hop — pricing every chunk with
/// [`diomp_sim::SimHandle::transfer_flow`] instead of events.
///
/// Exactness: the explicit driver issues a send at the first wake
/// instant where (a) the same chunk's upstream arrival has landed,
/// (b) the lane's in-flight window has a free slot, and (c) the lane's
/// FIFO predecessor has issued. All three enabling instants are known
/// in closed form one row ahead — (a) is the previous row's arrival on
/// the upstream lane, (b) is the `(p−window+1)`-th earliest arrival on
/// this lane (a per-lane min-heap of pending arrivals yields them in
/// time order), (c) is tracked per lane — so the issue instant is their
/// max and the reservation arithmetic (`free_at` serialisation,
/// rounding, fault perturbation) is shared with the event path.
///
/// Steady state: with a fault-free plan and uniform tokens, every row
/// applies the same max-plus update with per-edge constants, so as soon
/// as two consecutive rows differ by one rigid time shift `δ`, every
/// later row is the previous plus `δ` (shift covariance of max-plus
/// maps). The remaining rows are then applied in one charge: per-edge
/// `free_at` watermarks advance `m·δ` ([`diomp_sim::SimHandle::bulk_advance_resource`]),
/// the flow absorbs `m` rows of wire bytes, and the final-row arrivals
/// are the detected row's plus `m·δ`. An armed fault plan disables only
/// the jump — the per-row march still prices faulted edges exactly
/// (per-edge disarm, not per-run).
#[allow(clippy::too_many_arguments)]
fn march_allreduce(
    ctx: &mut Ctx,
    rail: &Rail,
    flow: FlowId,
    slen: u64,
    elem: u64,
    chunk_bytes: u64,
    cfg: &RingConfig,
    t: &Tuning,
) {
    let n = rail.order.len();
    let hops = 2 * (n - 1);
    let window = cfg.max_inflight.max(1);
    let step_d = Dur::micros(t.step_us);
    let t0 = ctx.now();

    // Token j (the ring segment starting on edge j): bytes, chunk grain
    // and chunk count — the same split `execute` materialises.
    let token_bytes: Vec<u64> = split_aligned(slen, n, elem).into_iter().map(|(_, l)| l).collect();
    let tok_chunk: Vec<u64> =
        token_bytes.iter().map(|&b| chunk_bytes.max(b.div_ceil(ALLRED_TOKEN_CHUNKS))).collect();
    let nchunks: Vec<usize> = token_bytes
        .iter()
        .zip(&tok_chunk)
        .map(|(&b, &tc)| if b == 0 { 0 } else { b.div_ceil(tc) as usize })
        .collect();

    // Per-lane march state (lane = ring edge of the single rail).
    let mut arr_prev: Vec<Vec<SimTime>> = vec![Vec::new(); n];
    let mut arr_cur: Vec<Vec<SimTime>> = vec![Vec::new(); n];
    let mut free_m: Vec<SimTime> = vec![SimTime::ZERO; n];
    let mut last_issue: Vec<SimTime> = vec![SimTime::ZERO; n];
    let mut win: Vec<BinaryHeap<Reverse<SimTime>>> = (0..n).map(|_| BinaryHeap::new()).collect();
    let mut total_sends: u64 = 0;
    let mut t_last = t0;

    // Steady-state jump eligibility: uniform tokens (identical chunk
    // pattern on every lane every row) and no armed fault plan (a
    // degradation window firing mid-run would break row rigidity).
    let uniform = slen > 0 && slen.is_multiple_of(elem) && (slen / elem).is_multiple_of(n as u64);
    let can_jump = uniform && !ctx.fault_armed();
    let mut prev_state: Vec<u64> = Vec::new();
    let mut prev_shape: Vec<u32> = Vec::new();
    let mut cur_state: Vec<u64> = Vec::new();
    let mut cur_shape: Vec<u32> = Vec::new();

    let mut h = 0usize;
    while h < hops {
        let mut t0_bound = false;
        for e in 0..n {
            arr_cur[e].clear();
            let j = (e + n - (h % n)) % n;
            let nc = nchunks[j];
            if nc == 0 {
                continue;
            }
            let bytes = token_bytes[j];
            let tc = tok_chunk[j];
            let eff = if rail.edges[e].inter { t.inter_eff } else { t.intra_eff };
            let up = (e + n - 1) % n;
            // `c` indexes the upstream lane's previous-row arrivals, not
            // an iterable of this loop — keep the index form.
            #[allow(clippy::needless_range_loop)]
            for c in 0..nc {
                let cb = tc.min(bytes - c as u64 * tc);
                let wire = ((cb as f64 / eff).ceil() as u64).max(1);
                let dep = if h == 0 { SimTime::ZERO } else { arr_prev[up][c] };
                let w = if win[e].len() >= window {
                    win[e].pop().expect("window heap underflow").0
                } else {
                    SimTime::ZERO
                };
                let ti = dep.max(w).max(last_issue[e]).max(t0);
                if ti == t0 {
                    t0_bound = true;
                }
                let tr = ctx.handle().transfer_flow(rail.edges[e].res, flow, ti + step_d, wire);
                arr_cur[e].push(tr.arrive);
                win[e].push(Reverse(tr.arrive));
                free_m[e] = tr.depart;
                last_issue[e] = ti;
                t_last = t_last.max(tr.arrive);
                total_sends += 1;
            }
        }
        // Jump detection: capture this row's full timing state and
        // compare against the previous row's. `t0_bound` rows are
        // excluded — the `.max(t0)` clamp is the one term of the row
        // update that is not shift-covariant.
        if can_jump && h + 1 < hops && !t0_bound {
            cur_state.clear();
            cur_shape.clear();
            for e in 0..n {
                cur_shape.push(arr_cur[e].len() as u32);
                cur_shape.push(win[e].len() as u32);
                cur_state.extend(arr_cur[e].iter().map(|a| a.nanos()));
                cur_state.push(free_m[e].nanos());
                cur_state.push(last_issue[e].nanos());
                let mut wv: Vec<u64> = win[e].iter().map(|r| r.0.nanos()).collect();
                wv.sort_unstable();
                cur_state.extend(wv);
            }
            if !prev_state.is_empty()
                && prev_shape == cur_shape
                && prev_state.len() == cur_state.len()
            {
                let delta = cur_state[0] - prev_state[0];
                let rigid =
                    delta > 0 && prev_state.iter().zip(&cur_state).all(|(&p, &c)| c == p + delta);
                if rigid {
                    let m = (hops - 1 - h) as u64;
                    jump_rows(ctx, rail, flow, t, &token_bytes, &tok_chunk, &nchunks, delta, m);
                    for e in 0..n {
                        for a in &arr_cur[e] {
                            t_last = t_last.max(*a + Dur::nanos(delta * m));
                        }
                        total_sends += m * nchunks[(e + n - (h % n)) % n] as u64;
                    }
                    break;
                }
            }
            std::mem::swap(&mut prev_state, &mut cur_state);
            std::mem::swap(&mut prev_shape, &mut cur_shape);
        } else {
            // A non-comparable row (t0-clamped or final) invalidates the
            // captured baseline; rigidity must be re-established.
            prev_state.clear();
            prev_shape.clear();
        }
        std::mem::swap(&mut arr_prev, &mut arr_cur);
        h += 1;
    }
    // One coalesced wake standing in for every per-chunk completion.
    ctx.sleep_until_coalesced(t_last, total_sends);
}

/// Apply `m` steady-state rows in one charge: advance every edge's
/// `free_at` watermark by `m·δ` with the matching utilisation bytes,
/// and credit the flow with `m` rows of wire bytes and the final
/// departure watermark. Called only under a rigid-shift detection, so
/// the updates land the exact state the per-row march would have.
#[allow(clippy::too_many_arguments)] // one arg per jump dimension; a struct would be ceremony
fn jump_rows(
    ctx: &Ctx,
    rail: &Rail,
    flow: FlowId,
    t: &Tuning,
    token_bytes: &[u64],
    tok_chunk: &[u64],
    nchunks: &[usize],
    delta: u64,
    m: u64,
) {
    if m == 0 {
        return;
    }
    let n = rail.order.len();
    let d = Dur::nanos(delta);
    let mut row_wire_total = 0u64;
    let mut depart_final = SimTime::ZERO;
    for (e, edge) in rail.edges.iter().enumerate() {
        // Uniform tokens: any token's chunk split prices a row on this
        // edge (index by lane for clarity, the values coincide).
        let j = e % n;
        let (bytes, tc, nc) = (token_bytes[j], tok_chunk[j], nchunks[j]);
        let eff = if edge.inter { t.inter_eff } else { t.intra_eff };
        let mut row_wire = 0u64;
        for c in 0..nc {
            let cb = tc.min(bytes - c as u64 * tc);
            row_wire += ((cb as f64 / eff).ceil() as u64).max(1);
        }
        ctx.handle().bulk_advance_resource(edge.res, d, m, row_wire);
        row_wire_total += row_wire;
        depart_final = depart_final.max(ctx.handle().resource_free_at(edge.res));
    }
    ctx.handle().bulk_charge_flow(flow, m * row_wire_total, depart_final);
}

pub(crate) fn rail_pos(rail: &Rail, root_flat: Option<usize>) -> usize {
    let flat = root_flat.expect("rooted collective without a root device");
    rail.order.iter().position(|&f| f == flat).expect("root device not in rail")
}

/// Apply the collective's data semantics the way the ring protocol
/// produces them.
///
/// Broadcast and all-gather are pure chunk rotations — byte-identical to
/// the direct copies of [`XcclOp::apply`], which is reused. Reductions
/// combine each rail segment in *ring chain order*: segment `j` starts at
/// its owner (ring position `j`) and folds successors in ring order —
/// the association order a ring reduce-scatter really produces. Ragged
/// tail bytes (payloads that are not a whole number of elements) keep
/// the profile path's semantics: they are taken from ring position 0.
pub(crate) fn apply(devs: &DeviceTable, rails: &[Rail], op: XcclOp, bufs: &[DeviceBuf], len: u64) {
    if devs.mode == DataMode::CostOnly {
        return;
    }
    let rop = match op {
        XcclOp::AllReduce { op } => op,
        XcclOp::Reduce { op, .. } => op,
        // Pure data movement: the ring rotation lands the same bytes the
        // direct copy does.
        XcclOp::Broadcast { .. } | XcclOp::AllGather => return op.apply(devs, bufs, len),
    };
    // Map flat device index -> contributed buffer.
    let mut by_flat: Vec<Option<DeviceBuf>> = vec![None; devs.len()];
    for b in bufs {
        by_flat[b.flat] = Some(*b);
    }
    let buf_of = |flat: usize| by_flat[flat].expect("no buffer for ring device");
    let read = |b: DeviceBuf, off: u64, n: u64| -> Vec<u8> {
        let mut v = vec![0u8; n as usize];
        devs.dev(b.flat).mem.read(b.off + off, &mut v).expect("ring read in bounds");
        v
    };
    let write = |b: DeviceBuf, off: u64, bytes: &[u8]| {
        devs.dev(b.flat).mem.write(b.off + off, bytes).expect("ring write in bounds");
    };

    let elem = rop.elem_bytes();
    let aligned = (len / elem) * elem;
    let root_buf = match op {
        XcclOp::Reduce { root, .. } => Some(bufs[root]),
        _ => None,
    };
    let slices = split_aligned(aligned, rails.len(), elem);
    for (rail, &(soff, slen)) in rails.iter().zip(&slices) {
        let n = rail.order.len();
        for (j, &(rel, seg_len)) in split_aligned(slen, n, elem).iter().enumerate() {
            if seg_len == 0 {
                continue;
            }
            let off = soff + rel;
            let mut acc = read(buf_of(rail.order[j]), off, seg_len);
            for k in 1..n {
                let other = read(buf_of(rail.order[(j + k) % n]), off, seg_len);
                rop.combine(&mut acc, &other);
            }
            match root_buf {
                Some(rb) => write(rb, off, &acc),
                None => {
                    for b in bufs {
                        write(*b, off, &acc);
                    }
                }
            }
        }
    }
    if aligned < len {
        // Ragged tail: element-wise reduction never touches it; it keeps
        // ring position 0's bytes, matching the profile path.
        let tail = read(bufs[0], aligned, len - aligned);
        match root_buf {
            Some(rb) => write(rb, aligned, &tail),
            None => {
                for b in bufs {
                    write(*b, aligned, &tail);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_aligned_covers_exactly_and_respects_alignment() {
        let parts = split_aligned(1000, 3, 8);
        assert_eq!(parts.len(), 3);
        let mut off = 0;
        for &(o, l) in &parts[..2] {
            assert_eq!(o, off);
            assert_eq!(l % 8, 0, "interior boundaries are element-aligned");
            off += l;
        }
        assert_eq!(parts[2].0 + parts[2].1, 1000, "tail bytes ride with the last piece");
    }

    #[test]
    fn split_aligned_handles_degenerate_sizes() {
        assert_eq!(split_aligned(0, 4, 8), vec![(0, 0), (0, 0), (0, 0), (0, 0)]);
        let tiny = split_aligned(8, 4, 8);
        assert_eq!(tiny.iter().map(|&(_, l)| l).sum::<u64>(), 8);
        assert_eq!(tiny[0], (0, 8), "one element lands in the first piece");
    }

    #[test]
    fn default_ring_config_pipelines() {
        let c = RingConfig::default();
        assert_eq!(c.chunk_bytes, 128 << 10);
        assert!(c.max_inflight >= 2, "pipelining needs at least two slots");
        assert!(matches!(CollEngine::default(), CollEngine::Ring(_)));
    }
}
