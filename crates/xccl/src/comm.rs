//! XCCL communicators: bootstrap, topology discovery, collective launch.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use diomp_fabric::{FabricWorld, HealthVec, RankHealth};
use diomp_sim::{derive_seed, Ctx, Dur, FlowId, QosClass, SimTime, Wait};
use parking_lot::Mutex;

use crate::dbt;
use crate::gate::{CollAbort, CollGate, DeviceBuf};
use crate::ll;
use crate::ops::XcclOp;
use crate::ring::{self, CollEngine, Rail};
use crate::rserver::{self, ServerLayout, ServerPlacement, ServerSet, ServerSpec};
use crate::unique_id::UniqueId;

/// Process-global gate registry: every rank constructs its own
/// communicator object, but all communicators created from the same
/// [`UniqueId`] share one rendezvous gate — that sharing is exactly what
/// the UniqueId bootstrap establishes in NCCL.
fn gate_for(id: UniqueId, n: usize) -> Arc<CollGate> {
    static GATES: OnceLock<Mutex<HashMap<u64, Arc<CollGate>>>> = OnceLock::new();
    let gates = GATES.get_or_init(|| Mutex::new(HashMap::new()));
    gates.lock().entry(id.bits()).or_insert_with(|| Arc::new(CollGate::new(n))).clone()
}

/// How communicator construction treats rails whose edges the health
/// vector (`gaspi_state_vec`) marks dead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RailPolicy {
    /// Blacklist dead rails and re-split the payload over the survivors,
    /// trading aggregate bandwidth for avoiding a 1000×-slow dead edge.
    /// At least one rail always survives: with every rail condemned
    /// there is no better topology to retreat to, so the layout stays
    /// unchanged and the injector's replay makes the damage visible.
    #[default]
    AvoidDead,
    /// Keep every rail regardless of health (measurement / debugging —
    /// e.g. quantifying what the blacklist buys).
    KeepAll,
}

/// Construction options for [`XcclComm::init`] — the one communicator
/// constructor. `CommOpts::default()` reproduces the historical
/// `init` behaviour (ring engine, normal QoS, dead rails avoided);
/// override fields with struct-update syntax:
///
/// ```ignore
/// XcclComm::init(ctx, &world, ranks, r, id, CommOpts {
///     qos: QosClass::High,
///     ..CommOpts::default()
/// });
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct CommOpts {
    /// Completion-time engine (emergent ring protocol, DBT, LL/tree
    /// auto-selection, or the calibrated profile).
    pub engine: CollEngine,
    /// QoS class of the owning job: fixes the weight this communicator's
    /// chunk traffic carries in the per-link weighted fair queue when
    /// contention is armed ([`diomp_sim::Sim::enable_contention`]).
    pub qos: QosClass,
    /// Degraded-rail handling at ring construction.
    pub rail_policy: RailPolicy,
    /// Reduction-server designation: how many whole nodes of the
    /// communicator are dedicated in-network reduction servers (see
    /// [`ServerSpec`]; the default disables the server path). Server
    /// ranks are members — they arrive at the gate — but are
    /// *infrastructure*: allreduce on a server-equipped communicator
    /// reduces over the **client** ranks only, and their fan-back
    /// traffic is charged to a dedicated QoS flow.
    pub servers: ServerSpec,
}

/// Ring topology summary produced by communicator initialisation.
#[derive(Clone, Debug)]
pub struct RingInfo {
    /// Devices in ring order (node-major, so node boundaries are crossed
    /// exactly `nodes` times — NCCL's bandwidth-optimal layout).
    pub order: Vec<usize>,
    /// Number of distinct nodes spanned.
    pub nodes: usize,
    /// Concurrent rings (one per NIC on multi-rail nodes — how NCCL
    /// reaches >single-NIC bandwidth on platforms A/B).
    pub nrings: usize,
}

/// A communicator over the devices of a set of ranks (the backend of one
/// DiOMP group, paper §3.3).
pub struct XcclComm {
    /// The fabric world.
    pub world: Arc<FabricWorld>,
    /// Participating ranks, in order.
    pub ranks: Vec<usize>,
    /// Bootstrap identifier this communicator was created from.
    pub id: UniqueId,
    /// Discovered ring topology.
    pub ring: RingInfo,
    /// Completion-time engine (emergent ring protocol or calibrated
    /// profile; see [`CollEngine`]).
    pub engine: CollEngine,
    /// QoS class of the owning job (see [`CommOpts::qos`]).
    pub qos: QosClass,
    /// This rank's traffic flow: tags every chunk charge the collective
    /// engines issue, so armed contention prices them at the
    /// communicator's QoS weight.
    flow: FlowId,
    /// Per-rail rotated ring orders with their edge link assignments.
    rails: Arc<Vec<Rail>>,
    /// Resolved reduction-server set (None when [`CommOpts::servers`]
    /// is disabled — the communicator then behaves exactly as before
    /// the server engine existed, including flow-id allocation).
    servers: Option<Arc<ServerSet>>,
    gate: Arc<CollGate>,
    /// Construction options, kept verbatim so [`XcclComm::shrink`] can
    /// re-initialise the survivor communicator with the same policy.
    opts: CommOpts,
}

impl XcclComm {
    /// Collectively initialise a communicator over `ranks` (every listed
    /// rank must call with the same `ranks`/`id`/`opts`). Charges the
    /// library's initialisation cost (topology discovery, ring
    /// construction, transport setup) and synchronises all participants.
    ///
    /// Engine, QoS weight and rail policy all ride in [`CommOpts`];
    /// `CommOpts::default()` reproduces the historical default
    /// constructor.
    pub fn init(
        ctx: &mut Ctx,
        world: &Arc<FabricWorld>,
        ranks: Vec<usize>,
        my_rank: usize,
        id: UniqueId,
        opts: CommOpts,
    ) -> Arc<XcclComm> {
        assert!(ranks.contains(&my_rank));
        let engine = opts.engine;
        // Topology discovery + transport setup (ncclCommInitRank).
        ctx.delay(Dur::micros(world.platform.coll.xccl_init_us));

        // Node-major device ordering minimises ring node-crossings.
        let mut order: Vec<usize> = ranks.iter().flat_map(|&r| world.devices_of(r)).collect();
        order.sort_by_key(|&f| (world.devs.dev(f).loc.node, world.devs.dev(f).loc.gpu));
        let mut nodes: Vec<usize> = order.iter().map(|&f| world.devs.dev(f).loc.node).collect();
        nodes.dedup();
        let nodes = nodes.len();
        let devs_per_node = order.len().div_ceil(nodes.max(1));
        let nrings = world.topo.nics_per_node().min(devs_per_node).max(1);

        // Degradation awareness (under `RailPolicy::AvoidDead`, the
        // default): rails whose edges ride a link the health vector
        // (`gaspi_state_vec`) marks dead are blacklisted — see
        // [`RailPolicy`]. On a healthy fabric the filter drops nothing
        // and the layout is bit-identical to the fault-free build.
        let mut rails = ring::build_rails(world, &order, nrings);
        if opts.rail_policy == RailPolicy::AvoidDead {
            let health = world.health();
            let alive: Vec<Rail> =
                rails.iter().filter(|r| !r.uses_dead_link(&health)).cloned().collect();
            if !alive.is_empty() {
                rails = alive;
            }
        }
        let nrings = rails.len();

        // Reduction-server carving: whole node blocks from the requested
        // end of the node-major order become infrastructure (at least
        // one client node always remains). Server devices whose NIC the
        // health vector marks dead are blacklisted — the stripes
        // re-split over the survivors, and with *every* server dead the
        // set is empty and the engines fall back to the ring schedule:
        // degrade, never hang. The dedicated server flow is allocated
        // only when servers are configured, so server-free communicators
        // keep their historical flow-id sequence bit for bit.
        let servers = if opts.servers.enabled() && nodes > 1 {
            let mut node_ids: Vec<usize> =
                order.iter().map(|&f| world.devs.dev(f).loc.node).collect();
            node_ids.dedup();
            let nsrv = opts.servers.nodes.min(nodes - 1);
            let srv_nodes: Vec<usize> = match opts.servers.placement {
                ServerPlacement::Tail => node_ids[nodes - nsrv..].to_vec(),
                ServerPlacement::Head => node_ids[..nsrv].to_vec(),
            };
            let health = world.health();
            let devs: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&f| {
                    let d = world.devs.dev(f);
                    srv_nodes.contains(&d.loc.node) && health.link_factor_milli(d.nic) != 0
                })
                .collect();
            let flow = ctx.new_flow(opts.qos.weight_milli());
            Some(Arc::new(ServerSet { nodes: srv_nodes, devs, flow }))
        } else {
            None
        };

        let rails = Arc::new(rails);
        let gate = gate_for(id, ranks.len());
        let flow = ctx.new_flow(opts.qos.weight_milli());
        Arc::new(XcclComm {
            world: world.clone(),
            ranks,
            id,
            ring: RingInfo { order, nodes, nrings },
            engine,
            qos: opts.qos,
            flow,
            rails,
            servers,
            gate,
            opts,
        })
    }

    /// Shrink the communicator onto the survivors of a failure:
    /// every rank the health vector marks [`RankHealth::Dead`] is
    /// dropped, and the survivor set is collectively re-initialised —
    /// rails, reduction-server carving, QoS flows and all four Auto
    /// regime boundaries are re-derived for the reduced topology by the
    /// one constructor ([`XcclComm::init`]) with the *original*
    /// construction options.
    ///
    /// Deterministic by construction: the replacement [`UniqueId`] is
    /// derived from the old communicator's id
    /// ([`diomp_sim::derive_seed`]), so every survivor — each calling
    /// `shrink` with the *same* health vector, e.g. the survivor
    /// agreement fixpoint ([`FabricWorld::converged_health`]) — lands on
    /// the same fresh rendezvous gate without any extra bootstrap
    /// round. Each survivor must call this collectively, like `init`.
    ///
    /// Panics if `my_rank` is itself marked dead or no rank survives.
    pub fn shrink(&self, ctx: &mut Ctx, health: &HealthVec, my_rank: usize) -> Arc<XcclComm> {
        let survivors: Vec<usize> = self
            .ranks
            .iter()
            .copied()
            .filter(|&r| health.rank_health(r) != RankHealth::Dead)
            .collect();
        assert!(survivors.contains(&my_rank), "a dead rank cannot shrink a communicator");
        let id = UniqueId::from_bits(derive_seed(self.id.bits(), 0x0541_814C));
        // Retire the dying communicator's QoS flow slots *before* the
        // survivor re-init so the replacement communicator reuses them —
        // repeated shrink cycles hold the kernel's flow table at a
        // constant size instead of leaking a slot pair per retry.
        // Accumulated [`diomp_sim::FlowStats`] are discarded with the
        // slot; callers attributing bytes across a shrink must read
        // [`diomp_sim::SimHandle::flow_stats`] first (the workload
        // harness does).
        ctx.release_flow(self.flow);
        if let Some(srv) = &self.servers {
            ctx.release_flow(srv.flow);
        }
        XcclComm::init(ctx, &self.world, survivors, my_rank, id, self.opts)
    }

    /// Position of a device in the ring.
    pub fn ring_pos(&self, flat: usize) -> usize {
        self.ring.order.iter().position(|&f| f == flat).expect("device not in communicator")
    }

    /// Number of devices in the communicator.
    pub fn ndevices(&self) -> usize {
        self.ring.order.len()
    }

    /// Node ids dedicated as reduction servers (empty when
    /// [`CommOpts::servers`] is disabled). These nodes' ranks are
    /// communicator members but contribute no data to allreduce.
    pub fn server_nodes(&self) -> &[usize] {
        self.servers.as_ref().map_or(&[], |s| &s.nodes)
    }

    /// Live reduction-server devices (flat indices): the stripe owners
    /// after dead-NIC blacklisting. Empty when no servers are
    /// configured *or* every server NIC is dead (ring fallback).
    pub fn live_server_devices(&self) -> &[usize] {
        self.servers.as_ref().map_or(&[], |s| &s.devs)
    }

    /// The dedicated QoS flow server fan-back traffic is charged to
    /// (None when no servers are configured). Pass it to
    /// [`diomp_sim::SimHandle::flow_stats`] to observe server traffic
    /// separately from the communicator's client flow.
    pub fn server_flow(&self) -> Option<FlowId> {
        self.servers.as_ref().map(|s| s.flow)
    }

    /// The NIC-level shape [`rserver::crossover_bytes`] prices this
    /// communicator's server schedule from, reflecting the *live*
    /// server set (dead-NIC blacklisting shrinks `server_devs` /
    /// `server_nics` and the crossover retreats accordingly). None when
    /// no servers are configured.
    pub fn server_layout(&self) -> Option<ServerLayout> {
        let srv = self.servers.as_ref()?;
        let mut nics: Vec<usize> =
            srv.devs.iter().map(|&f| self.world.devs.dev(f).nic.index()).collect();
        nics.sort_unstable();
        nics.dedup();
        let client_blocks = self.ring.nodes - srv.nodes.len();
        let client_devs = self
            .ring
            .order
            .iter()
            .filter(|&&f| !srv.nodes.contains(&self.world.devs.dev(f).loc.node))
            .count();
        Some(ServerLayout {
            client_blocks,
            server_devs: srv.devs.len(),
            server_nics: nics.len(),
            chain: client_devs.div_ceil(client_blocks.max(1)),
        })
    }

    /// The regime boundaries of this communicator's engine for `op`:
    /// `Some((ll_cut, dbt_cut, rsv_cut))` under [`CollEngine::Auto`],
    /// `None` for the single-protocol engines. Payloads up to `ll_cut`
    /// bytes run the LL/tree fast path, payloads in `(ll_cut, dbt_cut]`
    /// run the double-binary-tree engine, payloads of `rsv_cut` bytes
    /// and above run the reduction-server schedule when the
    /// communicator has live servers (`rsv_cut == 0` means the fourth
    /// regime is closed — no servers, or they never win), and
    /// everything in between falls back to the configured ring;
    /// `dbt_cut >= ll_cut` always, and an open `rsv_cut` always sits
    /// strictly above `dbt_cut` (an empty mid band collapses onto the
    /// lower boundary). All boundaries are derived from the platform
    /// tables at query time — see [`ll::crossover_bytes`],
    /// [`dbt::crossover_bytes`] and [`rserver::crossover_bytes`].
    pub fn auto_regimes(&self, op: &XcclOp) -> Option<(u64, u64, u64)> {
        match self.engine {
            CollEngine::Auto(ac) => {
                let n = self.ndevices();
                // Degradation-aware re-pricing: both boundaries are
                // priced against the bandwidth the fabric actually
                // delivers, not the nominal tables. The health vector's
                // worst *live* factor scales the wire rate (dead ranks
                // are blacklisted by rail filtering, not priced); with a
                // slower wire the latency advantage of the tree regimes
                // buys relatively less, so both crossovers retreat
                // toward the bandwidth-optimal ring. Healthy fabric
                // (factor 1000) prices on the unmodified tables.
                let factor = self.world.health().worst_live_factor_milli();
                let degraded;
                let platform = if factor < 1000 {
                    let mut p = self.world.platform.clone();
                    p.net.nic_gbps *= f64::from(factor) / 1000.0;
                    degraded = p;
                    &degraded
                } else {
                    &self.world.platform
                };
                let ll_cut = ll::crossover_bytes(platform, op, n, self.ring.nrings, &ac);
                let dbt_cut =
                    dbt::crossover_bytes(platform, op, n, self.ring.nrings, &ac).max(ll_cut);
                // The fourth regime: priced from the *live* server set
                // (dead-NIC blacklisting shrinks the layout and the
                // crossover retreats) on the same degradation-scaled
                // platform as the other boundaries. An open cut always
                // sits strictly above the mid band so the regimes stay
                // totally ordered.
                let rsv_cut = match self.server_layout() {
                    Some(layout) if layout.server_devs > 0 => {
                        let c = rserver::crossover_bytes(
                            platform,
                            op,
                            n,
                            self.ring.nrings,
                            &layout,
                            &ac,
                        );
                        if c == 0 {
                            0
                        } else {
                            c.max(dbt_cut.max(ll_cut) + 1)
                        }
                    }
                    _ => 0,
                };
                Some((ll_cut, dbt_cut, rsv_cut))
            }
            _ => None,
        }
    }

    /// The size (bytes) up to which this communicator's engine takes the
    /// LL/tree small-message fast path for `op`: `Some(cut)` under
    /// [`CollEngine::Auto`] (0 when the tree never wins, e.g. for
    /// all-gather), `None` for the single-protocol engines — the lower
    /// boundary of [`XcclComm::auto_regimes`].
    pub fn auto_crossover(&self, op: &XcclOp) -> Option<u64> {
        self.auto_regimes(op).map(|(ll_cut, _, _)| ll_cut)
    }

    /// Launch a collective. Every participating rank calls this with the
    /// buffers of *its* devices (`DeviceBuf` per owned device); all block
    /// until the modelled completion and the data semantics have been
    /// applied. Returns the completion instant.
    ///
    /// `len` is the per-device payload in bytes.
    pub fn collective(
        &self,
        ctx: &mut Ctx,
        my_rank: usize,
        my_bufs: Vec<DeviceBuf>,
        op: XcclOp,
        len: u64,
    ) -> SimTime {
        match self.try_collective(ctx, my_rank, my_bufs, op, len, Wait::Block) {
            Ok(done) => done,
            Err(_) => unreachable!("a blocking collective cannot abort"),
        }
    }

    /// [`XcclComm::collective`] under a wait discipline — the elastic
    /// entry point. [`Wait::Block`] is exactly `collective` (bit-
    /// identical park and completion). With [`Wait::Until`] every park
    /// at the rendezvous gate is bounded; when a deadline expires before
    /// the gate fills, the `gaspi_state_vec` probe runs
    /// ([`FabricWorld::probe_health`]) and the fault plan is consulted:
    /// a member rank whose kill time has passed means the gate can never
    /// fill, so the arrival is withdrawn — buffers untouched, since data
    /// semantics only ever run when a gate fills — and [`CollAbort`] is
    /// returned for the caller to [`XcclComm::shrink`] and re-run.
    /// A timeout *without* a confirmed death re-parks: slowness is
    /// straggling, not failure.
    pub fn try_collective(
        &self,
        ctx: &mut Ctx,
        my_rank: usize,
        my_bufs: Vec<DeviceBuf>,
        op: XcclOp,
        len: u64,
        wait: Wait,
    ) -> Result<SimTime, CollAbort> {
        let idx = self.ranks.iter().position(|&r| r == my_rank).expect("rank not in communicator");
        let world = self.world.clone();
        let order = self.ring.order.clone();
        let n = order.len();
        let engine = self.engine;
        let flow = self.flow;
        let rails = self.rails.clone();
        let servers = self.servers.clone();
        // Protocol selection happens here, through the same query the
        // public API exposes: None for single-protocol engines.
        let auto_cuts = self.auto_regimes(&op);
        let dead = |ctx: &mut Ctx| {
            // GASPI discipline: the expired deadline is the failure
            // signal; probe the state vector (committing any death
            // transition), then ask the plan whether a member's kill
            // time has passed. Degraded-but-alive members are
            // stragglers and never abort.
            self.world.probe_health();
            let now = ctx.now();
            ctx.handle().fault_plan().is_some_and(|p| {
                self.ranks.iter().any(|&r| p.kill_time(r as u32).is_some_and(|t| t <= now))
            })
        };
        self.gate.arrive_with(ctx, idx, my_bufs, wait, dead, move |ctx, arrivals| {
            // Assemble buffers in ring order.
            let mut by_flat: Vec<Option<DeviceBuf>> = vec![None; world.devs.len()];
            for a in arrivals {
                for b in &a.bufs {
                    by_flat[b.flat] = Some(*b);
                }
            }
            let bufs: Vec<DeviceBuf> = order
                .iter()
                .map(|&f| by_flat[f].unwrap_or_else(|| panic!("no buffer for device {f}")))
                .collect();

            let root_pos = match op {
                XcclOp::Broadcast { root } | XcclOp::Reduce { root, .. } => Some(root),
                _ => None,
            };
            // Membership semantics of a server-equipped communicator:
            // allreduce reduces over the *client* ranks only (in ring
            // order — the sequential reference association), delivered
            // to every client; server buffers pass through untouched.
            // This is a property of the communicator, not of the engine
            // that happens to run, so every engine on such a
            // communicator stays byte-comparable — and the ring
            // fallback for a dead server set produces the same bytes
            // the server schedule would have.
            let client_bufs: Option<Vec<DeviceBuf>> =
                servers.as_ref().filter(|_| matches!(op, XcclOp::AllReduce { .. })).map(|srv| {
                    order
                        .iter()
                        .zip(&bufs)
                        .filter(|&(&f, _)| !srv.nodes.contains(&world.devs.dev(f).loc.node))
                        .map(|(_, b)| *b)
                        .collect()
                });
            // Live server set, when the schedule can actually run.
            let live_srv = servers
                .as_ref()
                .filter(|s| !s.devs.is_empty() && matches!(op, XcclOp::AllReduce { .. }));
            // Which semantics the completion action must apply: the ring
            // engine combines in ring chain order; the profile, LL/tree,
            // DBT and reduction-server paths keep the sequential
            // reference order (`client_bufs`, when present, overrides
            // both with the client-only fold).
            let mut ring_semantics = false;
            let done = match engine {
                CollEngine::Auto(ac) => {
                    let (ll_cut, dbt_cut, rsv_cut) =
                        auto_cuts.expect("Auto engine always has regime boundaries");
                    if len <= ll_cut {
                        ll::execute(ctx, &world, &order, op, root_pos, len, ac)
                    } else if len <= dbt_cut {
                        // The mid band runs on the same live per-op
                        // chunking as the ring fallback — one tuned
                        // config, both engines.
                        let root_flat = root_pos.map(|r| order[r]);
                        dbt::execute(
                            ctx,
                            &world,
                            &rails,
                            flow,
                            op,
                            root_flat,
                            len,
                            ac.ring_for(&op),
                        )
                    } else if let Some(srv) = live_srv.filter(|_| rsv_cut > 0 && len >= rsv_cut) {
                        // The fourth regime: clients are injection-bound
                        // at these sizes, so hand the fold to the
                        // server ranks — on the same live chunking as
                        // the ring either side of the boundary.
                        rserver::execute(ctx, &world, &rails, flow, srv, op, len, ac.ring_for(&op))
                    } else {
                        ring_semantics = true;
                        let root_flat = root_pos.map(|r| order[r]);
                        ring::execute(
                            ctx,
                            &world.platform,
                            &rails,
                            flow,
                            op,
                            root_flat,
                            len,
                            ac.ring_for(&op),
                        )
                    }
                }
                CollEngine::ReductionServer(rc) => match live_srv {
                    Some(srv) => rserver::execute(ctx, &world, &rails, flow, srv, op, len, rc),
                    // No live servers (never configured, or every
                    // server NIC dead) or no server schedule for this
                    // op: the ring runs with the same chunking, so the
                    // engine stays total — degrade, never hang.
                    None => {
                        ring_semantics = true;
                        let root_flat = root_pos.map(|r| order[r]);
                        ring::execute(ctx, &world.platform, &rails, flow, op, root_flat, len, rc)
                    }
                },
                CollEngine::Dbt(rc) => {
                    // All-gather has no tree schedule: fall back to the
                    // ring with the same chunking so the engine stays
                    // total over ops.
                    if matches!(op, XcclOp::AllGather) {
                        ring_semantics = true;
                        ring::execute(ctx, &world.platform, &rails, flow, op, None, len, rc)
                    } else {
                        let root_flat = root_pos.map(|r| order[r]);
                        dbt::execute(ctx, &world, &rails, flow, op, root_flat, len, rc)
                    }
                }
                CollEngine::Profile => {
                    // Modelled completion: launch + ring-fill hop latency +
                    // wire bytes over the library's achieved-bandwidth
                    // curve. The curve is calibrated per platform against
                    // the vendor library's measured behaviour (Fig. 6) and
                    // already includes multi-rail aggregation and protocol
                    // switches (LL/LL128/Simple), which is why it need not
                    // be monotonic.
                    let coll = &world.platform.coll;
                    let profile = op.profile(coll);
                    let hops = (n.max(2) - 1) as u32;
                    let wire = (len as f64 * op.wire_factor(n)).ceil() as u64;
                    let us = profile.time_us(wire.max(1), hops);
                    ctx.now() + Dur::micros(us)
                }
                CollEngine::Ring(rc) => {
                    // Emergent completion: run the chunk-pipelined ring
                    // schedule over the simulated links in this (the last
                    // arriving) task's context.
                    ring_semantics = true;
                    let root_flat = root_pos.map(|r| order[r]);
                    ring::execute(ctx, &world.platform, &rails, flow, op, root_flat, len, rc)
                }
            };

            // Real data semantics at completion. The ring engine combines
            // reduction segments in ring chain order; the profile engine,
            // the LL/tree fast path and the DBT engine keep the
            // sequential reference order (tree reductions fold whole
            // payloads with the root's contribution first — the
            // reference association, property-tested byte-identical to
            // the sequential fold). On a server-equipped communicator
            // the client-only fold overrides both (membership
            // semantics — uniform across engines).
            let devs = world.devs.clone();
            let rails2 = rails.clone();
            ctx.handle().schedule_at(done, move |_| {
                if let Some(cb) = &client_bufs {
                    op.apply(&devs, cb, len)
                } else if ring_semantics {
                    ring::apply(&devs, &rails2, op, &bufs, len)
                } else {
                    op.apply(&devs, &bufs, len)
                }
            });
            done
        })
    }
}
