//! The double-binary-tree engine: the mid-band bandwidth algorithm
//! between the LL/tree latency protocol and the chunk-pipelined ring.
//!
//! A ring allreduce pays `2(n−1)` serial step latencies; below the
//! multi-MiB sizes where its near-perfect bandwidth utilisation pays
//! off, those steps dominate. NCCL's answer (and this module's) is the
//! *double binary tree* of Sanders, Speck & Träff: two complementary
//! trees over the same ranks, each reducing-then-broadcasting **half**
//! the payload in `⌈log2 n⌉` rounds. The trees complement each other —
//! no rank forwards (has children) in both trees — so the per-rank
//! send load stays ≈ `2·len`, the same asymptotic wire cost as the
//! ring, while the critical path shrinks from `2(n−1)` steps to
//! `2⌈log2 n⌉`.
//!
//! The trees span **node blocks**, not devices: within a node the
//! payload chains over the GPU fabric to the block's *leader*, and only
//! leaders talk across nodes — one up and at most two down NIC
//! transfers per node per tree, which keeps the per-NIC load at the
//! ring's `2·slice` bound (a device-level tree crosses a node boundary
//! at every subtree seam and loses the bandwidth race before latency
//! even counts). Like the ring engine, the schedule runs **per rail**:
//! the payload splits across the communicator's `nrings` rails, and the
//! rails' rotated block orders make a different device lead each rail's
//! blocks, so the leader NIC load spreads across the node's NICs
//! exactly like the ring's boundary crossings (NCCL's tree *channels*).
//!
//! Execution mirrors [`crate::ring`]: the schedule is a table of chunk
//! sends with explicit dependencies (a chunk climbs to a parent only
//! once the same chunk has arrived from *both* children; it descends to
//! a child only once it has arrived from the parent), per-edge FIFO
//! lanes bound in-flight chunks to the configured window, and the
//! progress loop drains completions with
//! [`diomp_sim::Ctx::wait_any_batched`] — one wake per park. Chunk size
//! and window are table-derived ([`RingConfig::auto`], the knee
//! machinery at the latency–bandwidth balance point), so the whole mid
//! band is tuned from the platform tables, not constants.
//!
//! [`crossover_bytes`] prices this protocol against the live ring
//! configuration from the same tables;
//! [`CollEngine::Auto`](crate::CollEngine::Auto) uses it as the upper
//! boundary of the mid band (the lower boundary is
//! [`crate::ll::crossover_bytes`], the LL/tree cut).

use diomp_fabric::FabricWorld;
use diomp_sim::{Ctx, Dur, FlowId, PlatformSpec, ResourceId, SimTime};

use crate::drive;
use crate::ll::{AutoConfig, SAFETY};
use crate::ops::XcclOp;
use crate::ring::{self, Rail, RingConfig};

/// One of the two trees: parent/children per ring position.
#[derive(Clone, Debug)]
pub(crate) struct Tree {
    root: usize,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl Tree {
    fn from_parents(root: usize, parent: Vec<Option<usize>>) -> Tree {
        let mut children = vec![Vec::new(); parent.len()];
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(v);
            }
        }
        Tree { root, parent, children }
    }

    /// Longest root-to-leaf path in hops.
    pub(crate) fn depth(&self) -> usize {
        let mut d = vec![0usize; self.parent.len()];
        let mut todo = self.children[self.root].clone();
        let mut max = 0;
        while let Some(v) = todo.pop() {
            d[v] = d[self.parent[v].unwrap()] + 1;
            max = max.max(d[v]);
            todo.extend(self.children[v].iter().copied());
        }
        max
    }

    /// Positions ordered root-first (every parent before its children).
    fn top_down(&self) -> Vec<usize> {
        let mut out = vec![self.root];
        let mut i = 0;
        while i < out.len() {
            out.extend(self.children[out[i]].iter().copied());
            i += 1;
        }
        out
    }
}

/// Parent of `v` in the single binary tree over `0..n` rooted at 0 —
/// NCCL's `ncclGetBtree` construction: strip the lowest set bit and
/// attach to the next power-of-two boundary, falling back inside range.
/// Odd positions are always leaves, even positions interior — the
/// property the complementary second tree exploits.
fn btree_parent(n: usize, v: usize) -> Option<usize> {
    if v == 0 {
        return None;
    }
    let bit = v & v.wrapping_neg();
    let up = (v ^ bit) | (bit << 1);
    Some(if up >= n { v ^ bit } else { up })
}

/// The two complementary trees over `n` ring positions. Tree 0 is the
/// plain btree; tree 1 is its *shift* (odd `n`) or *mirror* (even `n`),
/// which swaps the leaf/interior roles: for even `n` no position
/// forwards in both trees (odd `n` concedes one overlapping position —
/// perfect complementarity is impossible there), so the two
/// half-payload pipelines never stack their forwarding load onto the
/// same NICs.
pub(crate) fn double_tree(n: usize) -> [Tree; 2] {
    let t0 = Tree::from_parents(0, (0..n).map(|v| btree_parent(n, v)).collect());
    let t1 = if n % 2 == 1 {
        // Shift: relabel v -> v+1 (mod n).
        let parent =
            (0..n).map(|v| btree_parent(n, (v + n - 1) % n).map(|p| (p + 1) % n)).collect();
        Tree::from_parents(1 % n, parent)
    } else {
        // Mirror: relabel v -> n-1-v.
        let parent = (0..n).map(|v| btree_parent(n, n - 1 - v).map(|p| n - 1 - p)).collect();
        Tree::from_parents(n - 1, parent)
    };
    [t0, t1]
}

/// The size up to which [`CollEngine::Auto`](crate::CollEngine::Auto)
/// runs `op` on the double-binary-tree engine — the upper boundary of
/// the mid band, in bytes. `0` means the band is empty (all-gather,
/// which has no tree schedule; communicators too small for two useful
/// trees; or platforms whose ring is never beaten).
///
/// Both sides are priced from the platform tables, mirroring the LL
/// crossover. The DBT side pays its actual tree depth (computed from
/// the `double_tree` construction, not an idealised `log2 n`) in
/// chunk-pipelined rounds — doubled for allreduce — plus the busiest
/// NIC's serialised share of the rail payload (`2·s/nrings` for
/// allreduce: half up + two halves down on the forwarding tree, half
/// up on the leaf tree; `1·s/nrings` for the rooted chains). Both
/// sides run on the live [`AutoConfig::ring_for`] chunking — the
/// switch point is priced against exactly the ring (and exactly the
/// chunk grain) that runs either side of it. The crossover is the
/// largest power-of-two size where the DBT estimate, inflated by the
/// shared 25 % safety margin, still undercuts the ring estimate, capped
/// by [`AutoConfig::mid_max_bytes`].
pub fn crossover_bytes(
    platform: &PlatformSpec,
    op: &XcclOp,
    n: usize,
    nrings: usize,
    ac: &AutoConfig,
) -> u64 {
    // The mid band is allreduce-only. All-gather has no tree schedule;
    // the rooted ops (broadcast, reduce) pin both tree roots — and the
    // ring's injection point — to one device, so beyond the LL regime
    // their cost is bound by the root's single NIC either way and the
    // measured tree runs 1.1–2.5× *slower* than the pipelined ring at
    // multi-MiB sizes. The symmetric allreduce is where the tree's
    // depth reduction genuinely wins (the Fig. 6 mid-band gap).
    // `CollEngine::Dbt` still executes the rooted schedules when pinned
    // explicitly.
    let gpn = platform.gpus_per_node.max(1);
    let nb = n.div_ceil(gpn);
    if n < 4 || nb < 2 || !matches!(op, XcclOp::AllReduce { .. }) {
        return 0;
    }
    let ring_chunk = ac.ring_for(op).chunk_bytes;
    let dbt_chunk = ring_chunk.max(1) as f64;
    let t = ring::tuning_for(platform, op, nrings);
    // Per-phase critical path: the node tree's depth (inter-node hops,
    // each carrying a chunk on the wire) plus the intra-node chain
    // (fast fabric — its chunk wire time is negligible, its per-hop
    // step cost is not).
    let tree_depth = double_tree(nb).iter().map(Tree::depth).max().unwrap() as f64;
    let chain = (n.min(gpn) - 1) as f64;
    let (phases, wire_mult) = match op {
        XcclOp::AllReduce { .. } => (2.0, 2.0),
        _ => (1.0, 1.0),
    };
    let lat = platform.net.latency_us;
    let bw = platform.net.nic_gbps * t.inter_eff * 1e3; // B/µs per edge
    let nrings = nrings.max(1);
    let nrings_f = nrings as f64;
    // The emergent schedule's overhead over the pure bandwidth bound
    // runs ~1.3–2× the naive fill estimate (two trees interleave their
    // lanes on shared NICs, and the allreduce's turn-around couples the
    // phases); priced at 1.5× — the SAFETY margin absorbs the spread.
    const FILL_PENALTY: f64 = 1.5;
    let mut best = 0u64;
    for shift in 10..=40u32 {
        let s = 1u64 << shift;
        if s > ac.mid_max_bytes {
            break;
        }
        // Per-rail tree payload; each tree carries half of it.
        let half = s as f64 / (2.0 * nrings_f);
        let cw = half.min(dbt_chunk);
        let fill = phases * (tree_depth * (t.step_us + lat + cw / bw) + chain * (t.step_us + lat));
        // The busiest NIC (an interior-tree leader, which also carries
        // its leaf-tree half) serialises `wire_mult` rail slices.
        let bandwidth = wire_mult * s as f64 / (nrings_f * bw);
        let t_dbt = bandwidth + FILL_PENALTY * fill;
        let t_ring = ring::model_time_us(platform, op, n, nrings, ring_chunk, s as f64);
        if t_dbt * SAFETY <= t_ring {
            best = s;
        } else {
            break;
        }
    }
    best
}

/// One chunk transfer over one tree edge.
struct Send {
    res: ResourceId,
    lane: u32,
    bytes: u64,
    /// Link efficiency at this edge (intra-node fabric or NIC share).
    eff: f64,
    /// Sends whose *arrival* enables this one: the same chunk from the
    /// block's own chain plus both child leaders (climbing), or from
    /// the parent leader / the previous chain hop (descending).
    deps: [Option<u32>; 3],
}

/// Execute the double-binary-tree schedule in the calling task's
/// context, advancing virtual time to the emergent completion instant.
/// Mirrors `ring::execute`: per-rail payload slices, per-edge FIFO
/// lanes, `cfg.max_inflight` chunks outstanding per lane, completions
/// drained with the batched wait-any.
///
/// `root_flat` roots both trees of every rail for broadcast/reduce
/// (each tree is rotated so its natural root lands on the requested
/// device); the symmetric allreduce keeps the natural roots so the
/// leaf/interior complementarity is exact.
#[allow(clippy::too_many_arguments)] // one arg per schedule dimension; a struct would be ceremony
pub(crate) fn execute(
    ctx: &mut Ctx,
    world: &FabricWorld,
    rails: &[Rail],
    flow: FlowId,
    op: XcclOp,
    root_flat: Option<usize>,
    len: u64,
    cfg: RingConfig,
) -> SimTime {
    let platform = &world.platform;
    let t = ring::tuning_for(platform, &op, rails.len());
    ctx.delay(Dur::micros(t.launch_us));
    let n = rails.first().map_or(0, |r| r.order.len());
    if n <= 1 || len == 0 {
        return ctx.now();
    }
    let (do_reduce, do_bcast) = match op {
        XcclOp::AllReduce { .. } => (true, true),
        XcclOp::Broadcast { .. } => (false, true),
        XcclOp::Reduce { .. } => (true, false),
        XcclOp::AllGather => unreachable!("all-gather never takes the DBT path"),
    };
    let slices = ring::split_aligned(len, rails.len(), op.elem_align());
    let chunk_bytes = cfg.chunk_bytes.max(1);

    // Per-edge FIFO lane kinds, keyed so every directed edge owns
    // exactly one lane: intra-node chain hops by their *sender*
    // position, inter-node tree ups by the sending leader, tree downs
    // by the receiving leader (a leader sends up once but down twice).
    const CHAIN_UP: usize = 0;
    const CHAIN_DOWN: usize = 1;
    const TREE_UP: usize = 2;
    const TREE_DOWN: usize = 3;
    let nlanes = rails.len() * 2 * 4 * n;
    let mut sends: Vec<Send> = Vec::new();
    for (ri, rail) in rails.iter().enumerate() {
        let (_, slen) = slices[ri];
        if slen == 0 {
            continue;
        }
        // The trees span *node blocks*, not devices: within a node the
        // payload moves as a chain over the GPU fabric toward the
        // block's leader; only leaders talk across nodes, so each node
        // pays exactly one up and at most two down NIC transfers per
        // tree — the layout that keeps the per-NIC load at the ring's
        // `2·slice` bound (a device-level tree would cross node
        // boundaries at every subtree seam and lose the bandwidth race
        // ~1.5× before latency even counts). The rail's intra-block
        // rotation makes a different device lead each rail's blocks, so
        // the leader NIC load spreads across the node's NICs exactly
        // like the ring's boundary crossings.
        let mut blocks: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let node = world.devs.dev(rail.order[i]).loc.node;
            match blocks.last_mut() {
                Some(b) if world.devs.dev(rail.order[*b.last().unwrap()]).loc.node == node => {
                    b.push(i)
                }
                _ => blocks.push(vec![i]),
            }
        }
        let nb = blocks.len();
        // Rooted ops: the root device must lead its block (chains
        // reduce toward / broadcast from the leader).
        let rooted = matches!(op, XcclOp::Broadcast { .. } | XcclOp::Reduce { .. });
        let mut root_block = 0usize;
        if rooted {
            let rp = ring::rail_pos(rail, root_flat);
            root_block = blocks.iter().position(|b| b.contains(&rp)).unwrap();
            let at = blocks[root_block].iter().position(|&p| p == rp).unwrap();
            blocks[root_block].rotate_left(at);
        }
        let trees = double_tree(nb);
        let halves = ring::split_aligned(slen, 2, op.elem_align());
        for (ti, tree) in trees.iter().enumerate() {
            let (_, hlen) = halves[ti];
            if hlen == 0 {
                continue;
            }
            // Rooted ops rotate the tree in block space so its natural
            // root lands on the root device's block; allreduce keeps
            // the natural roots (exact leaf/interior complementarity).
            let rot = if rooted { (root_block + nb - tree.root) % nb } else { 0 };
            let blk = |b: usize| &blocks[(b + rot) % nb];
            let edge = |src: usize, dst: usize| {
                let sd = world.devs.dev(rail.order[src]);
                let dd = world.devs.dev(rail.order[dst]);
                if sd.loc.node == dd.loc.node {
                    (sd.port, t.intra_eff)
                } else {
                    (sd.nic, t.inter_eff)
                }
            };
            let lane_of = |pos: usize, kind: usize| (((ri * 2 + ti) * n + pos) * 4 + kind) as u32;
            let top_down = tree.top_down();
            let nchunks = hlen.div_ceil(chunk_bytes);
            for c in 0..nchunks {
                let cb = chunk_bytes.min(hlen - c * chunk_bytes);
                // Reduce: each block chains its members' contributions
                // into the leader, then leaders climb the tree once both
                // child leaders' copies of this chunk have arrived.
                let mut chain_done: Vec<Option<u32>> = vec![None; nb];
                let mut up_idx: Vec<Option<u32>> = vec![None; nb];
                if do_reduce {
                    for (b, done) in chain_done.iter_mut().enumerate() {
                        let m = blk(b);
                        let mut prev = None;
                        for k in (1..m.len()).rev() {
                            let (res, eff) = edge(m[k], m[k - 1]);
                            let idx = sends.len() as u32;
                            sends.push(Send {
                                res,
                                lane: lane_of(m[k], CHAIN_UP),
                                bytes: cb,
                                eff,
                                deps: [prev, None, None],
                            });
                            prev = Some(idx);
                        }
                        *done = prev;
                    }
                    for &b in top_down.iter().rev() {
                        if b == tree.root {
                            continue;
                        }
                        let mut deps = [chain_done[b], None, None];
                        for (i, &cb_) in tree.children[b].iter().enumerate() {
                            deps[i + 1] = up_idx[cb_];
                        }
                        let p = tree.parent[b].unwrap();
                        let (res, eff) = edge(blk(b)[0], blk(p)[0]);
                        up_idx[b] = Some(sends.len() as u32);
                        sends.push(Send {
                            res,
                            lane: lane_of(blk(b)[0], TREE_UP),
                            bytes: cb,
                            eff,
                            deps,
                        });
                    }
                }
                // Broadcast: the root leader's sends wait for this
                // chunk's reduction to close (allreduce; no deps for a
                // pure broadcast), then the chunk descends the tree and
                // chains through each block.
                if do_bcast {
                    let root_deps = {
                        let mut d = [chain_done[tree.root], None, None];
                        for (i, &cb_) in tree.children[tree.root].iter().enumerate() {
                            d[i + 1] = up_idx[cb_];
                        }
                        d
                    };
                    let mut down_recv: Vec<Option<u32>> = vec![None; nb];
                    for &b in &top_down {
                        for &cb_ in &tree.children[b] {
                            let deps =
                                if b == tree.root { root_deps } else { [down_recv[b], None, None] };
                            let (res, eff) = edge(blk(b)[0], blk(cb_)[0]);
                            down_recv[cb_] = Some(sends.len() as u32);
                            sends.push(Send {
                                res,
                                lane: lane_of(blk(cb_)[0], TREE_DOWN),
                                bytes: cb,
                                eff,
                                deps,
                            });
                        }
                        let m = blk(b);
                        let mut prev = down_recv[b];
                        for k in 1..m.len() {
                            let deps = if k == 1 && b == tree.root {
                                root_deps
                            } else {
                                [prev, None, None]
                            };
                            let (res, eff) = edge(m[k - 1], m[k]);
                            let idx = sends.len() as u32;
                            sends.push(Send {
                                res,
                                lane: lane_of(m[k - 1], CHAIN_DOWN),
                                bytes: cb,
                                eff,
                                deps,
                            });
                            prev = Some(idx);
                        }
                    }
                }
            }
        }
    }
    if sends.is_empty() {
        return ctx.now();
    }

    // ---- per-edge FIFO lanes (generation order is already FIFO) ----
    let mut lanes: Vec<Vec<u32>> = vec![Vec::new(); nlanes];
    for (i, s) in sends.iter().enumerate() {
        lanes[s.lane as usize].push(i as u32);
    }

    // ---- progress loop (shared with the ring engine) ----
    let issues: Vec<drive::ChunkSend> = sends
        .iter()
        .map(|s| drive::ChunkSend {
            res: s.res,
            lane: s.lane,
            wire: ((s.bytes as f64 / s.eff).ceil() as u64).max(1),
            flow,
        })
        .collect();
    let mut deps = drive::DepTable::with_capacity(sends.len(), 2 * sends.len());
    for s in &sends {
        deps.push_row(s.deps.iter().flatten().copied());
    }
    let step = Dur::micros(t.step_us);
    if drive::fast_path_ok(ctx) {
        drive::drive_schedule_fast(ctx, &issues, &lanes, cfg.max_inflight, step, &deps);
    } else {
        drive::drive_schedule(ctx, &issues, &lanes, cfg.max_inflight, step, &deps);
    }
    // Receive-side processing of the final chunk.
    ctx.delay(Dur::micros(t.step_us));
    ctx.now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diomp_fabric::ReduceOp;

    /// Walk up from `v`; returns the hop count to the root (panics on a
    /// broken parent chain longer than `n`).
    fn hops_to_root(t: &Tree, mut v: usize) -> usize {
        let mut hops = 0;
        while let Some(p) = t.parent[v] {
            v = p;
            hops += 1;
            assert!(hops <= t.parent.len(), "parent chain cycles");
        }
        assert_eq!(v, t.root);
        hops
    }

    #[test]
    fn both_trees_span_every_rank_with_logarithmic_depth() {
        for n in 2..80usize {
            let bound = (n as f64).log2().ceil() as usize + 1;
            for t in double_tree(n) {
                assert!(t.parent[t.root].is_none());
                assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 1);
                let mut max = 0;
                for v in 0..n {
                    max = max.max(hops_to_root(&t, v));
                }
                assert!(max <= bound, "n={n}: depth {max} exceeds ⌈log2 n⌉+1={bound}");
                assert_eq!(t.depth(), max, "n={n}: Tree::depth agrees with the walk");
                assert!(t.children.iter().all(|c| c.len() <= 2), "binary tree");
                assert_eq!(t.top_down().len(), n, "top_down covers every position");
            }
        }
    }

    #[test]
    fn trees_are_complementary() {
        // The double-binary-tree property: no rank forwards (has
        // children) in both trees, so the two half-payload pipelines
        // never stack their interior send load on one NIC. Odd rank
        // counts concede exactly one overlapping position (perfect
        // complementarity needs an even count).
        for n in 2..80usize {
            let [t0, t1] = double_tree(n);
            let overlaps = (0..n)
                .filter(|&v| !t0.children[v].is_empty() && !t1.children[v].is_empty())
                .count();
            assert!(
                overlaps <= n % 2,
                "n={n}: {overlaps} ranks forward in both trees (allowed: {})",
                n % 2
            );
        }
    }

    #[test]
    fn crossover_is_zero_for_allgather_and_tiny_comms() {
        let p = PlatformSpec::platform_a();
        let ac = AutoConfig::for_platform(&p);
        assert_eq!(crossover_bytes(&p, &XcclOp::AllGather, 16, 4, &ac), 0);
        assert_eq!(crossover_bytes(&p, &XcclOp::AllReduce { op: ReduceOp::SumF32 }, 2, 1, &ac), 0);
    }

    #[test]
    fn allreduce_mid_band_is_nonempty_at_paper_scale() {
        // The tentpole's reason to exist: at the Fig. 6 device counts the
        // DBT band must extend beyond the LL crossover on every platform,
        // so Auto has a genuine third regime for allreduce.
        for (p, n, nrings) in [
            (PlatformSpec::platform_a(), 64usize, 4usize),
            (PlatformSpec::platform_b(), 64, 4),
            (PlatformSpec::platform_c(), 16, 1),
        ] {
            let ac = AutoConfig::for_platform(&p);
            let op = XcclOp::AllReduce { op: ReduceOp::SumF32 };
            let ll = crate::ll::crossover_bytes(&p, &op, n, nrings, &ac);
            let dbt = crossover_bytes(&p, &op, n, nrings, &ac);
            assert!(dbt > ll, "{}: DBT cut {dbt} must extend past the LL cut {ll}", p.name);
            // The predicted band is deliberately conservative (a missed
            // win is cheaper than a regression): it spans at least
            // 256 KiB–512 KiB everywhere — on B the real band also ends
            // there (its calibrated link efficiency starves ring and
            // tree alike, so only latency overhead is saveable) — and
            // reaches the Fig. 6 1 MiB cell on A. The engine-level wins
            // at 1 MiB on A and C are sim-asserted in bench_gate's
            // DBT-vs-ring rows.
            assert!(dbt >= 512 << 10, "{}: mid band should reach 512 KiB, got {dbt}", p.name);
            if p.id == diomp_sim::PlatformId::A {
                assert!(dbt >= 1 << 20, "A's mid band should reach 1 MiB, got {dbt}");
            }
        }
    }

    #[test]
    fn dbt_crossover_tracks_the_live_ring_config() {
        // Mid-band counterpart of the PR 5 headline bugfix regression:
        // cheapening the live ring (tiny chunks cap its per-step wire
        // term) must shrink the band the DBT is predicted to win.
        let p = PlatformSpec::platform_c();
        let op = XcclOp::AllReduce { op: ReduceOp::SumF32 };
        let mut ac = AutoConfig::for_platform(&p);
        let tuned = crossover_bytes(&p, &op, 16, 1, &ac);
        ac.ring_allred = RingConfig { chunk_bytes: 512, max_inflight: 2 };
        let tiny = crossover_bytes(&p, &op, 16, 1, &ac);
        assert!(tiny < tuned, "DBT cut must move with the live ring chunk: {tiny} vs {tuned}");
    }
}
