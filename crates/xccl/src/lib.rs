//! # diomp-xccl — an NCCL/RCCL-like vendor collective library
//!
//! The substrate under OMPCCL (paper §3.3). Mirrors the structure of
//! NVIDIA NCCL / AMD RCCL:
//!
//! * communicators are bootstrapped from a [`UniqueId`] broadcast over a
//!   CPU-side channel,
//! * initialisation performs topology discovery and builds
//!   bandwidth-optimal rings (node-major order minimises node crossings),
//! * collectives are *device-side*: they operate on device buffers,
//!   launch kernels (fixed launch cost) and execute, by default, as a
//!   **chunk-pipelined ring protocol** over the simulated links
//!   ([`CollEngine::Ring`], the private `ring` module): multi-rail rings,
//!   2(n−1) chunked steps for allreduce, per-edge in-flight windows. The
//!   Fig. 6 curves then emerge from protocol structure; only launch /
//!   per-step / link-efficiency scalars come from the calibrated
//!   [`diomp_sim::CollProfile`] tables,
//! * [`CollEngine::Auto`] layers NCCL's protocol selection on top as a
//!   **four-regime dispatcher**, every boundary priced per
//!   (platform, op, device count) from the same tables against the
//!   live ring configuration: small messages run as LL-style fused
//!   payload+flag eager sends over binomial trees (`⌈log2 n⌉` rounds —
//!   the small-size latency dips of Fig. 6; [`crossover_bytes`]); the
//!   allreduce mid band runs a chunk-pipelined **double binary tree**
//!   ([`CollEngine::Dbt`], two complementary node-block trees each
//!   moving half the payload through per-node chain leaders —
//!   logarithmic depth at the ring's per-NIC wire load;
//!   [`dbt_crossover_bytes`]); larger payloads — and all-gather, which
//!   has no latency-bound regime — fall back to the table-tuned ring
//!   ([`RingConfig::auto`]) unchanged, unless the communicator carries
//!   dedicated **reduction servers** ([`CommOpts::servers`],
//!   [`CollEngine::ReductionServer`]): above
//!   [`rserver_crossover_bytes`] the allreduce offloads onto the server
//!   ranks — each client NIC moves every byte once instead of
//!   `2(n−1)/n` times, and the fold leaves the client ranks entirely.
//!
//! Collective calls are rank-collective: every participating rank calls
//! the same operation in the same order; the data results are computed on
//! the real buffer bytes (Functional mode) so correctness is testable
//! against sequential references.
//!
//! Resource-charging note: with the default ring engine, collectives
//! charge the simulator's NIC and GPU-fabric port resources chunk by
//! chunk, so concurrent rails and concurrent collectives contend like the
//! MPI baseline does. The legacy [`CollEngine::Profile`] path instead
//! prices the whole collective with the calibrated achieved-bandwidth
//! curve (which already encodes contention as measured for the vendor
//! library) and touches no link resources; it is kept behind the config
//! flag for ablation against the emergent curves.
//!
//! # Ring protocol walkthrough
//!
//! What happens inside one allreduce under [`CollEngine::Ring`]:
//!
//! 1. **Rail construction** (at [`XcclComm::init`]): devices are laid
//!    out node-major; rail *r* rotates each node's block left by *r*, so
//!    every rail exits a node on a different device — and therefore a
//!    different NIC. `nrings = min(nics_per_node, devs_per_node)` rails
//!    split the payload and aggregate NIC bandwidth, as NCCL does.
//! 2. **Gate**: every participating rank calls
//!    [`XcclComm::collective`]; a rendezvous gate collects each rank's
//!    [`DeviceBuf`]s and the *last* arriving rank's task drives the
//!    whole schedule (collectives are synchronising, so this costs no
//!    extra parallelism).
//! 3. **Schedule**: allreduce = reduce-scatter then allgather, `2(n−1)`
//!    steps; broadcast/reduce/allgather run `n−1` chain steps. Each
//!    payload is cut into `RingConfig::chunk_bytes` chunks; a chunk's
//!    send on edge *e* is enabled by the same chunk's arrival on edge
//!    *e−1*, with at most `RingConfig::max_inflight` chunks outstanding
//!    per edge. The progress loop drains in-flight link completions
//!    with the kernel's batched wait-any (`Ctx::wait_any_batched`), one
//!    wake per park.
//! 4. **Data semantics**: at the modelled completion instant the real
//!    buffer bytes are combined — reduction segments in ring chain
//!    order, rotations for broadcast/allgather — so Functional-mode
//!    tests verify against sequential references.
//!
//! # Example: a 4-device allreduce through the simulator
//!
//! ```
//! use std::sync::Arc;
//! use diomp_device::{DataMode, DeviceTable};
//! use diomp_fabric::{FabricWorld, ReduceOp};
//! use diomp_sim::{ClusterSpec, PlatformSpec, Sim, Topology};
//! use diomp_xccl::{CommOpts, DeviceBuf, UniqueId, XcclComm, XcclOp};
//!
//! let mut sim = Sim::new();
//! let spec = ClusterSpec { platform: PlatformSpec::platform_a(), nodes: 1, gpus_per_node: 4 };
//! let topo = Arc::new(Topology::build(&sim.handle(), spec));
//! let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(1 << 20));
//! let world = FabricWorld::new(topo, devs, 4);
//! let id = UniqueId::generate();
//!
//! for r in 0..4usize {
//!     let world = world.clone();
//!     sim.spawn(format!("rank{r}"), move |ctx| {
//!         // Root generates the id; everyone receives it via bootstrap —
//!         // the CPU-side channel NCCL calls the "unique id broadcast".
//!         let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
//!         let comm = XcclComm::init(
//!             ctx,
//!             &world,
//!             vec![0, 1, 2, 3],
//!             r,
//!             UniqueId::from_bits(bits),
//!             CommOpts::default(),
//!         );
//!         let dev = world.primary_dev(r);
//!         let off = dev.malloc(64, 256).unwrap();
//!         let vals: Vec<u8> = std::iter::repeat((r + 1) as f64)
//!             .take(8)
//!             .flat_map(|v| v.to_le_bytes())
//!             .collect();
//!         dev.mem.write(off, &vals).unwrap();
//!         comm.collective(
//!             ctx,
//!             r,
//!             vec![DeviceBuf { flat: r, off }],
//!             XcclOp::AllReduce { op: ReduceOp::SumF64 },
//!             64,
//!         );
//!         let mut out = vec![0u8; 64];
//!         dev.mem.read(off, &mut out).unwrap();
//!         for c in out.chunks_exact(8) {
//!             assert_eq!(f64::from_le_bytes(c.try_into().unwrap()), 10.0); // 1+2+3+4
//!         }
//!     });
//! }
//! sim.run().unwrap();
//! ```

#![warn(missing_docs)]

mod comm;
mod dbt;
mod drive;
mod gate;
mod ll;
mod ops;
mod ring;
mod rserver;
mod tree;
mod unique_id;

pub use comm::{CommOpts, RailPolicy, RingInfo, XcclComm};
pub use dbt::crossover_bytes as dbt_crossover_bytes;
pub use gate::CollAbort;
pub use gate::DeviceBuf;
pub use ll::{crossover_bytes, AutoConfig};
pub use ops::XcclOp;
pub use ring::{default_nrings, CollEngine, RingConfig};
pub use rserver::{
    crossover_bytes as rserver_crossover_bytes, model_time_us as rserver_model_time_us,
    ServerLayout, ServerPlacement, ServerSpec,
};
pub use unique_id::UniqueId;

pub use diomp_sim::QosClass;
