//! # diomp-xccl — an NCCL/RCCL-like vendor collective library
//!
//! The substrate under OMPCCL (paper §3.3). Mirrors the structure of
//! NVIDIA NCCL / AMD RCCL:
//!
//! * communicators are bootstrapped from a [`UniqueId`] broadcast over a
//!   CPU-side channel,
//! * initialisation performs topology discovery and builds
//!   bandwidth-optimal rings (node-major order minimises node crossings),
//! * collectives are *device-side*: they operate on device buffers,
//!   launch kernels (fixed launch cost) and execute, by default, as a
//!   **chunk-pipelined ring protocol** over the simulated links
//!   ([`CollEngine::Ring`], the private `ring` module): multi-rail rings,
//!   2(n−1) chunked steps for allreduce, per-edge in-flight windows. The
//!   Fig. 6 curves then emerge from protocol structure; only launch /
//!   per-step / link-efficiency scalars come from the calibrated
//!   [`diomp_sim::CollProfile`] tables.
//!
//! Collective calls are rank-collective: every participating rank calls
//! the same operation in the same order; the data results are computed on
//! the real buffer bytes (Functional mode) so correctness is testable
//! against sequential references.
//!
//! Resource-charging note: with the default ring engine, collectives
//! charge the simulator's NIC and GPU-fabric port resources chunk by
//! chunk, so concurrent rails and concurrent collectives contend like the
//! MPI baseline does. The legacy [`CollEngine::Profile`] path instead
//! prices the whole collective with the calibrated achieved-bandwidth
//! curve (which already encodes contention as measured for the vendor
//! library) and touches no link resources; it is kept behind the config
//! flag for ablation against the emergent curves.

#![warn(missing_docs)]

mod comm;
mod gate;
mod ops;
mod ring;
mod unique_id;

pub use comm::{RingInfo, XcclComm};
pub use gate::DeviceBuf;
pub use ops::XcclOp;
pub use ring::{CollEngine, RingConfig};
pub use unique_id::UniqueId;
