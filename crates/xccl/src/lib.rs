//! # diomp-xccl — an NCCL/RCCL-like vendor collective library
//!
//! The substrate under OMPCCL (paper §3.3). Mirrors the structure of
//! NVIDIA NCCL / AMD RCCL:
//!
//! * communicators are bootstrapped from a [`UniqueId`] broadcast over a
//!   CPU-side channel,
//! * initialisation performs topology discovery and builds
//!   bandwidth-optimal rings (node-major order minimises node crossings),
//! * collectives are *device-side*: they operate on device buffers,
//!   launch kernels (fixed launch cost) and move data at the library's
//!   achieved-bandwidth curve (the calibrated [`diomp_sim::CollProfile`]
//!   for the platform — NCCL and RCCL have different curves, which is
//!   what Fig. 6 measures).
//!
//! Collective calls are rank-collective: every participating rank calls
//! the same operation in the same order; the data results are computed on
//! the real buffer bytes (Functional mode) so correctness is testable
//! against sequential references.
//!
//! Resource-charging note: unlike the MPI baseline (which reserves NIC
//! resources per message), XCCL timing comes from the calibrated
//! whole-collective profile — the curve already encodes link contention
//! as measured for the vendor library. Collectives therefore do not
//! additionally serialise on the simulator's NIC resources; the paper's
//! collective benchmarks run them in isolation, where this is exact.

#![warn(missing_docs)]

mod comm;
mod gate;
mod ops;
mod unique_id;

pub use comm::{RingInfo, XcclComm};
pub use gate::DeviceBuf;
pub use ops::XcclOp;
pub use unique_id::UniqueId;
