//! Equivalence properties of the coalesced schedule drivers.
//!
//! The ring, DBT and reduction-server engines compile their collectives
//! into one chunk-send normal form and drive it either with explicit
//! per-chunk kernel events (the reference) or with the event-free
//! coalesced march / closed-form phase jump (the scale-out fast paths).
//! These tests pin the optimisation contract:
//!
//! * **Bit-identical virtual time** — end time and every per-link
//!   `free_at` watermark match the forced-explicit driver across
//!   engines, ops, payload sizes and cluster shapes.
//! * **Per-edge fault disarm** — an armed fault plan perturbs the march
//!   through the same kernel arithmetic as explicit events; the fast
//!   path stays engaged (chunks still coalesce) and stays exact.
//! * **Contention forces the reference** — with the weighted fair queue
//!   armed both arms run the explicit driver, nothing coalesces, and
//!   virtual time still replays bit-for-bit.
//! * **Trace determinism** — the coalesced run replays itself exactly:
//!   same end time, same entry count, same coalesced-chunk credit, same
//!   watermarks.

use std::sync::Arc;

use diomp_device::{DataMode, DeviceTable};
use diomp_fabric::{FabricWorld, ReduceOp};
use diomp_sim::{ClusterSpec, Dur, FaultPlan, PlatformSpec, ResourceId, Sim, Topology};
use diomp_xccl::{
    CollEngine, CommOpts, DeviceBuf, RingConfig, ServerSpec, UniqueId, XcclComm, XcclOp,
};

/// Scheduler-visible outcome of one run, compared field by field
/// between the coalesced and explicit arms.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunOut {
    end_ns: u64,
    /// Post-run `free_at` watermark of every NIC and fabric port — the
    /// reservation state the collectives actually mutated.
    free_at: Vec<u64>,
}

/// Scheduler cost of the same run (not part of the identity — the fast
/// path exists to change exactly these).
struct RunCost {
    entries: u64,
    coalesced: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    nodes: usize,
    per_node: usize,
    engine: CollEngine,
    servers: ServerSpec,
    op: XcclOp,
    size: u64,
    plan: &FaultPlan,
    contention: bool,
    forced_explicit: bool,
) -> (RunOut, RunCost) {
    let nranks = nodes * per_node;
    let mut sim = Sim::new();
    if contention {
        sim.enable_contention();
    }
    if forced_explicit {
        sim.force_explicit_schedules(true);
    }
    sim.set_fault_plan(plan.clone());
    let spec = ClusterSpec { platform: PlatformSpec::platform_a(), nodes, gpus_per_node: per_node };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::CostOnly, Some(64 << 20));
    let world = FabricWorld::new(topo, devs, nranks);
    world.attach_sim(&sim.handle());
    world.refresh_health_from_plan(plan);
    let id = UniqueId::generate();
    for r in 0..nranks {
        let world = world.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..nranks).collect(),
                r,
                id,
                CommOpts { engine, servers, ..CommOpts::default() },
            );
            let dev = world.primary_dev(r);
            // All-gather needs n·len per buffer; size generously.
            let off = dev.malloc((size * nranks as u64).max(256), 256).unwrap();
            // Two back-to-back collectives: the second starts against
            // warm (already reserved) links, so steady-state jumps and
            // busy-resource serialisation both get exercised.
            comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], op, size);
            comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], op, size);
        });
    }
    let handle = sim.handle();
    let rep = sim.run().expect("fastpath cell deadlocked");
    let free_at: Vec<u64> = (0..world.devs.len())
        .flat_map(|f| {
            let d = world.devs.dev(f);
            [d.nic, d.port]
        })
        .map(|res: ResourceId| handle.resource_free_at(res).nanos())
        .collect();
    (
        RunOut { end_ns: rep.end_time.nanos(), free_at },
        RunCost { entries: rep.entries_processed, coalesced: rep.coalesced_chunks },
    )
}

/// Run the cell coalesced, forced-explicit, and coalesced again;
/// assert virtual-time identity and replay determinism. Returns the
/// two arms' costs for property-specific assertions.
#[allow(clippy::too_many_arguments)]
fn assert_equiv(
    label: &str,
    nodes: usize,
    per_node: usize,
    engine: CollEngine,
    servers: ServerSpec,
    op: XcclOp,
    size: u64,
    plan: &FaultPlan,
    contention: bool,
) -> (RunCost, RunCost) {
    let (fast, fast_cost) =
        run_cell(nodes, per_node, engine, servers, op, size, plan, contention, false);
    let (expl, expl_cost) =
        run_cell(nodes, per_node, engine, servers, op, size, plan, contention, true);
    assert_eq!(
        fast, expl,
        "{label}: coalesced arm diverged from the forced-explicit driver \
         (end time or link watermarks)"
    );
    assert_eq!(expl_cost.coalesced, 0, "{label}: forced-explicit arm must not coalesce");
    assert!(
        fast_cost.entries <= expl_cost.entries,
        "{label}: coalescing must never add scheduler entries ({} vs {})",
        fast_cost.entries,
        expl_cost.entries
    );
    let (again, again_cost) =
        run_cell(nodes, per_node, engine, servers, op, size, plan, contention, false);
    assert_eq!(fast, again, "{label}: coalesced run must replay bit-identically");
    assert_eq!(
        (fast_cost.entries, fast_cost.coalesced),
        (again_cost.entries, again_cost.coalesced),
        "{label}: coalesced run must replay the same scheduler cost"
    );
    (fast_cost, expl_cost)
}

/// Cluster shapes: single-node (all-intra edges), fat multi-node,
/// chain-heavy, and one-GPU-per-node (the scale sweep's shape — single
/// rail, every edge distinct and inter-node).
const SHAPES: [(usize, usize); 4] = [(1, 6), (2, 4), (3, 2), (6, 1)];

fn ops_and_sizes() -> Vec<(XcclOp, u64, &'static str)> {
    vec![
        // Uniform token split: closed-form steady-state jump territory.
        (XcclOp::AllReduce { op: ReduceOp::SumF32 }, 768 << 10, "allred_768k"),
        // Ragged split (not divisible by rank counts): explicit warm-up
        // march with no jump.
        (XcclOp::AllReduce { op: ReduceOp::SumF64 }, 100_008, "allred_100k8"),
        (XcclOp::Broadcast { root: 1 }, 96 << 10, "bcast_96k"),
        (XcclOp::AllGather, 24 << 10, "allgather_24k"),
        (XcclOp::Reduce { root: 0, op: ReduceOp::SumF64 }, 48 << 10, "reduce_48k"),
    ]
}

fn engines() -> Vec<(CollEngine, &'static str)> {
    vec![
        (CollEngine::Ring(RingConfig::default()), "ring"),
        (CollEngine::Dbt(RingConfig::default()), "dbt"),
    ]
}

/// Every link resource a fault plan can plausibly touch.
fn all_links(world_shape: (usize, usize)) -> Vec<ResourceId> {
    // Build a throwaway world with the same shape just to enumerate its
    // resource ids (deterministic across runs).
    let (nodes, per_node) = world_shape;
    let sim = Sim::new();
    let spec = ClusterSpec { platform: PlatformSpec::platform_a(), nodes, gpus_per_node: per_node };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::CostOnly, Some(1 << 20));
    (0..devs.len())
        .flat_map(|f| {
            let d = devs.dev(f);
            [d.nic, d.port]
        })
        .collect()
}

#[test]
fn coalesced_drivers_match_explicit_across_engines_ops_and_shapes() {
    let plan = FaultPlan::new();
    for &(nodes, per_node) in &SHAPES {
        for (engine, etag) in engines() {
            for (op, size, otag) in ops_and_sizes() {
                let label = format!("{etag}/{otag}@{nodes}x{per_node}");
                let (fast, _) = assert_equiv(
                    &label,
                    nodes,
                    per_node,
                    engine,
                    ServerSpec::tail(0),
                    op,
                    size,
                    &plan,
                    false,
                );
                assert!(fast.coalesced > 0, "{label}: fast path must engage on a clean run");
            }
        }
    }
}

#[test]
fn rserver_offload_matches_explicit() {
    let plan = FaultPlan::new();
    for (op, size, otag) in [
        (XcclOp::AllReduce { op: ReduceOp::SumF32 }, 1 << 20, "allred_1m"),
        (XcclOp::AllReduce { op: ReduceOp::SumF64 }, 100_008, "allred_100k8"),
    ] {
        let label = format!("rserver/{otag}@3x2");
        let (fast, _) = assert_equiv(
            &label,
            3,
            2,
            CollEngine::ReductionServer(RingConfig::default()),
            ServerSpec::tail(1),
            op,
            size,
            &plan,
            false,
        );
        assert!(fast.coalesced > 0, "{label}: fast path must engage");
    }
}

#[test]
fn armed_fault_plans_disarm_per_edge_not_per_run() {
    // Randomized degradation windows over every link: the march must
    // price faulted edges through the same perturbed arithmetic as
    // explicit events — and must NOT fall back to the explicit driver
    // wholesale (chunks still coalesce under an armed plan).
    for seed in [3u64, 11, 42] {
        let shape = (2, 4);
        let links = all_links(shape);
        let prefixes: Vec<String> = (0..shape.0 * shape.1).map(|r| format!("rank{r}")).collect();
        let plan = FaultPlan::randomized(seed, &links, &prefixes, Dur::millis(5.0));
        for (engine, etag) in engines() {
            for (op, size, otag) in [
                (XcclOp::AllReduce { op: ReduceOp::SumF32 }, 768 << 10, "allred_768k"),
                (XcclOp::AllGather, 24 << 10, "allgather_24k"),
            ] {
                let label = format!("fault{seed}/{etag}/{otag}");
                let (fast, _) = assert_equiv(
                    &label,
                    shape.0,
                    shape.1,
                    engine,
                    ServerSpec::tail(0),
                    op,
                    size,
                    &plan,
                    false,
                );
                assert!(
                    fast.coalesced > 0,
                    "{label}: an armed fault plan must disarm the fast path per edge, \
                     not per run (nothing coalesced)"
                );
            }
        }
    }
}

#[test]
fn armed_contention_forces_the_explicit_driver_identically() {
    let plan = FaultPlan::new();
    for (engine, etag) in engines() {
        let label = format!("contended/{etag}/allred_768k");
        let (fast, expl) = assert_equiv(
            &label,
            2,
            4,
            engine,
            ServerSpec::tail(0),
            XcclOp::AllReduce { op: ReduceOp::SumF32 },
            768 << 10,
            &plan,
            true,
        );
        // With the fair queue armed, both arms run the reference
        // explicit loop: no coalescing on either side.
        assert_eq!(fast.coalesced, 0, "{label}: contention must force the explicit driver");
        assert_eq!(fast.entries, expl.entries, "{label}: both contended arms run the same driver");
    }
}
