//! Chaos harness: randomized deterministic fault plans replayed against
//! every collective engine.
//!
//! The properties asserted here are the tentpole's acceptance criteria
//! at the collective layer:
//!
//! * **Completion** — a collective under any sampled fault plan still
//!   terminates (the injector may slow, stall, flap and straggle, but
//!   never wedge the schedule).
//! * **Byte-identity** — the data semantics are unchanged by faults: the
//!   result equals the sequential reference regardless of how the
//!   schedule was perturbed (payloads are integer-valued f64 so every
//!   association order is bit-exact).
//! * **Determinism** — the same seed replays the same virtual-time trace
//!   bit-for-bit (the CI chaos step diffs two runs).
//! * **Zero cost when disabled** — an empty plan, or an armed plan whose
//!   windows never match, leaves the virtual-time trace bit-identical to
//!   a clean run.
//! * **Degradation awareness** — dead links blacklist rails at init, and
//!   a degraded fabric moves the Auto dispatcher's priced regime
//!   boundaries toward the ring.

use std::sync::Arc;

use diomp_device::{DataMode, DeviceTable};
use diomp_fabric::{FabricWorld, ReduceOp};
use diomp_sim::{ClusterSpec, Dur, FaultPlan, PlatformSpec, ResourceId, Sim, SimTime, Topology};
use diomp_xccl::{
    AutoConfig, CollEngine, CommOpts, DeviceBuf, RingConfig, ServerSpec, UniqueId, XcclComm, XcclOp,
};
use parking_lot::Mutex;

const NODES: usize = 2;
const PER_NODE: usize = 4;
const NRANKS: usize = NODES * PER_NODE;

fn boot(sim: &Sim, plan: &FaultPlan) -> Arc<FabricWorld> {
    sim.set_fault_plan(plan.clone());
    let spec =
        ClusterSpec { platform: PlatformSpec::platform_a(), nodes: NODES, gpus_per_node: PER_NODE };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(8 << 20));
    let world = FabricWorld::new(topo, devs, NRANKS);
    // Attach the simulator so the health vector derives live from the
    // installed plan (what the runtime does): faults armed after build
    // are visible too, and rank-kill windows reach the kernel.
    world.attach_sim(&sim.handle());
    world.refresh_health_from_plan(plan);
    world
}

/// Every link resource a fault plan can plausibly touch: each device's
/// NIC and GPU-fabric port.
fn all_links(world: &FabricWorld) -> Vec<ResourceId> {
    (0..world.devs.len())
        .flat_map(|f| {
            let d = world.devs.dev(f);
            [d.nic, d.port]
        })
        .collect()
}

/// The engines under test. `Auto` covers the LL/tree and DBT bands too
/// once payload sizes span its regime boundaries. `ReductionServer` on
/// this server-free comm exercises its ring-fallback path; the offload
/// schedule itself is chaos-tested on the server comm below.
fn engines() -> Vec<CollEngine> {
    let p = PlatformSpec::platform_a();
    vec![
        CollEngine::Profile,
        CollEngine::Ring(RingConfig::default()),
        CollEngine::Dbt(RingConfig::default()),
        CollEngine::ReductionServer(RingConfig::default()),
        CollEngine::Auto(AutoConfig::for_platform(&p)),
    ]
}

/// Run one allreduce of `len` bytes under `plan` with `engine`; every
/// rank contributes integer-valued f64s. Returns the end-of-sim virtual
/// time and asserts byte-identity with the sequential reference on every
/// rank.
fn run_allreduce(engine: CollEngine, plan: &FaultPlan, len: u64, tag: &str) -> SimTime {
    run_allreduce_contended(engine, plan, len, tag, false)
}

/// Same as [`run_allreduce`], but optionally with the per-link weighted
/// fair queue armed — with a single tenant the WFQ must collapse to the
/// serial closed form, so chaos traces replay to the same end time.
fn run_allreduce_contended(
    engine: CollEngine,
    plan: &FaultPlan,
    len: u64,
    tag: &str,
    armed: bool,
) -> SimTime {
    let mut sim = Sim::new();
    if armed {
        sim.enable_contention();
    }
    let world = boot(&sim, plan);
    let id = UniqueId::generate();
    let results: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(vec![Vec::new(); NRANKS]));
    for r in 0..NRANKS {
        let world = world.clone();
        let results = results.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..NRANKS).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts { engine, ..CommOpts::default() },
            );
            let dev = world.primary_dev(r);
            let off = dev.malloc(len, 256).unwrap();
            let vals: Vec<u8> = (0..len / 8)
                .flat_map(|i| (((r as u64 + 1) * (i % 13 + 1)) as f64).to_le_bytes())
                .collect();
            dev.mem.write(off, &vals).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF64 },
                len,
            );
            let mut out = vec![0u8; len as usize];
            dev.mem.read(off, &mut out).unwrap();
            results.lock()[r] =
                out.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        });
    }
    let end = sim.run().unwrap().end_time;
    // Sequential reference: element-wise exact integer sums, identical
    // under every association order the engines produce.
    let expect: Vec<f64> = (0..len / 8)
        .map(|i| (1..=NRANKS as u64).map(|r| (r * (i % 13 + 1)) as f64).sum())
        .collect();
    for (r, got) in results.lock().iter().enumerate() {
        assert_eq!(got, &expect, "{tag}: rank {r} diverged from the sequential reference");
    }
    end
}

/// Chaos runner for the reduction-server offload: the same 2-node world
/// carved into one client node and one server node (`ServerSpec::tail`).
/// Asserts the server-comm membership semantics under the plan — client
/// ranks receive the fold over *client* contributions only, server
/// buffers pass through untouched — and returns the virtual end time.
fn run_server_allreduce(
    engine: CollEngine,
    plan: &FaultPlan,
    len: u64,
    tag: &str,
    armed: bool,
) -> SimTime {
    let mut sim = Sim::new();
    if armed {
        sim.enable_contention();
    }
    let world = boot(&sim, plan);
    let id = UniqueId::generate();
    let results: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(vec![Vec::new(); NRANKS]));
    for r in 0..NRANKS {
        let world = world.clone();
        let results = results.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..NRANKS).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts { engine, servers: ServerSpec::tail(1), ..CommOpts::default() },
            );
            let dev = world.primary_dev(r);
            let off = dev.malloc(len, 256).unwrap();
            let vals: Vec<u8> = (0..len / 8)
                .flat_map(|i| (((r as u64 + 1) * (i % 13 + 1)) as f64).to_le_bytes())
                .collect();
            dev.mem.write(off, &vals).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF64 },
                len,
            );
            let mut out = vec![0u8; len as usize];
            dev.mem.read(off, &mut out).unwrap();
            results.lock()[r] =
                out.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        });
    }
    let end = sim.run().unwrap().end_time;
    // Tail placement on the node-major order: the first node's ranks are
    // clients, the second node's are servers.
    let nclients = PER_NODE;
    let expect_client: Vec<f64> = (0..len / 8)
        .map(|i| (1..=nclients as u64).map(|r| (r * (i % 13 + 1)) as f64).sum())
        .collect();
    for (r, got) in results.lock().iter().enumerate() {
        if r < nclients {
            assert_eq!(got, &expect_client, "{tag}: client rank {r} diverged from the reference");
        } else {
            let mine: Vec<f64> =
                (0..len / 8).map(|i| ((r as u64 + 1) * (i % 13 + 1)) as f64).collect();
            assert_eq!(got, &mine, "{tag}: server rank {r} buffer must pass through untouched");
        }
    }
    end
}

#[test]
fn randomized_fault_plans_complete_byte_identical_on_every_engine() {
    // Fixed seeds — the plans (and therefore the whole run) are
    // reproducible; a failure names its (seed, engine) cell.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let links = all_links(&world);
    drop(probe);
    let prefixes = vec!["rank2".to_string(), "rank5".to_string()];
    for seed in [11u64, 29, 43] {
        let plan = FaultPlan::randomized(seed, &links, &prefixes, Dur::millis(5.0));
        for engine in engines() {
            run_allreduce(engine, &plan, 256 << 10, &format!("seed {seed} {engine:?}"));
        }
    }
}

#[test]
fn same_seed_replays_the_same_trace() {
    // Two-run determinism: the property the CI chaos step enforces.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let links = all_links(&world);
    drop(probe);
    let plan = FaultPlan::randomized(7, &links, &["rank3".to_string()], Dur::millis(5.0));
    let engine = CollEngine::Auto(AutoConfig::for_platform(&PlatformSpec::platform_a()));
    let a = run_allreduce(engine, &plan, 512 << 10, "determinism run A");
    let b = run_allreduce(engine, &plan, 512 << 10, "determinism run B");
    assert_eq!(a, b, "same seed must replay the same virtual-time trace");
}

#[test]
fn randomized_fault_plans_complete_byte_identical_on_the_server_comm() {
    // The offload schedule under chaos: randomized plans perturb the
    // upload, reduce and fan-back lanes (straggler prefixes name both a
    // client and a server rank) but the run still terminates and the
    // client-only fold stays bit-exact on every rank.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let links = all_links(&world);
    drop(probe);
    let prefixes = vec!["rank2".to_string(), "rank5".to_string()];
    let engine = CollEngine::ReductionServer(RingConfig::default());
    for seed in [11u64, 29, 43] {
        let plan = FaultPlan::randomized(seed, &links, &prefixes, Dur::millis(5.0));
        run_server_allreduce(engine, &plan, 256 << 10, &format!("server seed {seed}"), false);
    }
}

#[test]
fn same_seed_replays_the_same_server_trace() {
    // Two-run determinism for the offload schedule under a faulted plan.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let links = all_links(&world);
    drop(probe);
    let plan = FaultPlan::randomized(7, &links, &["rank6".to_string()], Dur::millis(5.0));
    let engine = CollEngine::ReductionServer(RingConfig::default());
    let a = run_server_allreduce(engine, &plan, 512 << 10, "server determinism A", false);
    let b = run_server_allreduce(engine, &plan, 512 << 10, "server determinism B", false);
    assert_eq!(a, b, "same seed must replay the same server-offload trace");
}

#[test]
fn dead_servers_degrade_the_offload_to_the_ring_under_chaos() {
    // Kill every server-node NIC *and* run a randomized plan on top: the
    // live server set comes up empty, the engine falls back to the ring
    // over the client rails, and completion + membership semantics hold.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let links = all_links(&world);
    let mut plan = FaultPlan::randomized(23, &links, &["rank1".to_string()], Dur::millis(5.0));
    for f in PER_NODE..NRANKS {
        plan = plan.kill_link(world.devs.dev(f).nic);
    }
    drop(probe);
    let engine = CollEngine::ReductionServer(RingConfig::default());
    run_server_allreduce(engine, &plan, 256 << 10, "all servers dead under chaos", false);
}

#[test]
fn single_tenant_server_comm_replays_contended_traces() {
    // The flow-partition invariant under chaos: client and server flows
    // never share a link, so arming the per-link WFQ on a single-tenant
    // server comm must not move the trace — clean or faulted.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let links = all_links(&world);
    drop(probe);
    let faulted = FaultPlan::randomized(19, &links, &["rank6".to_string()], Dur::millis(5.0));
    let engine = CollEngine::ReductionServer(RingConfig::default());
    for plan in [FaultPlan::new(), faulted] {
        let tag = format!("server single-tenant replay faulted={}", !plan.is_empty());
        let disarmed = run_server_allreduce(engine, &plan, 256 << 10, &tag, false);
        let armed = run_server_allreduce(engine, &plan, 256 << 10, &tag, true);
        assert_eq!(disarmed, armed, "{tag}: arming contention moved the single-tenant trace");
    }
}

#[test]
fn single_tenant_contention_replays_chaos_traces() {
    // A single job on a contention-capable sim replays the chaos traces
    // unchanged: disarmed, `transfer_qos` is call-for-call the legacy
    // path; armed, a lone backlogged flow owns the full link share and
    // the weighted fair queue collapses to the same closed form. Both
    // runs must land on the same virtual end time for every engine,
    // clean and under a randomized fault plan.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let links = all_links(&world);
    drop(probe);
    let faulted = FaultPlan::randomized(19, &links, &["rank6".to_string()], Dur::millis(5.0));
    for plan in [FaultPlan::new(), faulted] {
        for engine in engines() {
            let tag = format!("single-tenant replay {engine:?} faulted={}", !plan.is_empty());
            let disarmed = run_allreduce_contended(engine, &plan, 256 << 10, &tag, false);
            let armed = run_allreduce_contended(engine, &plan, 256 << 10, &tag, true);
            assert_eq!(
                disarmed, armed,
                "{tag}: arming contention moved a single-tenant chaos trace"
            );
        }
    }
}

#[test]
fn disabled_injection_leaves_the_trace_bit_identical() {
    // Zero cost when disabled, at the trace level: no plan, an empty
    // plan, and an armed plan whose windows open only after the run all
    // produce the same end time.
    let engine = CollEngine::Ring(RingConfig::default());
    let clean = run_allreduce(engine, &FaultPlan::new(), 256 << 10, "clean");

    // A non-empty plan that never matches: windows parked a virtual hour
    // out, and a straggler prefix no task name carries.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let links = all_links(&world);
    drop(probe);
    let hour = SimTime(3_600_000_000_000);
    let mut armed = FaultPlan::new().straggle("no-such-task", 2000);
    for &l in &links {
        armed = armed.degrade_link(l, hour, SimTime(hour.0 + 1), 500);
    }
    let idle = run_allreduce(engine, &armed, 256 << 10, "armed-but-unmatched");
    assert_eq!(clean, idle, "an armed injector that never fires must not move virtual time");
}

#[test]
fn dead_link_blacklists_its_rails_and_the_collective_survives() {
    // Kill one device's NIC: every rail whose ring crosses the node
    // boundary on that NIC is blacklisted at init; the payload re-splits
    // over the survivors and the result stays byte-identical.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let dead_nic = world.devs.dev(1).nic;
    drop(probe);
    let plan = FaultPlan::new().kill_link(dead_nic);

    let mut sim = Sim::new();
    let world = boot(&sim, &plan);
    let id = UniqueId::generate();
    let nrings = Arc::new(Mutex::new(0usize));
    let nrings2 = nrings.clone();
    for r in 0..NRANKS {
        let world = world.clone();
        let nrings2 = nrings2.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..NRANKS).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts::default(),
            );
            if r == 0 {
                *nrings2.lock() = comm.ring.nrings;
            }
            let dev = world.primary_dev(r);
            let off = dev.malloc(64, 256).unwrap();
            let vals: Vec<u8> =
                std::iter::repeat_n(((r + 1) as f64).to_le_bytes(), 8).flatten().collect();
            dev.mem.write(off, &vals).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF64 },
                64,
            );
            let mut out = vec![0u8; 64];
            dev.mem.read(off, &mut out).unwrap();
            let want = (1..=NRANKS).sum::<usize>() as f64;
            for c in out.chunks_exact(8) {
                assert_eq!(f64::from_le_bytes(c.try_into().unwrap()), want, "rank {r}");
            }
        });
    }
    sim.run().unwrap();
    let survived = *nrings.lock();
    assert!(
        (1..PER_NODE).contains(&survived),
        "killing one NIC must blacklist its rails but keep at least one: {survived} of {PER_NODE}"
    );
}

#[test]
fn every_rail_dead_keeps_the_full_layout() {
    // With all NICs condemned there is nothing better to retreat to: the
    // blacklist must keep the full rail set rather than collapse to an
    // empty communicator, and the run still completes (dead links replay
    // 1000× slow, never hang).
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let mut plan = FaultPlan::new();
    for f in 0..world.devs.len() {
        plan = plan.kill_link(world.devs.dev(f).nic);
    }
    drop(probe);

    let mut sim = Sim::new();
    let world = boot(&sim, &plan);
    let id = UniqueId::generate();
    for r in 0..NRANKS {
        let world = world.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..NRANKS).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts::default(),
            );
            assert_eq!(comm.ring.nrings, PER_NODE, "nothing to retreat to: keep every rail");
            let dev = world.primary_dev(r);
            let off = dev.malloc(64, 256).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF64 },
                64,
            );
        });
    }
    sim.run().unwrap();
}

#[test]
fn degraded_fabric_moves_auto_regimes_toward_the_ring() {
    // Re-pricing: a fabric degraded to 5 % of nominal bandwidth makes
    // the wire term dominate both closed forms; the tree regimes' latency
    // advantage buys relatively less, so both priced boundaries retreat.
    let cuts = |plan: &FaultPlan| {
        let mut sim = Sim::new();
        let world = boot(&sim, plan);
        let id = UniqueId::generate();
        let out = Arc::new(Mutex::new((0u64, 0u64, 0u64)));
        let out2 = out.clone();
        for r in 0..NRANKS {
            let world = world.clone();
            let out2 = out2.clone();
            sim.spawn(format!("rank{r}"), move |ctx| {
                let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
                let comm = XcclComm::init(
                    ctx,
                    &world,
                    (0..NRANKS).collect(),
                    r,
                    UniqueId::from_bits(bits),
                    CommOpts {
                        engine: CollEngine::Auto(AutoConfig::for_platform(
                            &PlatformSpec::platform_a(),
                        )),
                        ..CommOpts::default()
                    },
                );
                if r == 0 {
                    *out2.lock() = comm
                        .auto_regimes(&XcclOp::AllReduce { op: ReduceOp::SumF64 })
                        .expect("Auto engine has regimes");
                }
            });
        }
        sim.run().unwrap();
        let v = *out.lock();
        v
    };
    let healthy = cuts(&FaultPlan::new());
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let mut plan = FaultPlan::new();
    for f in 0..world.devs.len() {
        plan = plan.degrade_link(world.devs.dev(f).nic, SimTime::ZERO, SimTime(u64::MAX), 50);
    }
    drop(probe);
    let degraded = cuts(&plan);
    assert!(healthy.0 > 0, "healthy LL regime must be non-trivial: {healthy:?}");
    assert!(
        degraded.0 <= healthy.0 && degraded.1 <= healthy.1,
        "degradation must never extend a priced tree regime: {degraded:?} vs {healthy:?}"
    );
    assert!(
        degraded.0 < healthy.0,
        "a 20× slower wire must retreat the LL boundary: {degraded:?} vs {healthy:?}"
    );
}

#[test]
fn faults_armed_after_build_still_reprice_auto_regimes() {
    // The stale-health regression: `gaspi_state_vec` derives *live*
    // from whichever plan is installed when it is read, not from a
    // build-time snapshot — so a degradation armed after the world is
    // built must move the Auto dispatcher's priced crossovers exactly
    // like one armed before it.
    let cuts = |degrade_after_build: bool| {
        let mut sim = Sim::new();
        let world = boot(&sim, &FaultPlan::new());
        if degrade_after_build {
            let mut plan = FaultPlan::new();
            for f in 0..world.devs.len() {
                plan =
                    plan.degrade_link(world.devs.dev(f).nic, SimTime::ZERO, SimTime(u64::MAX), 50);
            }
            sim.set_fault_plan(plan);
        }
        let id = UniqueId::generate();
        let out = Arc::new(Mutex::new((0u64, 0u64, 0u64)));
        let out2 = out.clone();
        for r in 0..NRANKS {
            let world = world.clone();
            let out2 = out2.clone();
            sim.spawn(format!("rank{r}"), move |ctx| {
                let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
                let comm = XcclComm::init(
                    ctx,
                    &world,
                    (0..NRANKS).collect(),
                    r,
                    UniqueId::from_bits(bits),
                    CommOpts {
                        engine: CollEngine::Auto(AutoConfig::for_platform(
                            &PlatformSpec::platform_a(),
                        )),
                        ..CommOpts::default()
                    },
                );
                if r == 0 {
                    *out2.lock() = comm
                        .auto_regimes(&XcclOp::AllReduce { op: ReduceOp::SumF64 })
                        .expect("Auto engine has regimes");
                }
            });
        }
        sim.run().unwrap();
        let v = *out.lock();
        v
    };
    let healthy = cuts(false);
    let late_degraded = cuts(true);
    assert!(healthy.0 > 0, "healthy LL regime must be non-trivial: {healthy:?}");
    assert!(
        late_degraded.0 < healthy.0,
        "a degradation armed after build must retreat the LL boundary: \
         {late_degraded:?} vs {healthy:?}"
    );
}

/// Slot-recycling regression for the elastic path: every
/// [`XcclComm::shrink`] releases the dying communicator's QoS flow
/// slots before the survivor re-init, so repeated shrink / re-init
/// cycles must hold the kernel's flow table at a constant size instead
/// of leaking a slot pair per retry (the pre-slab behaviour). Wait
/// boards recycle through their own free list, so quiescence must
/// leave zero boards in use no matter how many collectives ran.
#[test]
fn repeated_shrink_cycles_recycle_flow_and_board_slots() {
    const KILLS: [usize; 2] = [7, 6]; // one node-1 casualty per cycle
    let mut sim = Sim::new();
    let world = boot(&sim, &FaultPlan::new());
    let id = UniqueId::generate();
    let handle = sim.handle();
    // Flow-table watermark recorded by rank 0 after the initial
    // collective and after each shrink cycle's collective (collectives
    // synchronise, so every survivor has re-inited by then).
    let marks: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    for r in 0..NRANKS {
        let world = world.clone();
        let marks = marks.clone();
        let handle = handle.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let mut comm = XcclComm::init(
                ctx,
                &world,
                (0..NRANKS).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts {
                    engine: CollEngine::Ring(RingConfig::default()),
                    servers: ServerSpec::tail(1),
                    ..CommOpts::default()
                },
            );
            let dev = world.primary_dev(r);
            let off = dev.malloc(4096, 256).unwrap();
            let vals: Vec<u8> =
                (0..512u64).flat_map(|i| ((r as u64 + i) as f64).to_le_bytes()).collect();
            dev.mem.write(off, &vals).unwrap();
            let op = XcclOp::AllReduce { op: ReduceOp::SumF64 };
            comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], op, 4096);
            if r == 0 {
                marks.lock().push(handle.flows_in_use());
            }
            let mut health = diomp_fabric::HealthVec::healthy(NRANKS);
            for &k in &KILLS {
                health.observe(k, 0);
                if r == k {
                    // The casualty leaves without releasing its slots —
                    // a dead process frees nothing; the watermark still
                    // must not grow.
                    return;
                }
                comm = comm.shrink(ctx, &health, r);
                comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], op, 4096);
                if r == 0 {
                    marks.lock().push(handle.flows_in_use());
                }
            }
        });
    }
    sim.run().unwrap();
    let marks = marks.lock();
    assert_eq!(marks.len(), KILLS.len() + 1, "rank 0 must survive every cycle");
    let f0 = marks[0];
    for (c, &f) in marks.iter().enumerate().skip(1) {
        assert_eq!(
            f, f0,
            "shrink cycle {c} changed the flow-table watermark: {f} vs {f0} slots in use \
             (survivor re-init must reuse the slots shrink released)"
        );
    }
    assert_eq!(handle.boards_in_use(), 0, "quiescence must recycle every wait board");
}
