//! Ring-protocol engine tests (ISSUE 2): data byte-identity against
//! sequential references across random sizes/dtypes/rank counts, trace
//! determinism of the emergent schedule, and emergent-vs-profile timing
//! behaviour. ISSUE 4 adds the `CollEngine::Auto` protocol-selection
//! tests: the LL/tree fast path must agree byte-for-byte with the other
//! engines, beat the ring at small sizes, and collapse onto the ring
//! above the crossover.

use std::sync::Arc;

use diomp_device::{DataMode, DeviceTable};
use diomp_fabric::{FabricWorld, ReduceOp};
use diomp_sim::{ClusterSpec, PlatformSpec, Sim, SimTime, Topology};
use diomp_xccl::{
    AutoConfig, CollEngine, CommOpts, DeviceBuf, RingConfig, UniqueId, XcclComm, XcclOp,
};
use proptest::prelude::*;

fn boot(
    sim: &Sim,
    platform: PlatformSpec,
    nodes: usize,
    per: usize,
    nranks: usize,
) -> Arc<FabricWorld> {
    let spec = ClusterSpec { platform, nodes, gpus_per_node: per };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(8 << 20));
    FabricWorld::new(topo, devs, nranks)
}

/// Run `f` on every rank of a `nranks`-device platform-A job with a
/// communicator over all ranks using `engine`; returns (end time,
/// entries processed, trace lines).
fn with_engine(
    nranks: usize,
    engine: CollEngine,
    trace: bool,
    f: impl Fn(&mut diomp_sim::Ctx, &Arc<FabricWorld>, &Arc<XcclComm>, usize) + Send + Sync + 'static,
) -> (SimTime, u64, Vec<String>) {
    let mut sim = Sim::new();
    if trace {
        sim.enable_trace();
    }
    // One device per rank; pack nodes as densely as the rank count
    // divides so odd counts still form valid multi-node rings.
    let per = [4usize, 2, 1].into_iter().find(|&p| nranks.is_multiple_of(p)).unwrap();
    let world = boot(&sim, PlatformSpec::platform_a(), nranks / per, per, nranks);
    let id = UniqueId::generate();
    let f = Arc::new(f);
    for r in 0..nranks {
        let world = world.clone();
        let f = f.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..world.nranks).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts { engine, ..CommOpts::default() },
            );
            f(ctx, &world, &comm, r);
        });
    }
    let rep = sim.run().unwrap();
    (rep.end_time, rep.entries_processed, rep.trace.iter().map(|t| t.to_string()).collect())
}

fn payload(rank: usize, len: usize, dtype: ReduceOp) -> Vec<u8> {
    // Integer-valued elements: sums/maxima are exact in every association
    // order, so the ring chain order and the sequential reference agree
    // bit-for-bit.
    let gen = |i: usize| ((rank * 7 + i * 3) % 100) as u64;
    let mut out = Vec::with_capacity(len);
    match dtype {
        ReduceOp::SumF64 | ReduceOp::MaxF64 => {
            for i in 0..len / 8 {
                out.extend((gen(i) as f64).to_le_bytes());
            }
        }
        ReduceOp::SumF32 => {
            for i in 0..len / 4 {
                out.extend((gen(i) as f32).to_le_bytes());
            }
        }
        ReduceOp::SumU64 => {
            for i in 0..len / 8 {
                out.extend(gen(i).to_le_bytes());
            }
        }
    }
    out.resize(len, 0xAB); // ragged tail bytes
    out
}

fn reference(nranks: usize, len: usize, dtype: ReduceOp) -> Vec<u8> {
    let mut acc = payload(0, len, dtype);
    let whole = match dtype {
        ReduceOp::SumF32 => len / 4 * 4,
        _ => len / 8 * 8,
    };
    for r in 1..nranks {
        dtype.combine(&mut acc[..whole], &payload(r, len, dtype)[..whole]);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ring allreduce is byte-identical to the sequential reference
    /// reduction for random payload sizes, dtypes, rank counts, and
    /// pipeline shapes (chunk size / in-flight window), including ragged
    /// tails and multi-node rings.
    #[test]
    fn ring_allreduce_matches_sequential_reference(
        nranks in 2usize..9,
        len in 1usize..4096,
        chunk in 1u64..2048,
        inflight in 1usize..5,
        which in 0u8..4,
    ) {
        let dtype = [ReduceOp::SumF64, ReduceOp::SumF32, ReduceOp::SumU64, ReduceOp::MaxF64]
            [which as usize];
        let engine = CollEngine::Ring(RingConfig { chunk_bytes: chunk, max_inflight: inflight });
        let want = reference(nranks, len, dtype);
        with_engine(nranks, engine, false, move |ctx, world, comm, r| {
            let dev = world.primary_dev(r);
            let off = dev.malloc(len.next_power_of_two().max(64) as u64, 256).unwrap();
            dev.mem.write(off, &payload(r, len, dtype)).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: dtype },
                len as u64,
            );
            let mut got = vec![0u8; len];
            dev.mem.read(off, &mut got).unwrap();
            assert_eq!(got, reference(world.nranks, len, dtype), "rank {r}");
        });
        let _ = want;
    }

    /// The ring engine's data semantics agree byte-for-byte with the
    /// profile engine's for every collective kind on arbitrary payloads
    /// (broadcast/allgather are pure rotations; reductions use exact
    /// integer-valued data via SumU64's order-independent wrapping sum).
    #[test]
    fn ring_and_profile_engines_deposit_identical_bytes(
        nranks in 2usize..9,
        len in 8usize..2048,
        kind in 0u8..4,
    ) {
        let run = |engine: CollEngine| {
            let out = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let out2 = out.clone();
            with_engine(nranks, engine, false, move |ctx, world, comm, r| {
                let n = world.nranks;
                let dev = world.primary_dev(r);
                let cap = (len * n).next_power_of_two().max(64) as u64;
                let off = dev.malloc(cap, 256).unwrap();
                let bytes: Vec<u8> =
                    (0..len * n).map(|i| (r * 31 + i * 7) as u8).collect();
                dev.mem.write(off, &bytes).unwrap();
                let op = match kind {
                    0 => XcclOp::AllReduce { op: ReduceOp::SumU64 },
                    1 => XcclOp::Broadcast { root: 1 % n },
                    2 => XcclOp::AllGather,
                    _ => XcclOp::Reduce { root: 1 % n, op: ReduceOp::SumU64 },
                };
                let payload = if kind == 2 { len as u64 } else { (len / 8 * 8).max(8) as u64 };
                comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], op, payload);
                let mut got = vec![0u8; len * n];
                dev.mem.read(off, &mut got).unwrap();
                out2.lock().push((r, got));
            });
            let mut rows = out.lock().clone();
            rows.sort_by_key(|&(r, _)| r);
            rows
        };
        let ring = run(CollEngine::Ring(RingConfig { chunk_bytes: 512, max_inflight: 2 }));
        let prof = run(CollEngine::Profile);
        prop_assert_eq!(ring, prof, "engines must agree on the final buffer bytes");
    }

    /// `CollEngine::Auto` deposits the same bytes as the ring engine on
    /// arbitrary payloads through *both* of its regimes: with the
    /// guardrail wide open (every tested size takes the LL/tree path)
    /// and with it closed (pure ring fallback). SumU64's wrapping sum is
    /// association-order-independent, so tree-order and chain-order
    /// reductions must agree bit-for-bit.
    #[test]
    fn auto_engine_matches_ring_in_both_regimes(
        nranks in 2usize..9,
        len in 8usize..2048,
        kind in 0u8..4,
        small_max in prop_oneof![Just(0u64), Just(u64::MAX)],
    ) {
        let run = |engine: CollEngine| {
            let out = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let out2 = out.clone();
            with_engine(nranks, engine, false, move |ctx, world, comm, r| {
                let n = world.nranks;
                let dev = world.primary_dev(r);
                let cap = (len * n).next_power_of_two().max(64) as u64;
                let off = dev.malloc(cap, 256).unwrap();
                let bytes: Vec<u8> =
                    (0..len * n).map(|i| (r * 31 + i * 7) as u8).collect();
                dev.mem.write(off, &bytes).unwrap();
                let op = match kind {
                    0 => XcclOp::AllReduce { op: ReduceOp::SumU64 },
                    1 => XcclOp::Broadcast { root: 1 % n },
                    2 => XcclOp::AllGather,
                    _ => XcclOp::Reduce { root: 1 % n, op: ReduceOp::SumU64 },
                };
                let payload = if kind == 2 { len as u64 } else { (len / 8 * 8).max(8) as u64 };
                comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], op, payload);
                let mut got = vec![0u8; len * n];
                dev.mem.read(off, &mut got).unwrap();
                out2.lock().push((r, got));
            });
            let mut rows = out.lock().clone();
            rows.sort_by_key(|&(r, _)| r);
            rows
        };
        let mut ac = AutoConfig::for_platform(&PlatformSpec::platform_a());
        ac.small_max_bytes = small_max;
        let auto = run(CollEngine::Auto(ac));
        let ring = run(CollEngine::default());
        prop_assert_eq!(auto, ring, "auto must agree with the ring engine's bytes");
    }

    /// The double-binary-tree engine's reduction semantics are
    /// byte-identical to the *sequential reference* association for
    /// every dtype — including floats, where association order matters:
    /// the tree folds whole payloads in reference order (unlike the
    /// ring's chain order, which is only exact on integer-valued data).
    /// Random payload sizes (ragged tails included), chunkings, windows
    /// and rank counts, over single- and multi-node tree layouts.
    #[test]
    fn dbt_allreduce_matches_sequential_reference(
        nranks in 2usize..9,
        len in 1usize..4096,
        chunk in 1u64..2048,
        inflight in 1usize..5,
        which in 0u8..4,
    ) {
        let dtype = [ReduceOp::SumF64, ReduceOp::SumF32, ReduceOp::SumU64, ReduceOp::MaxF64]
            [which as usize];
        let engine = CollEngine::Dbt(RingConfig { chunk_bytes: chunk, max_inflight: inflight });
        with_engine(nranks, engine, false, move |ctx, world, comm, r| {
            let dev = world.primary_dev(r);
            let off = dev.malloc(len.next_power_of_two().max(64) as u64, 256).unwrap();
            dev.mem.write(off, &payload(r, len, dtype)).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: dtype },
                len as u64,
            );
            let mut got = vec![0u8; len];
            dev.mem.read(off, &mut got).unwrap();
            assert_eq!(got, reference(world.nranks, len, dtype), "rank {r}");
        });
    }

    /// The DBT engine deposits the same bytes as the ring engine for
    /// every collective kind — including the rooted ops (rotated trees,
    /// chain leaders) and all-gather (which falls back to the ring
    /// schedule under `CollEngine::Dbt`).
    #[test]
    fn dbt_engine_matches_ring_bytes(
        nranks in 2usize..9,
        len in 8usize..2048,
        kind in 0u8..4,
    ) {
        let run = |engine: CollEngine| {
            let out = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let out2 = out.clone();
            with_engine(nranks, engine, false, move |ctx, world, comm, r| {
                let n = world.nranks;
                let dev = world.primary_dev(r);
                let cap = (len * n).next_power_of_two().max(64) as u64;
                let off = dev.malloc(cap, 256).unwrap();
                let bytes: Vec<u8> =
                    (0..len * n).map(|i| (r * 31 + i * 7) as u8).collect();
                dev.mem.write(off, &bytes).unwrap();
                let op = match kind {
                    0 => XcclOp::AllReduce { op: ReduceOp::SumU64 },
                    1 => XcclOp::Broadcast { root: 1 % n },
                    2 => XcclOp::AllGather,
                    _ => XcclOp::Reduce { root: 1 % n, op: ReduceOp::SumU64 },
                };
                let payload = if kind == 2 { len as u64 } else { (len / 8 * 8).max(8) as u64 };
                comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], op, payload);
                let mut got = vec![0u8; len * n];
                dev.mem.read(off, &mut got).unwrap();
                out2.lock().push((r, got));
            });
            let mut rows = out.lock().clone();
            rows.sort_by_key(|&(r, _)| r);
            rows
        };
        let dbt = run(CollEngine::Dbt(RingConfig { chunk_bytes: 512, max_inflight: 2 }));
        let ring = run(CollEngine::default());
        prop_assert_eq!(dbt, ring, "dbt must agree with the ring engine's bytes");
    }
}

#[test]
fn emergent_ring_trace_is_stable_across_runs() {
    // The fig6 determinism requirement: the ring schedule (thousands of
    // chunk events racing through wait-any groups) must replay
    // bit-identically — same end time, same entry count, same trace.
    let run = || {
        with_engine(8, CollEngine::default(), true, |ctx, world, comm, r| {
            let dev = world.primary_dev(r);
            let off = dev.malloc(2 << 20, 256).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF32 },
                1 << 20,
            );
            comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], XcclOp::AllGather, 64 << 10);
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "ring schedule must be deterministic");
    assert!(a.1 > 0);
}

#[test]
fn ring_time_is_emergent_not_fitted() {
    // The two engines price the same collective differently (the ring
    // time comes from link scheduling, not the curve), and the emergent
    // time respects the physical lower bound of the bottleneck link.
    let coll = |engine: CollEngine| {
        with_engine(8, engine, false, move |ctx, _world, comm, r| {
            let off = 0; // CostOnly-style: allocate nothing, cost only
            let dev_off = _world.primary_dev(r).malloc(8 << 20, 256).unwrap();
            let _ = off;
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off: dev_off }],
                XcclOp::AllReduce { op: ReduceOp::SumF64 },
                4 << 20,
            );
        })
        .0
    };
    let ring = coll(CollEngine::default());
    let prof = coll(CollEngine::Profile);
    assert_ne!(ring, prof, "emergent completion must not collapse onto the curve fit");
    // 8 devices over 2 nodes, 4 rails: each inter-node NIC moves at least
    // wire_factor * len / nrings bytes at 25 GB/s — the emergent time can
    // never beat the raw link.
    let wire_per_rail = (2.0 * 7.0 / 8.0) * (4u64 << 20) as f64 / 4.0;
    let min_us = wire_per_rail / 25.0e3;
    assert!(
        ring.as_us() > min_us,
        "emergent time {}us beats the physical link bound {min_us}us",
        ring.as_us()
    );
}

/// Run one collective of `len` bytes under `engine` at 16 ranks
/// (4 nodes × 4 A100s) and return the end time.
fn timed_collective(engine: CollEngine, op: XcclOp, len: u64) -> SimTime {
    with_engine(16, engine, false, move |ctx, world, comm, r| {
        let off = world.primary_dev(r).malloc((2 * len).next_power_of_two().max(64), 256).unwrap();
        comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], op, len);
    })
    .0
}

#[test]
fn auto_beats_ring_at_small_sizes_and_equals_it_at_large() {
    // The ISSUE 4 acceptance shape at engine level: below the crossover
    // the LL/tree fast path must finish earlier than the pure ring;
    // above it, Auto runs the identical (tuned) ring schedule, so the
    // times exactly equal the ring engine pinned to the same live
    // config (not merely within tolerance). The mid band is disabled
    // here (`mid_max_bytes = 0`) to pin the two-regime shape; the
    // three-regime dispatch has its own tests.
    let mut ac = AutoConfig::for_platform(&PlatformSpec::platform_a());
    ac.mid_max_bytes = 0;
    for op in [XcclOp::Broadcast { root: 0 }, XcclOp::AllReduce { op: ReduceOp::SumF32 }] {
        let small = 32u64 << 10;
        let auto = timed_collective(CollEngine::Auto(ac), op, small);
        let ring = timed_collective(CollEngine::default(), op, small);
        assert!(auto < ring, "{op:?}@32KiB: auto {auto:?} must beat ring {ring:?}");

        let large = 4u64 << 20; // far above every crossover at 16 ranks
        let auto = timed_collective(CollEngine::Auto(ac), op, large);
        let live = timed_collective(CollEngine::Ring(ac.ring_for(&op)), op, large);
        assert_eq!(auto, live, "{op:?}@4MiB: auto must fall back to the identical live ring");
    }
    // All-gather has no latency-bound regime: always the ring schedule.
    let auto = timed_collective(CollEngine::Auto(ac), XcclOp::AllGather, 16 << 10);
    let ring = timed_collective(
        CollEngine::Ring(ac.ring_for(&XcclOp::AllGather)),
        XcclOp::AllGather,
        16 << 10,
    );
    assert_eq!(auto, ring, "all-gather never takes the LL path");
}

#[test]
fn dbt_beats_ring_in_the_mid_band_and_is_deterministic() {
    // The PR 5 tentpole at engine level: at 16 ranks (4 nodes × 4
    // A100s) a 1 MiB allreduce sits squarely in the mid band — the
    // double binary tree's 2⌈log2 n⌉-deep schedule must finish earlier
    // than the ring's 2(n−1) steps, and replay bit-identically.
    let op = XcclOp::AllReduce { op: ReduceOp::SumF32 };
    let rc = RingConfig::auto(&PlatformSpec::platform_a(), &op, 4);
    let run = || timed_collective(CollEngine::Dbt(rc), op, 1 << 20);
    let dbt = run();
    assert_eq!(dbt, run(), "dbt schedule must be deterministic");
    let ring = timed_collective(CollEngine::default(), op, 1 << 20);
    assert!(dbt < ring, "DBT {dbt:?} must beat the ring {ring:?} at 1 MiB");
}

#[test]
fn auto_dispatches_three_regimes_in_order() {
    // The dispatcher's boundaries must be ordered and genuinely
    // separate the engines: at a size inside the mid band Auto matches
    // the DBT engine's schedule exactly, and above the upper cut it
    // matches the live ring exactly.
    let platform = PlatformSpec::platform_a();
    let mut ac = AutoConfig::for_platform(&platform);
    // Pull the upper guardrail in so the regime sizes stay inside the
    // test world's 8 MiB device heaps.
    ac.mid_max_bytes = 1 << 20;
    let op = XcclOp::AllReduce { op: ReduceOp::SumF32 };
    // 16 ranks over 4 nodes like timed_collective's world.
    let ll_cut = diomp_xccl::crossover_bytes(&platform, &op, 16, 4, &ac);
    let dbt_cut = diomp_xccl::dbt_crossover_bytes(&platform, &op, 16, 4, &ac);
    assert!(0 < ll_cut && ll_cut < dbt_cut, "boundaries must be ordered: {ll_cut} vs {dbt_cut}");

    let mid = (dbt_cut / 2).max(ll_cut + 1).next_power_of_two();
    assert!(mid <= dbt_cut, "test size {mid} must sit inside the mid band");
    let auto = timed_collective(CollEngine::Auto(ac), op, mid);
    let dbt = timed_collective(CollEngine::Dbt(RingConfig::auto(&platform, &op, 4)), op, mid);
    assert_eq!(auto, dbt, "mid band must run the DBT schedule");

    let above = (2 * dbt_cut).next_power_of_two();
    let auto = timed_collective(CollEngine::Auto(ac), op, above);
    let ring = timed_collective(CollEngine::Ring(ac.ring_for(&op)), op, above);
    assert_eq!(auto, ring, "above the mid band Auto must run the live ring");
}

#[test]
fn auto_small_path_is_deterministic_and_cheap_to_schedule() {
    // The LL/tree schedule is closed-form — it must replay bit-identically
    // and cost far fewer scheduler entries than the ring's chunked
    // progress loop at the same size.
    let ac = AutoConfig::for_platform(&PlatformSpec::platform_a());
    let run = |engine: CollEngine| {
        with_engine(8, engine, true, |ctx, world, comm, r| {
            let dev = world.primary_dev(r);
            let off = dev.malloc(64 << 10, 256).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF32 },
                32 << 10,
            );
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::Broadcast { root: 1 },
                16 << 10,
            );
        })
    };
    let a = run(CollEngine::Auto(ac));
    let b = run(CollEngine::Auto(ac));
    assert_eq!(a, b, "auto schedule must be deterministic");
    let (_, ring_entries, _) = run(CollEngine::default());
    assert!(
        a.1 < ring_entries,
        "LL path should need fewer scheduler entries: {} vs ring {}",
        a.1,
        ring_entries
    );
}

#[test]
fn larger_chunks_pipeline_worse_at_large_sizes() {
    // Chunk pipelining is what hides ring-step latency: a degenerate
    // single-chunk configuration must be no faster than the pipelined
    // default for a multi-megabyte broadcast.
    let run = |chunk_bytes: u64| {
        with_engine(
            8,
            CollEngine::Ring(RingConfig { chunk_bytes, max_inflight: 4 }),
            false,
            move |ctx, world, comm, r| {
                let off = world.primary_dev(r).malloc(8 << 20, 256).unwrap();
                comm.collective(
                    ctx,
                    r,
                    vec![DeviceBuf { flat: r, off }],
                    XcclOp::Broadcast { root: 0 },
                    4 << 20,
                );
            },
        )
        .0
    };
    let pipelined = run(128 << 10);
    let monolithic = run(u64::MAX);
    assert!(pipelined < monolithic, "chunked ring must be faster: {pipelined:?} vs {monolithic:?}");
}
