//! Integration tests for the XCCL collective library.

use std::sync::Arc;

use diomp_device::{DataMode, DeviceTable};
use diomp_fabric::{FabricWorld, ReduceOp};
use diomp_sim::{ClusterSpec, PlatformSpec, Sim, SimTime, Topology};
use diomp_xccl::{CommOpts, DeviceBuf, UniqueId, XcclComm, XcclOp};

fn boot(
    sim: &Sim,
    platform: PlatformSpec,
    nodes: usize,
    per: usize,
    nranks: usize,
) -> Arc<FabricWorld> {
    let spec = ClusterSpec { platform, nodes, gpus_per_node: per };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(4 << 20));
    FabricWorld::new(topo, devs, nranks)
}

/// Run `f` on every rank with a communicator over all ranks; returns the
/// end-of-sim virtual time.
fn with_comm(
    nranks: usize,
    per_rank_devices: usize,
    f: impl Fn(&mut diomp_sim::Ctx, &Arc<FabricWorld>, &Arc<XcclComm>, usize) + Send + Sync + 'static,
) -> SimTime {
    let mut sim = Sim::new();
    let nodes = (nranks * per_rank_devices).div_ceil(4);
    let world = boot(&sim, PlatformSpec::platform_a(), nodes, 4, nranks);
    let id = UniqueId::generate();
    let f = Arc::new(f);
    for r in 0..nranks {
        let world = world.clone();
        let f = f.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            // Root generates the id; everyone receives it via bootstrap.
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..world.nranks).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts::default(),
            );
            f(ctx, &world, &comm, r);
        });
    }
    sim.run().unwrap().end_time
}

fn write_f64(world: &FabricWorld, flat: usize, off: u64, vals: &[f64]) {
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    world.devs.dev(flat).mem.write(off, &bytes).unwrap();
}

fn read_f64(world: &FabricWorld, flat: usize, off: u64, n: usize) -> Vec<f64> {
    let mut bytes = vec![0u8; n * 8];
    world.devs.dev(flat).mem.read(off, &mut bytes).unwrap();
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

#[test]
fn allreduce_sums_across_all_devices() {
    with_comm(4, 1, |ctx, world, comm, r| {
        let dev = world.primary_dev(r);
        let off = dev.malloc(64, 256).unwrap();
        write_f64(world, r, off, &[(r + 1) as f64; 8]);
        comm.collective(
            ctx,
            r,
            vec![DeviceBuf { flat: r, off }],
            XcclOp::AllReduce { op: ReduceOp::SumF64 },
            64,
        );
        let got = read_f64(world, r, off, 8);
        assert_eq!(got, vec![10.0; 8], "rank {r}: 1+2+3+4 everywhere");
    });
}

#[test]
fn broadcast_copies_root_payload_everywhere() {
    with_comm(4, 1, |ctx, world, comm, r| {
        let dev = world.primary_dev(r);
        let off = dev.malloc(64, 256).unwrap();
        write_f64(world, r, off, &[r as f64 * 100.0; 8]);
        // Broadcast from the device at ring position 2.
        comm.collective(
            ctx,
            r,
            vec![DeviceBuf { flat: r, off }],
            XcclOp::Broadcast { root: 2 },
            64,
        );
        let got = read_f64(world, r, off, 8);
        let root_flat = comm.ring.order[2];
        assert_eq!(got, vec![root_flat as f64 * 100.0; 8], "rank {r}");
    });
}

#[test]
fn reduce_lands_only_at_root() {
    with_comm(4, 1, |ctx, world, comm, r| {
        let dev = world.primary_dev(r);
        let off = dev.malloc(64, 256).unwrap();
        write_f64(world, r, off, &[2.0; 8]);
        comm.collective(
            ctx,
            r,
            vec![DeviceBuf { flat: r, off }],
            XcclOp::Reduce { root: 0, op: ReduceOp::SumF64 },
            64,
        );
        let got = read_f64(world, r, off, 8);
        if comm.ring_pos(r) == 0 {
            assert_eq!(got, vec![8.0; 8]);
        } else {
            assert_eq!(got, vec![2.0; 8], "non-root buffers untouched");
        }
    });
}

#[test]
fn allgather_places_chunks_in_ring_order() {
    with_comm(4, 1, |ctx, world, comm, r| {
        let dev = world.primary_dev(r);
        let off = dev.malloc(4 * 16, 256).unwrap();
        write_f64(world, r, off, &[r as f64, r as f64]); // 16 B payload
        comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], XcclOp::AllGather, 16);
        let got = read_f64(world, r, off, 8);
        let expect: Vec<f64> = comm.ring.order.iter().flat_map(|&f| [f as f64, f as f64]).collect();
        assert_eq!(got, expect, "rank {r}");
    });
}

#[test]
fn single_process_multi_gpu_rank_contributes_all_its_devices() {
    // Paper §3.3: one rank may own several devices; collectives still
    // span every device atomically.
    with_comm(2, 2, |ctx, world, comm, r| {
        assert_eq!(world.gpus_per_rank, 2);
        let mut bufs = Vec::new();
        for flat in world.devices_of(r) {
            let off = world.devs.dev(flat).malloc(32, 256).unwrap();
            write_f64(world, flat, off, &[flat as f64; 4]);
            bufs.push(DeviceBuf { flat, off });
        }
        comm.collective(ctx, r, bufs.clone(), XcclOp::AllReduce { op: ReduceOp::SumF64 }, 32);
        for b in &bufs {
            let got = read_f64(world, b.flat, b.off, 4);
            assert_eq!(got, vec![0.0 + 1.0 + 2.0 + 3.0; 4]);
        }
    });
}

#[test]
fn ring_order_is_node_major() {
    with_comm(8, 1, |_ctx, world, comm, _r| {
        let nodes: Vec<usize> =
            comm.ring.order.iter().map(|&f| world.devs.dev(f).loc.node).collect();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        assert_eq!(nodes, sorted, "ring must be node-major to minimise crossings");
        assert_eq!(comm.ring.nodes, 2);
        assert_eq!(comm.ring.nrings, 4, "4 NICs per node ⇒ 4 rails");
    });
}

#[test]
fn larger_payloads_take_longer() {
    let t_small = with_comm(4, 1, |ctx, world, comm, r| {
        let off = world.primary_dev(r).malloc(1 << 20, 256).unwrap();
        comm.collective(
            ctx,
            r,
            vec![DeviceBuf { flat: r, off }],
            XcclOp::AllReduce { op: ReduceOp::SumF64 },
            64 << 10,
        );
    });
    let t_large = with_comm(4, 1, |ctx, world, comm, r| {
        let off = world.primary_dev(r).malloc(1 << 20, 256).unwrap();
        comm.collective(
            ctx,
            r,
            vec![DeviceBuf { flat: r, off }],
            XcclOp::AllReduce { op: ReduceOp::SumF64 },
            1 << 20,
        );
    });
    assert!(t_large > t_small);
}

#[test]
fn back_to_back_collectives_reuse_the_gate() {
    with_comm(4, 1, |ctx, world, comm, r| {
        let off = world.primary_dev(r).malloc(64, 256).unwrap();
        for round in 0..5u32 {
            write_f64(world, r, off, &[(round as f64) + 1.0; 8]);
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF64 },
                64,
            );
            let got = read_f64(world, r, off, 8);
            assert_eq!(got, vec![4.0 * (round as f64 + 1.0); 8]);
        }
    });
}
