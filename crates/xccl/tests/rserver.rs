//! Engine-level integration tests for the reduction-server offload:
//! the emergent schedule completes, the membership semantics (client
//! ranks fold, server ranks pass through) hold on every engine of a
//! server-equipped communicator, dead servers degrade to the ring
//! without hanging, and the schedule actually wins its priced region on
//! the bench cluster layout.

use std::sync::Arc;

use diomp_device::{DataMode, DeviceTable};
use diomp_fabric::{FabricWorld, ReduceOp};
use diomp_sim::{ClusterSpec, FaultPlan, PlatformSpec, Sim, SimTime, Topology};
use diomp_xccl::{
    AutoConfig, CollEngine, CommOpts, DeviceBuf, RingConfig, ServerSpec, UniqueId, XcclComm, XcclOp,
};
use parking_lot::Mutex;

/// Boot a platform-A cluster of `nodes` full nodes.
fn boot(sim: &Sim, nodes: usize, mode: DataMode, heap: u64, plan: &FaultPlan) -> Arc<FabricWorld> {
    sim.set_fault_plan(plan.clone());
    let platform = PlatformSpec::platform_a();
    let gpn = platform.gpus_per_node;
    let spec = ClusterSpec { platform, nodes, gpus_per_node: gpn };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), mode, Some(heap));
    let world = FabricWorld::new(topo, devs, nodes * gpn);
    world.refresh_health_from_plan(plan);
    world
}

/// Run one allreduce on a server-equipped communicator (every rank,
/// servers included, participates) and assert the membership semantics:
/// client ranks receive the fold over *client* contributions only,
/// server buffers pass through untouched. Returns the virtual end time.
fn run_server_allreduce(
    engine: CollEngine,
    nodes: usize,
    server_nodes: usize,
    len: u64,
    plan: &FaultPlan,
    tag: &str,
) -> SimTime {
    let mut sim = Sim::new();
    let world = boot(&sim, nodes, DataMode::Functional, (4 * len).next_power_of_two(), plan);
    let gpn = world.platform.gpus_per_node;
    let nranks = nodes * gpn;
    let nclients = (nodes - server_nodes) * gpn;
    let id = UniqueId::generate();
    let results: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(vec![Vec::new(); nranks]));
    for r in 0..nranks {
        let world = world.clone();
        let results = results.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..nranks).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts { engine, servers: ServerSpec::tail(server_nodes), ..CommOpts::default() },
            );
            let dev = world.primary_dev(r);
            let off = dev.malloc(len, 256).unwrap();
            let vals: Vec<u8> = (0..len / 8)
                .flat_map(|i| (((r as u64 + 1) * (i % 13 + 1)) as f64).to_le_bytes())
                .collect();
            dev.mem.write(off, &vals).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF64 },
                len,
            );
            let mut out = vec![0u8; len as usize];
            dev.mem.read(off, &mut out).unwrap();
            results.lock()[r] =
                out.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        });
    }
    let end = sim.run().unwrap().end_time;
    // Tail placement on node-major order: ranks on the first
    // `nodes - server_nodes` nodes are clients, the rest servers.
    let expect_client: Vec<f64> = (0..len / 8)
        .map(|i| (1..=nclients as u64).map(|r| (r * (i % 13 + 1)) as f64).sum())
        .collect();
    for (r, got) in results.lock().iter().enumerate() {
        if r < nclients {
            assert_eq!(got, &expect_client, "{tag}: client rank {r} diverged from the reference");
        } else {
            let mine: Vec<f64> =
                (0..len / 8).map(|i| ((r as u64 + 1) * (i % 13 + 1)) as f64).collect();
            assert_eq!(got, &mine, "{tag}: server rank {r} buffer must pass through untouched");
        }
    }
    end
}

/// Virtual end time of one `len`-byte allreduce on a server-equipped
/// cluster in CostOnly mode (timing only, no data). Comm init cost is
/// identical across engines, so end-time comparisons compare the
/// collectives.
fn timed_allreduce(engine: CollEngine, nodes: usize, server_nodes: usize, len: u64) -> SimTime {
    let mut sim = Sim::new();
    let world = boot(&sim, nodes, DataMode::CostOnly, 1 << 20, &FaultPlan::new());
    let gpn = world.platform.gpus_per_node;
    let nranks = nodes * gpn;
    let id = UniqueId::generate();
    for r in 0..nranks {
        let world = world.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let comm = XcclComm::init(
                ctx,
                &world,
                (0..nranks).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts { engine, servers: ServerSpec::tail(server_nodes), ..CommOpts::default() },
            );
            let dev = world.primary_dev(r);
            let off = dev.malloc(64, 256).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF64 },
                len,
            );
        });
    }
    sim.run().unwrap().end_time
}

fn engines() -> Vec<CollEngine> {
    let p = PlatformSpec::platform_a();
    vec![
        CollEngine::Profile,
        CollEngine::Ring(RingConfig::default()),
        CollEngine::Dbt(RingConfig::default()),
        CollEngine::ReductionServer(RingConfig::default()),
        CollEngine::Auto(AutoConfig::for_platform(&p)),
    ]
}

#[test]
fn every_engine_honours_membership_semantics_on_a_server_comm() {
    // The client-only fold is a property of the communicator, not of
    // the engine that runs: all five engines on a 2-client + 1-server
    // node comm produce the same client bytes and leave server buffers
    // untouched.
    for engine in engines() {
        run_server_allreduce(engine, 3, 1, 256 << 10, &FaultPlan::new(), &format!("{engine:?}"));
    }
}

#[test]
fn server_schedule_is_deterministic() {
    let engine = CollEngine::ReductionServer(RingConfig::default());
    let a = run_server_allreduce(engine, 3, 1, 512 << 10, &FaultPlan::new(), "replay A");
    let b = run_server_allreduce(engine, 3, 1, 512 << 10, &FaultPlan::new(), "replay B");
    assert_eq!(a, b, "same input must replay the same virtual-time trace");
}

#[test]
fn dead_servers_fall_back_to_the_ring_and_never_hang() {
    // Kill every server-node NIC: the live server set comes up empty,
    // the engine degrades to the ring schedule over the full rails, the
    // run completes, and the membership semantics still hold (the
    // client-only fold is membership, not schedule).
    let probe = Sim::new();
    let world = boot(&probe, 3, DataMode::CostOnly, 1 << 20, &FaultPlan::new());
    let gpn = world.platform.gpus_per_node;
    let mut plan = FaultPlan::new();
    for f in 2 * gpn..3 * gpn {
        plan = plan.kill_link(world.devs.dev(f).nic);
    }
    drop(probe);
    let engine = CollEngine::ReductionServer(RingConfig::default());
    run_server_allreduce(engine, 3, 1, 256 << 10, &plan, "all servers dead");
}

#[test]
fn one_dead_server_nic_restripes_over_the_survivors() {
    // Kill a single server device's NIC: the stripes re-split over the
    // remaining live servers; completion and semantics are unaffected.
    let probe = Sim::new();
    let world = boot(&probe, 3, DataMode::CostOnly, 1 << 20, &FaultPlan::new());
    let gpn = world.platform.gpus_per_node;
    let dead = world.devs.dev(2 * gpn).nic;
    drop(probe);
    let plan = FaultPlan::new().kill_link(dead);
    let engine = CollEngine::ReductionServer(RingConfig::default());
    run_server_allreduce(engine, 3, 1, 256 << 10, &plan, "one server NIC dead");
}

#[test]
fn servers_win_their_priced_region_on_the_bench_layout() {
    // The bench cluster: 8 client + 8 server platform-A nodes. At
    // 16 MiB the clients are injection-bound on the ring (every NIC
    // moves ≈2× the payload share) and the emergent server schedule
    // must beat both the ring and the DBT outright.
    let len = 16 << 20;
    let ring = timed_allreduce(CollEngine::Ring(RingConfig::default()), 16, 8, len);
    let dbt = timed_allreduce(CollEngine::Dbt(RingConfig::default()), 16, 8, len);
    let rsv = timed_allreduce(CollEngine::ReductionServer(RingConfig::default()), 16, 8, len);
    assert!(
        rsv < ring.min(dbt),
        "reduction server must win at 16 MiB on the 8+8 layout: rsv={rsv:?} ring={ring:?} dbt={dbt:?}"
    );
}
