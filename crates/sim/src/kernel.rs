//! The discrete-event scheduler.
//!
//! Design (DESIGN.md D1): a *sequential* deterministic discrete-event
//! simulation. Simulated ranks run as ordinary OS threads writing ordinary
//! blocking code, but a single scheduler hands a baton between them so at
//! most one task executes at any moment. The scheduler owns a priority
//! queue of `(virtual time, sequence number)`-ordered entries; ties are
//! broken by insertion order, so a given program produces a bit-identical
//! event trace on every run.
//!
//! Two kinds of queue entries exist:
//!
//! * **Wake** — resume a parked task (used by `delay`, event completion,
//!   barriers, channel receives).
//! * **Action** — run a closure on the scheduler thread at a given virtual
//!   time. Actions are how *one-sided* operations complete without any
//!   participation from the target rank (DESIGN.md D2): an RMA put
//!   schedules an action at the modelled arrival time which copies the
//!   bytes into the target segment and completes the initiator's event.
//!
//! Spurious wake-ups are impossible by construction: every park increments
//! the task's `park_seq`, and every wake entry carries the sequence number
//! of the park it is meant to resume; mismatched entries are skipped.

use std::collections::BinaryHeap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::board::{BoardId, BoardSlot};
use crate::ctx::Ctx;
use crate::event::{EventArena, EventId, GroupRef};
use crate::fault::{CtrlFault, FaultPlan, FaultState};
use crate::qos::{ContentionState, FlowId, FlowSlot};
use crate::resource::{ResSlot, ResourceId, Transfer};
use crate::task::{TaskId, TaskSlot, TaskStatus, YieldMsg};
use crate::time::{Dur, SimTime};
use crate::trace::TraceRec;

/// Closure run on the scheduler thread at a scheduled virtual time.
pub type Action = Box<dyn FnOnce(&SimHandle) + Send + 'static>;

enum Item {
    /// Resume task if it is still parked on the park numbered `park_seq`.
    /// `coalesced` counts how many per-chunk completions this single heap
    /// entry stands for (0 for ordinary wakes): the closed-form collective
    /// fast paths retire a whole run of same-edge chunk arrivals with one
    /// entry carrying the run length instead of one entry per chunk.
    Wake {
        task: TaskId,
        park_seq: u64,
        coalesced: u64,
    },
    Action(Action),
}

struct Entry {
    t: SimTime,
    seq: u64,
    item: Item,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (t, seq) pops first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// One batched multi-event wait: a task parked until `remaining` event
/// registrations have completed. The whole group costs a single wake
/// entry, which is what makes `Ctx::wait_all` (and `ompx_fence` built on
/// it) cheap for large pending sets. With `remaining == 1` over many
/// events the same slot implements `Ctx::wait_any_batched`: the first
/// completion fires the group; later completions find it dead (or
/// recycled under a newer generation) and push nothing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WaitGroup {
    pub(crate) remaining: usize,
    pub(crate) task: TaskId,
    pub(crate) park_seq: u64,
    pub(crate) live: bool,
    /// Bumped on slot reuse so stale event-side references are detectable.
    pub(crate) gen: u32,
}

pub(crate) struct KState {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    pub(crate) tasks: Vec<TaskSlot>,
    /// Per-task park counter used to invalidate stale wakes.
    pub(crate) park_seqs: Vec<u64>,
    pub(crate) events: EventArena,
    /// Multi-event wait groups (free-list recycled, like events).
    pub(crate) wait_groups: Vec<WaitGroup>,
    free_wait_groups: Vec<u32>,
    /// Notification boards (range-waitable id → value slots).
    pub(crate) boards: Vec<BoardSlot>,
    /// Freed board slots awaiting reuse (see [`SimHandle::free_board`]).
    free_boards: Vec<u32>,
    /// Scratch buffer for `board_post`'s fired-waiter sweep, reused across
    /// calls so the hot notification path allocates nothing.
    board_fired: Vec<GroupRef>,
    pub(crate) resources: Vec<ResSlot>,
    /// Armed fault injector, if a plan was installed. `None` (the
    /// default) keeps every hook on the one-branch fast path so clean
    /// runs are bit-identical with or without the subsystem compiled in.
    pub(crate) fault: Option<Box<FaultState>>,
    /// Registered traffic flows (QoS weight + delivery stats). Always
    /// present — flows tag transfers whether or not contention is armed.
    pub(crate) flows: Vec<FlowSlot>,
    /// Freed flow slots awaiting reuse (see [`SimHandle::release_flow`]).
    pub(crate) free_flows: Vec<u32>,
    /// Armed weighted-fair-queuing contention, mirroring `fault`: `None`
    /// (the default) keeps `transfer_qos` on a path bit-identical to the
    /// closed-form FIFO calls it replaced.
    pub(crate) contention: Option<Box<ContentionState>>,
    n_done: usize,
    entries_processed: u64,
    /// Total per-chunk completions that were folded into coalesced wake
    /// entries instead of costing one heap entry each.
    pub(crate) coalesced_chunks: u64,
    /// When set, the collective fast paths stand down and every schedule
    /// runs through the explicit per-chunk event driver (equivalence
    /// testing and the uncoalesced bench arms).
    pub(crate) force_explicit: bool,
    trace: Option<Vec<TraceRec>>,
    limit_entries: Option<u64>,
    limit_time: Option<SimTime>,
}

impl KState {
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Allocate a wait group covering `remaining` pending registrations.
    /// Returns the generation-tagged reference events store.
    pub(crate) fn alloc_wait_group(
        &mut self,
        remaining: usize,
        task: TaskId,
        park_seq: u64,
    ) -> GroupRef {
        if let Some(i) = self.free_wait_groups.pop() {
            let gen = self.wait_groups[i as usize].gen.wrapping_add(1);
            self.wait_groups[i as usize] = WaitGroup { remaining, task, park_seq, live: true, gen };
            GroupRef { gid: i, gen }
        } else {
            self.wait_groups.push(WaitGroup { remaining, task, park_seq, live: true, gen: 0 });
            GroupRef { gid: (self.wait_groups.len() - 1) as u32, gen: 0 }
        }
    }

    /// Kill a wait group that will never fire (its waiter timed out).
    /// Registrations left on events become stale references, skipped by
    /// the generation check exactly like a fired wait-any group's.
    pub(crate) fn kill_group(&mut self, gref: GroupRef) {
        let g = &mut self.wait_groups[gref.gid as usize];
        if g.live && g.gen == gref.gen {
            g.live = false;
            self.free_wait_groups.push(gref.gid);
        }
    }

    /// Scale a task-local compute delay by its straggle factor, if a
    /// fault plan is armed and matched this task at spawn.
    pub(crate) fn scale_delay(&self, task: TaskId, d: Dur) -> Dur {
        match &self.fault {
            Some(f) => f.scale_delay(task, d),
            None => d,
        }
    }
}

pub(crate) struct Kernel {
    pub(crate) state: Mutex<KState>,
    pub(crate) yield_tx: Sender<YieldMsg>,
}

/// Cloneable, `Send` handle to the simulation kernel.
///
/// Usable from tasks, scheduled actions, and before `run()`. All methods
/// are non-blocking; blocking operations live on [`Ctx`].
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) kernel: Arc<Kernel>,
}

/// Statistics for a completed simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time at which the last entry was processed.
    pub end_time: SimTime,
    /// Total queue entries processed (wakes + actions, including stale).
    pub entries_processed: u64,
    /// Per-chunk completions folded into coalesced wake entries by the
    /// collective fast paths — work the scheduler priced without paying
    /// one heap entry per chunk. `0` when no fast path ran.
    pub coalesced_chunks: u64,
    /// Wall-clock milliseconds the scheduler loop itself took — the cost
    /// of the *simulator*, as opposed to the simulated virtual time.
    pub sim_wall_ms: f64,
    /// Number of tasks that ran to completion.
    pub tasks_completed: usize,
    /// Event trace, if tracing was enabled.
    pub trace: Vec<TraceRec>,
}

/// Why a simulation failed to complete.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The event queue drained while tasks were still blocked: nothing can
    /// ever wake them.
    Deadlock {
        /// Names of the blocked tasks.
        blocked: Vec<String>,
        /// Virtual time of the deadlock.
        at: SimTime,
    },
    /// A configured safety limit was exceeded (runaway simulation).
    LimitExceeded {
        /// Human-readable description of the limit hit.
        what: String,
        /// Virtual time when the limit tripped.
        at: SimTime,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked, at } => {
                write!(f, "simulation deadlock at {at}: blocked tasks {blocked:?}")
            }
            SimError::LimitExceeded { what, at } => {
                write!(f, "simulation limit exceeded at {at}: {what}")
            }
        }
    }
}
impl std::error::Error for SimError {}

/// A complete simulation: scheduler plus the set of spawned task threads.
pub struct Sim {
    handle: SimHandle,
    yield_rx: Receiver<YieldMsg>,
    join: Vec<JoinHandle<()>>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at virtual time zero.
    pub fn new() -> Self {
        let (yield_tx, yield_rx) = unbounded();
        let kernel = Arc::new(Kernel {
            state: Mutex::new(KState {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                tasks: Vec::new(),
                park_seqs: Vec::new(),
                events: EventArena::default(),
                wait_groups: Vec::new(),
                free_wait_groups: Vec::new(),
                boards: Vec::new(),
                free_boards: Vec::new(),
                board_fired: Vec::new(),
                resources: Vec::new(),
                fault: None,
                flows: Vec::new(),
                free_flows: Vec::new(),
                contention: None,
                n_done: 0,
                entries_processed: 0,
                coalesced_chunks: 0,
                force_explicit: false,
                trace: None,
                limit_entries: None,
                limit_time: None,
            }),
            yield_tx,
        });
        Sim { handle: SimHandle { kernel }, yield_rx, join: Vec::new() }
    }

    /// Handle usable to spawn tasks and schedule actions before `run()`.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Record a trace of every wake and user `trace()` call (see
    /// [`SimReport::trace`]). Used by the determinism property tests.
    pub fn enable_trace(&self) {
        self.handle.kernel.state.lock().trace = Some(Vec::new());
    }

    /// Abort with [`SimError::LimitExceeded`] after this many queue entries.
    pub fn limit_entries(&self, n: u64) {
        self.handle.kernel.state.lock().limit_entries = Some(n);
    }

    /// Abort with [`SimError::LimitExceeded`] once virtual time passes `t`.
    pub fn limit_time(&self, t: SimTime) {
        self.handle.kernel.state.lock().limit_time = Some(t);
    }

    /// Install a fault plan, arming the deterministic injector. Must be
    /// called before tasks whose names the plan's stragglers match are
    /// spawned (the factor is resolved once at spawn). Installing an
    /// empty plan is equivalent to not installing one.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut st = self.handle.kernel.state.lock();
        st.fault = if plan.is_empty() { None } else { Some(Box::new(FaultState::new(plan))) };
    }

    /// Arm weighted-fair-queuing contention: flow-tagged transfers
    /// ([`SimHandle::transfer_qos`]) on a shared link fair-share its
    /// bandwidth by QoS weight instead of serialising FIFO. Disarmed
    /// (the default), flow-tagged transfers replay bit-identically to
    /// the closed-form FIFO model (the `qos` module docs spell out the
    /// pricing rule).
    pub fn enable_contention(&self) {
        self.handle.kernel.state.lock().contention = Some(Box::<ContentionState>::default());
    }

    /// Force every collective schedule through the explicit per-chunk
    /// event driver, disabling the closed-form/coalesced fast paths. The
    /// equivalence tests and the uncoalesced arms of the scale benches
    /// run with this on; virtual time must be bit-identical either way.
    pub fn force_explicit_schedules(&self, on: bool) {
        self.handle.kernel.state.lock().force_explicit = on;
    }

    /// Spawn a task before the simulation starts. See [`SimHandle::spawn`].
    pub fn spawn<F>(&mut self, name: impl Into<String>, f: F) -> TaskId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let (id, jh) = self.handle.spawn_inner(name.into(), f);
        self.join.push(jh);
        id
    }

    /// Run the simulation to completion.
    ///
    /// Returns `Ok` when every task has finished, [`SimError::Deadlock`]
    /// when the queue drains with tasks still blocked, or re-raises the
    /// panic of any task that panicked.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        let wall_start = std::time::Instant::now();
        loop {
            let action_or_wake = {
                let mut st = self.handle.kernel.state.lock();
                if let Some(limit) = st.limit_entries {
                    if st.entries_processed > limit {
                        let at = st.now;
                        return Err(SimError::LimitExceeded {
                            what: format!("more than {limit} queue entries"),
                            at,
                        });
                    }
                }
                match st.queue.pop() {
                    None => break,
                    Some(entry) => {
                        debug_assert!(entry.t >= st.now, "time went backwards");
                        st.now = entry.t;
                        st.entries_processed += 1;
                        if let Some(limit) = st.limit_time {
                            if st.now > limit {
                                return Err(SimError::LimitExceeded {
                                    what: format!("virtual time past {limit}"),
                                    at: st.now,
                                });
                            }
                        }
                        match entry.item {
                            Item::Wake { task, park_seq, coalesced } => {
                                let fresh = st.tasks[task.index()].status == TaskStatus::Blocked
                                    && st.park_seqs[task.index()] == park_seq;
                                if fresh {
                                    st.coalesced_chunks += coalesced;
                                    st.tasks[task.index()].status = TaskStatus::Running;
                                    if st.trace.is_some() {
                                        let name = st.tasks[task.index()].name.clone();
                                        let t = st.now;
                                        st.trace
                                            .as_mut()
                                            .unwrap()
                                            .push(TraceRec::new(t, name, "wake"));
                                    }
                                    let tx = st.tasks[task.index()].wake_tx.clone();
                                    drop(st);
                                    tx.send(()).expect("task thread vanished");
                                    Some(None) // must wait for a yield
                                } else {
                                    None // stale wake: skip
                                }
                            }
                            Item::Action(f) => {
                                drop(st);
                                Some(Some(f))
                            }
                        }
                    }
                }
            };
            match action_or_wake {
                None => continue, // stale entry
                Some(Some(f)) => f(&self.handle),
                Some(None) => {
                    // A task holds the baton; wait for it to give it back.
                    match self.yield_rx.recv().expect("all tasks vanished") {
                        YieldMsg::Parked => {}
                        YieldMsg::Done => {}
                        YieldMsg::Panicked(id, msg) => {
                            let name =
                                self.handle.kernel.state.lock().tasks[id.index()].name.clone();
                            // Re-raise so test assertions inside ranks propagate.
                            panic!("simulated task '{name}' panicked: {msg}");
                        }
                    }
                }
            }
        }

        let mut st = self.handle.kernel.state.lock();
        let report = SimReport {
            end_time: st.now,
            entries_processed: st.entries_processed,
            coalesced_chunks: st.coalesced_chunks,
            sim_wall_ms: wall_start.elapsed().as_secs_f64() * 1e3,
            tasks_completed: st.n_done,
            trace: st.trace.take().unwrap_or_default(),
        };
        if st.n_done != st.tasks.len() {
            let blocked = st
                .tasks
                .iter()
                .filter(|t| t.status != TaskStatus::Done)
                .map(|t| t.name.clone())
                .collect();
            let at = st.now;
            drop(st);
            // Blocked task threads are abandoned (they sit in recv()); this
            // is an error path and the process is normally about to exit or
            // the test to assert. Documented leak.
            for jh in self.join.drain(..) {
                drop(jh);
            }
            return Err(SimError::Deadlock { blocked, at });
        }
        drop(st);
        for jh in self.join.drain(..) {
            let _ = jh.join();
        }
        Ok(report)
    }
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.state.lock().now
    }

    fn push(&self, st: &mut KState, t: SimTime, item: Item) {
        let seq = st.seq;
        st.seq += 1;
        st.queue.push(Entry { t, seq, item });
    }

    /// Push a scheduled action (clamped to now) while already holding the
    /// kernel lock. Crate-internal plumbing for the contention module.
    pub(crate) fn push_action(&self, st: &mut KState, t: SimTime, f: Action) {
        let t = t.max(st.now);
        self.push(st, t, Item::Action(f));
    }

    /// Spawn a task during the simulation (e.g. a per-node progress
    /// engine). The new task starts at the current virtual time.
    ///
    /// Threads spawned mid-run are detached; they exit when their closure
    /// returns.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> TaskId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let (id, _jh) = self.spawn_inner(name.into(), f);
        id
    }

    pub(crate) fn spawn_inner<F>(&self, name: String, f: F) -> (TaskId, JoinHandle<()>)
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let (wake_tx, wake_rx) = unbounded();
        let id = {
            let mut st = self.kernel.state.lock();
            let id = TaskId(st.tasks.len() as u32);
            st.tasks.push(TaskSlot { name: name.clone(), status: TaskStatus::Blocked, wake_tx });
            st.park_seqs.push(0);
            if let Some(f) = st.fault.as_mut() {
                f.resolve_task(id, &name);
            }
            // Initial wake resumes park_seq 0 (the task's startup park).
            let t = st.now;
            self.push(&mut st, t, Item::Wake { task: id, park_seq: 0, coalesced: 0 });
            id
        };
        let handle = self.clone();
        let thread_name = format!("sim-{name}");
        let jh = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let mut ctx = Ctx::new(handle, id, name, wake_rx);
                // Startup park: wait for the scheduler to hand us the baton.
                if ctx.initial_park().is_err() {
                    return; // simulation torn down before we started
                }
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                let kernel = ctx.handle().kernel.clone();
                match result {
                    Ok(()) => {
                        {
                            let mut st = kernel.state.lock();
                            st.tasks[id.index()].status = TaskStatus::Done;
                            st.n_done += 1;
                        }
                        let _ = kernel.yield_tx.send(YieldMsg::Done);
                    }
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        {
                            let mut st = kernel.state.lock();
                            st.tasks[id.index()].status = TaskStatus::Done;
                            st.n_done += 1;
                        }
                        let _ = kernel.yield_tx.send(YieldMsg::Panicked(id, msg));
                    }
                }
            })
            .expect("failed to spawn task thread");
        (id, jh)
    }

    /// Create a pending one-shot event.
    pub fn new_event(&self) -> EventId {
        self.kernel.state.lock().events.alloc()
    }

    /// Has this event completed?
    pub fn event_done(&self, ev: EventId) -> bool {
        self.kernel.state.lock().events.get(ev).completed
    }

    /// Complete an event now, waking all waiters at the current time.
    /// Completing an already-completed event is a no-op.
    pub fn complete(&self, ev: EventId) {
        let mut st = self.kernel.state.lock();
        let slot = st.events.get_mut(ev);
        if slot.completed {
            return;
        }
        slot.completed = true;
        let waiters = std::mem::take(&mut slot.waiters);
        let groups = std::mem::take(&mut slot.group_waiters);
        let auto_free = slot.auto_free;
        let now = st.now;
        for w in waiters {
            self.push(
                &mut st,
                now,
                Item::Wake { task: w.task, park_seq: w.park_seq, coalesced: 0 },
            );
        }
        // Batched waiters: only the registration that brings a group to
        // zero produces a wake entry. Stale references — wait-any groups
        // that already fired on another event, possibly recycled since —
        // are skipped by the generation check.
        for gref in groups {
            self.fire_group_ref(&mut st, gref, now);
        }
        if auto_free {
            st.events.free(ev);
        }
    }

    /// Abandon an in-flight event: nobody will wait on it again, but a
    /// completion may still be scheduled. If the event has already
    /// completed it is recycled immediately; otherwise the slot frees
    /// itself the moment the completion fires. This is the primitive
    /// under queue purging — a purged operation's bytes may still land,
    /// but its completion is discarded instead of leaking the slot.
    pub fn release_event(&self, ev: EventId) {
        let mut st = self.kernel.state.lock();
        if st.events.get(ev).completed {
            drop(st);
            self.free_event(ev);
        } else {
            st.events.get_mut(ev).auto_free = true;
        }
    }

    /// Decrement a wait-group registration; the registration that brings
    /// the group to zero wakes its task. Stale references (groups that
    /// already fired, possibly recycled under a newer generation) are
    /// skipped. Shared by event completion and board posts.
    fn fire_group_ref(&self, st: &mut KState, gref: GroupRef, now: SimTime) {
        let g = &mut st.wait_groups[gref.gid as usize];
        if !g.live || g.gen != gref.gen {
            return;
        }
        debug_assert!(g.remaining > 0, "live wait group with zero remaining");
        g.remaining -= 1;
        if g.remaining == 0 {
            g.live = false;
            let (task, park_seq) = (g.task, g.park_seq);
            st.free_wait_groups.push(gref.gid);
            self.push(st, now, Item::Wake { task, park_seq, coalesced: 0 });
        }
    }

    /// Create a notification board (see [`crate::Ctx::board_waitsome`]).
    /// Freed slots ([`SimHandle::free_board`]) are reused before the board
    /// table grows.
    pub fn new_board(&self) -> BoardId {
        let mut st = self.kernel.state.lock();
        if let Some(i) = st.free_boards.pop() {
            debug_assert!(st.boards[i as usize].values.is_empty());
            return BoardId(i);
        }
        let id = BoardId(st.boards.len() as u32);
        st.boards.push(BoardSlot::default());
        id
    }

    /// Retire a board, recycling its slot for the next
    /// [`SimHandle::new_board`]. The board must be quiescent — no parked waiters —
    /// and the handle must not be used again: `BoardId`s carry no
    /// generation tag, so a stale handle would alias the slot's next
    /// owner. Unconsumed values are dropped. This is what communicator
    /// teardown/rebuild cycles call so repeated `shrink`/re-init does not
    /// leak board slots.
    pub fn free_board(&self, board: BoardId) {
        let mut st = self.kernel.state.lock();
        let slot = &mut st.boards[board.index()];
        assert!(slot.waiters.is_empty(), "freeing a board with parked waiters");
        slot.values.clear();
        debug_assert!(!st.free_boards.contains(&board.0), "double free of board {board:?}");
        st.free_boards.push(board.0);
    }

    /// Number of board slots currently in use (allocated minus freed) —
    /// slot-leak regression tests watch this across rebuild cycles.
    pub fn boards_in_use(&self) -> usize {
        let st = self.kernel.state.lock();
        st.boards.len() - st.free_boards.len()
    }

    /// Post notification `id` with `value` on a board, waking every task
    /// whose parked waitsome range contains `id`. Posting to an id that
    /// already holds an unconsumed value overwrites it (level-triggered
    /// GASPI semantics — use disjoint id sets if every post matters).
    /// Callable from tasks and from scheduled actions.
    pub fn board_post(&self, board: BoardId, id: u32, value: u64) {
        let mut st = self.kernel.state.lock();
        let now = st.now();
        st.boards[board.index()].values.insert(id, value);
        // Fire (and drop) every parked waiter whose range covers the id;
        // waiters outside the range keep their registration. The fired
        // list lives on the kernel state and is reused across posts so
        // the notification hot path allocates nothing per call.
        let mut fired = std::mem::take(&mut st.board_fired);
        fired.clear();
        {
            let slot = &mut st.boards[board.index()];
            slot.waiters.retain(|w| {
                if w.contains(id) {
                    fired.push(w.group);
                    false
                } else {
                    true
                }
            });
        }
        for &gref in &fired {
            self.fire_group_ref(&mut st, gref, now);
        }
        st.board_fired = fired;
    }

    /// Lowest posted, unconsumed id in `[first, first + num)` and its
    /// value, without consuming it. Non-blocking.
    pub fn board_peek(&self, board: BoardId, first: u32, num: u32) -> Option<(u32, u64)> {
        let st = self.kernel.state.lock();
        st.boards[board.index()].lowest_in_range(first, num)
    }

    /// Atomically consume notification `id`, returning its value if one
    /// was posted and not yet consumed (`gaspi_notify_reset`).
    pub fn board_reset(&self, board: BoardId, id: u32) -> Option<u64> {
        let mut st = self.kernel.state.lock();
        st.boards[board.index()].values.remove(&id)
    }

    /// Schedule completion of an event at an absolute virtual time.
    pub fn complete_at(&self, ev: EventId, t: SimTime) {
        let h = self.clone();
        self.schedule_at(t, move |_| h.complete(ev));
    }

    /// Schedule completion of an event after a delay.
    pub fn complete_in(&self, ev: EventId, d: Dur) {
        let t = self.now() + d;
        self.complete_at(ev, t);
    }

    /// Recycle a completed event. The handle must not be used again.
    pub fn free_event(&self, ev: EventId) {
        let mut st = self.kernel.state.lock();
        // Wait-any groups that fired on another event leave stale
        // references behind; drop them so only *live* registrations count
        // as "someone still waits on this event".
        let refs = std::mem::take(&mut st.events.get_mut(ev).group_waiters);
        let live: Vec<GroupRef> = refs
            .into_iter()
            .filter(|r| {
                let g = &st.wait_groups[r.gid as usize];
                g.live && g.gen == r.gen
            })
            .collect();
        st.events.get_mut(ev).group_waiters = live;
        st.events.free(ev);
    }

    /// Run a closure on the scheduler thread at absolute virtual time `t`
    /// (clamped to now). This is the primitive behind one-sided completion.
    pub fn schedule_at<F>(&self, t: SimTime, f: F)
    where
        F: FnOnce(&SimHandle) + Send + 'static,
    {
        let mut st = self.kernel.state.lock();
        let t = t.max(st.now);
        self.push(&mut st, t, Item::Action(Box::new(f)));
    }

    /// Run a closure on the scheduler thread after a virtual delay.
    pub fn schedule_in<F>(&self, d: Dur, f: F)
    where
        F: FnOnce(&SimHandle) + Send + 'static,
    {
        let mut st = self.kernel.state.lock();
        let t = st.now + d;
        self.push(&mut st, t, Item::Action(Box::new(f)));
    }

    /// Register a FIFO bandwidth resource (a link, NIC or copy engine).
    pub fn new_resource(&self, bytes_per_ns: f64, latency: Dur) -> ResourceId {
        let mut st = self.kernel.state.lock();
        let id = ResourceId(st.resources.len() as u32);
        st.resources.push(ResSlot::new(bytes_per_ns, latency));
        id
    }

    /// Reserve a transfer of `bytes` on a resource. Returns the modelled
    /// departure/arrival times; the caller schedules completion actions.
    pub fn transfer(&self, res: ResourceId, bytes: u64) -> Transfer {
        let mut st = self.kernel.state.lock();
        let now = st.now;
        self.transfer_locked(&mut st, res, now, bytes)
    }

    /// Reserve a transfer whose payload only becomes available at `at`
    /// (chained staging stages, software-overhead-delayed NIC injection).
    pub fn transfer_from(&self, res: ResourceId, at: SimTime, bytes: u64) -> Transfer {
        let mut st = self.kernel.state.lock();
        let at = at.max(st.now);
        self.transfer_locked(&mut st, res, at, bytes)
    }

    /// Reserve a flow-tagged transfer *without* allocating a completion
    /// event: exactly the resource arithmetic and flow-stat update of the
    /// disarmed [`SimHandle::transfer_qos`] path, minus the event and the
    /// completion action. The collective fast paths use this to price a
    /// whole chunk schedule arithmetically — fault-plan perturbation
    /// included, per edge, via the shared `transfer_locked` path — and
    /// then park once on the final arrival instant.
    ///
    /// Callers must ensure contention is disarmed
    /// ([`SimHandle::contention_armed`]): under WFQ, completion order is
    /// event-driven and cannot be priced call-by-call.
    pub fn transfer_flow(
        &self,
        res: ResourceId,
        flow: FlowId,
        at: SimTime,
        bytes: u64,
    ) -> Transfer {
        let mut st = self.kernel.state.lock();
        debug_assert!(st.contention.is_none(), "transfer_flow requires disarmed contention");
        let at = at.max(st.now);
        let tr = self.transfer_locked(&mut st, res, at, bytes);
        let fs = &mut st.flows[flow.index()];
        fs.stats.bytes += bytes;
        fs.stats.first_start = Some(fs.stats.first_start.unwrap_or(tr.start).min(tr.start));
        fs.stats.last_depart = fs.stats.last_depart.max(tr.depart);
        tr
    }

    /// Bulk-advance a resource by `steps` identical reservations of
    /// `bytes_per_step` whose departures are spaced exactly `shift`
    /// apart: `free_at += steps·shift`, `total_bytes += steps·bytes`.
    ///
    /// This is the steady-state jump primitive: when a schedule's whole
    /// per-edge state has advanced by one uniform scalar `shift` across
    /// consecutive steps, max-plus shift-invariance makes replaying the
    /// remaining steps equivalent to adding `steps·shift` everywhere —
    /// so the fast path charges them in one call instead of `steps`
    /// reservations. Exactness requires the caller to have verified the
    /// uniform shift (the ring fast path's jump detector does).
    pub fn bulk_advance_resource(
        &self,
        res: ResourceId,
        shift: Dur,
        steps: u64,
        bytes_per_step: u64,
    ) {
        let mut st = self.kernel.state.lock();
        st.resources[res.index()].bulk_advance(shift, steps, bytes_per_step);
    }

    /// Credit a flow with `bytes` delivered and a final departure instant
    /// in one call — the flow-stat half of a steady-state jump
    /// ([`SimHandle::bulk_advance_resource`]). Sum/max arithmetic only,
    /// so bulk application equals per-transfer application exactly.
    pub fn bulk_charge_flow(&self, flow: FlowId, bytes: u64, last_depart: SimTime) {
        let mut st = self.kernel.state.lock();
        let fs = &mut st.flows[flow.index()];
        fs.stats.bytes += bytes;
        fs.stats.last_depart = fs.stats.last_depart.max(last_depart);
    }

    /// Are the collective fast paths forced off
    /// ([`Sim::force_explicit_schedules`])?
    pub fn explicit_schedules_forced(&self) -> bool {
        self.kernel.state.lock().force_explicit
    }

    /// Per-chunk completions folded into coalesced wake entries so far
    /// (mirrors [`SimReport::coalesced_chunks`] mid-run).
    pub fn coalesced_chunks(&self) -> u64 {
        self.kernel.state.lock().coalesced_chunks
    }

    /// Shared reservation path: consult the fault injector (one `Option`
    /// branch when disarmed — the zero-cost guarantee) and fall through
    /// to the clean closed form when no window matches.
    pub(crate) fn transfer_locked(
        &self,
        st: &mut KState,
        res: ResourceId,
        at: SimTime,
        bytes: u64,
    ) -> Transfer {
        let now = st.now;
        if let Some(f) = st.fault.as_mut() {
            let est = at.max(st.resources[res.index()].free_at());
            if let Some(p) = f.perturb(res, est) {
                return st.resources[res.index()].transfer_faulted(
                    now,
                    at.max(p.not_before),
                    bytes,
                    p.factor_milli,
                    p.extra,
                );
            }
        }
        st.resources[res.index()].transfer_from(now, at, bytes)
    }

    /// Occupy a resource for a fixed duration (e.g. a handler running on a
    /// progress engine). Returns `(start, end)`. A degradation window
    /// covering the start stretches the occupancy like it stretches a
    /// transfer's busy time.
    pub fn occupy(&self, res: ResourceId, d: Dur) -> (SimTime, SimTime) {
        let mut st = self.kernel.state.lock();
        let now = st.now;
        let mut d = d;
        if st.fault.is_some() {
            let est = now.max(st.resources[res.index()].free_at());
            if let Some(p) = st.fault.as_mut().unwrap().perturb(res, est) {
                d = Dur::nanos(
                    (d.as_nanos() as u128 * 1000 / p.factor_milli.max(1) as u128) as u64,
                ) + p.extra;
            }
        }
        st.resources[res.index()].occupy(now, d)
    }

    /// Consume one scheduled control-message fault for `key` (see
    /// [`crate::fault_key`]), if a plan is armed and has charges left.
    /// Protocol layers call this at the instant a control message is
    /// posted; `None` means deliver normally.
    pub fn take_ctrl_fault(&self, key: u64) -> Option<CtrlFault> {
        let mut st = self.kernel.state.lock();
        st.fault.as_mut().and_then(|f| f.take_ctrl(key))
    }

    /// Number of perturbations the armed injector has applied so far
    /// (0 when no plan is installed). Diagnostics for chaos tests.
    pub fn faults_injected(&self) -> u64 {
        self.kernel.state.lock().fault.as_ref().map_or(0, |f| f.injected)
    }

    /// Is a fault plan armed? Cheaper than [`SimHandle::fault_plan`] (no
    /// clone) — the collective fast paths consult this to decide whether
    /// the steady-state jump is safe (perturbation windows make steps
    /// non-uniform, so an armed plan keeps per-step pricing).
    pub fn fault_armed(&self) -> bool {
        self.kernel.state.lock().fault.is_some()
    }

    /// The installed fault plan, if any (a clone — plans are immutable
    /// once armed). Health monitors derive `state_vec`-style views from
    /// it; `None` when the fabric is clean.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.kernel.state.lock().fault.as_ref().map(|f| f.plan().clone())
    }

    /// Expand rank-kill events into `[at, ∞)` dead windows over concrete
    /// link resources. The kernel has no notion of ranks, so the layer
    /// that owns the rank → resource map (the fabric) performs the
    /// expansion at build time and hands the windows down here. A no-op
    /// when no plan is armed — a plan with rank kills is never empty, so
    /// the injector is always armed when this matters. Deterministic:
    /// called once, at a fixed point of the event order, before any
    /// transfer consults the plan.
    pub fn arm_rank_kill_windows(&self, windows: &[(ResourceId, SimTime)]) {
        let mut st = self.kernel.state.lock();
        if let Some(f) = st.fault.as_mut() {
            f.extend_kill_windows(windows);
        }
    }

    /// Next time the resource is free (for diagnostics / tests).
    pub fn resource_free_at(&self, res: ResourceId) -> SimTime {
        self.kernel.state.lock().resources[res.index()].free_at()
    }

    /// Append a record to the trace, if tracing is enabled.
    pub fn trace(&self, who: impl Into<String>, what: impl Into<String>) {
        let mut st = self.kernel.state.lock();
        let t = st.now;
        if let Some(trace) = st.trace.as_mut() {
            trace.push(TraceRec::new(t, who.into(), what.into()));
        }
    }

    /// Number of live (allocated, unfreed) events — used by leak tests.
    pub fn live_events(&self) -> usize {
        self.kernel.state.lock().events.len()
    }

    pub(crate) fn push_wake(&self, st: &mut KState, t: SimTime, task: TaskId, park_seq: u64) {
        self.push(st, t, Item::Wake { task, park_seq, coalesced: 0 });
    }

    /// Push a wake entry that stands for `coalesced` per-chunk completions
    /// (see [`crate::Ctx::sleep_until_coalesced`]).
    pub(crate) fn push_wake_coalesced(
        &self,
        st: &mut KState,
        t: SimTime,
        task: TaskId,
        park_seq: u64,
        coalesced: u64,
    ) {
        self.push(st, t, Item::Wake { task, park_seq, coalesced });
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
