//! # diomp-sim — deterministic cluster simulator
//!
//! The substrate under the DiOMP-Offloading reproduction: a sequential,
//! deterministic discrete-event simulator in which the ranks of a
//! distributed job run as cooperative OS threads against a virtual clock.
//!
//! * [`Sim`] / [`SimHandle`] / [`Ctx`] — the event kernel: spawn tasks,
//!   wait on [`EventId`]s, advance virtual time, schedule one-sided
//!   completion actions.
//! * [`ResourceId`] — FIFO bandwidth resources modelling NICs and links.
//! * [`Topology`] / [`ClusterSpec`] — instantiated cluster fabrics.
//! * [`PlatformSpec`] — calibrated models of the paper's three systems
//!   (A100+Slingshot, MI250X+Slingshot, GH200+NDR IB).
//!
//! ```
//! use diomp_sim::{Sim, Dur};
//!
//! let mut sim = Sim::new();
//! let h = sim.handle();
//! let ev = h.new_event();
//! sim.spawn("producer", move |ctx| {
//!     ctx.delay(Dur::micros(5.0));
//!     ctx.complete(ev);
//! });
//! sim.spawn("consumer", move |ctx| {
//!     ctx.wait(ev);
//!     assert_eq!(ctx.now().as_us(), 5.0);
//! });
//! sim.run().unwrap();
//! ```

#![warn(missing_docs)]

mod board;
mod channel;
mod ctx;
mod event;
mod fault;
mod kernel;
mod platform;
mod qos;
mod resource;
mod rng;
mod stats;
mod task;
mod time;
mod topology;
mod trace;

pub use board::BoardId;
pub use channel::SimChannel;
pub use ctx::{Ctx, Wait, WaitTimeout};
pub use event::EventId;
pub use fault::{fault_key, CtrlFault, FaultPlan};
pub use kernel::{Action, Sim, SimError, SimHandle, SimReport};
pub use platform::{
    BwCurve, CollModels, CollProfile, GasnetModel, GpiModel, GpuSpec, IntraSpec, MpiP2pModel,
    MpiRmaModel, NetSpec, PlatformId, PlatformSpec,
};
pub use qos::{FlowId, FlowStats, QosClass};
pub use resource::{gbits, gbps, ResourceId, Transfer};
pub use rng::{derive_seed, rng_for};
pub use stats::{bandwidth_gbps, Meter};
pub use task::TaskId;
pub use time::{Dur, SimTime};
pub use topology::{ClusterSpec, DevLoc, Placement, Topology};
pub use trace::TraceRec;
