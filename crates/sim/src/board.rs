//! Notification boards: range-waitable `(id → value)` signal slots.
//!
//! A *board* is a sparse array of notification slots indexed by `u32`
//! ids. Producers (typically scheduled actions modelling one-sided
//! message arrival) post a value to a slot with
//! [`crate::SimHandle::board_post`]; a consumer task blocks on a *range*
//! of ids with [`crate::Ctx::board_waitsome`] and atomically consumes
//! the lowest posted id in the range. This is the kernel primitive under
//! GASPI-style ranged notifications (`gaspi_notify_waitsome`).
//!
//! Design: a range wait reuses the generation-tagged *wait-group*
//! machinery of [`crate::Ctx::wait_all`] / `wait_any_batched` rather
//! than polling each id. The waiter registers a single group (remaining
//! count 1) on the board together with its `[first, first+num)` range
//! and parks exactly once; the first post landing inside the range fires
//! the group and produces the only wake entry. Posts outside every
//! parked range cost nothing beyond the map insert. Multiple waiters
//! with overlapping ranges are all woken by a matching post; the baton
//! order decides who consumes, and the losers re-park on a fresh group
//! (their dead group's generation check makes the stale registration
//! inert).
//!
//! Semantics notes (mirroring GASPI):
//!
//! * Posting to an id that already holds an unconsumed value
//!   *overwrites* it — notification ids are level-triggered flags with a
//!   payload, not queues. Use disjoint id sets (e.g. parity schemes) if
//!   every post must be observed.
//! * Consumption is atomic under the kernel lock: a value is returned by
//!   exactly one `board_waitsome`/`board_reset` call.

use std::collections::BTreeMap;

use crate::event::GroupRef;

/// Handle to a notification board. Cheap to copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BoardId(pub(crate) u32);

impl BoardId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A task parked on a range of board ids, represented by its wait-group
/// registration (remaining count 1). Fired and removed by the first
/// matching post; a stale generation means the group already fired.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RangeWaiter {
    pub(crate) first: u32,
    pub(crate) num: u32,
    pub(crate) group: GroupRef,
}

impl RangeWaiter {
    pub(crate) fn contains(&self, id: u32) -> bool {
        let id = id as u64;
        let first = self.first as u64;
        id >= first && id < first + self.num as u64
    }
}

/// Kernel-side state of one board.
#[derive(Debug, Default)]
pub(crate) struct BoardSlot {
    /// Posted, unconsumed values. Ordered so "lowest posted id in range"
    /// is a deterministic scan.
    pub(crate) values: BTreeMap<u32, u64>,
    /// Parked range waiters, in registration order.
    pub(crate) waiters: Vec<RangeWaiter>,
}

impl BoardSlot {
    /// Lowest posted, unconsumed id in `[first, first + num)` and its
    /// value. The single definition of the range semantics shared by
    /// `board_peek` and `board_waitsome`.
    pub(crate) fn lowest_in_range(&self, first: u32, num: u32) -> Option<(u32, u64)> {
        let end = (first as u64 + num as u64).min(u32::MAX as u64 + 1);
        self.values
            .range(first..)
            .next()
            .filter(|&(&id, _)| (id as u64) < end)
            .map(|(&id, &v)| (id, v))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use crate::{Dur, Sim};

    #[test]
    fn post_before_wait_returns_without_parking() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let b = h.new_board();
        h.board_post(b, 7, 99);
        sim.spawn("consumer", move |ctx| {
            let (id, v) = ctx.board_waitsome(b, 0, 16);
            assert_eq!((id, v), (7, 99));
            assert_eq!(ctx.now(), crate::SimTime::ZERO, "no park needed");
        });
        sim.run().unwrap();
    }

    #[test]
    fn wait_parks_once_until_a_post_lands_in_range() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let b = h.new_board();
        sim.spawn("producer", move |ctx| {
            ctx.delay(Dur::micros(3.0));
            ctx.board_post(b, 40, 1); // outside the waited range: no wake
            ctx.delay(Dur::micros(2.0));
            ctx.board_post(b, 10, 2);
        });
        sim.spawn("consumer", move |ctx| {
            let (id, v) = ctx.board_waitsome(b, 8, 4);
            assert_eq!((id, v), (10, 2));
            assert_eq!(ctx.now().as_us(), 5.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn waitsome_returns_lowest_posted_id_in_range() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let b = h.new_board();
        h.board_post(b, 5, 50);
        h.board_post(b, 3, 30);
        h.board_post(b, 9, 90);
        sim.spawn("consumer", move |ctx| {
            assert_eq!(ctx.board_waitsome(b, 0, 16), (3, 30));
            assert_eq!(ctx.board_waitsome(b, 0, 16), (5, 50));
            assert_eq!(ctx.board_waitsome(b, 0, 16), (9, 90));
        });
        sim.run().unwrap();
    }

    #[test]
    fn overlapping_waiters_each_consume_exactly_once() {
        // Two waiters park on the same id; two posts arrive. The first
        // post wakes both, one consumes, the loser re-parks and is woken
        // by the second post. (The single-slot-waiter design this board
        // replaced lost one of the wakes and deadlocked here.)
        let mut sim = Sim::new();
        let h = sim.handle();
        let b = h.new_board();
        let sum = Arc::new(AtomicU64::new(0));
        for name in ["a", "b"] {
            let sum = sum.clone();
            sim.spawn(name, move |ctx| {
                let (id, v) = ctx.board_waitsome(b, 4, 1);
                assert_eq!(id, 4);
                sum.fetch_add(v, Ordering::Relaxed);
            });
        }
        sim.spawn("producer", move |ctx| {
            ctx.delay(Dur::micros(1.0));
            ctx.board_post(b, 4, 100);
            ctx.delay(Dur::micros(1.0));
            ctx.board_post(b, 4, 23);
        });
        sim.run().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 123, "each value consumed exactly once");
    }

    #[test]
    fn range_wait_is_one_wake_not_one_per_id() {
        // N posts into a waited range: the waiter parks once per drain
        // round, and posts to ids nobody waits on push no wake entries.
        let n = 64u32;
        let run = |wait: bool| -> u64 {
            let mut sim = Sim::new();
            let h = sim.handle();
            let b = h.new_board();
            sim.spawn("producer", move |ctx| {
                for i in 0..n {
                    ctx.delay(Dur::nanos(10));
                    ctx.board_post(b, i, 1 + i as u64);
                }
            });
            if wait {
                sim.spawn("consumer", move |ctx| {
                    for _ in 0..n {
                        let _ = ctx.board_waitsome(b, 0, n);
                    }
                });
            }
            sim.run().unwrap().entries_processed
        };
        let baseline = run(false);
        let with_waiter = run(true);
        // The drain costs at most one park/wake round-trip per post (the
        // spaced arrivals are the worst case) plus the spawn overhead —
        // not the O(N²) a per-id stale-wake scheme would produce.
        assert!(
            with_waiter <= baseline + 2 * n as u64 + 4,
            "drain cost {with_waiter} vs baseline {baseline} exceeds one wake per post"
        );
    }

    #[test]
    fn board_reset_consumes_and_reports_absence() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let b = h.new_board();
        h.board_post(b, 2, 7);
        assert_eq!(h.board_reset(b, 2), Some(7));
        assert_eq!(h.board_reset(b, 2), None, "second reset finds nothing");
        assert_eq!(h.board_peek(b, 0, 16), None);
        sim.spawn("noop", |_| {});
        sim.run().unwrap();
    }

    #[test]
    fn posting_twice_overwrites_the_value() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let b = h.new_board();
        h.board_post(b, 1, 10);
        h.board_post(b, 1, 20);
        assert_eq!(h.board_peek(b, 0, 4), Some((1, 20)));
        assert_eq!(h.board_reset(b, 1), Some(20));
        sim.spawn("noop", |_| {});
        sim.run().unwrap();
    }
}
