//! Virtual-time message channels between tasks.
//!
//! A [`SimChannel`] is an unbounded MPMC queue whose `recv` blocks in
//! *virtual* time. Senders may be tasks or scheduled actions (the kernel
//! delivering a network message). Used for MPI match-queue progress,
//! bootstrap exchanges, and test plumbing.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ctx::Ctx;
use crate::event::EventId;
use crate::kernel::SimHandle;

struct ChanInner<T> {
    queue: VecDeque<T>,
    /// Events to complete when a message arrives (one per blocked receiver).
    waiters: Vec<EventId>,
    closed: bool,
}

/// An unbounded virtual-time channel. Clone freely; all clones share state.
pub struct SimChannel<T> {
    inner: Arc<Mutex<ChanInner<T>>>,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel { inner: self.inner.clone() }
    }
}

impl<T> Default for SimChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SimChannel<T> {
    /// Create an empty open channel.
    pub fn new() -> Self {
        SimChannel {
            inner: Arc::new(Mutex::new(ChanInner {
                queue: VecDeque::new(),
                waiters: Vec::new(),
                closed: false,
            })),
        }
    }

    /// Enqueue a message, waking any blocked receivers. Callable from task
    /// or action context.
    pub fn send(&self, h: &SimHandle, value: T) {
        let waiters = {
            let mut inner = self.inner.lock();
            assert!(!inner.closed, "send on closed SimChannel");
            inner.queue.push_back(value);
            std::mem::take(&mut inner.waiters)
        };
        for ev in waiters {
            h.complete(ev);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }

    /// Blocking receive in virtual time. Returns `None` only if the channel
    /// was closed and drained.
    pub fn recv(&self, ctx: &mut Ctx) -> Option<T> {
        loop {
            let ev = {
                let mut inner = self.inner.lock();
                if let Some(v) = inner.queue.pop_front() {
                    return Some(v);
                }
                if inner.closed {
                    return None;
                }
                let ev = ctx.new_event();
                inner.waiters.push(ev);
                ev
            };
            ctx.wait(ev);
            ctx.free_event(ev);
        }
    }

    /// Close the channel: blocked and future receivers see `None` once the
    /// queue drains.
    pub fn close(&self, h: &SimHandle) {
        let waiters = {
            let mut inner = self.inner.lock();
            inner.closed = true;
            std::mem::take(&mut inner.waiters)
        };
        for ev in waiters {
            h.complete(ev);
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
