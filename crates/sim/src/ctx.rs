//! Task-side blocking API.
//!
//! A [`Ctx`] is handed to every task closure. It dereferences to
//! [`SimHandle`] for the non-blocking kernel API and adds the blocking
//! primitives (`wait`, `delay`, …) that park the calling task and hand the
//! baton back to the scheduler.

use crossbeam::channel::Receiver;

use crate::board::{BoardId, RangeWaiter};
use crate::event::{EventId, Waiter};
use crate::kernel::SimHandle;
use crate::task::{TaskId, TaskStatus, YieldMsg};
use crate::time::{Dur, SimTime};

/// How long a blocking primitive may block: GASPI's timeout parameter as
/// a type.
///
/// Every bounded-wait primitive in the stack — event waits here,
/// queue/notification waits in the fabric layer, fences in the runtime —
/// takes one `Wait` instead of growing a `_timeout` twin per method.
/// [`Wait::Block`] is `GASPI_BLOCK` (wait forever; the call cannot fail),
/// [`Wait::Until`] is `GASPI_TIMEOUT` with a virtual-time budget: if the
/// wake condition is not met within the budget the primitive returns a
/// timeout error and leaves partial completion intact for inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Block until the wake condition is met (`GASPI_BLOCK`).
    Block,
    /// Give up after this much virtual time (`GASPI_TIMEOUT`).
    Until(Dur),
}

impl Wait {
    /// The deadline budget, if bounded.
    pub fn budget(self) -> Option<Dur> {
        match self {
            Wait::Block => None,
            Wait::Until(d) => Some(d),
        }
    }
}

/// A blocking operation's virtual-time deadline fired before its wake
/// condition was met (GASPI's `GASPI_TIMEOUT`). The waited state is left
/// intact — events that completed before the deadline stay completed, so
/// the caller can inspect partial completion and retry or recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeout {
    /// Virtual time at which the deadline fired.
    pub at: SimTime,
}

impl std::fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wait timed out at {}", self.at)
    }
}
impl std::error::Error for WaitTimeout {}

/// Per-task execution context. Not `Send`: it belongs to one task thread.
pub struct Ctx {
    handle: SimHandle,
    id: TaskId,
    name: String,
    wake_rx: Receiver<()>,
}

impl std::ops::Deref for Ctx {
    type Target = SimHandle;
    fn deref(&self) -> &SimHandle {
        &self.handle
    }
}

impl Ctx {
    pub(crate) fn new(handle: SimHandle, id: TaskId, name: String, wake_rx: Receiver<()>) -> Self {
        Ctx { handle, id, name, wake_rx }
    }

    /// This task's id.
    pub fn task_id(&self) -> TaskId {
        self.id
    }

    /// This task's name (as given to `spawn`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Borrow the underlying non-blocking handle (cloneable, `Send`).
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// The park performed by a freshly spawned thread before its closure
    /// runs; resumed by the wake entry pushed by `spawn`.
    pub(crate) fn initial_park(&self) -> Result<(), ()> {
        self.wake_rx.recv().map_err(|_| ())
    }

    /// Park this task. The caller must already have (under the kernel
    /// lock) registered a wake-up, bumped `park_seq` and set the status to
    /// `Blocked`; see the blocking ops below for the pattern.
    fn park(&self) {
        self.handle.kernel.yield_tx.send(YieldMsg::Parked).expect("scheduler vanished");
        self.wake_rx.recv().expect("scheduler vanished while parked");
    }

    /// Block until `ev` completes. Returns immediately if it already has.
    pub fn wait(&mut self, ev: EventId) {
        loop {
            {
                let mut st = self.handle.kernel.state.lock();
                if st.events.get(ev).completed {
                    return;
                }
                let park_seq = st.park_seqs[self.id.index()] + 1;
                st.park_seqs[self.id.index()] = park_seq;
                st.events.get_mut(ev).waiters.push(Waiter { task: self.id, park_seq });
                st.tasks[self.id.index()].status = TaskStatus::Blocked;
            }
            self.park();
        }
    }

    /// Block until `ev` completes, then recycle it.
    pub fn wait_free(&mut self, ev: EventId) {
        self.wait(ev);
        self.handle.free_event(ev);
    }

    /// Block until *all* events complete.
    ///
    /// Unlike a loop of [`Ctx::wait`] calls — which parks and re-wakes
    /// once per still-pending event — this registers a single *wait
    /// group* covering every pending event and parks exactly once: the
    /// completion that brings the group to zero produces the only wake
    /// entry. For a fence draining N completions this turns ~N scheduler
    /// park/wake round-trips into one.
    pub fn wait_all(&mut self, evs: &[EventId]) {
        {
            let mut st = self.handle.kernel.state.lock();
            let pending = evs.iter().filter(|&&ev| !st.events.get(ev).completed).count();
            if pending == 0 {
                return;
            }
            let park_seq = st.park_seqs[self.id.index()] + 1;
            st.park_seqs[self.id.index()] = park_seq;
            let gref = st.alloc_wait_group(pending, self.id, park_seq);
            for &ev in evs {
                if !st.events.get(ev).completed {
                    st.events.get_mut(ev).group_waiters.push(gref);
                }
            }
            st.tasks[self.id.index()].status = TaskStatus::Blocked;
        }
        self.park();
        debug_assert!(
            {
                let st = self.handle.kernel.state.lock();
                evs.iter().all(|&ev| st.events.get(ev).completed)
            },
            "wait_all woke before every event completed"
        );
    }

    /// Block until *all* events complete, then recycle every one of them.
    pub fn wait_all_free(&mut self, evs: &[EventId]) {
        self.wait_all(evs);
        for &ev in evs {
            self.handle.free_event(ev);
        }
    }

    /// Block until `ev` completes, or until `wait`'s budget elapses.
    ///
    /// The bounded-wait form of [`Ctx::wait`]; see [`Ctx::wait_all_with`]
    /// for the mechanism. `Wait::Block` cannot fail.
    pub fn wait_with(&mut self, ev: EventId, wait: Wait) -> Result<(), WaitTimeout> {
        self.wait_all_with(std::slice::from_ref(&ev), wait)
    }

    /// Block until *all* events complete, or until `wait`'s budget
    /// elapses, whichever comes first.
    ///
    /// With [`Wait::Block`] this is exactly [`Ctx::wait_all`] (and cannot
    /// fail). With [`Wait::Until`] the mechanism is: one wait group over
    /// the pending set (as in [`Ctx::wait_all`]) *plus* a timer wake at
    /// the deadline carrying the same park sequence number. Whichever
    /// wake pops first resumes the task; the loser is discarded by the
    /// stale-wake check. On timeout the group is killed so later
    /// completions are inert, and the events themselves are left
    /// untouched: completed ones stay completed, so the caller can report
    /// partial completion ([`crate::SimHandle::event_done`]) and wait
    /// again or recover. A completion racing the deadline at the exact
    /// same instant resolves deterministically by queue order (earlier
    /// sequence number wins).
    pub fn wait_all_with(&mut self, evs: &[EventId], wait: Wait) -> Result<(), WaitTimeout> {
        let timeout = match wait {
            Wait::Block => {
                self.wait_all(evs);
                return Ok(());
            }
            Wait::Until(d) => d,
        };
        let gref = {
            let mut st = self.handle.kernel.state.lock();
            let pending = evs.iter().filter(|&&ev| !st.events.get(ev).completed).count();
            if pending == 0 {
                return Ok(());
            }
            let deadline = st.now() + timeout;
            let park_seq = st.park_seqs[self.id.index()] + 1;
            st.park_seqs[self.id.index()] = park_seq;
            let gref = st.alloc_wait_group(pending, self.id, park_seq);
            for &ev in evs {
                if !st.events.get(ev).completed {
                    st.events.get_mut(ev).group_waiters.push(gref);
                }
            }
            st.tasks[self.id.index()].status = TaskStatus::Blocked;
            self.handle.push_wake(&mut st, deadline, self.id, park_seq);
            gref
        };
        self.park();
        let mut st = self.handle.kernel.state.lock();
        if evs.iter().all(|&ev| st.events.get(ev).completed) {
            Ok(())
        } else {
            st.kill_group(gref);
            Err(WaitTimeout { at: st.now() })
        }
    }

    /// Block until *any* of the events completes; returns the index of a
    /// completed event (the first found in argument order).
    pub fn wait_any(&mut self, evs: &[EventId]) -> usize {
        assert!(!evs.is_empty(), "wait_any on empty set");
        loop {
            {
                let mut st = self.handle.kernel.state.lock();
                if let Some(i) = evs.iter().position(|&e| st.events.get(e).completed) {
                    return i;
                }
                let park_seq = st.park_seqs[self.id.index()] + 1;
                st.park_seqs[self.id.index()] = park_seq;
                for &ev in evs {
                    st.events.get_mut(ev).waiters.push(Waiter { task: self.id, park_seq });
                }
                st.tasks[self.id.index()].status = TaskStatus::Blocked;
            }
            self.park();
        }
    }

    /// Block until *any* of the events completes; returns the index of a
    /// completed event (the first found in argument order).
    ///
    /// Unlike [`Ctx::wait_any`] — which registers a per-event waiter on
    /// every pending event, so *every* later completion pushes a (stale)
    /// wake entry for this task — this registers a single *wait-any
    /// group* (a [`Ctx::wait_all`]-style wait group with a remaining
    /// count of one): the first completion produces the only wake entry
    /// and every later completion finds the group dead and pushes
    /// nothing. For a progress engine polling N in-flight completions
    /// per retirement — the ring-collective engine's inner loop — this
    /// turns O(N) scheduler entries per park into O(1).
    pub fn wait_any_batched(&mut self, evs: &[EventId]) -> usize {
        assert!(!evs.is_empty(), "wait_any_batched on empty set");
        {
            let mut st = self.handle.kernel.state.lock();
            if let Some(i) = evs.iter().position(|&e| st.events.get(e).completed) {
                return i;
            }
            let park_seq = st.park_seqs[self.id.index()] + 1;
            st.park_seqs[self.id.index()] = park_seq;
            let gref = st.alloc_wait_group(1, self.id, park_seq);
            for &ev in evs {
                st.events.get_mut(ev).group_waiters.push(gref);
            }
            st.tasks[self.id.index()].status = TaskStatus::Blocked;
        }
        self.park();
        let st = self.handle.kernel.state.lock();
        evs.iter()
            .position(|&e| st.events.get(e).completed)
            .expect("wait_any_batched woke with no completed event")
    }

    /// Block until some notification id in `[first, first + num)` holds a
    /// posted value on `board`; atomically consume and return the lowest
    /// such `(id, value)`.
    ///
    /// The ranged blocking primitive under GASPI's
    /// `gaspi_notify_waitsome` + `gaspi_notify_reset`. Like
    /// [`Ctx::wait_any_batched`], the wait registers a single
    /// generation-tagged wait group (remaining count 1) instead of
    /// polling each id: the task parks exactly once and the first
    /// [`crate::SimHandle::board_post`] landing inside the range produces
    /// the only wake entry. If a concurrent waiter with an overlapping
    /// range consumes the value first, this task transparently re-parks
    /// on a fresh group.
    pub fn board_waitsome(&mut self, board: BoardId, first: u32, num: u32) -> (u32, u64) {
        assert!(num > 0, "board_waitsome on an empty range");
        loop {
            {
                let mut st = self.handle.kernel.state.lock();
                if let Some((id, _)) = st.boards[board.index()].lowest_in_range(first, num) {
                    let v = st.boards[board.index()].values.remove(&id).expect("value vanished");
                    return (id, v);
                }
                let park_seq = st.park_seqs[self.id.index()] + 1;
                st.park_seqs[self.id.index()] = park_seq;
                let gref = st.alloc_wait_group(1, self.id, park_seq);
                st.boards[board.index()].waiters.push(RangeWaiter { first, num, group: gref });
                st.tasks[self.id.index()].status = TaskStatus::Blocked;
            }
            self.park();
        }
    }

    /// Block like [`Ctx::board_waitsome`], bounded by `wait`'s budget:
    /// with [`Wait::Until`] the call gives up once the budget elapses
    /// without a consumable post in the range (`gaspi_notify_waitsome`
    /// with a finite timeout returning `GASPI_TIMEOUT`). The deadline is
    /// absolute across internal re-parks: losing a post to a concurrent
    /// overlapping waiter does not extend it. [`Wait::Block`] cannot
    /// fail.
    pub fn board_waitsome_with(
        &mut self,
        board: BoardId,
        first: u32,
        num: u32,
        wait: Wait,
    ) -> Result<(u32, u64), WaitTimeout> {
        assert!(num > 0, "board_waitsome_with on an empty range");
        let timeout = match wait {
            Wait::Block => return Ok(self.board_waitsome(board, first, num)),
            Wait::Until(d) => d,
        };
        let deadline = self.handle.now() + timeout;
        loop {
            let gref = {
                let mut st = self.handle.kernel.state.lock();
                if let Some((id, _)) = st.boards[board.index()].lowest_in_range(first, num) {
                    let v = st.boards[board.index()].values.remove(&id).expect("value vanished");
                    return Ok((id, v));
                }
                if st.now() >= deadline {
                    return Err(WaitTimeout { at: st.now() });
                }
                let park_seq = st.park_seqs[self.id.index()] + 1;
                st.park_seqs[self.id.index()] = park_seq;
                let gref = st.alloc_wait_group(1, self.id, park_seq);
                st.boards[board.index()].waiters.push(RangeWaiter { first, num, group: gref });
                st.tasks[self.id.index()].status = TaskStatus::Blocked;
                self.handle.push_wake(&mut st, deadline, self.id, park_seq);
                gref
            };
            self.park();
            // Woken by a matching post (board_post already removed the
            // waiter and killed the group) or by the deadline (both still
            // registered). Clean up unconditionally, then loop: consume,
            // re-park with the remaining time, or report the timeout.
            let mut st = self.handle.kernel.state.lock();
            st.boards[board.index()]
                .waiters
                .retain(|w| !(w.group.gid == gref.gid && w.group.gen == gref.gen));
            st.kill_group(gref);
        }
    }

    /// Advance this task's virtual time by `d` (models local computation
    /// or fixed software overhead). An armed fault plan may stretch the
    /// delay for straggler-matched tasks.
    pub fn delay(&mut self, d: Dur) {
        let t = {
            let st = self.handle.kernel.state.lock();
            st_now(&st) + st.scale_delay(self.id, d)
        };
        self.sleep_until(t);
    }

    /// Block until the virtual clock reaches `t` (no-op if already past).
    pub fn sleep_until(&mut self, t: SimTime) {
        {
            let mut st = self.handle.kernel.state.lock();
            if t <= st_now(&st) {
                // Still yield once so same-time entries queued earlier run
                // in deterministic order? No: sleeping to "now" is a no-op;
                // use `yield_now` for explicit rescheduling.
                return;
            }
            let park_seq = st.park_seqs[self.id.index()] + 1;
            st.park_seqs[self.id.index()] = park_seq;
            st.tasks[self.id.index()].status = TaskStatus::Blocked;
            self.handle.push_wake(&mut st, t, self.id, park_seq);
        }
        self.park();
    }

    /// Block until the virtual clock reaches `t`, charging the single
    /// heap entry as standing in for `coalesced` per-chunk completions.
    ///
    /// This is the coalesced-event primitive behind the closed-form
    /// collective fast paths: a run of same-edge chunk completions whose
    /// times were priced arithmetically (no per-chunk events) ends in one
    /// wake carrying the count, which [`crate::SimReport::coalesced_chunks`]
    /// aggregates for entry accounting. If `t` is already past, the count
    /// is still credited (the chunks were still priced without events).
    pub fn sleep_until_coalesced(&mut self, t: SimTime, coalesced: u64) {
        {
            let mut st = self.handle.kernel.state.lock();
            if t <= st_now(&st) {
                st.coalesced_chunks += coalesced;
                return;
            }
            let park_seq = st.park_seqs[self.id.index()] + 1;
            st.park_seqs[self.id.index()] = park_seq;
            st.tasks[self.id.index()].status = TaskStatus::Blocked;
            self.handle.push_wake_coalesced(&mut st, t, self.id, park_seq, coalesced);
        }
        self.park();
    }

    /// Re-queue this task at the current virtual time, letting every
    /// already-queued same-time entry run first. Deterministic fairness
    /// point for polling loops.
    pub fn yield_now(&mut self) {
        {
            let mut st = self.handle.kernel.state.lock();
            let now = st_now(&st);
            let park_seq = st.park_seqs[self.id.index()] + 1;
            st.park_seqs[self.id.index()] = park_seq;
            st.tasks[self.id.index()].status = TaskStatus::Blocked;
            self.handle.push_wake(&mut st, now, self.id, park_seq);
        }
        self.park();
    }
}

fn st_now(st: &crate::kernel::KState) -> SimTime {
    st.now()
}
