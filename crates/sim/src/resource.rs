//! FIFO bandwidth resources.
//!
//! A resource models a serialising pipe: a NIC port, a NVLink/xGMI lane, a
//! PCIe link, a GPU copy engine, or shared-memory bandwidth. Transfers
//! queue FIFO and occupy the resource for `bytes / bandwidth`; delivery is
//! cut-through (`start + latency + bytes/bandwidth`). This closed-form
//! model needs no extra simulation events per queued transfer, which keeps
//! big collective benchmarks cheap while still capturing serialisation —
//! two messages racing for one NIC really do take twice as long.

use crate::time::{Dur, SimTime};

/// Handle to a registered resource.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Dense index of this resource, stable for the life of the sim.
    /// Usable as an opaque key (e.g. health vectors); resources are
    /// never deregistered so indices are never recycled.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Modelled times for one reserved transfer.
#[derive(Clone, Copy, Debug)]
pub struct Transfer {
    /// When the transfer began occupying the resource.
    pub start: SimTime,
    /// When the resource becomes free again (`start + bytes/bw`).
    pub depart: SimTime,
    /// When the last byte arrives at the far side
    /// (`start + latency + bytes/bw`).
    pub arrive: SimTime,
}

#[derive(Debug)]
pub(crate) struct ResSlot {
    free_at: SimTime,
    bytes_per_ns: f64,
    latency: Dur,
    /// Cumulative bytes pushed through (for utilisation reporting).
    total_bytes: u64,
}

impl ResSlot {
    pub(crate) fn new(bytes_per_ns: f64, latency: Dur) -> Self {
        assert!(bytes_per_ns > 0.0, "resource bandwidth must be positive");
        ResSlot { free_at: SimTime::ZERO, bytes_per_ns, latency, total_bytes: 0 }
    }

    pub(crate) fn transfer(&mut self, now: SimTime, bytes: u64) -> Transfer {
        let start = now.max(self.free_at);
        let busy = Dur::nanos((bytes as f64 / self.bytes_per_ns).ceil() as u64);
        let depart = start + busy;
        self.free_at = depart;
        self.total_bytes += bytes;
        Transfer { start, depart, arrive: start + self.latency + busy }
    }

    /// Like `transfer`, but the payload is only ready at `at` (chained
    /// stages of a staged copy, or post-software-overhead NIC injection).
    pub(crate) fn transfer_from(&mut self, now: SimTime, at: SimTime, bytes: u64) -> Transfer {
        self.transfer(now.max(at), bytes)
    }

    /// Fault-injected reservation: bandwidth scaled to `factor_milli`/1000
    /// of nominal and `extra` delivery latency added. `total_bytes` still
    /// counts the logical payload, so utilisation reporting is unchanged.
    pub(crate) fn transfer_faulted(
        &mut self,
        now: SimTime,
        at: SimTime,
        bytes: u64,
        factor_milli: u32,
        extra: Dur,
    ) -> Transfer {
        let start = now.max(at).max(self.free_at);
        let nominal = bytes as f64 / self.bytes_per_ns;
        let busy = Dur::nanos((nominal * 1000.0 / factor_milli.max(1) as f64).ceil() as u64);
        let depart = start + busy;
        self.free_at = depart;
        self.total_bytes += bytes;
        Transfer { start, depart, arrive: start + self.latency + busy + extra }
    }

    pub(crate) fn occupy(&mut self, now: SimTime, d: Dur) -> (SimTime, SimTime) {
        let start = now.max(self.free_at);
        let end = start + d;
        self.free_at = end;
        (start, end)
    }

    pub(crate) fn free_at(&self) -> SimTime {
        self.free_at
    }

    pub(crate) fn bytes_per_ns(&self) -> f64 {
        self.bytes_per_ns
    }

    pub(crate) fn latency(&self) -> Dur {
        self.latency
    }

    /// Count logical payload bytes for utilisation reporting without a
    /// closed-form reservation (the WFQ path serves bytes fluidly).
    pub(crate) fn note_bytes(&mut self, bytes: u64) {
        self.total_bytes += bytes;
    }

    /// Advance the serial `free_at` watermark to a WFQ departure so the
    /// fault injector's window estimate stays anchored to real activity.
    pub(crate) fn bump_free_at(&mut self, t: SimTime) {
        self.free_at = self.free_at.max(t);
    }

    /// Apply `steps` structurally identical reservations in one charge:
    /// the `free_at` watermark advances by `shift` per step and the
    /// utilisation counter absorbs `bytes_per_step` per step. Used by the
    /// steady-state jump in closed-form collective schedules, where the
    /// per-step busy time is constant and the queue never drains.
    pub(crate) fn bulk_advance(&mut self, shift: Dur, steps: u64, bytes_per_step: u64) {
        self.free_at += Dur::nanos(shift.as_nanos() * steps);
        self.total_bytes += bytes_per_step * steps;
    }
}

/// Convert a link speed in GB/s (10^9 bytes per second) to the internal
/// bytes-per-nanosecond unit.
#[inline]
pub fn gbps(gigabytes_per_sec: f64) -> f64 {
    // 1 GB/s = 1e9 B / 1e9 ns = 1 B/ns.
    gigabytes_per_sec
}

/// Convert a link speed quoted in Gbit/s to bytes per nanosecond.
#[inline]
pub fn gbits(gigabits_per_sec: f64) -> f64 {
    gigabits_per_sec / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_cut_through() {
        let mut r = ResSlot::new(1.0, Dur::nanos(100)); // 1 B/ns, 100 ns latency
        let t = r.transfer(SimTime(0), 1000);
        assert_eq!(t.start, SimTime(0));
        assert_eq!(t.depart, SimTime(1000));
        assert_eq!(t.arrive, SimTime(1100));
    }

    #[test]
    fn back_to_back_transfers_serialise() {
        let mut r = ResSlot::new(2.0, Dur::nanos(10));
        let a = r.transfer(SimTime(0), 100); // busy 50 ns
        let b = r.transfer(SimTime(0), 100); // queued behind a
        assert_eq!(a.depart, SimTime(50));
        assert_eq!(b.start, SimTime(50));
        assert_eq!(b.arrive, SimTime(50 + 10 + 50));
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut r = ResSlot::new(1.0, Dur::ZERO);
        let _ = r.transfer(SimTime(0), 10);
        let b = r.transfer(SimTime(1000), 10);
        assert_eq!(b.start, SimTime(1000));
    }

    #[test]
    fn occupy_serialises_too() {
        let mut r = ResSlot::new(1.0, Dur::ZERO);
        let (s1, e1) = r.occupy(SimTime(0), Dur::nanos(30));
        let (s2, _e2) = r.occupy(SimTime(0), Dur::nanos(30));
        assert_eq!((s1, e1), (SimTime(0), SimTime(30)));
        assert_eq!(s2, SimTime(30));
    }

    #[test]
    fn faulted_transfer_scales_bandwidth_and_adds_latency() {
        let mut r = ResSlot::new(1.0, Dur::nanos(100));
        let t = r.transfer_faulted(SimTime(0), SimTime(0), 1000, 500, Dur::nanos(30));
        assert_eq!(t.start, SimTime(0));
        assert_eq!(t.depart, SimTime(2000), "half bandwidth doubles the busy time");
        assert_eq!(t.arrive, SimTime(2130));
        // Nominal factor with no extra reproduces the clean closed form.
        let mut clean = ResSlot::new(1.0, Dur::nanos(100));
        let c = clean.transfer_faulted(SimTime(0), SimTime(0), 1000, 1000, Dur::ZERO);
        assert_eq!((c.start, c.depart, c.arrive), (SimTime(0), SimTime(1000), SimTime(1100)));
    }

    #[test]
    fn unit_helpers() {
        assert!((gbps(25.0) - 25.0).abs() < 1e-12);
        assert!((gbits(200.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = ResSlot::new(0.0, Dur::ZERO);
    }
}
