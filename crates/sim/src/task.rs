//! Task identity and kernel-side task bookkeeping.
//!
//! A *task* is one cooperative unit of execution — usually a simulated
//! rank, sometimes a helper (progress engine, application thread). Each
//! task runs on its own OS thread, but the scheduler guarantees that **at
//! most one task executes at any moment**; tasks hand control back to the
//! scheduler whenever they block on virtual time or an event. This gives
//! a sequential, deterministic discrete-event simulation with the
//! programming convenience of ordinary blocking code.

use crossbeam::channel::Sender;

/// Identifies a task within one simulation. Cheap to copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// Raw index, stable for the lifetime of the simulation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Scheduler-visible status of a task.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum TaskStatus {
    /// Parked, waiting for the scheduler to hand it the baton.
    Blocked,
    /// Currently holds the baton (at most one task at a time).
    Running,
    /// Task closure returned; thread has exited or is exiting.
    Done,
}

/// Message a task sends the scheduler when it gives up the baton.
#[derive(Debug)]
pub(crate) enum YieldMsg {
    /// Task parked after registering a wake-up condition.
    Parked,
    /// Task closure returned normally.
    Done,
    /// Task closure panicked; the panic payload is re-raised by `run()`.
    Panicked(TaskId, String),
}

pub(crate) struct TaskSlot {
    pub(crate) name: String,
    pub(crate) status: TaskStatus,
    /// Baton channel: scheduler sends one unit to resume the task.
    pub(crate) wake_tx: Sender<()>,
}
