//! Lightweight measurement helpers for the benchmark harnesses.

use crate::time::Dur;

/// Collects duration samples and reports summary statistics.
#[derive(Default, Debug, Clone)]
pub struct Meter {
    samples: Vec<f64>, // microseconds
}

impl Meter {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration sample.
    pub fn record(&mut self, d: Dur) {
        self.samples.push(d.as_us());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean in microseconds (0 if empty).
    pub fn mean_us(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum sample in microseconds (0 if empty).
    pub fn min_us(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min).min(f64::MAX)
    }

    /// Maximum sample in microseconds (0 if empty).
    pub fn max_us(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Median sample in microseconds (0 if empty).
    pub fn median_us(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = s.len() / 2;
        if s.len().is_multiple_of(2) {
            (s[mid - 1] + s[mid]) / 2.0
        } else {
            s[mid]
        }
    }

    /// The `p`-th percentile sample in microseconds (0 if empty), with
    /// `p` in `[0, 100]`. Nearest-rank method on the sorted samples, so
    /// the result is always an observed value — the convention used for
    /// the per-job latency quantiles in the multi-tenant benchmarks.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        debug_assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p / 100.0) * s.len() as f64).ceil() as usize;
        s[rank.clamp(1, s.len()) - 1]
    }

    /// 50th-percentile (nearest-rank) sample in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.percentile_us(50.0)
    }

    /// 99th-percentile (nearest-rank) sample in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.percentile_us(99.0)
    }
}

/// Achieved bandwidth for a transfer of `bytes` over `elapsed`.
///
/// Returns GB/s (10^9 bytes per second).
pub fn bandwidth_gbps(bytes: u64, elapsed: Dur) -> f64 {
    if elapsed.as_nanos() == 0 {
        return f64::INFINITY;
    }
    bytes as f64 / elapsed.as_nanos() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_statistics() {
        let mut m = Meter::new();
        for us in [1.0, 2.0, 3.0, 10.0] {
            m.record(Dur::micros(us));
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean_us() - 4.0).abs() < 1e-9);
        assert!((m.median_us() - 2.5).abs() < 1e-9);
        assert!((m.min_us() - 1.0).abs() < 1e-9);
        assert!((m.max_us() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut m = Meter::new();
        for us in 1..=100 {
            m.record(Dur::micros(us as f64));
        }
        assert!((m.p50_us() - 50.0).abs() < 1e-9);
        assert!((m.p99_us() - 99.0).abs() < 1e-9);
        assert!((m.percentile_us(100.0) - 100.0).abs() < 1e-9);
        // A lone sample is every percentile.
        let mut one = Meter::new();
        one.record(Dur::micros(7.0));
        assert!((one.p99_us() - 7.0).abs() < 1e-9);
        assert_eq!(Meter::new().p99_us(), 0.0);
    }

    #[test]
    fn bandwidth_math() {
        // 1000 bytes in 1000 ns = 1 GB/s.
        assert!((bandwidth_gbps(1000, Dur::nanos(1000)) - 1.0).abs() < 1e-12);
        // 25 bytes/ns = 25 GB/s.
        assert!((bandwidth_gbps(25_000, Dur::nanos(1000)) - 25.0).abs() < 1e-12);
    }
}
