//! Platform models: the three evaluation systems of the paper.
//!
//! * **Platform A** — AMD EPYC 7763 + 4×NVIDIA A100, 4×HPE Slingshot-11
//!   NICs per node (200 Gb each). Baseline MPI: HPE Cray MPICH.
//! * **Platform B** — AMD EPYC 7A53 + 4×AMD MI250X (= 8 GCDs visible as
//!   8 OpenMP devices), 4×Slingshot-11. Baseline MPI: HPE Cray MPICH.
//! * **Platform C** — NVIDIA Grace Hopper GH200, 1 GPU per node, NDR
//!   InfiniBand 200 Gb. Baseline MPI: OpenMPI.
//!
//! Hardware numbers are taken from public vendor specifications.
//! *Software* numbers (per-operation overheads, achieved-bandwidth
//! curves) are **calibration parameters**: they are fitted so that the
//! micro-benchmarks of this reproduction land on the curves published in
//! the paper (Figs. 3–6). The protocol code in `diomp-fabric` /
//! `diomp-xccl` decides *how many* operations happen and *which* links
//! they cross; these tables decide what each costs. EXPERIMENTS.md
//! records the resulting paper-vs-measured comparison.

/// Compute-device hardware model.
#[derive(Clone, Debug)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Device memory capacity in GiB.
    pub mem_gib: f64,
    /// HBM bandwidth, GB/s.
    pub hbm_gbps: f64,
    /// Peak FP32 throughput, TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak FP64 throughput, TFLOP/s.
    pub fp64_tflops: f64,
    /// Last-level cache size, MiB (drives the cache-residency term of the
    /// GEMM model, DESIGN.md D7).
    pub l2_mib: f64,
    /// Kernel launch latency, µs.
    pub launch_us: f64,
    /// Intra-device copy bandwidth (D2D on the same device), GB/s.
    pub d2d_gbps: f64,
}

/// Inter-node network hardware model.
#[derive(Clone, Debug)]
pub struct NetSpec {
    /// Fabric name, for reports.
    pub name: &'static str,
    /// Per-NIC bandwidth, GB/s (200 Gb ≈ 25 GB/s).
    pub nic_gbps: f64,
    /// NICs per node.
    pub nics_per_node: usize,
    /// One-way wire + switch latency, µs.
    pub latency_us: f64,
}

/// Intra-node interconnect model.
#[derive(Clone, Debug)]
pub struct IntraSpec {
    /// GPU↔GPU fabric bandwidth per device port (NVLink / xGMI), GB/s.
    pub gpu_link_gbps: f64,
    /// GPU↔GPU fabric latency, µs.
    pub gpu_link_lat_us: f64,
    /// Host link bandwidth per device (PCIe gen4 / NVLink-C2C), GB/s.
    pub pcie_gbps: f64,
    /// Host link latency, µs.
    pub pcie_lat_us: f64,
    /// Host shared-memory copy bandwidth (IPC staging), GB/s.
    pub shm_gbps: f64,
    /// Host shared-memory latency, µs.
    pub shm_lat_us: f64,
    /// One-time cost of opening an IPC memory handle, µs.
    pub ipc_setup_us: f64,
}

/// GASNet-EX conduit software model (the DiOMP default conduit).
#[derive(Clone, Debug)]
pub struct GasnetModel {
    /// Initiator overhead of a Put, µs.
    pub put_o_us: f64,
    /// Initiator overhead of a Get (includes the request round-trip share
    /// beyond wire latency), µs.
    pub get_o_us: f64,
    /// GPU memory RDMA path overhead per operation (device segment
    /// lookup, GDR doorbell), µs.
    pub gpu_reg_us: f64,
    /// Fraction of wire bandwidth achieved asymptotically by RMA.
    pub eff: f64,
    /// Active-message handler dispatch cost, µs.
    pub am_o_us: f64,
}

/// GPI-2 conduit software model (InfiniBand only, paper §4.1).
#[derive(Clone, Debug)]
pub struct GpiModel {
    /// Initiator overhead of a write, µs.
    pub put_o_us: f64,
    /// Initiator overhead of a read, µs.
    pub get_o_us: f64,
    /// Notification post+check cost, µs.
    pub notify_us: f64,
    /// Fraction of wire bandwidth achieved asymptotically.
    pub eff: f64,
}

/// MPI two-sided point-to-point model.
#[derive(Clone, Debug)]
pub struct MpiP2pModel {
    /// Largest message sent eagerly (no rendezvous), bytes.
    pub eager_max: u64,
    /// Sender-side software overhead, µs.
    pub send_o_us: f64,
    /// Receiver-side match/copy overhead, µs.
    pub recv_o_us: f64,
    /// Extra handshake cost of the rendezvous protocol, µs (on top of the
    /// request round trip).
    pub rndv_hs_us: f64,
    /// Fraction of wire bandwidth achieved asymptotically.
    pub eff: f64,
}

/// MPI one-sided (RMA window) model — the Fig. 3/4 baseline.
#[derive(Clone, Debug)]
pub struct MpiRmaModel {
    /// Origin overhead of `MPI_Put`, µs.
    pub put_o_us: f64,
    /// Origin overhead of `MPI_Get`, µs.
    pub get_o_us: f64,
    /// Per-operation share of window synchronisation (`MPI_Win_flush`),
    /// µs.
    pub flush_us: f64,
    /// Software pipeline cost per byte for device buffers, ns/B. This is
    /// what makes MPI RMA latency *grow* visibly over 4 B–8 KB in Fig. 3
    /// while DiOMP stays nearly flat.
    pub per_byte_ns: f64,
    /// Achieved fraction of wire bandwidth for large Puts.
    pub put_eff: f64,
    /// Achieved fraction of wire bandwidth for large Gets.
    pub get_eff: f64,
    /// Collective cost of `MPI_Win_create` per rank (memory registration,
    /// exchange of window metadata), µs.
    pub win_create_us: f64,
}

/// A piecewise achieved-bandwidth curve: `(message bytes, GB/s)` control
/// points, geometrically interpolated in log-size space. Below the first
/// point the first bandwidth applies; above the last, the last.
#[derive(Clone, Debug)]
pub struct BwCurve {
    /// Control points, strictly increasing in bytes.
    pub points: Vec<(u64, f64)>,
}

impl BwCurve {
    /// Build from control points (must be non-empty, sizes increasing).
    pub fn new(points: Vec<(u64, f64)>) -> Self {
        assert!(!points.is_empty(), "BwCurve needs at least one point");
        assert!(points.windows(2).all(|w| w[0].0 < w[1].0), "BwCurve sizes must increase");
        BwCurve { points }
    }

    /// Achieved bandwidth in GB/s for a message of `bytes`.
    pub fn gbps(&self, bytes: u64) -> f64 {
        let pts = &self.points;
        if bytes <= pts[0].0 {
            return pts[0].1;
        }
        if bytes >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let i = pts.partition_point(|p| p.0 <= bytes) - 1;
        let (s0, b0) = pts[i];
        let (s1, b1) = pts[i + 1];
        // Log-log interpolation: smooth S-curves from few points.
        let f = ((bytes as f64).ln() - (s0 as f64).ln()) / ((s1 as f64).ln() - (s0 as f64).ln());
        (b0.ln() + f * (b1.ln() - b0.ln())).exp()
    }

    /// Time in µs to move `bytes` at the interpolated bandwidth.
    pub fn time_us(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.gbps(bytes) * 1e3)
    }

    /// Asymptotic bandwidth of the curve: the last control point's GB/s
    /// (what the link achieves once messages are large enough that
    /// per-operation overheads vanish).
    pub fn asymptote_gbps(&self) -> f64 {
        self.points.last().expect("BwCurve is non-empty").1
    }

    /// The curve's *knee*: the smallest message size whose achieved
    /// bandwidth reaches `frac` of the asymptote ([`Self::asymptote_gbps`]).
    ///
    /// This is the transport autotuner's primitive query: "how big must a
    /// chunk be before this platform's per-operation overhead stops
    /// mattering?" The answer is read off the calibrated table rather
    /// than hard-coded, so every derived parameter follows the platform.
    ///
    /// The result is clamped to the curve's control range: if even the
    /// first point reaches the threshold the first point's size is
    /// returned, and if no interior crossing exists (non-monotonic fitted
    /// curves can dip back under), the last point's size is returned —
    /// the asymptote itself always qualifies for `frac <= 1`. Within a
    /// segment the crossing is solved on the same log-log interpolation
    /// [`Self::gbps`] uses, so `gbps(knee_bytes(f)) ≈ f × asymptote`.
    /// The query is monotone in `frac`: a higher threshold can only move
    /// the knee to a larger size.
    pub fn knee_bytes(&self, frac: f64) -> u64 {
        let thr = self.asymptote_gbps() * frac;
        let pts = &self.points;
        if pts[0].1 >= thr {
            return pts[0].0;
        }
        for w in pts.windows(2) {
            let ((s0, b0), (s1, b1)) = (w[0], w[1]);
            if b0 < thr && thr <= b1 {
                // Invert the log-log interpolation of `gbps`.
                let f = (thr.ln() - b0.ln()) / (b1.ln() - b0.ln());
                let s = ((s0 as f64).ln() + f * ((s1 as f64).ln() - (s0 as f64).ln())).exp();
                return (s.ceil() as u64).clamp(s0, s1);
            }
        }
        pts[pts.len() - 1].0
    }

    /// Synthesize the achieved-bandwidth curve of a primitive that costs
    /// `o_us + bytes / wire` µs per operation — the classic
    /// `s / (o + s/B)` saturation shape. Control points span
    /// 1 KiB – 64 MiB, matching the conduit RMA curves; the asymptote is
    /// `wire_gbps`. This is the autotuner's generic "how big must an
    /// operation be before its fixed overhead stops mattering" curve:
    /// the conduit RMA curves are one instance, the ring engine's
    /// per-chunk step curve another.
    pub fn saturation(o_us: f64, wire_gbps: f64) -> BwCurve {
        BwCurve::new(
            (0..=16)
                .map(|i| {
                    let s = 1u64 << (10 + i);
                    let t_us = o_us + s as f64 / (wire_gbps * 1e3);
                    (s, s as f64 / t_us / 1e3)
                })
                .collect(),
        )
    }
}

/// Synthesize the achieved-bandwidth curve of a single one-sided RMA
/// operation from its conduit model — [`BwCurve::saturation`] applied to
/// the conduit's per-op overhead and asymptotic wire rate.
fn rma_curve(o_us: f64, wire_gbps: f64) -> BwCurve {
    BwCurve::saturation(o_us, wire_gbps)
}

/// Cost profile of one collective operation in one library
/// (a calibrated model of NCCL/RCCL/MPI achieved performance).
#[derive(Clone, Debug)]
pub struct CollProfile {
    /// Fixed per-call cost (kernel launches, stream sync, algorithm
    /// selection), µs.
    pub launch_us: f64,
    /// Per-hop latency multiplied by the algorithm's hop count, µs.
    pub hop_us: f64,
    /// Achieved-bandwidth S-curve.
    pub curve: BwCurve,
}

impl CollProfile {
    /// Modelled completion time of this collective for `bytes` on `p`
    /// participants, where `hops` is the algorithm's latency-critical hop
    /// count (e.g. ⌈log2 p⌉ for trees, p−1 for unpipelined rings).
    pub fn time_us(&self, bytes: u64, hops: u32) -> f64 {
        self.launch_us + self.hop_us * hops as f64 + self.curve.time_us(bytes)
    }
}

/// Collective-communication models for the platform's MPI and its vendor
/// collective library (NCCL on A/C, RCCL on B).
#[derive(Clone, Debug)]
pub struct CollModels {
    /// Vendor library name ("NCCL" / "RCCL").
    pub xccl_name: &'static str,
    /// One-time communicator initialisation cost, µs (UniqueId exchange,
    /// topology discovery, ring construction).
    pub xccl_init_us: f64,
    /// MPI broadcast profile (GPU buffers).
    pub mpi_bcast: CollProfile,
    /// MPI allreduce profile (GPU buffers).
    pub mpi_allreduce: CollProfile,
    /// XCCL broadcast profile.
    pub xccl_bcast: CollProfile,
    /// XCCL allreduce profile.
    pub xccl_allreduce: CollProfile,
}

/// Which of the paper's systems a spec models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlatformId {
    /// Slingshot-11 + A100.
    A,
    /// Slingshot-11 + MI250X.
    B,
    /// NDR InfiniBand + GH200.
    C,
    /// User-defined.
    Custom,
}

/// Complete hardware + software model of one evaluation platform.
#[derive(Clone, Debug)]
pub struct PlatformSpec {
    /// Which paper platform this models.
    pub id: PlatformId,
    /// Human-readable name used in reports ("Slingshot 11 + A100").
    pub name: &'static str,
    /// OpenMP-visible devices per node (8 for MI250X: 2 GCDs × 4).
    pub gpus_per_node: usize,
    /// Device hardware model.
    pub gpu: GpuSpec,
    /// Network hardware model.
    pub net: NetSpec,
    /// Intra-node interconnect model.
    pub intra: IntraSpec,
    /// GASNet-EX conduit software model.
    pub gasnet: GasnetModel,
    /// GPI-2 conduit software model (InfiniBand platforms only).
    pub gpi: Option<GpiModel>,
    /// MPI two-sided model.
    pub mpi_p2p: MpiP2pModel,
    /// MPI one-sided model.
    pub mpi_rma: MpiRmaModel,
    /// Collective models (MPI + XCCL).
    pub coll: CollModels,
    /// Fig. 4a documented hardware/driver issue: DiOMP Put bandwidth on
    /// Platform A is capped externally. `Some(cap_gbps)` reproduces the
    /// published anomaly; set to `None` for the corrected behaviour.
    pub put_anomaly_gbps: Option<f64>,
    /// Host memcpy bandwidth, GB/s (staging paths).
    pub host_memcpy_gbps: f64,
}

impl PlatformSpec {
    /// Platform A: Slingshot-11 + A100 (Cray MPICH, NCCL).
    pub fn platform_a() -> PlatformSpec {
        PlatformSpec {
            id: PlatformId::A,
            name: "Slingshot 11 + A100",
            gpus_per_node: 4,
            gpu: GpuSpec {
                name: "NVIDIA A100-40GB",
                mem_gib: 40.0,
                hbm_gbps: 1555.0,
                fp32_tflops: 19.5,
                fp64_tflops: 9.7,
                l2_mib: 40.0,
                launch_us: 6.0,
                d2d_gbps: 1300.0,
            },
            net: NetSpec {
                name: "HPE Slingshot 11",
                nic_gbps: 25.0,
                nics_per_node: 4,
                latency_us: 1.75,
            },
            intra: IntraSpec {
                gpu_link_gbps: 300.0,
                gpu_link_lat_us: 0.7,
                pcie_gbps: 25.0,
                pcie_lat_us: 1.2,
                shm_gbps: 40.0,
                shm_lat_us: 0.5,
                ipc_setup_us: 8.0,
            },
            gasnet: GasnetModel {
                put_o_us: 0.55,
                get_o_us: 1.0,
                gpu_reg_us: 0.95,
                eff: 0.92,
                am_o_us: 0.9,
            },
            gpi: None, // GPI-2 supports only InfiniBand (paper §4.1)
            mpi_p2p: MpiP2pModel {
                eager_max: 8192,
                send_o_us: 1.3,
                recv_o_us: 1.1,
                rndv_hs_us: 1.9,
                eff: 0.80,
            },
            mpi_rma: MpiRmaModel {
                put_o_us: 4.3,
                get_o_us: 6.3,
                flush_us: 1.8,
                per_byte_ns: 1.05,
                put_eff: 0.74,
                get_eff: 0.70,
                win_create_us: 42.0,
            },
            coll: CollModels {
                xccl_name: "NCCL",
                xccl_init_us: 90_000.0,
                mpi_bcast: CollProfile {
                    launch_us: 16.0,
                    hop_us: 1.2,
                    curve: BwCurve::new(vec![
                        (32 << 10, 5.5),
                        (256 << 10, 6.5),
                        (512 << 10, 15.0),
                        (64 << 20, 14.5),
                    ]),
                },
                mpi_allreduce: CollProfile {
                    launch_us: 22.0,
                    hop_us: 1.4,
                    curve: BwCurve::new(vec![(128 << 10, 4.5), (1 << 20, 4.8), (64 << 20, 2.0)]),
                },
                // Calibrated to NCCL's measured behaviour on this system
                // (fitted so the Fig. 6 ratios land; the dip near 512 KB
                // is the LL->Simple protocol switch).
                xccl_bcast: CollProfile {
                    launch_us: 15.33,
                    hop_us: 0.2434,
                    curve: BwCurve::new(vec![
                        (32256, 1.285),
                        (129024, 2.352),
                        (258048, 3.736),
                        (516096, 0.716),
                        (2064384, 2.563),
                        (8257536, 8.616),
                        (33030144, 15.174),
                        (66060288, 36.233),
                    ]),
                },
                xccl_allreduce: CollProfile {
                    launch_us: 55.78,
                    hop_us: 0.8853,
                    curve: BwCurve::new(vec![
                        (258048, 2.327),
                        (516096, 5.655),
                        (1032192, 8.126),
                        (2064384, 13.593),
                        (4128768, 13.386),
                        (8257536, 12.982),
                        (16515072, 20.957),
                        (33030144, 33.566),
                        (66060288, 48.554),
                        (132120576, 56.715),
                    ]),
                },
            },
            put_anomaly_gbps: Some(3.2),
            host_memcpy_gbps: 20.0,
        }
    }

    /// Platform B: Slingshot-11 + MI250X (Cray MPICH, RCCL). A node has
    /// 4 MI250X cards = 8 GCDs; each GCD is an OpenMP device.
    pub fn platform_b() -> PlatformSpec {
        PlatformSpec {
            id: PlatformId::B,
            name: "Slingshot 11 + MI250X",
            gpus_per_node: 8,
            gpu: GpuSpec {
                name: "AMD MI250X (GCD)",
                mem_gib: 64.0,
                hbm_gbps: 1600.0,
                fp32_tflops: 23.9,
                fp64_tflops: 23.9,
                l2_mib: 8.0,
                launch_us: 7.5,
                d2d_gbps: 1200.0,
            },
            net: NetSpec {
                name: "HPE Slingshot 11",
                nic_gbps: 25.0,
                nics_per_node: 4,
                latency_us: 1.8,
            },
            intra: IntraSpec {
                gpu_link_gbps: 100.0, // xGMI inter-GCD
                gpu_link_lat_us: 0.9,
                pcie_gbps: 36.0, // Infinity Fabric host link
                pcie_lat_us: 1.1,
                shm_gbps: 45.0,
                shm_lat_us: 0.5,
                ipc_setup_us: 9.0,
            },
            gasnet: GasnetModel {
                put_o_us: 0.5,
                get_o_us: 0.95,
                gpu_reg_us: 0.9,
                eff: 0.88,
                am_o_us: 0.9,
            },
            gpi: None,
            mpi_p2p: MpiP2pModel {
                eager_max: 8192,
                send_o_us: 1.25,
                recv_o_us: 1.1,
                rndv_hs_us: 1.8,
                eff: 0.78,
            },
            mpi_rma: MpiRmaModel {
                put_o_us: 3.6,
                get_o_us: 5.3,
                flush_us: 1.6,
                per_byte_ns: 1.0,
                put_eff: 0.70,
                get_eff: 0.67,
                win_create_us: 38.0,
            },
            coll: CollModels {
                xccl_name: "RCCL",
                xccl_init_us: 110_000.0,
                mpi_bcast: CollProfile {
                    launch_us: 17.0,
                    hop_us: 1.2,
                    curve: BwCurve::new(vec![(32 << 10, 2.2), (512 << 10, 5.0), (64 << 20, 13.0)]),
                },
                mpi_allreduce: CollProfile {
                    launch_us: 18.0,
                    hop_us: 1.3,
                    curve: BwCurve::new(vec![(128 << 10, 5.2), (2 << 20, 6.0), (64 << 20, 7.5)]),
                },
                // Calibrated to RCCL's measured behaviour (Fig. 6): strong
                // small-message broadcast, weak allreduce with a very high
                // fixed cost -- the paper's "RCCL still has room for
                // further optimization".
                xccl_bcast: CollProfile {
                    launch_us: 6.19,
                    hop_us: 0.0983,
                    curve: BwCurve::new(vec![
                        (32256, 1.75),
                        (129024, 12.738),
                        (516096, 3.577),
                        (1032192, 2.83),
                        (2064384, 4.92),
                        (8257536, 8.891),
                        (16515072, 8.729),
                        (33030144, 10.22),
                        (66060288, 9.676),
                    ]),
                },
                xccl_allreduce: CollProfile {
                    launch_us: 183.17,
                    hop_us: 2.9074,
                    curve: BwCurve::new(vec![
                        (258048, 0.861),
                        (516096, 1.506),
                        (1032192, 1.23),
                        (2064384, 1.403),
                        (4128768, 1.174),
                        (8257536, 1.367),
                        (16515072, 1.448),
                        (33030144, 1.34),
                        (66060288, 2.445),
                        (132120576, 2.733),
                    ]),
                },
            },
            put_anomaly_gbps: None,
            host_memcpy_gbps: 22.0,
        }
    }

    /// Platform C: NDR InfiniBand + GH200 (OpenMPI, NCCL), 1 GPU/node.
    pub fn platform_c() -> PlatformSpec {
        PlatformSpec {
            id: PlatformId::C,
            name: "NDR IB + GH200",
            gpus_per_node: 1,
            gpu: GpuSpec {
                name: "NVIDIA GH200 (H100-96GB)",
                mem_gib: 96.0,
                hbm_gbps: 4000.0,
                fp32_tflops: 67.0,
                fp64_tflops: 34.0,
                l2_mib: 50.0,
                launch_us: 5.0,
                d2d_gbps: 3000.0,
            },
            net: NetSpec {
                name: "NDR InfiniBand",
                nic_gbps: 25.0,
                nics_per_node: 1,
                latency_us: 1.9,
            },
            intra: IntraSpec {
                gpu_link_gbps: 450.0, // NVLink-C2C to the Grace CPU
                gpu_link_lat_us: 0.5,
                pcie_gbps: 450.0,
                pcie_lat_us: 0.5,
                shm_gbps: 90.0,
                shm_lat_us: 0.4,
                ipc_setup_us: 6.0,
            },
            gasnet: GasnetModel {
                put_o_us: 0.8,
                get_o_us: 1.4,
                gpu_reg_us: 1.3,
                eff: 0.97,
                am_o_us: 1.0,
            },
            gpi: Some(GpiModel { put_o_us: 1.2, get_o_us: 1.9, notify_us: 0.6, eff: 0.97 }),
            mpi_p2p: MpiP2pModel {
                eager_max: 4096,
                send_o_us: 1.6,
                recv_o_us: 1.4,
                rndv_hs_us: 2.4,
                eff: 0.62,
            },
            mpi_rma: MpiRmaModel {
                // OpenMPI osc/rdma on GH200: high software path cost
                // (paper Fig. 3c shows 30–100+ µs vs DiOMP's ~6–10 µs).
                put_o_us: 26.0,
                get_o_us: 34.0,
                flush_us: 4.0,
                per_byte_ns: 6.0,
                put_eff: 0.60,
                get_eff: 0.56,
                win_create_us: 70.0,
            },
            coll: CollModels {
                xccl_name: "NCCL",
                xccl_init_us: 80_000.0,
                mpi_bcast: CollProfile {
                    launch_us: 20.0,
                    hop_us: 1.6,
                    curve: BwCurve::new(vec![(32 << 10, 6.0), (512 << 10, 6.5), (64 << 20, 5.5)]),
                },
                mpi_allreduce: CollProfile {
                    launch_us: 24.0,
                    hop_us: 1.8,
                    curve: BwCurve::new(vec![(128 << 10, 5.5), (1 << 20, 6.0), (64 << 20, 8.0)]),
                },
                // Calibrated to NCCL over single-rail NDR IB (Fig. 6).
                xccl_bcast: CollProfile {
                    launch_us: 16.73,
                    hop_us: 1.1155,
                    curve: BwCurve::new(vec![
                        (30720, 1.122),
                        (61440, 0.989),
                        (122880, 1.455),
                        (491520, 3.269),
                        (1966080, 12.768),
                        (7864320, 20.446),
                        (15728640, 24.763),
                        (31457280, 20.324),
                        (62914560, 26.986),
                    ]),
                },
                xccl_allreduce: CollProfile {
                    launch_us: 72.35,
                    hop_us: 4.8231,
                    curve: BwCurve::new(vec![
                        (245760, 2.076),
                        (491520, 1.999),
                        (983040, 2.588),
                        (1966080, 6.033),
                        (3932160, 7.034),
                        (7864320, 8.381),
                        (15728640, 8.116),
                        (31457280, 8.477),
                        (62914560, 7.087),
                        (125829120, 7.21),
                    ]),
                },
            },
            put_anomaly_gbps: None,
            host_memcpy_gbps: 60.0,
        }
    }

    /// All three paper platforms, in figure order.
    pub fn all() -> Vec<PlatformSpec> {
        vec![Self::platform_a(), Self::platform_b(), Self::platform_c()]
    }

    /// Achieved-bandwidth curve of one GASNet-EX device-to-device Put on
    /// this platform (per-op overhead = initiator software + GPU segment
    /// registration; wire = one NIC at the conduit's asymptotic
    /// efficiency). The transport autotuner queries this curve's knee to
    /// size pipeline chunks instead of hard-coding a constant.
    pub fn gasnet_rma_curve(&self) -> BwCurve {
        rma_curve(self.gasnet_op_overhead_us(), self.net.nic_gbps * self.gasnet.eff)
    }

    /// Achieved-bandwidth curve of one GPI-2 notified write (overhead =
    /// write initiation + notification post), when the platform supports
    /// GPI-2 at all (InfiniBand only).
    pub fn gpi_rma_curve(&self) -> Option<BwCurve> {
        self.gpi
            .as_ref()
            .map(|g| rma_curve(self.gpi_op_overhead_us().unwrap(), self.net.nic_gbps * g.eff))
    }

    /// Per-operation initiator overhead of one GASNet-EX device put, µs:
    /// initiator software plus the GPU segment registration / GDR
    /// doorbell. Single source of the formula shared by the RMA curve
    /// synthesis, the pipeline autotuner, and the LL engine's fused-send
    /// hop cost.
    pub fn gasnet_op_overhead_us(&self) -> f64 {
        self.gasnet.put_o_us + self.gasnet.gpu_reg_us
    }

    /// Per-operation initiator overhead of one GPI-2 notified write, µs
    /// (write initiation + notification post), when the platform
    /// supports GPI-2 at all (InfiniBand only).
    pub fn gpi_op_overhead_us(&self) -> Option<f64> {
        self.gpi.as_ref().map(|g| g.put_o_us + g.notify_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_interpolates_geometrically() {
        let c = BwCurve::new(vec![(1024, 1.0), (1 << 20, 10.0)]);
        assert!((c.gbps(512) - 1.0).abs() < 1e-12, "clamps below");
        assert!((c.gbps(2 << 20) - 10.0).abs() < 1e-12, "clamps above");
        let mid = c.gbps(32 << 10); // halfway in log space
        assert!(mid > 3.0 && mid < 3.5, "log-log midpoint ≈ √10, got {mid}");
    }

    #[test]
    fn curve_time_is_monotonic_in_size() {
        let c = BwCurve::new(vec![(1024, 2.0), (1 << 20, 20.0)]);
        let mut last = 0.0;
        for shift in 10..22 {
            let t = c.time_us(1u64 << shift);
            assert!(t > last, "time must grow with size");
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "sizes must increase")]
    fn curve_rejects_unsorted_points() {
        let _ = BwCurve::new(vec![(2048, 1.0), (1024, 2.0)]);
    }

    #[test]
    fn platforms_have_expected_shapes() {
        let a = PlatformSpec::platform_a();
        let b = PlatformSpec::platform_b();
        let c = PlatformSpec::platform_c();
        assert_eq!(a.gpus_per_node, 4);
        assert_eq!(b.gpus_per_node, 8, "MI250X exposes 2 GCDs per card");
        assert_eq!(c.gpus_per_node, 1);
        assert!(a.put_anomaly_gbps.is_some(), "Fig. 4a anomaly on by default");
        assert!(a.gpi.is_none() && c.gpi.is_some(), "GPI-2 is InfiniBand-only");
    }

    #[test]
    fn knee_sizes_below_first_and_above_last_point_clamp() {
        let c = BwCurve::new(vec![(1024, 1.0), (1 << 20, 10.0)]);
        // Threshold met already at the first point -> clamp low.
        assert_eq!(c.knee_bytes(0.05), 1024);
        // Threshold only met by the asymptote itself -> clamp high.
        assert_eq!(c.knee_bytes(1.0), 1 << 20);
        // Over-unity thresholds cannot be reached; still clamp high.
        assert_eq!(c.knee_bytes(1.5), 1 << 20);
        // Interior crossing inverts the log-log interpolation.
        let knee = c.knee_bytes(0.5);
        assert!(knee > 1024 && knee < (1 << 20));
        assert!((c.gbps(knee) - 5.0).abs() / 5.0 < 0.01, "gbps(knee) ≈ frac × asymptote");
    }

    #[test]
    fn knee_of_single_point_curve_is_that_point() {
        let c = BwCurve::new(vec![(4096, 7.5)]);
        assert_eq!(c.asymptote_gbps(), 7.5);
        for frac in [0.1, 0.9, 1.0, 2.0] {
            assert_eq!(c.knee_bytes(frac), 4096);
        }
    }

    #[test]
    fn knee_handles_non_monotonic_fitted_curves() {
        // A protocol-switch dip (like the fitted NCCL LL->Simple switch):
        // the first crossing of the threshold counts, and the asymptote
        // fallback applies when the dip undercuts every interior segment.
        let c = BwCurve::new(vec![(1024, 1.0), (4096, 8.0), (16384, 2.0), (65536, 10.0)]);
        let knee = c.knee_bytes(0.5);
        assert!(knee > 1024 && knee <= 4096, "first crossing of 5.0 is on the rising edge");
        // 0.95 × 10 = 9.5 is only reached between the dip and the last
        // point; the knee must land there, after the dip.
        let high = c.knee_bytes(0.95);
        assert!(high > 16384 && high <= 65536, "got {high}");
    }

    #[test]
    fn knee_query_is_monotone_in_frac_on_all_platform_curves() {
        // The tuner relies on "higher threshold -> larger (or equal)
        // knee" for every calibrated curve in the tables, including the
        // deliberately non-monotonic fitted collective curves.
        for p in PlatformSpec::all() {
            let mut curves = vec![
                p.gasnet_rma_curve(),
                p.coll.xccl_bcast.curve.clone(),
                p.coll.xccl_allreduce.curve.clone(),
                p.coll.mpi_bcast.curve.clone(),
                p.coll.mpi_allreduce.curve.clone(),
            ];
            curves.extend(p.gpi_rma_curve());
            for c in curves {
                let mut last = 0u64;
                for i in 1..=20 {
                    let k = c.knee_bytes(i as f64 * 0.05);
                    assert!(k >= last, "{}: knee must not shrink as frac grows", p.name);
                    last = k;
                }
            }
        }
    }

    #[test]
    fn rma_curves_differ_across_platforms() {
        // The synthesized conduit curves are what the autotuner reads;
        // they must genuinely reflect each platform's tables.
        let a = PlatformSpec::platform_a().gasnet_rma_curve();
        let c = PlatformSpec::platform_c().gasnet_rma_curve();
        assert_ne!(a.knee_bytes(0.95), c.knee_bytes(0.95));
        assert!(PlatformSpec::platform_a().gpi_rma_curve().is_none());
        let gpi = PlatformSpec::platform_c().gpi_rma_curve().unwrap();
        assert_ne!(gpi.knee_bytes(0.95), c.knee_bytes(0.95), "conduits tune differently");
    }

    #[test]
    fn coll_profile_time_includes_all_terms() {
        let p =
            CollProfile { launch_us: 10.0, hop_us: 2.0, curve: BwCurve::new(vec![(1024, 1.0)]) };
        // 1024 B at 1 GB/s = 1.024 µs; + 10 launch + 3 hops × 2.
        assert!((p.time_us(1024, 3) - (10.0 + 6.0 + 1.024)).abs() < 1e-9);
    }
}
