//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a declarative, seed-derived schedule of fabric and
//! compute faults: bandwidth degradation windows and flaps on
//! [`crate::ResourceId`] links, fixed-latency NIC stalls, per-task compute
//! stragglers, and dropped/delayed control messages. Installing a plan
//! ([`crate::Sim::set_fault_plan`]) arms an injector inside the kernel;
//! every resource reservation and task delay then consults it.
//!
//! Determinism is by construction, not by locking: the simulation is
//! sequential, the plan is immutable once installed, and all randomness
//! happens when the plan is *generated* ([`FaultPlan::randomized`], driven
//! by the split-stream RNG in [`crate::rng_for`]) — replay of a given plan
//! is a pure function of the event order, so the same seed yields a
//! bit-identical trace every run.
//!
//! Zero cost when disabled: with no plan installed the only overhead is
//! one `Option` discriminant check per hook, and no virtual timestamp is
//! perturbed — baseline traces are unchanged bit-for-bit.

use std::collections::{BTreeMap, HashMap, VecDeque};

use rand::Rng;

use crate::resource::ResourceId;
use crate::rng::{derive_seed, rng_for};
use crate::task::TaskId;
use crate::time::{Dur, SimTime};

/// What to do with one matched control message (see
/// [`crate::SimHandle::take_ctrl_fault`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlFault {
    /// Silently drop the control message. The payload it announced is
    /// unaffected — this models a lost notification, the GASPI failure
    /// mode that timeouts plus `queue_purge` exist to recover from.
    Drop,
    /// Deliver the control message late by this much.
    Delay(Dur),
}

/// One perturbation window on a link resource.
#[derive(Clone, Copy, Debug)]
struct LinkWindow {
    from: SimTime,
    until: SimTime,
    /// Bandwidth scale in thousandths (1000 = nominal). `0` marks the
    /// link *dead* for health reporting; replay clamps it to 1 so an
    /// accidental transfer on a dead link is merely 1000× slow, never an
    /// unbounded hang.
    factor_milli: u32,
    /// Fixed extra delivery latency while the window is active.
    extra: Dur,
    /// Transfers starting inside the window are held until it closes.
    flap: bool,
    /// Window was expanded from a rank-kill event rather than declared
    /// on the link directly. Kill windows replay like any other dead
    /// window but are excluded from whole-run link health
    /// ([`FaultPlan::degraded_links`]): a rank that dies at t is not a
    /// degraded link at build time — it is a *live* rank until t, and
    /// the time-aware rank-kill health path owns that transition.
    rank_kill: bool,
}

impl LinkWindow {
    fn active(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }
}

/// Derive the deterministic key under which a control-message fault is
/// matched. Producers of control messages (e.g. the GPI-2 conduit's
/// notification posts) and fault plans must use the same `(domain, a, b)`
/// triple to meet: the domain string namespaces the protocol, `a`/`b`
/// identify the instance (typically destination rank and notification id).
pub fn fault_key(domain: &str, a: u64, b: u64) -> u64 {
    let mut k = 0xFA_07_5E_ED_u64;
    for &byte in domain.as_bytes() {
        k = derive_seed(k, byte as u64);
    }
    derive_seed(derive_seed(k, a), b)
}

/// A declarative, reproducible schedule of faults.
///
/// Build one with the `degrade_link` / `flap_link` / `stall_nic` /
/// `straggle` / `ctrl_fault` constructors (or sample a whole plan from a
/// seed with [`FaultPlan::randomized`]) and install it with
/// [`crate::Sim::set_fault_plan`] before the run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    // Ordered maps so a plan's Debug form (and hence chaos-test logs)
    // is deterministic for a given construction sequence.
    links: BTreeMap<u32, Vec<LinkWindow>>,
    stragglers: Vec<(String, u32)>,
    ctrl: BTreeMap<u64, Vec<CtrlFault>>,
    /// Mid-run rank deaths: rank → virtual kill time. The sim kernel has
    /// no notion of ranks; layers that do (the fabric) expand each entry
    /// into `[at, ∞)` dead windows over the rank's link resources via
    /// [`crate::SimHandle::arm_rank_kill_windows`].
    rank_kills: BTreeMap<u32, SimTime>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
            && self.stragglers.is_empty()
            && self.ctrl.is_empty()
            && self.rank_kills.is_empty()
    }

    /// Scale a link's bandwidth to `factor_milli`/1000 of nominal inside
    /// `[from, until)`. `factor_milli == 0` additionally marks the link
    /// dead for health reporting ([`FaultPlan::worst_factor_milli`]).
    pub fn degrade_link(
        mut self,
        res: ResourceId,
        from: SimTime,
        until: SimTime,
        factor_milli: u32,
    ) -> FaultPlan {
        assert!(factor_milli <= 1000, "degradation cannot exceed nominal bandwidth");
        self.links.entry(res.0).or_default().push(LinkWindow {
            from,
            until,
            factor_milli,
            extra: Dur::ZERO,
            flap: false,
            rank_kill: false,
        });
        self
    }

    /// Mark a link dead for the whole run: health reports factor 0 and
    /// degradation-aware layers must route around it.
    pub fn kill_link(self, res: ResourceId) -> FaultPlan {
        self.degrade_link(res, SimTime::ZERO, SimTime(u64::MAX), 0)
    }

    /// Block the link inside `[from, until)`: transfers that would start
    /// in the window are held until it closes (link flap / route
    /// reconvergence).
    pub fn flap_link(mut self, res: ResourceId, from: SimTime, until: SimTime) -> FaultPlan {
        self.links.entry(res.0).or_default().push(LinkWindow {
            from,
            until,
            factor_milli: 1000,
            extra: Dur::ZERO,
            flap: true,
            rank_kill: false,
        });
        self
    }

    /// Add `extra` fixed latency to every transfer starting inside
    /// `[from, until)` (a stalled NIC pipeline draining slowly).
    pub fn stall_nic(
        mut self,
        res: ResourceId,
        from: SimTime,
        until: SimTime,
        extra: Dur,
    ) -> FaultPlan {
        self.links.entry(res.0).or_default().push(LinkWindow {
            from,
            until,
            factor_milli: 1000,
            extra,
            flap: false,
            rank_kill: false,
        });
        self
    }

    /// Slow every `Ctx::delay` of tasks whose name starts with `prefix`
    /// by `factor_milli`/1000 (e.g. 1500 = a 1.5× compute straggler).
    pub fn straggle(mut self, prefix: impl Into<String>, factor_milli: u32) -> FaultPlan {
        assert!(factor_milli >= 1000, "a straggler can only be slower than nominal");
        self.stragglers.push((prefix.into(), factor_milli));
        self
    }

    /// Schedule `fault` for the next unconsumed control message matching
    /// `key` (see [`fault_key`]). Multiple faults on the same key are
    /// consumed in registration order, one per matching message.
    pub fn ctrl_fault(mut self, key: u64, fault: CtrlFault) -> FaultPlan {
        self.ctrl.entry(key).or_default().push(fault);
        self
    }

    /// Kill `rank` at virtual time `at`: from that instant every one of
    /// the rank's NICs and queues is dead. The kernel replays the death
    /// as `[at, ∞)` dead windows over the rank's link resources (expanded
    /// by the fabric, which knows the rank → resource map); health layers
    /// report the rank `Dead` only once the clock
    /// reaches `at` — a doomed rank is healthy until its kill time.
    /// Killing the same rank twice keeps the earlier time.
    pub fn kill_rank(mut self, rank: u32, at: SimTime) -> FaultPlan {
        let e = self.rank_kills.entry(rank).or_insert(at);
        *e = (*e).min(at);
        self
    }

    /// The virtual time at which the plan kills `rank`, if it does.
    pub fn kill_time(&self, rank: u32) -> Option<SimTime> {
        self.rank_kills.get(&rank).copied()
    }

    /// Every rank the plan kills, with its kill time (ordered by rank).
    pub fn rank_kills(&self) -> Vec<(u32, SimTime)> {
        self.rank_kills.iter().map(|(&r, &t)| (r, t)).collect()
    }

    /// The worst bandwidth factor (in thousandths of nominal) any window
    /// of this plan applies to `res`, over the whole run. 1000 means the
    /// link is never degraded; 0 means it is marked dead. This is the
    /// feed for `state_vec`-style health vectors.
    pub fn worst_factor_milli(&self, res: ResourceId) -> u32 {
        self.links
            .get(&res.0)
            .map(|ws| {
                ws.iter().filter(|w| !w.rank_kill).map(|w| w.factor_milli).min().unwrap_or(1000)
            })
            .unwrap_or(1000)
    }

    /// Every link the plan touches, with its worst factor over the run
    /// (ordered by resource id). Health vectors are built from this.
    /// Windows expanded from rank-kill events are excluded: rank death
    /// is reported time-aware through [`FaultPlan::kill_time`], not as a
    /// whole-run link degradation.
    pub fn degraded_links(&self) -> Vec<(ResourceId, u32)> {
        self.links
            .iter()
            .filter_map(|(&r, ws)| {
                let ws: Vec<_> = ws.iter().filter(|w| !w.rank_kill).collect();
                if ws.is_empty() {
                    return None;
                }
                Some((ResourceId(r), ws.iter().map(|w| w.factor_milli).min().unwrap_or(1000)))
            })
            .collect()
    }

    /// The straggle factor (milli) the plan assigns to a task name, if any.
    pub fn straggle_factor_milli(&self, name: &str) -> Option<u32> {
        self.stragglers.iter().find(|(p, _)| name.starts_with(p.as_str())).map(|&(_, f)| f)
    }

    /// Sample a randomized plan from a seed: for each candidate link,
    /// independent chances of a degradation window, a flap, and a stall
    /// inside `[0, horizon)`; optionally one straggler drawn from
    /// `straggle_prefixes`. All draws come from the split-stream RNG, so
    /// the same `(seed, links, prefixes, horizon)` yields the same plan.
    pub fn randomized(
        seed: u64,
        links: &[ResourceId],
        straggle_prefixes: &[String],
        horizon: Dur,
    ) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let h = horizon.as_nanos().max(2);
        for (i, &res) in links.iter().enumerate() {
            let mut rng = rng_for(seed, i as u64);
            if rng.gen_bool(0.4) {
                let from = rng.gen_range(0..h / 2);
                let until = rng.gen_range(from + 1..h + 1);
                let factor = rng.gen_range(200u32..951);
                plan = plan.degrade_link(res, SimTime(from), SimTime(until), factor);
            }
            if rng.gen_bool(0.2) {
                let from = rng.gen_range(0..h / 2);
                let until = rng.gen_range(from + 1..(from + h / 4).max(from + 2));
                plan = plan.flap_link(res, SimTime(from), SimTime(until));
            }
            if rng.gen_bool(0.2) {
                let from = rng.gen_range(0..h / 2);
                let until = rng.gen_range(from + 1..h + 1);
                let extra = Dur::nanos(rng.gen_range(100u64..50_000));
                plan = plan.stall_nic(res, SimTime(from), SimTime(until), extra);
            }
        }
        let mut rng = rng_for(seed, 0x57A6);
        if !straggle_prefixes.is_empty() && rng.gen_bool(0.5) {
            let which = rng.gen_range(0..straggle_prefixes.len());
            let factor = rng.gen_range(1100u32..2501);
            plan = plan.straggle(straggle_prefixes[which].clone(), factor);
        }
        plan
    }

    /// Optionally extend a plan with randomized mid-run rank kills: each
    /// rank in `1..nranks` is killed with probability 0.2 at a uniform
    /// time inside `[horizon/4, 3·horizon/4)`, capped at `nranks / 2`
    /// kills so a survivor majority always remains. Rank 0 is never
    /// sampled — a deterministic anchor for result collection. Draws
    /// come from a split RNG stream disjoint from
    /// [`FaultPlan::randomized`]'s, so chaining this onto a randomized
    /// plan leaves the link/straggler sample for the same seed unchanged
    /// — existing seeded chaos suites replay bit-identically unless a
    /// caller opts in.
    pub fn randomized_rank_kills(mut self, seed: u64, nranks: u32, horizon: Dur) -> FaultPlan {
        let h = horizon.as_nanos().max(4);
        let mut killed = 0u32;
        for rank in 1..nranks {
            let mut rng = rng_for(seed, derive_seed(0x4B11, rank as u64));
            if killed >= nranks / 2 {
                break;
            }
            if rng.gen_bool(0.2) {
                let at = rng.gen_range(h / 4..h * 3 / 4);
                self = self.kill_rank(rank, SimTime(at));
                killed += 1;
            }
        }
        self
    }
}

/// Combined perturbation for one reservation: hold the start until
/// `not_before`, scale bandwidth by `factor_milli`/1000, add `extra`
/// delivery latency.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Perturb {
    pub(crate) not_before: SimTime,
    pub(crate) factor_milli: u32,
    pub(crate) extra: Dur,
}

/// Kernel-side injector state: the installed plan plus replay bookkeeping.
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Per-task straggle factor (milli), resolved once at spawn.
    task_factor: HashMap<u32, u32>,
    /// Remaining control-fault charges, consumed FIFO per key.
    ctrl_left: HashMap<u64, VecDeque<CtrlFault>>,
    /// Perturbations applied so far (diagnostics / tests).
    pub(crate) injected: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        let ctrl_left = plan.ctrl.iter().map(|(&k, v)| (k, v.iter().copied().collect())).collect();
        FaultState { plan, task_factor: HashMap::new(), ctrl_left, injected: 0 }
    }

    /// The installed plan (immutable once armed, except for rank-kill
    /// window expansion at fabric build — see
    /// [`FaultState::extend_kill_windows`]).
    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Expand rank-kill events into `[at, ∞)` dead windows over concrete
    /// link resources. Called by the fabric (via
    /// [`crate::SimHandle::arm_rank_kill_windows`]) at build time, before
    /// any transfer consults the plan, so determinism is unaffected: the
    /// expansion is itself a pure function of the plan and the topology.
    pub(crate) fn extend_kill_windows(&mut self, windows: &[(ResourceId, SimTime)]) {
        for &(res, at) in windows {
            self.plan.links.entry(res.0).or_default().push(LinkWindow {
                from: at,
                until: SimTime(u64::MAX),
                factor_milli: 0,
                extra: Dur::ZERO,
                flap: false,
                rank_kill: true,
            });
        }
    }

    /// Resolve and cache the straggle factor for a task at spawn time.
    pub(crate) fn resolve_task(&mut self, task: TaskId, name: &str) {
        if let Some(f) = self.plan.straggle_factor_milli(name) {
            self.task_factor.insert(task.0, f);
        }
    }

    /// Scale a task-local compute delay by the task's straggle factor.
    pub(crate) fn scale_delay(&self, task: TaskId, d: Dur) -> Dur {
        match self.task_factor.get(&task.0) {
            Some(&f) => Dur::nanos((d.as_nanos() as u128 * f as u128 / 1000) as u64),
            None => d,
        }
    }

    /// The perturbation active for a reservation on `res` whose earliest
    /// start estimate is `start`, or `None` when no window matches.
    pub(crate) fn perturb(&mut self, res: ResourceId, start: SimTime) -> Option<Perturb> {
        let ws = self.plan.links.get(&res.0)?;
        let mut p = Perturb { not_before: SimTime::ZERO, factor_milli: 1000, extra: Dur::ZERO };
        let mut hit = false;
        for w in ws {
            if !w.active(start) {
                continue;
            }
            hit = true;
            if w.flap {
                p.not_before = p.not_before.max(w.until);
            }
            // Dead links (factor 0) replay as 1000× slow, never infinite.
            p.factor_milli = p.factor_milli.min(w.factor_milli.max(1));
            p.extra += w.extra;
        }
        if hit {
            self.injected += 1;
            Some(p)
        } else {
            None
        }
    }

    /// Consume one control-fault charge for `key`, if any remain.
    pub(crate) fn take_ctrl(&mut self, key: u64) -> Option<CtrlFault> {
        let f = self.ctrl_left.get_mut(&key)?.pop_front();
        if f.is_some() {
            self.injected += 1;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> ResourceId {
        ResourceId(i)
    }

    #[test]
    fn worst_factor_reports_dead_and_nominal_links() {
        let plan =
            FaultPlan::new().degrade_link(rid(0), SimTime(0), SimTime(100), 400).kill_link(rid(1));
        assert_eq!(plan.worst_factor_milli(rid(0)), 400);
        assert_eq!(plan.worst_factor_milli(rid(1)), 0);
        assert_eq!(plan.worst_factor_milli(rid(2)), 1000);
    }

    #[test]
    fn perturb_combines_overlapping_windows() {
        let plan = FaultPlan::new()
            .degrade_link(rid(0), SimTime(0), SimTime(100), 500)
            .flap_link(rid(0), SimTime(10), SimTime(40))
            .stall_nic(rid(0), SimTime(0), SimTime(100), Dur::nanos(7));
        let mut st = FaultState::new(plan);
        let p = st.perturb(rid(0), SimTime(20)).unwrap();
        assert_eq!(p.not_before, SimTime(40));
        assert_eq!(p.factor_milli, 500);
        assert_eq!(p.extra, Dur::nanos(7));
        // Outside every window: no perturbation at all.
        assert!(st.perturb(rid(0), SimTime(200)).is_none());
        assert_eq!(st.injected, 1);
    }

    #[test]
    fn dead_link_replays_finite() {
        let mut st = FaultState::new(FaultPlan::new().kill_link(rid(3)));
        let p = st.perturb(rid(3), SimTime(5)).unwrap();
        assert_eq!(p.factor_milli, 1, "dead link must replay 1000x slow, not hang");
    }

    #[test]
    fn ctrl_faults_consume_fifo_per_key() {
        let k = fault_key("gpi-notify", 3, 17);
        let plan = FaultPlan::new()
            .ctrl_fault(k, CtrlFault::Drop)
            .ctrl_fault(k, CtrlFault::Delay(Dur::nanos(50)));
        let mut st = FaultState::new(plan);
        assert_eq!(st.take_ctrl(k), Some(CtrlFault::Drop));
        assert_eq!(st.take_ctrl(k), Some(CtrlFault::Delay(Dur::nanos(50))));
        assert_eq!(st.take_ctrl(k), None, "charges are finite");
        assert_eq!(st.take_ctrl(fault_key("gpi-notify", 3, 18)), None);
    }

    #[test]
    fn fault_key_separates_domains_and_instances() {
        assert_ne!(fault_key("a", 0, 0), fault_key("b", 0, 0));
        assert_ne!(fault_key("a", 1, 0), fault_key("a", 0, 1));
    }

    #[test]
    fn straggle_matches_by_prefix_at_spawn() {
        let plan = FaultPlan::new().straggle("diomp-rank1", 1500);
        let mut st = FaultState::new(plan);
        st.resolve_task(TaskId(0), "diomp-rank1");
        st.resolve_task(TaskId(1), "diomp-rank2");
        assert_eq!(st.scale_delay(TaskId(0), Dur::nanos(1000)), Dur::nanos(1500));
        assert_eq!(st.scale_delay(TaskId(1), Dur::nanos(1000)), Dur::nanos(1000));
    }

    #[test]
    fn rank_kills_keep_earliest_time_and_arm_the_plan() {
        let plan = FaultPlan::new()
            .kill_rank(3, SimTime(500))
            .kill_rank(3, SimTime(900))
            .kill_rank(1, SimTime(200));
        assert!(!plan.is_empty(), "a kill-only plan must arm the injector");
        assert_eq!(plan.kill_time(3), Some(SimTime(500)), "earlier kill wins");
        assert_eq!(plan.kill_time(0), None);
        assert_eq!(plan.rank_kills(), vec![(1, SimTime(200)), (3, SimTime(500))]);
    }

    #[test]
    fn kill_windows_replay_dead_but_hide_from_link_health() {
        let mut st = FaultState::new(FaultPlan::new().kill_rank(2, SimTime(100)));
        st.extend_kill_windows(&[(rid(7), SimTime(100))]);
        // Before the kill instant the link is untouched.
        assert!(st.perturb(rid(7), SimTime(50)).is_none());
        // After it, transfers replay 1000× slow (finite, like kill_link).
        assert_eq!(st.perturb(rid(7), SimTime(150)).unwrap().factor_milli, 1);
        // Whole-run link health never sees the expansion: the rank was
        // live until t=100, so build-time health must not report a dead
        // link — only the time-aware rank-kill path reports the death.
        assert_eq!(st.plan().worst_factor_milli(rid(7)), 1000);
        assert!(st.plan().degraded_links().is_empty());
    }

    #[test]
    fn randomized_rank_kills_replay_by_seed_and_spare_rank_zero() {
        let links: Vec<ResourceId> = (0..8).map(rid).collect();
        let base = FaultPlan::randomized(7, &links, &[], Dur::millis(10.0));
        let a = base.clone().randomized_rank_kills(7, 8, Dur::millis(10.0));
        let b = base.clone().randomized_rank_kills(7, 8, Dur::millis(10.0));
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same kills");
        // Opt-in: not chaining the sampler leaves the plan untouched.
        assert!(base.rank_kills().is_empty());
        // Over many seeds: rank 0 is never killed and a majority survives.
        let mut any = false;
        for seed in 0..64u64 {
            let p = FaultPlan::new().randomized_rank_kills(seed, 8, Dur::millis(10.0));
            let kills = p.rank_kills();
            any |= !kills.is_empty();
            assert!(p.kill_time(0).is_none(), "rank 0 is the deterministic anchor");
            assert!(kills.len() as u32 <= 4, "at most nranks/2 kills");
        }
        assert!(any, "the sampler should kill something across 64 seeds");
    }

    #[test]
    fn randomized_plans_are_seed_deterministic() {
        let links: Vec<ResourceId> = (0..8).map(rid).collect();
        let prefixes = vec!["rank".to_string()];
        let a = FaultPlan::randomized(42, &links, &prefixes, Dur::millis(10.0));
        let b = FaultPlan::randomized(42, &links, &prefixes, Dur::millis(10.0));
        let c = FaultPlan::randomized(43, &links, &prefixes, Dur::millis(10.0));
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same plan");
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "different seed, different plan");
        assert!(!a.is_empty() || !c.is_empty(), "plans should usually inject something");
    }
}
