//! Execution trace records for determinism testing and debugging.

use crate::time::SimTime;

/// One trace record: who did what, when (virtual time).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceRec {
    /// Virtual timestamp.
    pub t: SimTime,
    /// Task name or subsystem label.
    pub who: String,
    /// Event description.
    pub what: String,
}

impl TraceRec {
    pub(crate) fn new(t: SimTime, who: impl Into<String>, what: impl Into<String>) -> Self {
        TraceRec { t, who: who.into(), what: what.into() }
    }
}

impl std::fmt::Display for TraceRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.t, self.who, self.what)
    }
}
