//! Virtual time: nanosecond-resolution simulation clock.
//!
//! All timing in the simulator is expressed as [`SimTime`] (an absolute
//! instant) and [`Dur`] (a span). Both are plain `u64` nanosecond counts so
//! arithmetic is exact, ordering is total, and traces are reproducible
//! bit-for-bit across runs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the virtual clock, in nanoseconds since
/// simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds (lossy, for reporting).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in milliseconds (lossy, for reporting).
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in seconds (lossy, for reporting).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Span from `earlier` to `self`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.checked_sub(earlier.0).expect("SimTime::since: negative span"))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Dur {
    /// A zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> Dur {
        Dur(n)
    }

    /// Construct from (possibly fractional) microseconds, rounding to the
    /// nearest nanosecond.
    #[inline]
    pub fn micros(us: f64) -> Dur {
        debug_assert!(us >= 0.0, "negative duration");
        Dur((us * 1_000.0).round() as u64)
    }

    /// Construct from (possibly fractional) milliseconds.
    #[inline]
    pub fn millis(ms: f64) -> Dur {
        debug_assert!(ms >= 0.0, "negative duration");
        Dur((ms * 1_000_000.0).round() as u64)
    }

    /// Construct from (possibly fractional) seconds.
    #[inline]
    pub fn secs(s: f64) -> Dur {
        debug_assert!(s >= 0.0, "negative duration");
        Dur((s * 1_000_000_000.0).round() as u64)
    }

    /// Span in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span in microseconds (lossy, for reporting).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span in milliseconds (lossy, for reporting).
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Span in seconds (lossy, for reporting).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction of spans.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Dur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    #[inline]
    fn sub(self, other: SimTime) -> Dur {
        self.since(other)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, d: Dur) -> Dur {
        Dur(self.0 + d.0)
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        SimTime(self.0).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + Dur::micros(5.0);
        assert_eq!(t.nanos(), 5_000);
        assert_eq!((t + Dur::nanos(500)).since(t), Dur::nanos(500));
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(Dur::micros(1.5).as_nanos(), 1_500);
        assert_eq!(Dur::millis(2.0).as_nanos(), 2_000_000);
        assert_eq!(Dur::secs(1.0).as_nanos(), 1_000_000_000);
        assert!((Dur::nanos(2_500).as_us() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime(12)), "12ns");
        assert_eq!(format!("{}", SimTime(12_000)), "12.000us");
        assert_eq!(format!("{}", SimTime(12_000_000)), "12.000ms");
        assert_eq!(format!("{}", SimTime(12_000_000_000)), "12.000s");
    }

    #[test]
    #[should_panic(expected = "negative span")]
    fn since_panics_on_negative() {
        let _ = SimTime(5).since(SimTime(10));
    }

    #[test]
    fn max_and_ordering() {
        assert_eq!(SimTime(3).max(SimTime(7)), SimTime(7));
        assert!(SimTime(3) < SimTime(7));
        assert!(Dur(3) < Dur(7));
    }

    #[test]
    fn saturating_sub() {
        assert_eq!(Dur(5).saturating_sub(Dur(9)), Dur::ZERO);
        assert_eq!(Dur(9).saturating_sub(Dur(5)), Dur(4));
    }
}
