//! Deterministic random number generation.
//!
//! Everything in the simulator must be reproducible, so all randomness is
//! derived from explicit seeds via a splitmix-style mixer. We avoid
//! thread-local or time-based seeding entirely.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a child seed from a parent seed and a stream index. Used to give
/// every rank its own independent, deterministic RNG stream.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    // splitmix64 finalizer over the combined value.
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG for a given (seed, stream) pair.
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = rng_for(42, 7);
        let mut b = rng_for(42, 7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = rng_for(42, 0);
        let mut b = rng_for(42, 1);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn derive_seed_mixes_both_arguments() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
    }
}
