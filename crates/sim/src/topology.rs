//! Cluster topology: nodes, devices, links, and path classification.
//!
//! A [`Topology`] instantiates the *shared* fabric resources of a cluster
//! (NIC ports, intra-node GPU fabric ports, PCIe host links, host shared
//! memory) as FIFO bandwidth resources in the simulation kernel.
//! Device-private resources (HBM, copy engines) are created by
//! `diomp-device` per device.

use crate::kernel::SimHandle;
use crate::platform::PlatformSpec;
use crate::resource::ResourceId;
use crate::time::Dur;

/// How many nodes / devices a simulated cluster has.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Hardware + software parameter set (platform A/B/C or custom).
    pub platform: PlatformSpec,
    /// Number of nodes in the job.
    pub nodes: usize,
    /// Devices used per node (≤ `platform.gpus_per_node`).
    pub gpus_per_node: usize,
}

impl ClusterSpec {
    /// A cluster on `platform` using every GPU of `nodes` nodes.
    pub fn full_nodes(platform: PlatformSpec, nodes: usize) -> Self {
        let gpus = platform.gpus_per_node;
        ClusterSpec { platform, nodes, gpus_per_node: gpus }
    }

    /// A cluster with a total of `total_gpus`, filling nodes in order.
    /// The last node may be partially used.
    pub fn with_total_gpus(platform: PlatformSpec, total_gpus: usize) -> Self {
        let per = platform.gpus_per_node;
        let nodes = total_gpus.div_ceil(per);
        ClusterSpec { platform, nodes, gpus_per_node: per.min(total_gpus) }
    }

    /// Total devices in the job.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Relative placement of two devices, deciding the transfer path
/// (paper §3.2 "topology-aware, hierarchical communication framework").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Same device: a local D2D copy.
    SameDevice,
    /// Same node: candidate for GPUDirect P2P or IPC.
    SameNode,
    /// Different nodes: must cross the network.
    InterNode,
}

/// Identifies a device by `(node, local index)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DevLoc {
    /// Node index.
    pub node: usize,
    /// Device index within the node.
    pub gpu: usize,
}

/// Instantiated fabric resources for one cluster.
pub struct Topology {
    /// The cluster this topology was built for.
    pub spec: ClusterSpec,
    /// `[node][nic]` — NIC transmit ports (serialisation point for
    /// inter-node traffic).
    nic_tx: Vec<Vec<ResourceId>>,
    /// `[node][gpu]` — intra-node GPU fabric port (NVLink / xGMI).
    gpu_port: Vec<Vec<ResourceId>>,
    /// `[node][gpu]` — PCIe (or C2C) host link per device.
    pcie: Vec<Vec<ResourceId>>,
    /// `[node]` — host shared-memory bandwidth (for IPC staging).
    shm: Vec<ResourceId>,
}

impl Topology {
    /// Instantiate all fabric resources in the kernel.
    pub fn build(h: &SimHandle, spec: ClusterSpec) -> Topology {
        let p = &spec.platform;
        let net_lat = Dur::micros(p.net.latency_us);
        let link_lat = Dur::micros(p.intra.gpu_link_lat_us);
        let pcie_lat = Dur::micros(p.intra.pcie_lat_us);

        let mut nic_tx = Vec::with_capacity(spec.nodes);
        let mut gpu_port = Vec::with_capacity(spec.nodes);
        let mut pcie = Vec::with_capacity(spec.nodes);
        let mut shm = Vec::with_capacity(spec.nodes);
        for _ in 0..spec.nodes {
            nic_tx.push(
                (0..p.net.nics_per_node).map(|_| h.new_resource(p.net.nic_gbps, net_lat)).collect(),
            );
            gpu_port.push(
                (0..spec.gpus_per_node)
                    .map(|_| h.new_resource(p.intra.gpu_link_gbps, link_lat))
                    .collect(),
            );
            pcie.push(
                (0..spec.gpus_per_node)
                    .map(|_| h.new_resource(p.intra.pcie_gbps, pcie_lat))
                    .collect(),
            );
            shm.push(h.new_resource(p.intra.shm_gbps, Dur::micros(p.intra.shm_lat_us)));
        }
        Topology { spec, nic_tx, gpu_port, pcie, shm }
    }

    /// Classify the path between two devices.
    pub fn placement(&self, a: DevLoc, b: DevLoc) -> Placement {
        if a == b {
            Placement::SameDevice
        } else if a.node == b.node {
            Placement::SameNode
        } else {
            Placement::InterNode
        }
    }

    /// The NIC a device uses for inter-node traffic. Devices are striped
    /// across the node's NICs the way Cray MPICH / NCCL pin one NIC per
    /// GPU on 4-NIC nodes.
    pub fn nic_for(&self, dev: DevLoc) -> ResourceId {
        let nics = &self.nic_tx[dev.node];
        nics[dev.gpu % nics.len()]
    }

    /// The intra-node fabric port (NVLink / xGMI) of a device.
    pub fn gpu_port(&self, dev: DevLoc) -> ResourceId {
        self.gpu_port[dev.node][dev.gpu]
    }

    /// The PCIe / C2C host link of a device.
    pub fn pcie(&self, dev: DevLoc) -> ResourceId {
        self.pcie[dev.node][dev.gpu]
    }

    /// Host shared-memory bandwidth resource of a node.
    pub fn shm(&self, node: usize) -> ResourceId {
        self.shm[node]
    }

    /// Number of NICs per node.
    pub fn nics_per_node(&self) -> usize {
        self.nic_tx[0].len()
    }

    /// Device location for a flat device index (row-major by node).
    pub fn dev_loc(&self, flat: usize) -> DevLoc {
        DevLoc { node: flat / self.spec.gpus_per_node, gpu: flat % self.spec.gpus_per_node }
    }

    /// Flat device index for a location.
    pub fn flat_index(&self, loc: DevLoc) -> usize {
        loc.node * self.spec.gpus_per_node + loc.gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;

    fn tiny() -> ClusterSpec {
        ClusterSpec { platform: PlatformSpec::platform_a(), nodes: 2, gpus_per_node: 4 }
    }

    #[test]
    fn placement_classification() {
        let sim = crate::Sim::new();
        let topo = Topology::build(&sim.handle(), tiny());
        let a = DevLoc { node: 0, gpu: 0 };
        let b = DevLoc { node: 0, gpu: 1 };
        let c = DevLoc { node: 1, gpu: 0 };
        assert_eq!(topo.placement(a, a), Placement::SameDevice);
        assert_eq!(topo.placement(a, b), Placement::SameNode);
        assert_eq!(topo.placement(a, c), Placement::InterNode);
    }

    #[test]
    fn flat_index_roundtrip() {
        let sim = crate::Sim::new();
        let topo = Topology::build(&sim.handle(), tiny());
        for flat in 0..topo.spec.total_gpus() {
            assert_eq!(topo.flat_index(topo.dev_loc(flat)), flat);
        }
    }

    #[test]
    fn nic_striping_covers_all_nics() {
        let sim = crate::Sim::new();
        let topo = Topology::build(&sim.handle(), tiny());
        let nics: std::collections::HashSet<_> =
            (0..4).map(|g| topo.nic_for(DevLoc { node: 0, gpu: g })).collect();
        assert_eq!(nics.len(), 4, "4 GPUs on 4 NICs must not share");
    }

    #[test]
    fn with_total_gpus_rounds_nodes_up() {
        let spec = ClusterSpec::with_total_gpus(PlatformSpec::platform_a(), 10);
        assert_eq!(spec.nodes, 3);
        assert_eq!(spec.gpus_per_node, 4);
    }
}
