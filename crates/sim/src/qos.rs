//! Weighted-fair-queuing link contention (DESIGN.md D15).
//!
//! The closed-form FIFO model in [`crate::resource`] serialises transfers:
//! two chunks racing for one NIC take twice as long, but a chunk never
//! *shares* the wire — whoever reserved first owns the link outright until
//! it departs. That is the right model for a single job whose own chunks
//! are pipelined back-to-back, and it is wrong for a multi-tenant fabric
//! where chunks from different jobs are genuinely in flight at once and
//! the switch arbitrates per-packet.
//!
//! This module adds the multi-tenant model as an *armed* subsystem,
//! mirroring the fault injector ([`crate::FaultPlan`]): disarmed (the
//! default), the flow-tagged reservation path
//! [`crate::SimHandle::transfer_qos`] collapses to exactly the closed-form
//! FIFO calls it replaced, so single-tenant runs replay bit-identically to
//! pre-contention traces. Armed ([`crate::Sim::enable_contention`]), each
//! resource becomes a fluid weighted-fair queue:
//!
//! * every flow (≈ one communicator of one job, see `diomp-xccl`) keeps a
//!   FIFO queue per link; only the *head* of each queue is in service;
//! * backlogged heads share the link bandwidth in proportion to their
//!   flow's QoS weight (`rate_i = bw · w_i / Σ w_backlogged`);
//! * a head's remaining service time is re-priced whenever the set of
//!   backlogged flows on its link changes. Each re-pricing bumps the
//!   link's generation counter and schedules a fresh head-finish action;
//!   actions carrying a stale generation are no-ops, so exactly one
//!   pricing is live per link at any instant.
//!
//! With a single backlogged flow the fluid share is the full bandwidth and
//! the head finish is `ceil(bytes / bw)` — the identical integer arithmetic
//! of the closed form — so arming contention under a lone job shifts no
//! completion time (the property tests assert this exactly).
//!
//! Only flow-tagged transfers take part in fair sharing. Untagged traffic
//! (RMA protocol messages, LL collective hops, handler occupancy) keeps the
//! serial closed form; see DESIGN.md D15 for the scope rationale.

use std::collections::{BTreeMap, VecDeque};

use crate::event::EventId;
use crate::kernel::{KState, SimHandle};
use crate::resource::ResourceId;
use crate::time::{Dur, SimTime};

/// A head with at most this much service left (in wire bytes) is retired.
/// Head-finish actions land on whole-nanosecond boundaries (virtual time
/// is integral), so the scheduled instant can over-serve the head by up to
/// one nanosecond of bandwidth; the tolerance absorbs the float residue.
const SERVICE_EPS: f64 = 1e-6;

/// QoS service class of a job (and of the flows its communicators open).
///
/// The class fixes the flow's weight in the per-link weighted fair queue:
/// under contention a backlogged flow receives bandwidth proportional to
/// [`QosClass::weight_milli`]. An idle link always serves its lone flow at
/// full rate regardless of class (the queue is work-conserving).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Latency-sensitive foreground job: 4× the `Normal` share.
    High,
    /// Default best-effort share.
    #[default]
    Normal,
    /// Background/scavenger job: ¼ of the `Normal` share.
    Low,
}

impl QosClass {
    /// WFQ weight in milli-units (`Normal` ≡ 1000).
    pub const fn weight_milli(self) -> u32 {
        match self {
            QosClass::High => 4000,
            QosClass::Normal => 1000,
            QosClass::Low => 250,
        }
    }
}

/// Handle to a registered traffic flow (see [`crate::SimHandle::new_flow`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowId(pub(crate) u32);

impl FlowId {
    /// Dense index of this flow, stable for the life of the sim.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Aggregate delivery statistics for one flow, across every link it used.
///
/// `bytes / (last_depart - first_start)` is the flow's achieved wire
/// bandwidth over its active span — the quantity the work-conservation
/// gate sums across flows and compares against link capacity.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowStats {
    /// Logical payload bytes fully delivered so far.
    pub bytes: u64,
    /// When the flow's first transfer was submitted to a link.
    pub first_start: Option<SimTime>,
    /// When the flow's latest transfer departed its link.
    pub last_depart: SimTime,
}

/// Per-flow registration: WFQ weight plus delivery statistics.
#[derive(Debug)]
pub(crate) struct FlowSlot {
    pub(crate) weight_milli: u32,
    pub(crate) stats: FlowStats,
}

/// One queued (head = in-service) transfer on a link.
#[derive(Debug)]
struct QTransfer {
    /// Wire bytes of service still owed (fault-scaled if a window matched).
    remaining: f64,
    /// Logical payload bytes, credited to the flow's stats on delivery.
    logical: u64,
    /// Completed at `depart + latency + extra`.
    ev: EventId,
    /// Fault-injected extra delivery latency.
    extra: Dur,
}

/// WFQ state of one link: per-flow FIFO queues plus the fluid clock.
#[derive(Debug, Default)]
struct LinkState {
    /// Last instant fluid service was accrued up to.
    last_t: SimTime,
    /// Bumped on every queue change; stale head-finish actions no-op.
    gen: u64,
    /// Flow index → FIFO of queued transfers. Only the front of each
    /// queue receives service. `BTreeMap` for deterministic iteration.
    queues: BTreeMap<u32, VecDeque<QTransfer>>,
}

impl LinkState {
    /// Sum of weights of flows with a backlogged queue.
    fn backlogged_weight(&self, flows: &[FlowSlot]) -> u64 {
        self.queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(f, _)| flows[*f as usize].weight_milli as u64)
            .sum()
    }

    /// Accrue fluid service on every backlogged head from `last_t` to `now`.
    fn advance(&mut self, now: SimTime, bytes_per_ns: f64, flows: &[FlowSlot]) {
        let dt = (now - self.last_t).as_nanos() as f64;
        self.last_t = now;
        if dt <= 0.0 {
            return;
        }
        let total_w = self.backlogged_weight(flows);
        if total_w == 0 {
            return;
        }
        for (f, q) in self.queues.iter_mut() {
            if let Some(head) = q.front_mut() {
                let share = bytes_per_ns * flows[*f as usize].weight_milli as f64 / total_w as f64;
                head.remaining -= dt * share;
            }
        }
    }

    /// Pop every head that has been fully served. Empty queues are removed
    /// so a drained flow stops counting toward the backlogged weight.
    fn take_finished(&mut self) -> Vec<(u32, QTransfer)> {
        let mut done = Vec::new();
        self.queues.retain(|f, q| {
            while q.front().is_some_and(|h| h.remaining <= SERVICE_EPS) {
                done.push((*f, q.pop_front().expect("front vanished")));
            }
            !q.is_empty()
        });
        done
    }

    /// Next head-finish instant at current shares, if any head is in
    /// service. Always at least 1 ns out so progress is guaranteed.
    fn next_finish(&self, now: SimTime, bytes_per_ns: f64, flows: &[FlowSlot]) -> Option<SimTime> {
        let total_w = self.backlogged_weight(flows);
        if total_w == 0 {
            return None;
        }
        let mut best: Option<f64> = None;
        for (f, q) in &self.queues {
            if let Some(head) = q.front() {
                let share = bytes_per_ns * flows[*f as usize].weight_milli as f64 / total_w as f64;
                let t = head.remaining.max(0.0) / share;
                best = Some(best.map_or(t, |b: f64| b.min(t)));
            }
        }
        best.map(|t| now + Dur::nanos((t.ceil() as u64).max(1)))
    }
}

/// Armed contention subsystem: WFQ state for every link that has seen
/// flow-tagged traffic. Boxed behind an `Option` on the kernel state so
/// disarmed runs pay one branch, exactly like the fault injector.
#[derive(Debug, Default)]
pub(crate) struct ContentionState {
    links: BTreeMap<usize, LinkState>,
}

impl SimHandle {
    /// Register a traffic flow with a WFQ weight in milli-units
    /// (`1000` = one `Normal` share; see [`QosClass::weight_milli`]).
    ///
    /// Flows exist whether or not contention is armed: disarmed, the tag
    /// only routes delivery statistics ([`SimHandle::flow_stats`]).
    pub fn new_flow(&self, weight_milli: u32) -> FlowId {
        assert!(weight_milli > 0, "flow weight must be positive");
        let mut st = self.kernel.state.lock();
        if let Some(idx) = st.free_flows.pop() {
            let slot = &mut st.flows[idx as usize];
            slot.weight_milli = weight_milli;
            slot.stats = FlowStats::default();
            return FlowId(idx);
        }
        let id = FlowId(st.flows.len() as u32);
        st.flows.push(FlowSlot { weight_milli, stats: FlowStats::default() });
        id
    }

    /// Return a flow's slot to the free list for reuse by a later
    /// [`SimHandle::new_flow`]. The flow's accumulated statistics are
    /// discarded, so callers that report per-flow bandwidth must read
    /// [`SimHandle::flow_stats`] *before* releasing. `FlowId` carries no
    /// generation tag: the caller must not use the handle after release.
    pub fn release_flow(&self, flow: FlowId) {
        let mut st = self.kernel.state.lock();
        debug_assert!(!st.free_flows.contains(&flow.0), "double release of flow {}", flow.0);
        if let Some(c) = st.contention.as_ref() {
            debug_assert!(
                c.links.values().all(|ls| ls.queues.get(&flow.0).is_none_or(|q| q.is_empty())),
                "released flow {} still backlogged on an armed link",
                flow.0
            );
        }
        st.free_flows.push(flow.0);
    }

    /// Number of live (allocated, not yet released) flow slots.
    pub fn flows_in_use(&self) -> usize {
        let st = self.kernel.state.lock();
        st.flows.len() - st.free_flows.len()
    }

    /// Delivery statistics accumulated by a flow so far.
    pub fn flow_stats(&self, flow: FlowId) -> FlowStats {
        self.kernel.state.lock().flows[flow.index()].stats
    }

    /// Is weighted-fair-queuing contention armed on this sim?
    pub fn contention_armed(&self) -> bool {
        self.kernel.state.lock().contention.is_some()
    }

    /// Reserve a flow-tagged transfer of `bytes` on `res`, with the
    /// payload ready at `at`. Returns an event that completes when the
    /// last byte arrives at the far side; the caller waits on it and
    /// frees it, as with any event.
    ///
    /// Disarmed (the default) this is *call-for-call identical* to
    /// `transfer_from` + `new_event` + `complete_at(ev, tr.arrive)` — the
    /// sequence it replaced in the collective engines — so traces are
    /// bit-identical to pre-contention builds. Armed, the transfer joins
    /// its flow's FIFO on the link and is served at the flow's fair share
    /// (module docs).
    pub fn transfer_qos(&self, res: ResourceId, flow: FlowId, at: SimTime, bytes: u64) -> EventId {
        let mut st = self.kernel.state.lock();
        if st.contention.is_none() {
            // Disarmed fast path: replicate the exact legacy call sequence
            // (one queue push, same closure, same event allocation order).
            let at = at.max(st.now());
            let tr = self.transfer_locked(&mut st, res, at, bytes);
            let ev = st.events.alloc();
            let h = self.clone();
            let t = tr.arrive.max(st.now());
            self.push_action(&mut st, t, Box::new(move |_| h.complete(ev)));
            let fs = &mut st.flows[flow.index()];
            fs.stats.bytes += bytes;
            fs.stats.first_start = Some(fs.stats.first_start.unwrap_or(tr.start).min(tr.start));
            fs.stats.last_depart = fs.stats.last_depart.max(tr.depart);
            return ev;
        }
        // Armed: resolve any fault perturbation once at issue time (same
        // policy as the closed form — the window matching the projected
        // service start applies to the whole transfer), then hand the
        // wire bytes to the link's fair queue at the ready instant.
        let now = st.now();
        let at = at.max(now);
        let ev = st.events.alloc();
        let mut wire = bytes as f64;
        let mut extra = Dur::ZERO;
        let mut ready = at;
        if st.fault.is_some() {
            let est = at.max(st.resources[res.index()].free_at());
            if let Some(p) = st.fault.as_mut().expect("checked").perturb(res, est) {
                wire = bytes as f64 * 1000.0 / p.factor_milli.max(1) as f64;
                extra = p.extra;
                ready = at.max(p.not_before);
            }
        }
        st.resources[res.index()].note_bytes(bytes);
        let h = self.clone();
        self.push_action(
            &mut st,
            ready,
            Box::new(move |_| h.qos_enqueue(res, flow, wire, bytes, extra, ev)),
        );
        ev
    }

    /// Armed-path enqueue, run as a scheduled action at the transfer's
    /// ready instant: accrue service to date, join the flow's FIFO, and
    /// re-price the link.
    fn qos_enqueue(
        &self,
        res: ResourceId,
        flow: FlowId,
        wire: f64,
        logical: u64,
        extra: Dur,
        ev: EventId,
    ) {
        let mut st = self.kernel.state.lock();
        let now = st.now();
        {
            let s = &mut *st;
            let c = s.contention.as_mut().expect("qos_enqueue with contention disarmed");
            let ls = c.links.entry(res.index()).or_default();
            let fs = &mut s.flows[flow.index()];
            fs.stats.first_start = Some(fs.stats.first_start.unwrap_or(now).min(now));
            // Re-pricing happens only when the backlogged *flow set*
            // changes. Queuing behind an already-backlogged flow alters
            // no share: the live head pricing stands, and a lone flow's
            // transfers keep the closed form's single-`ceil` arithmetic
            // (re-pricing mid-service would split one service interval
            // into separately-rounded segments and drift off it).
            let was_backlogged = ls.queues.get(&flow.0).is_some_and(|q| !q.is_empty());
            if was_backlogged {
                ls.queues
                    .get_mut(&flow.0)
                    .expect("backlogged queue vanished")
                    .push_back(QTransfer { remaining: wire, logical, ev, extra });
                return; // shares unchanged; no re-pricing
            }
            let bpns = s.resources[res.index()].bytes_per_ns();
            ls.advance(now, bpns, &s.flows);
            ls.queues.entry(flow.0).or_default().push_back(QTransfer {
                remaining: wire,
                logical,
                ev,
                extra,
            });
            ls.gen += 1;
        }
        self.qos_reschedule(&mut st, res);
    }

    /// Head-finish action for generation `gen` of `res`'s link. Stale
    /// generations (the queue changed since this action was scheduled)
    /// fall through without touching anything.
    pub(crate) fn qos_service(&self, res: ResourceId, gen: u64) {
        let mut st = self.kernel.state.lock();
        let now = st.now();
        let mut completions: Vec<(EventId, SimTime)> = Vec::new();
        {
            let s = &mut *st;
            let Some(c) = s.contention.as_mut() else { return };
            let Some(ls) = c.links.get_mut(&res.index()) else { return };
            if ls.gen != gen {
                return;
            }
            let bpns = s.resources[res.index()].bytes_per_ns();
            let latency = s.resources[res.index()].latency();
            ls.advance(now, bpns, &s.flows);
            let done = ls.take_finished();
            ls.gen += 1;
            for (f, qt) in done {
                let fs = &mut s.flows[f as usize];
                fs.stats.bytes += qt.logical;
                fs.stats.last_depart = fs.stats.last_depart.max(now);
                s.resources[res.index()].bump_free_at(now);
                completions.push((qt.ev, now + latency + qt.extra));
            }
        }
        for (ev, t) in completions {
            let h = self.clone();
            self.push_action(&mut st, t, Box::new(move |_| h.complete(ev)));
        }
        self.qos_reschedule(&mut st, res);
    }

    /// Schedule the next head-finish action for `res` at current shares,
    /// tagged with the link's present generation.
    fn qos_reschedule(&self, st: &mut KState, res: ResourceId) {
        let now = st.now();
        let (finish, gen) = {
            let s = &mut *st;
            let Some(c) = s.contention.as_ref() else { return };
            let Some(ls) = c.links.get(&res.index()) else { return };
            let bpns = s.resources[res.index()].bytes_per_ns();
            match ls.next_finish(now, bpns, &s.flows) {
                Some(finish) => (finish, ls.gen),
                None => return,
            }
        };
        let h = self.clone();
        self.push_action(st, finish, Box::new(move |_| h.qos_service(res, gen)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Sim;

    /// Two equal-weight flows saturating one link split it evenly and the
    /// sum of achieved bandwidths equals capacity (work conservation).
    #[test]
    fn equal_flows_halve_the_link_and_conserve_work() {
        let sim = Sim::new();
        sim.enable_contention();
        let h = sim.handle();
        let res = h.new_resource(1.0, Dur::ZERO); // 1 B/ns
        let fa = h.new_flow(1000);
        let fb = h.new_flow(1000);
        let mut sim = sim;
        sim.spawn("a", move |ctx| {
            let ev = ctx.transfer_qos(res, fa, SimTime::ZERO, 10_000);
            ctx.wait_free(ev);
            assert_eq!(ctx.now(), SimTime(20_000), "half share doubles the service time");
        });
        sim.spawn("b", move |ctx| {
            let ev = ctx.transfer_qos(res, fb, SimTime::ZERO, 10_000);
            ctx.wait_free(ev);
        });
        let rep = sim.run().unwrap();
        assert_eq!(rep.end_time, SimTime(20_000));
        let (sa, sb) = (h.flow_stats(fa), h.flow_stats(fb));
        assert_eq!(sa.bytes + sb.bytes, 20_000);
        // 20k bytes over 20k ns on a 1 B/ns link: fully work-conserving.
        assert_eq!(sa.last_depart.max(sb.last_depart), SimTime(20_000));
    }

    /// A 4:1 weight split prices the heavy flow out proportionally, and
    /// the light flow speeds up to full rate once the heavy one drains.
    #[test]
    fn weighted_split_finishes_heavy_flow_first() {
        let sim = Sim::new();
        sim.enable_contention();
        let h = sim.handle();
        let res = h.new_resource(1.0, Dur::ZERO);
        let heavy = h.new_flow(4000);
        let light = h.new_flow(1000);
        let mut sim = sim;
        let done_heavy = std::sync::Arc::new(std::sync::Mutex::new(SimTime::ZERO));
        let (dh1, dh2) = (done_heavy.clone(), done_heavy.clone());
        sim.spawn("heavy", move |ctx| {
            let ev = ctx.transfer_qos(res, heavy, SimTime::ZERO, 8_000);
            ctx.wait_free(ev);
            *dh1.lock().unwrap() = ctx.now();
        });
        sim.spawn("light", move |ctx| {
            let ev = ctx.transfer_qos(res, light, SimTime::ZERO, 8_000);
            ctx.wait_free(ev);
            // Light flow: 2000 B served at 1/5 rate while heavy drains
            // (10 000 ns), then 6000 B alone at full rate.
            assert_eq!(ctx.now(), SimTime(16_000));
        });
        sim.run().unwrap();
        // Heavy flow: 8000 B at 4/5 of 1 B/ns = 10 000 ns.
        assert_eq!(*dh2.lock().unwrap(), SimTime(10_000));
    }

    /// A lone flow on an armed sim reproduces the closed-form FIFO times
    /// exactly — chunk for chunk, including the per-transfer ceil.
    #[test]
    fn single_flow_matches_closed_form_exactly() {
        let run = |armed: bool| -> SimTime {
            let sim = Sim::new();
            if armed {
                sim.enable_contention();
            }
            let h = sim.handle();
            let res = h.new_resource(3.0, Dur::nanos(500)); // non-divisible rate
            let flow = h.new_flow(1000);
            let mut sim = sim;
            sim.spawn("job", move |ctx| {
                let evs: Vec<_> = (0..4)
                    .map(|i| ctx.transfer_qos(res, flow, SimTime(i * 100), 10_000 + i * 7))
                    .collect();
                for ev in evs {
                    ctx.wait_free(ev);
                }
            });
            sim.run().unwrap().end_time
        };
        assert_eq!(run(false), run(true));
    }

    /// Disarmed, `transfer_qos` replays bit-identically to the legacy
    /// three-call sequence (same end time *and* same entry count).
    #[test]
    fn disarmed_path_is_bit_identical_to_legacy_calls() {
        let run = |qos: bool| -> (SimTime, u64) {
            let mut sim = Sim::new();
            let h = sim.handle();
            let res = h.new_resource(2.0, Dur::nanos(40));
            let flow = h.new_flow(1000);
            sim.spawn("job", move |ctx| {
                for i in 0..5u64 {
                    let at = SimTime(i * 30);
                    let ev = if qos {
                        ctx.transfer_qos(res, flow, at, 4096)
                    } else {
                        let tr = ctx.handle().transfer_from(res, at, 4096);
                        let ev = ctx.new_event();
                        ctx.complete_at(ev, tr.arrive);
                        ev
                    };
                    ctx.wait_free(ev);
                }
            });
            let rep = sim.run().unwrap();
            (rep.end_time, rep.entries_processed)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn qos_class_weights_are_ordered() {
        assert!(QosClass::High.weight_milli() > QosClass::Normal.weight_milli());
        assert!(QosClass::Normal.weight_milli() > QosClass::Low.weight_milli());
        assert_eq!(QosClass::default(), QosClass::Normal);
    }
}
