//! One-shot completion events.
//!
//! An [`EventId`] names a one-shot event inside the simulation kernel.
//! Events start *pending*; any number of tasks may block on one
//! ([`crate::Ctx::wait`]); completing the event (from a task or from a
//! scheduled action) wakes every waiter at the current virtual time.
//! Events are the only blocking primitive — channels, barriers, RMA
//! completion and stream synchronisation are all built on top of them.

use crate::task::TaskId;

/// Handle to a one-shot completion event. Cheap to copy.
///
/// Generation-tagged so that a stale handle to a recycled slot is detected
/// rather than silently aliasing a fresh event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    pub(crate) index: u32,
    pub(crate) gen: u32,
}

/// A task parked on an event, together with the park it must be resumed
/// from (stale wakes for earlier parks are discarded by the scheduler).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    pub(crate) task: TaskId,
    pub(crate) park_seq: u64,
}

/// Reference from an event to a wait-group registration. Generation-tagged
/// like events themselves: a wait-*any* group dies when its first event
/// completes, leaving stale references on the events that did not win —
/// completion (and `free_event`) recognises those by a generation mismatch
/// and skips them instead of corrupting a recycled group slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupRef {
    pub(crate) gid: u32,
    pub(crate) gen: u32,
}

/// Kernel-internal state of one event slot.
#[derive(Debug)]
pub(crate) struct EventSlot {
    pub(crate) gen: u32,
    pub(crate) completed: bool,
    /// Tasks blocked on this event (woken on completion).
    pub(crate) waiters: Vec<Waiter>,
    /// Wait-groups with a pending registration on this event (see
    /// [`crate::Ctx::wait_all`] and [`crate::Ctx::wait_any_batched`]):
    /// completion decrements each live group's remaining-count instead of
    /// waking a task directly, so a task blocked on N events costs one
    /// wake, not N. Stale references (groups that already fired) are
    /// skipped by generation check.
    pub(crate) group_waiters: Vec<GroupRef>,
    /// Slot is live (allocated and not yet freed).
    pub(crate) live: bool,
    /// Abandoned by its owner ([`crate::SimHandle::release_event`]): the
    /// slot recycles itself the moment completion fires.
    pub(crate) auto_free: bool,
}

impl EventSlot {
    pub(crate) fn fresh(gen: u32) -> Self {
        EventSlot {
            gen,
            completed: false,
            waiters: Vec::new(),
            group_waiters: Vec::new(),
            live: true,
            auto_free: false,
        }
    }
}

/// Free-list based event arena. Events are created at a very high rate
/// (every RMA operation makes one), so slots are recycled.
#[derive(Default)]
pub(crate) struct EventArena {
    slots: Vec<EventSlot>,
    free: Vec<u32>,
}

impl EventArena {
    pub(crate) fn alloc(&mut self) -> EventId {
        if let Some(index) = self.free.pop() {
            // Reset in place: `free` already verified the waiter vectors
            // are empty, so clearing fields (rather than overwriting the
            // slot wholesale) keeps their heap capacity for reuse — event
            // churn in the collective engines is allocation-free at
            // steady state.
            let slot = &mut self.slots[index as usize];
            slot.gen = slot.gen.wrapping_add(1);
            slot.completed = false;
            slot.waiters.clear();
            slot.group_waiters.clear();
            slot.live = true;
            slot.auto_free = false;
            EventId { index, gen: slot.gen }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(EventSlot::fresh(0));
            EventId { index, gen: 0 }
        }
    }

    pub(crate) fn get(&self, id: EventId) -> &EventSlot {
        let slot = &self.slots[id.index as usize];
        assert!(slot.live && slot.gen == id.gen, "stale or freed EventId {:?}", id);
        slot
    }

    pub(crate) fn get_mut(&mut self, id: EventId) -> &mut EventSlot {
        let slot = &mut self.slots[id.index as usize];
        assert!(slot.live && slot.gen == id.gen, "stale or freed EventId {:?}", id);
        slot
    }

    /// Recycle a completed event slot. Callers must guarantee no task will
    /// wait on the handle again.
    pub(crate) fn free(&mut self, id: EventId) {
        let slot = &mut self.slots[id.index as usize];
        assert!(slot.live && slot.gen == id.gen, "double free of EventId {:?}", id);
        assert!(slot.waiters.is_empty(), "freeing event with live waiters");
        assert!(slot.group_waiters.is_empty(), "freeing event with live group waiters");
        slot.live = false;
        self.free.push(id.index);
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_recycles_with_new_generation() {
        let mut arena = EventArena::default();
        let a = arena.alloc();
        arena.get_mut(a).completed = true;
        arena.free(a);
        let b = arena.alloc();
        assert_eq!(a.index, b.index);
        assert_ne!(a.gen, b.gen);
        assert!(!arena.get(b).completed, "recycled slot must be pending");
    }

    #[test]
    #[should_panic(expected = "stale or freed")]
    fn stale_handle_detected() {
        let mut arena = EventArena::default();
        let a = arena.alloc();
        arena.free(a);
        let _ = arena.get(a);
    }

    #[test]
    fn live_count_tracks_alloc_and_free() {
        let mut arena = EventArena::default();
        let a = arena.alloc();
        let _b = arena.alloc();
        assert_eq!(arena.len(), 2);
        arena.free(a);
        assert_eq!(arena.len(), 1);
    }
}
