//! Integration tests for the discrete-event kernel: scheduling order,
//! blocking primitives, channels, resources, deadlock detection and
//! determinism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diomp_sim::{Dur, Sim, SimChannel, SimError, SimTime, Wait};

#[test]
fn delays_accumulate_virtual_time() {
    let mut sim = Sim::new();
    sim.spawn("t", |ctx| {
        ctx.delay(Dur::micros(3.0));
        ctx.delay(Dur::micros(4.0));
        assert_eq!(ctx.now(), SimTime(7_000));
    });
    let rep = sim.run().unwrap();
    assert_eq!(rep.end_time, SimTime(7_000));
    assert_eq!(rep.tasks_completed, 1);
}

#[test]
fn tasks_interleave_by_timestamp_not_spawn_order() {
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut sim = Sim::new();
    for (name, d) in [("late", 10.0), ("early", 1.0), ("mid", 5.0)] {
        let order = order.clone();
        sim.spawn(name, move |ctx| {
            ctx.delay(Dur::micros(d));
            order.lock().push(name);
        });
    }
    sim.run().unwrap();
    assert_eq!(*order.lock(), vec!["early", "mid", "late"]);
}

#[test]
fn same_time_entries_run_in_insertion_order() {
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut sim = Sim::new();
    for i in 0..8 {
        let order = order.clone();
        sim.spawn(format!("t{i}"), move |ctx| {
            ctx.delay(Dur::micros(1.0));
            order.lock().push(i);
        });
    }
    sim.run().unwrap();
    assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
}

#[test]
fn event_completion_wakes_all_waiters() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let ev = h.new_event();
    let hits = Arc::new(AtomicU64::new(0));
    for i in 0..4 {
        let hits = hits.clone();
        sim.spawn(format!("w{i}"), move |ctx| {
            ctx.wait(ev);
            assert_eq!(ctx.now(), SimTime(2_000));
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    sim.spawn("completer", move |ctx| {
        ctx.delay(Dur::micros(2.0));
        ctx.complete(ev);
    });
    sim.run().unwrap();
    assert_eq!(hits.load(Ordering::Relaxed), 4);
}

#[test]
fn wait_on_completed_event_returns_immediately() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let ev = h.new_event();
    h.complete(ev);
    sim.spawn("w", move |ctx| {
        ctx.wait(ev);
        assert_eq!(ctx.now(), SimTime::ZERO);
    });
    sim.run().unwrap();
}

#[test]
fn wait_any_returns_first_completed() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let slow = h.new_event();
    let fast = h.new_event();
    h.complete_at(slow, SimTime(9_000));
    h.complete_at(fast, SimTime(1_000));
    sim.spawn("w", move |ctx| {
        let idx = ctx.wait_any(&[slow, fast]);
        assert_eq!(idx, 1);
        assert_eq!(ctx.now(), SimTime(1_000));
        // A later wait on the slow event still works (no spurious state).
        ctx.wait(slow);
        assert_eq!(ctx.now(), SimTime(9_000));
    });
    sim.run().unwrap();
}

#[test]
fn spurious_wakes_do_not_break_delay() {
    // A task waits on an event with wait_any, abandons one registration,
    // then sleeps; the abandoned registration must not cut the sleep short.
    let mut sim = Sim::new();
    let h = sim.handle();
    let a = h.new_event();
    let b = h.new_event();
    h.complete_at(a, SimTime(1_000));
    h.complete_at(b, SimTime(2_000)); // fires mid-sleep
    sim.spawn("w", move |ctx| {
        let idx = ctx.wait_any(&[a, b]);
        assert_eq!(idx, 0);
        ctx.delay(Dur::micros(10.0)); // b completes at 2µs, must not wake us
        assert_eq!(ctx.now(), SimTime(11_000));
    });
    sim.run().unwrap();
}

#[test]
fn scheduled_actions_run_at_their_time() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let ev = h.new_event();
    let stamp = Arc::new(AtomicU64::new(0));
    {
        let stamp = stamp.clone();
        h.schedule_at(SimTime(5_000), move |h| {
            stamp.store(h.now().nanos(), Ordering::Relaxed);
            h.complete(ev);
        });
    }
    sim.spawn("w", move |ctx| {
        ctx.wait(ev);
        assert_eq!(ctx.now(), SimTime(5_000));
    });
    sim.run().unwrap();
    assert_eq!(stamp.load(Ordering::Relaxed), 5_000);
}

#[test]
fn channels_block_and_deliver_in_order() {
    let mut sim = Sim::new();
    let chan: SimChannel<u32> = SimChannel::new();
    let tx = chan.clone();
    sim.spawn("producer", move |ctx| {
        for i in 0..5 {
            ctx.delay(Dur::micros(1.0));
            tx.send(ctx.handle(), i);
        }
        tx.close(ctx.handle());
    });
    let rx = chan.clone();
    sim.spawn("consumer", move |ctx| {
        let mut got = Vec::new();
        while let Some(v) = rx.recv(ctx) {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(ctx.now(), SimTime(5_000));
    });
    sim.run().unwrap();
}

#[test]
fn resource_contention_serialises_transfers() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let link = h.new_resource(1.0, Dur::nanos(50)); // 1 B/ns
    let finish = Arc::new(parking_lot::Mutex::new(Vec::new()));
    for i in 0..3 {
        let finish = finish.clone();
        sim.spawn(format!("s{i}"), move |ctx| {
            let tr = ctx.transfer(link, 1_000);
            let ev = ctx.new_event();
            ctx.complete_at(ev, tr.arrive);
            ctx.wait_free(ev);
            finish.lock().push(ctx.now().nanos());
        });
    }
    sim.run().unwrap();
    // Each 1000-byte transfer takes 1000 ns of link time + 50 ns latency,
    // serialised: arrivals at 1050, 2050, 3050.
    assert_eq!(*finish.lock(), vec![1_050, 2_050, 3_050]);
}

#[test]
fn deadlock_is_reported_with_task_names() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let never = h.new_event();
    sim.spawn("stuck-rank", move |ctx| {
        ctx.wait(never);
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert_eq!(blocked, vec!["stuck-rank".to_string()]);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn entry_limit_stops_runaway_sims() {
    let mut sim = Sim::new();
    sim.limit_entries(100);
    sim.spawn("spinner", |ctx| loop {
        ctx.delay(Dur::nanos(1));
    });
    match sim.run() {
        Err(SimError::LimitExceeded { .. }) => {}
        other => panic!("expected limit, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "simulated task 'asserter' panicked")]
fn task_panics_propagate_to_run() {
    let mut sim = Sim::new();
    sim.spawn("asserter", |_ctx| {
        panic!("boom");
    });
    let _ = sim.run();
}

#[test]
fn dynamic_spawn_joins_the_event_flow() {
    let mut sim = Sim::new();
    let hits = Arc::new(AtomicU64::new(0));
    let hits2 = hits.clone();
    sim.spawn("parent", move |ctx| {
        ctx.delay(Dur::micros(1.0));
        let hits3 = hits2.clone();
        ctx.handle().spawn("child", move |ctx| {
            ctx.delay(Dur::micros(1.0));
            assert_eq!(ctx.now(), SimTime(2_000));
            hits3.fetch_add(1, Ordering::Relaxed);
        });
    });
    sim.run().unwrap();
    assert_eq!(hits.load(Ordering::Relaxed), 1);
}

fn trace_of(seed: u64) -> Vec<String> {
    let mut sim = Sim::new();
    sim.enable_trace();
    let h = sim.handle();
    let chan: SimChannel<u64> = SimChannel::new();
    for r in 0..6u64 {
        let chan = chan.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let mut rng = diomp_sim::rng_for(seed, r);
            use rand::Rng;
            for _ in 0..20 {
                let d: u64 = rng.gen_range(1..500);
                ctx.delay(Dur::nanos(d));
                chan.send(ctx.handle(), r);
                ctx.trace(format!("rank{r}"), format!("sent at {}", ctx.now()));
            }
        });
    }
    let _ = h;
    let rep = sim.run().unwrap();
    rep.trace.iter().map(|t| t.to_string()).collect()
}

#[test]
fn identical_seeds_produce_identical_traces() {
    let a = trace_of(1234);
    let b = trace_of(1234);
    assert_eq!(a, b, "simulation must be deterministic");
    assert!(!a.is_empty());
}

#[test]
fn different_seeds_produce_different_traces() {
    let a = trace_of(1);
    let b = trace_of(2);
    assert_ne!(a, b);
}

#[test]
fn event_slots_are_recycled() {
    let mut sim = Sim::new();
    let h = sim.handle();
    sim.spawn("loop", |ctx| {
        for _ in 0..1_000 {
            let ev = ctx.new_event();
            ctx.complete(ev);
            ctx.wait_free(ev);
        }
    });
    sim.run().unwrap();
    assert_eq!(h.live_events(), 0, "all events freed");
}

// ---------- batched multi-event waits (wait_all) ----------

/// Run `n` staggered completions and drain them with `f`; returns
/// (end_time, entries_processed).
fn drain_with(
    n: u64,
    f: impl Fn(&mut diomp_sim::Ctx, Vec<diomp_sim::EventId>) + Send + 'static,
) -> (SimTime, u64) {
    let mut sim = Sim::new();
    sim.spawn("drainer", move |ctx| {
        let evs: Vec<_> = (0..n)
            .map(|i| {
                let ev = ctx.new_event();
                ctx.complete_at(ev, SimTime(1_000 * (i + 1)));
                ev
            })
            .collect();
        f(ctx, evs);
    });
    let rep = sim.run().unwrap();
    (rep.end_time, rep.entries_processed)
}

#[test]
fn wait_all_wakes_at_last_completion() {
    let (end, _) = drain_with(10, |ctx, evs| {
        ctx.wait_all(&evs);
        assert_eq!(ctx.now(), SimTime(10_000), "woken exactly at the last event");
        for ev in evs {
            ctx.free_event(ev);
        }
    });
    assert_eq!(end, SimTime(10_000));
}

#[test]
fn wait_all_processes_far_fewer_entries_than_wait_loop() {
    let n = 200;
    let (end_loop, entries_loop) = drain_with(n, |ctx, evs| {
        for &ev in &evs {
            ctx.wait_free(ev);
        }
    });
    let (end_all, entries_all) = drain_with(n, |ctx, evs| {
        ctx.wait_all_free(&evs);
    });
    assert_eq!(end_loop, end_all, "batching must not change virtual time");
    // The wait loop costs one wake per event; the group wait costs one
    // wake total. Completion actions are identical in both runs.
    assert!(
        entries_all + n - 1 <= entries_loop,
        "expected ~{n} fewer entries, got {entries_loop} vs {entries_all}"
    );
}

#[test]
fn wait_all_with_already_completed_events_returns_immediately() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let a = h.new_event();
    let b = h.new_event();
    h.complete(a);
    h.complete(b);
    sim.spawn("w", move |ctx| {
        ctx.wait_all_free(&[a, b]);
        assert_eq!(ctx.now(), SimTime::ZERO);
    });
    sim.run().unwrap();
}

#[test]
fn wait_all_mixes_pending_and_completed() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let done = h.new_event();
    let late = h.new_event();
    h.complete(done);
    h.complete_at(late, SimTime(5_000));
    sim.spawn("w", move |ctx| {
        ctx.wait_all_free(&[done, late]);
        assert_eq!(ctx.now(), SimTime(5_000));
    });
    sim.run().unwrap();
}

#[test]
fn wait_all_groups_are_recycled() {
    let mut sim = Sim::new();
    let h = sim.handle();
    sim.spawn("loop", |ctx| {
        for round in 0..500u64 {
            let evs: Vec<_> = (0..4)
                .map(|i| {
                    let ev = ctx.new_event();
                    ctx.complete_in(ev, Dur::nanos(i + 1 + round));
                    ev
                })
                .collect();
            ctx.wait_all_free(&evs);
        }
    });
    sim.run().unwrap();
    assert_eq!(h.live_events(), 0);
}

// ---------- batched wait-any (wait-any groups, ISSUE 2) ----------

#[test]
fn wait_any_batched_returns_first_completed() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let slow = h.new_event();
    let fast = h.new_event();
    h.complete_at(slow, SimTime(9_000));
    h.complete_at(fast, SimTime(1_000));
    sim.spawn("w", move |ctx| {
        let idx = ctx.wait_any_batched(&[slow, fast]);
        assert_eq!(idx, 1);
        assert_eq!(ctx.now(), SimTime(1_000));
        // The abandoned registration on `slow` must not disturb later
        // waits: the group is dead, so slow's completion pushes nothing.
        ctx.wait(slow);
        assert_eq!(ctx.now(), SimTime(9_000));
    });
    sim.run().unwrap();
}

#[test]
fn wait_any_batched_on_completed_event_returns_immediately() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let pending = h.new_event();
    let done = h.new_event();
    h.complete(done);
    sim.spawn("w", move |ctx| {
        assert_eq!(ctx.wait_any_batched(&[pending, done]), 1);
        assert_eq!(ctx.now(), SimTime::ZERO);
        ctx.complete(pending);
    });
    sim.run().unwrap();
}

/// Progress-engine shape: retire `n` staggered completions one at a time,
/// re-waiting on the whole remaining set after each retirement.
fn retire_one_by_one(
    n: u64,
    wait: impl Fn(&mut diomp_sim::Ctx, &[diomp_sim::EventId]) -> usize + Send + 'static,
) -> (SimTime, u64) {
    let mut sim = Sim::new();
    sim.spawn("engine", move |ctx| {
        let mut evs: Vec<_> = (0..n)
            .map(|i| {
                let ev = ctx.new_event();
                ctx.complete_at(ev, SimTime(1_000 * (i + 1)));
                ev
            })
            .collect();
        while !evs.is_empty() {
            let idx = wait(ctx, &evs);
            let ev = evs.remove(idx);
            ctx.handle().free_event(ev);
        }
    });
    let rep = sim.run().unwrap();
    (rep.end_time, rep.entries_processed)
}

#[test]
fn wait_any_batched_saves_entries_over_per_event_waiters() {
    let n = 100;
    let (end_plain, entries_plain) = retire_one_by_one(n, |ctx, evs| ctx.wait_any(evs));
    let (end_batched, entries_batched) = retire_one_by_one(n, |ctx, evs| ctx.wait_any_batched(evs));
    assert_eq!(end_plain, end_batched, "batching must not change virtual time");
    // Per-event waiters: every park registers on all remaining events and
    // every one of those completions later pushes a (stale) wake — O(n²)
    // queue entries over the retirement loop. Wait-any groups: exactly one
    // wake per park.
    assert!(
        entries_batched + n * (n - 1) / 4 <= entries_plain,
        "expected a quadratic saving, got {entries_plain} vs {entries_batched}"
    );
}

#[test]
fn wait_any_groups_are_recycled_across_rounds() {
    // Stale group refs from earlier rounds must never fire a recycled
    // group (generation check) nor block event recycling.
    let mut sim = Sim::new();
    let h = sim.handle();
    sim.spawn("loop", |ctx| {
        for round in 0..300u64 {
            let evs: Vec<_> = (0..4)
                .map(|i| {
                    let ev = ctx.new_event();
                    ctx.complete_in(ev, Dur::nanos((i + 1) * (round + 1)));
                    ev
                })
                .collect();
            let first = ctx.wait_any_batched(&evs);
            assert_eq!(first, 0, "earliest completion wins");
            // Drain the rest and recycle everything.
            ctx.wait_all_free(&evs);
        }
    });
    sim.run().unwrap();
    assert_eq!(h.live_events(), 0);
}

#[test]
fn two_tasks_can_wait_all_on_overlapping_sets() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let shared = h.new_event();
    let mine = h.new_event();
    let yours = h.new_event();
    h.complete_at(shared, SimTime(3_000));
    h.complete_at(mine, SimTime(1_000));
    h.complete_at(yours, SimTime(9_000));
    sim.spawn("a", move |ctx| {
        ctx.wait_all(&[shared, mine]);
        assert_eq!(ctx.now(), SimTime(3_000));
    });
    sim.spawn("b", move |ctx| {
        ctx.wait_all(&[shared, yours]);
        assert_eq!(ctx.now(), SimTime(9_000));
    });
    sim.run().unwrap();
}

// ---------------------------------------------------------------------------
// Virtual-time deadlines: timeout-taking waits.
// ---------------------------------------------------------------------------

#[test]
fn wait_timeout_returns_ok_before_the_deadline() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let ev = h.new_event();
    h.complete_in(ev, Dur::micros(2.0));
    sim.spawn("waiter", move |ctx| {
        assert!(ctx.wait_with(ev, Wait::Until(Dur::micros(10.0))).is_ok());
        assert_eq!(ctx.now(), SimTime(2_000), "woken by completion, not deadline");
    });
    sim.run().unwrap();
}

#[test]
fn wait_timeout_fires_at_the_deadline_and_leaves_the_event_pending() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let ev = h.new_event();
    h.complete_in(ev, Dur::micros(50.0));
    sim.spawn("waiter", move |ctx| {
        let err = ctx.wait_with(ev, Wait::Until(Dur::micros(5.0))).unwrap_err();
        assert_eq!(err.at, SimTime(5_000));
        assert_eq!(ctx.now(), SimTime(5_000));
        assert!(!ctx.event_done(ev), "event still in flight after the timeout");
        // The late completion is still delivered; waiting again succeeds.
        ctx.wait(ev);
        assert_eq!(ctx.now(), SimTime(50_000));
        ctx.free_event(ev);
    });
    sim.run().unwrap();
}

#[test]
fn wait_all_timeout_reports_partial_completion() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let evs: Vec<_> = (0..4).map(|_| h.new_event()).collect();
    // Two complete before the deadline, two after.
    h.complete_in(evs[0], Dur::micros(1.0));
    h.complete_in(evs[2], Dur::micros(2.0));
    h.complete_in(evs[1], Dur::micros(20.0));
    h.complete_in(evs[3], Dur::micros(30.0));
    let evs2 = evs.clone();
    sim.spawn("waiter", move |ctx| {
        assert!(ctx.wait_all_with(&evs2, Wait::Until(Dur::micros(5.0))).is_err());
        let done: Vec<bool> = evs2.iter().map(|&e| ctx.event_done(e)).collect();
        assert_eq!(done, vec![true, false, true, false], "partial state visible");
        // Draining the rest afterwards works: the dead group is inert.
        ctx.wait_all_free(&evs2);
        assert_eq!(ctx.now(), SimTime(30_000));
    });
    sim.run().unwrap();
}

#[test]
fn timed_out_groups_do_not_leak_or_misfire_under_reuse() {
    // Stress slot recycling: many timeouts then many successful waits on
    // recycled group slots; generation tags must keep stale references
    // inert (the timeout analogue of the wait-any staleness property).
    let mut sim = Sim::new();
    let h = sim.handle();
    let slow: Vec<_> = (0..8).map(|_| h.new_event()).collect();
    for (i, &e) in slow.iter().enumerate() {
        h.complete_in(e, Dur::micros(100.0 + i as f64));
    }
    sim.spawn("waiter", move |ctx| {
        for _ in 0..16 {
            assert!(ctx.wait_all_with(&slow, Wait::Until(Dur::micros(1.0))).is_err());
        }
        ctx.wait_all_free(&slow);
        assert_eq!(ctx.now(), SimTime(107_000));
    });
    sim.run().unwrap();
}

#[test]
fn board_waitsome_timeout_consumes_or_times_out() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let b = h.new_board();
    sim.spawn("producer", move |ctx| {
        ctx.delay(Dur::micros(8.0));
        ctx.board_post(b, 3, 33);
    });
    sim.spawn("consumer", move |ctx| {
        // First wait gives up before the post lands...
        let err = ctx.board_waitsome_with(b, 0, 8, Wait::Until(Dur::micros(2.0))).unwrap_err();
        assert_eq!(err.at, SimTime(2_000));
        // ...the second sees it arrive inside the window.
        let (id, v) = ctx.board_waitsome_with(b, 0, 8, Wait::Until(Dur::micros(50.0))).unwrap();
        assert_eq!((id, v), (3, 33));
        assert_eq!(ctx.now(), SimTime(8_000));
    });
    sim.run().unwrap();
}

#[test]
fn board_waitsome_timeout_deadline_is_absolute_across_reparks() {
    // A concurrent waiter steals every post; the timed waiter must still
    // give up at its original deadline instead of extending it per repark.
    let mut sim = Sim::new();
    let h = sim.handle();
    let b = h.new_board();
    sim.spawn("thief", move |ctx| {
        for _ in 0..4 {
            let _ = ctx.board_waitsome(b, 0, 8);
        }
    });
    sim.spawn("timed", move |ctx| {
        let err = ctx.board_waitsome_with(b, 0, 8, Wait::Until(Dur::micros(10.0))).unwrap_err();
        assert_eq!(err.at, SimTime(10_000), "deadline must not slide");
    });
    sim.spawn("producer", move |ctx| {
        for i in 0..4 {
            ctx.delay(Dur::micros(2.0));
            ctx.board_post(b, i, 1);
        }
        ctx.delay(Dur::micros(20.0));
    });
    sim.run().unwrap();
}

// ---------------------------------------------------------------------------
// Deterministic fault injection.
// ---------------------------------------------------------------------------

use diomp_sim::{fault_key, CtrlFault, FaultPlan};

#[test]
fn degraded_window_stretches_only_covered_transfers() {
    let run = |degrade: bool| -> (SimTime, SimTime) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let res = h.new_resource(1.0, Dur::nanos(100)); // 1 B/ns
        if degrade {
            sim.set_fault_plan(FaultPlan::new().degrade_link(
                res,
                SimTime(0),
                SimTime(500_000),
                500,
            ));
        }
        let out = Arc::new(parking_lot::Mutex::new((SimTime::ZERO, SimTime::ZERO)));
        let out2 = out.clone();
        sim.spawn("xfer", move |ctx| {
            let a = ctx.transfer(res, 1000); // starts at t=0: inside the window
            ctx.sleep_until(SimTime(1_000_000));
            let b = ctx.transfer(res, 1000); // starts at 1 ms: outside
            *out2.lock() = (a.arrive, b.arrive);
        });
        sim.run().unwrap();
        let g = out.lock();
        *g
    };
    let (clean_a, clean_b) = run(false);
    assert_eq!(clean_a, SimTime(1_100));
    let (slow_a, slow_b) = run(true);
    assert_eq!(slow_a, SimTime(2_100), "half bandwidth doubles the busy time");
    assert_eq!(slow_b, clean_b, "post-window transfer unaffected");
}

#[test]
fn flap_holds_transfers_until_the_window_closes() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let res = h.new_resource(1.0, Dur::ZERO);
    sim.set_fault_plan(FaultPlan::new().flap_link(res, SimTime(0), SimTime(5_000)));
    sim.spawn("xfer", move |ctx| {
        let t = ctx.transfer(res, 100);
        assert_eq!(t.start, SimTime(5_000), "held until the flap clears");
        assert_eq!(t.arrive, SimTime(5_100));
    });
    sim.run().unwrap();
}

#[test]
fn stragglers_stretch_delays_of_matching_tasks_only() {
    let times = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().straggle("slow", 2000));
    for name in ["slow-rank", "fast-rank"] {
        let times = times.clone();
        sim.spawn(name, move |ctx| {
            ctx.delay(Dur::micros(10.0));
            times.lock().push((name, ctx.now()));
        });
    }
    sim.run().unwrap();
    let g: Vec<(&str, SimTime)> = times.lock().clone();
    assert!(g.contains(&("slow-rank", SimTime(20_000))), "2x straggle factor: {g:?}");
    assert!(g.contains(&("fast-rank", SimTime(10_000))), "non-matching task unaffected");
}

#[test]
fn ctrl_faults_are_consumed_once_per_key() {
    let mut sim = Sim::new();
    let k = fault_key("test-proto", 1, 2);
    sim.set_fault_plan(FaultPlan::new().ctrl_fault(k, CtrlFault::Drop));
    sim.spawn("t", move |ctx| {
        assert_eq!(ctx.take_ctrl_fault(k), Some(CtrlFault::Drop));
        assert_eq!(ctx.take_ctrl_fault(k), None, "single charge");
        assert_eq!(ctx.take_ctrl_fault(fault_key("test-proto", 1, 3)), None);
    });
    sim.run().unwrap();
}

#[test]
fn same_fault_plan_replays_bit_identically() {
    // The determinism contract the CI chaos step enforces: two runs of
    // the same seeded plan produce identical end times and entry counts.
    let run = |seed: u64| {
        let mut sim = Sim::new();
        let h = sim.handle();
        let links: Vec<_> = (0..4).map(|_| h.new_resource(2.0, Dur::nanos(500))).collect();
        sim.set_fault_plan(FaultPlan::randomized(
            seed,
            &links,
            &["rank".to_string()],
            Dur::millis(1.0),
        ));
        for r in 0..4usize {
            let links = links.clone();
            sim.spawn(format!("rank{r}"), move |ctx| {
                for i in 0..8 {
                    ctx.delay(Dur::micros(3.0));
                    let t = ctx.transfer(links[(r + i) % 4], 4096);
                    let ev = ctx.new_event();
                    ctx.complete_at(ev, t.arrive);
                    ctx.wait_free(ev);
                }
            });
        }
        let rep = sim.run().unwrap();
        (rep.end_time, rep.entries_processed)
    };
    for seed in [1u64, 7, 42] {
        assert_eq!(run(seed), run(seed), "seed {seed} must replay identically");
    }
    assert_ne!(run(1).0, run(7).0, "different seeds should usually diverge");
}

#[test]
fn disabled_injection_is_bit_identical_to_no_injection() {
    // Zero-cost-when-off: installing an empty plan (or none) must not
    // change a single timestamp or entry count.
    let run = |empty_plan: bool| {
        let mut sim = Sim::new();
        let h = sim.handle();
        let res = h.new_resource(4.0, Dur::nanos(800));
        if empty_plan {
            sim.set_fault_plan(FaultPlan::new());
        }
        sim.enable_trace();
        for r in 0..3usize {
            sim.spawn(format!("rank{r}"), move |ctx| {
                for _ in 0..16 {
                    ctx.delay(Dur::micros(1.0));
                    let t = ctx.transfer(res, 8192);
                    let ev = ctx.new_event();
                    ctx.complete_at(ev, t.arrive);
                    ctx.wait_free(ev);
                }
            });
        }
        let rep = sim.run().unwrap();
        (rep.end_time, rep.entries_processed, format!("{:?}", rep.trace))
    };
    assert_eq!(run(false), run(true));
}
