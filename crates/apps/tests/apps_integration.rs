//! End-to-end application tests: both matmul and Minimod implementations
//! must produce bit-correct results and the paper's qualitative ordering
//! (DiOMP ≥ MPI performance at scale).

use diomp_apps::cannon::{self, CannonConfig};
use diomp_apps::minimod::{self, HaloStyle, MinimodConfig};
use diomp_device::DataMode;
use diomp_sim::PlatformSpec;

fn matmul_cfg(gpus: usize, n: usize, mode: DataMode) -> CannonConfig {
    CannonConfig {
        platform: PlatformSpec::platform_a(),
        gpus,
        n,
        mode,
        verify: mode == DataMode::Functional,
    }
}

#[test]
fn diomp_matmul_is_correct_on_4_gpus() {
    let r = cannon::diomp::run(&matmul_cfg(4, 64, DataMode::Functional));
    assert!(r.verified);
}

#[test]
fn mpi_matmul_is_correct_on_4_gpus() {
    let r = cannon::mpi::run(&matmul_cfg(4, 64, DataMode::Functional));
    assert!(r.verified);
}

#[test]
fn matmul_is_correct_across_nodes() {
    // 8 GPUs = 2 platform-A nodes: the ring crosses the network.
    let d = cannon::diomp::run(&matmul_cfg(8, 96, DataMode::Functional));
    let m = cannon::mpi::run(&matmul_cfg(8, 96, DataMode::Functional));
    assert!(d.verified && m.verified);
}

#[test]
fn diomp_matmul_beats_mpi_at_scale() {
    // Fig. 7's qualitative claim at paper scale (CostOnly). At moderate
    // GPU counts both are kernel-bound and tie; once the ring becomes
    // communication-sensitive (32 GPUs), DiOMP's one-sided pull wins.
    let d = cannon::diomp::run(&matmul_cfg(32, 30240, DataMode::CostOnly));
    let m = cannon::mpi::run(&matmul_cfg(32, 30240, DataMode::CostOnly));
    assert!(d.elapsed < m.elapsed, "DiOMP {} must beat MPI {}", d.elapsed, m.elapsed);
}

#[test]
fn matmul_strong_scaling_is_superlinear() {
    // Fig. 7: fixed N, 4 → 16 GPUs should give more than 4× (cache term).
    let t4 = cannon::diomp::run(&matmul_cfg(4, 30240, DataMode::CostOnly)).elapsed;
    let t16 = cannon::diomp::run(&matmul_cfg(16, 30240, DataMode::CostOnly)).elapsed;
    let speedup = t4.as_nanos() as f64 / t16.as_nanos() as f64;
    assert!(speedup > 4.2, "expected superlinear speedup at 4x resources, got {speedup:.2}");
}

fn minimod_cfg(gpus: usize, grid: usize, steps: usize, mode: DataMode) -> MinimodConfig {
    MinimodConfig {
        platform: PlatformSpec::platform_a(),
        gpus,
        nx: grid,
        ny: grid,
        nz: grid,
        steps,
        mode,
        verify: mode == DataMode::Functional,
        halo: HaloStyle::Get,
        tuned: false,
    }
}

/// Like [`minimod_cfg`] but on the InfiniBand platform (GPI-2-capable),
/// with a chosen halo style.
fn minimod_cfg_c(gpus: usize, grid: usize, steps: usize, halo: HaloStyle) -> MinimodConfig {
    MinimodConfig {
        platform: PlatformSpec::platform_c(),
        gpus,
        nx: grid,
        ny: grid,
        nz: grid,
        steps,
        mode: DataMode::Functional,
        verify: true,
        halo,
        tuned: false,
    }
}

#[test]
fn notified_halo_styles_match_serial_reference() {
    for halo in [HaloStyle::NotifyOrdered, HaloStyle::NotifyWaitsome] {
        let r = minimod::diomp::run(&minimod_cfg_c(4, 24, 4, halo));
        assert!(r.verified, "{halo:?} must verify against the serial reference");
    }
}

#[test]
fn all_halo_styles_produce_byte_identical_wavefields() {
    // The acceptance bar for the notified exchange: get-based, ordered-
    // notify, waitsome-notify and the MPI baseline all end on the exact
    // same bytes.
    let reference = minimod::mpi::run(&minimod_cfg_c(4, 24, 5, HaloStyle::Get))
        .wavefield
        .expect("functional MPI run captures the wavefield");
    for halo in [HaloStyle::Get, HaloStyle::NotifyOrdered, HaloStyle::NotifyWaitsome] {
        let w = minimod::diomp::run(&minimod_cfg_c(4, 24, 5, halo)).wavefield.unwrap();
        assert_eq!(w, reference, "{halo:?} wavefield diverged from MPI");
    }
}

#[test]
fn waitsome_halo_needs_fewer_scheduler_entries_than_ordered() {
    // Dropping the per-step barrier (parity ids + ranged waitsome) must
    // show up as scheduler-entry savings at ≥ 4 ranks.
    let mut cfg = minimod_cfg_c(4, 32, 6, HaloStyle::NotifyOrdered);
    cfg.mode = DataMode::CostOnly;
    cfg.verify = false;
    let ordered = minimod::diomp::run(&cfg).entries;
    cfg.halo = HaloStyle::NotifyWaitsome;
    let waitsome = minimod::diomp::run(&cfg).entries;
    assert!(
        waitsome < ordered,
        "waitsome drain ({waitsome} entries) must beat ordered per-id waits ({ordered})"
    );
}

#[test]
fn notified_minimod_is_deterministic() {
    let run = || minimod::diomp::run(&minimod_cfg_c(4, 24, 4, HaloStyle::NotifyWaitsome));
    let (a, b) = (run(), run());
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.entries, b.entries);
    assert_eq!(a.wavefield, b.wavefield);
}

#[test]
fn diomp_minimod_matches_serial_reference() {
    let r = minimod::diomp::run(&minimod_cfg(4, 16, 4, DataMode::Functional));
    assert!(r.verified);
}

#[test]
fn mpi_minimod_matches_serial_reference() {
    let r = minimod::mpi::run(&minimod_cfg(4, 16, 4, DataMode::Functional));
    assert!(r.verified);
}

#[test]
fn minimod_is_correct_across_nodes() {
    // 8 ranks need nz ≥ 8·RADIUS so each slab covers the stencil radius.
    let d = minimod::diomp::run(&minimod_cfg(8, 32, 3, DataMode::Functional));
    let m = minimod::mpi::run(&minimod_cfg(8, 32, 3, DataMode::Functional));
    assert!(d.verified && m.verified);
}

#[test]
fn diomp_minimod_beats_mpi_at_paper_scale() {
    // Fig. 8's qualitative claim: 1200³ grid (CostOnly), multi-node.
    let cfg_d = MinimodConfig {
        platform: PlatformSpec::platform_a(),
        gpus: 16,
        nx: 1200,
        ny: 1200,
        nz: 1200,
        steps: 10,
        mode: DataMode::CostOnly,
        verify: false,
        halo: HaloStyle::Get,
        tuned: false,
    };
    let d = minimod::diomp::run(&cfg_d);
    let m = minimod::mpi::run(&cfg_d);
    assert!(d.elapsed < m.elapsed, "DiOMP {} must beat MPI {}", d.elapsed, m.elapsed);
}

#[test]
fn app_runs_are_deterministic() {
    let a = cannon::diomp::run(&matmul_cfg(8, 30240, DataMode::CostOnly)).elapsed;
    let b = cannon::diomp::run(&matmul_cfg(8, 30240, DataMode::CostOnly)).elapsed;
    assert_eq!(a, b);
    let c = minimod::mpi::run(&minimod_cfg(4, 16, 3, DataMode::Functional)).elapsed;
    let d = minimod::mpi::run(&minimod_cfg(4, 16, 3, DataMode::Functional)).elapsed;
    assert_eq!(c, d);
}

#[test]
fn micro_latency_orders_diomp_below_mpi() {
    // Fig. 3 sign: DiOMP small-message RMA latency under MPI's.
    use diomp_apps::micro::{diomp_p2p_latency, mpi_p2p, RmaOp};
    let p = PlatformSpec::platform_a();
    let sizes = [8u64, 1024];
    let d = diomp_p2p_latency(&p, RmaOp::Put, &sizes);
    let m = mpi_p2p(&p, RmaOp::Put, &sizes, false);
    for (dd, mm) in d.iter().zip(&m) {
        assert!(dd.1 < mm.1, "size {}: DiOMP {:.2} µs vs MPI {:.2} µs", dd.0, dd.1, mm.1);
    }
}

#[test]
fn micro_bandwidth_shows_put_anomaly_on_platform_a() {
    use diomp_apps::micro::{diomp_p2p_bandwidth, RmaOp};
    let p = PlatformSpec::platform_a();
    let put = diomp_p2p_bandwidth(&p, RmaOp::Put, &[64 << 20]);
    let get = diomp_p2p_bandwidth(&p, RmaOp::Get, &[64 << 20]);
    assert!(put[0].1 < 4.0, "Fig. 4a anomaly: put capped, got {:.1} GB/s", put[0].1);
    assert!(get[0].1 > 15.0, "get unaffected, got {:.1} GB/s", get[0].1);
}

#[test]
fn gpi_beats_gasnet_for_small_puts_on_infiniband() {
    // Fig. 5's qualitative claim.
    use diomp_apps::micro::conduit_single_put_us;
    use diomp_core::Conduit;
    let gas = conduit_single_put_us(Conduit::GasnetEx, 2048);
    let gpi = conduit_single_put_us(Conduit::Gpi2, 2048);
    assert!(gpi < gas, "GPI-2 {gpi:.2} µs should beat GASNet-EX {gas:.2} µs at 2 KiB");
}
