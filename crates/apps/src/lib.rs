//! # diomp-apps — evaluation applications
//!
//! The workloads of the paper's §4 evaluation, each in a DiOMP and an
//! MPI+OpenMP variant sharing setup, kernels, and verification:
//!
//! * [`cannon`] — ring matrix multiplication (Fig. 7).
//! * [`minimod`] — acoustic-isotropic wave propagation with halo
//!   exchange (Fig. 8, Listings 1–2).
//! * [`micro`] — point-to-point and collective micro-benchmark drivers
//!   (Figs. 3–6).
//! * [`loc`] — the programmability (lines-of-code) comparison.
//! * [`matgen`] — deterministic inputs and serial references.

#![warn(missing_docs)]

pub mod cannon;
pub mod loc;
pub mod matgen;
pub mod micro;
pub mod minimod;
pub mod workload;
