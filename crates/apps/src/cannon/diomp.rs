//! DiOMP implementation of the ring matmul.
//!
//! Stripes live in the symmetric global heap, so the ring shift is a
//! single `ompx_put` per iteration — no receive posting, no request
//! arrays (cf. Listing 1 vs 2 of the paper) — and intra-node hops ride
//! GPUDirect P2P automatically.

use std::sync::Arc;

use diomp_core::{DiompConfig, DiompRuntime};
use diomp_device::{DataMode, KernelBody};
use diomp_sim::{ClusterSpec, Dur};
use parking_lot::Mutex;

use crate::matgen;

use super::{gemm_body, verify_stripe, CannonConfig, CannonResult};

/// Run the DiOMP ring matmul; returns the timed phase (max over ranks).
pub fn run(cfg: &CannonConfig) -> CannonResult {
    let cluster = ClusterSpec::with_total_gpus(cfg.platform.clone(), cfg.gpus);
    let dcfg = DiompConfig::builder(cluster)
        .with_mode(cfg.mode)
        .with_allocator(diomp_core::AllocKind::Linear)
        .with_heap(cfg.heap_bytes())
        .build();
    let out: Arc<Mutex<(Dur, bool)>> = Arc::new(Mutex::new((Dur::ZERO, true)));
    let out2 = out.clone();
    let want_verify = cfg.verify && cfg.mode == DataMode::Functional;
    let cfg = cfg.clone();

    DiompRuntime::run(dcfg, move |ctx, rank| {
        let p = rank.nranks();
        let r = rank.rank;
        let n = cfg.n;
        let ns = cfg.ns();
        let stripe = cfg.stripe_bytes();
        let dev = rank.primary();

        // Stripes in the symmetric heap: A, B (double-buffered), C.
        let a = rank.alloc_sym(ctx, stripe).unwrap();
        let b0 = rank.alloc_sym(ctx, stripe).unwrap();
        let b1 = rank.alloc_sym(ctx, stripe).unwrap();
        let c = rank.alloc_sym(ctx, stripe).unwrap();
        if cfg.mode == DataMode::Functional {
            rank.write_local(dev, a, 0, &matgen::to_bytes_f64(&matgen::a_stripe(n, r * ns, ns)));
            rank.write_local(dev, b0, 0, &matgen::to_bytes_f64(&matgen::b_stripe(n, r * ns, ns)));
        }
        rank.barrier(ctx);

        let t0 = ctx.now();
        let bufs = [b0, b1];
        for s in 0..p {
            let j = (r + s) % p; // stripe currently held
            let cur = bufs[s % 2];
            let nxt = bufs[(s + 1) % 2];

            // Launch the block GEMM on this device (nowait).
            let body: Option<KernelBody> = if cfg.mode == DataMode::Functional {
                let (aa, ba, ca) = (
                    rank.dev_addr(dev, a.off),
                    rank.dev_addr(dev, cur.off),
                    rank.dev_addr(dev, c.off),
                );
                Some(Box::new(move |mem| gemm_body(mem, aa, ba, ca, ns, n, j)))
            } else {
                None
            };
            let kernel_done = rank.target_launch_nowait(ctx, dev, &cfg.gemm_cost(), body);

            // Overlap: pull the next stripe from the right neighbour's
            // current buffer while the GEMM runs. The exchange is
            // pull-based (ompx_get): one-sided like the paper's ring, but
            // immune to the documented Platform A put-path driver issue
            // (Fig. 4a), which production runs on that system avoid.
            if s + 1 < p {
                let right = (r + 1) % p;
                rank.get(ctx, right, cur, 0, nxt, 0, stripe).unwrap();
            }
            rank.fence(ctx); // puts remotely complete + streams settled
            ctx.sleep_until(kernel_done);
            rank.barrier(ctx); // everyone's next stripe has landed
        }
        let elapsed = ctx.now().since(t0);

        let mut ok = true;
        if cfg.verify && cfg.mode == DataMode::Functional {
            let mut bytes = vec![0u8; stripe as usize];
            rank.read_local(dev, c, 0, &mut bytes);
            ok = verify_stripe(&matgen::from_bytes_f64(&bytes), n, r, ns);
            assert!(ok, "rank {r}: C stripe mismatch");
        }
        let mut o = out2.lock();
        o.0 = o.0.max(elapsed);
        o.1 &= ok;
    })
    .unwrap();

    let (elapsed, verified) = *out.lock();
    CannonResult { elapsed, verified: verified && want_verify }
}
