//! MPI+OpenMP implementation of the ring matmul (the Fig. 7 baseline).
//!
//! Same decomposition and overlap scheme as the DiOMP version, but the
//! ring shift is a two-sided `Isend`/`Irecv` pair with `Waitall`, device
//! buffers travel over CUDA-aware staging paths, and device memory is
//! managed by the baseline libomptarget-style allocator — the extra
//! machinery Listing 2 of the paper illustrates.

use std::sync::Arc;

use diomp_device::{DataMode, DeviceTable, KernelBody};
use diomp_fabric::{FabricWorld, Loc, MpiRank};
use diomp_sim::{ClusterSpec, Dur, Sim, Topology};
use parking_lot::Mutex;

use crate::matgen;

use super::{gemm_body, verify_stripe, CannonConfig, CannonResult};

/// Run the MPI+OpenMP ring matmul.
pub fn run(cfg: &CannonConfig) -> CannonResult {
    let mut sim = Sim::new();
    let cluster = ClusterSpec::with_total_gpus(cfg.platform.clone(), cfg.gpus);
    let topo = Arc::new(Topology::build(&sim.handle(), cluster));
    let cap = cfg.heap_bytes().max(64 << 20);
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), cfg.mode, Some(cap));
    let world = FabricWorld::new(topo, devs, cfg.gpus);

    let out: Arc<Mutex<(Dur, bool)>> = Arc::new(Mutex::new((Dur::ZERO, true)));
    let want_verify = cfg.verify && cfg.mode == DataMode::Functional;

    for r in 0..cfg.gpus {
        let world = world.clone();
        let out = out.clone();
        let cfg = cfg.clone();
        sim.spawn(format!("mpi-rank{r}"), move |ctx| {
            let mpi = MpiRank::new(world.clone(), r);
            let p = cfg.gpus;
            let n = cfg.n;
            let ns = cfg.ns();
            let stripe = cfg.stripe_bytes();
            let dev = world.primary_dev(r).clone();

            // Baseline device allocation (cudaMalloc-style).
            let a = dev.malloc(stripe, 256).unwrap();
            let b0 = dev.malloc(stripe, 256).unwrap();
            let b1 = dev.malloc(stripe, 256).unwrap();
            let c = dev.malloc(stripe, 256).unwrap();
            if cfg.mode == DataMode::Functional {
                dev.mem.write(a, &matgen::to_bytes_f64(&matgen::a_stripe(n, r * ns, ns))).unwrap();
                dev.mem.write(b0, &matgen::to_bytes_f64(&matgen::b_stripe(n, r * ns, ns))).unwrap();
            }
            mpi.barrier(ctx);

            let t0 = ctx.now();
            let bufs = [b0, b1];
            for s in 0..p {
                let j = (r + s) % p;
                let cur = bufs[s % 2];
                let nxt = bufs[(s + 1) % 2];

                let body: Option<KernelBody> = if cfg.mode == DataMode::Functional {
                    let (aa, ba, ca) = (a, cur, c);
                    Some(Box::new(move |mem| gemm_body(mem, aa, ba, ca, ns, n, j)))
                } else {
                    None
                };
                let stream = dev.acquire_stream(ctx);
                let kernel_done = dev.launch(ctx.handle(), stream, &cfg.gemm_cost(), body);
                dev.release_stream(stream);

                // Ring shift with explicit two-sided messaging.
                if s + 1 < p {
                    let left = (r + p - 1) % p;
                    let right = (r + 1) % p;
                    let tag = 7000 + s as u64;
                    let rr =
                        mpi.irecv(ctx, Some(right), Some(tag), Loc::dev(r, nxt), stripe).unwrap();
                    let sr = mpi.isend(ctx, left, tag, Loc::dev(r, cur), stripe).unwrap();
                    mpi.waitall(ctx, &[rr, sr]);
                }
                ctx.sleep_until(kernel_done);
                mpi.barrier(ctx);
            }
            let elapsed = ctx.now().since(t0);

            let mut ok = true;
            if cfg.verify && cfg.mode == DataMode::Functional {
                let mut bytes = vec![0u8; stripe as usize];
                dev.mem.read(c, &mut bytes).unwrap();
                ok = verify_stripe(&matgen::from_bytes_f64(&bytes), n, r, ns);
                assert!(ok, "rank {r}: C stripe mismatch (MPI)");
            }
            let mut o = out.lock();
            o.0 = o.0.max(elapsed);
            o.1 &= ok;
        });
    }
    sim.run().unwrap();
    let (elapsed, verified) = *out.lock();
    CannonResult { elapsed, verified: verified && want_verify }
}
