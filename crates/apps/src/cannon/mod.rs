//! Ring matrix multiplication (paper §4.4).
//!
//! `C = A × B` on P devices with the paper's 1-D ring decomposition:
//! rank *r* owns row-stripes `A_r`, `B_r`, `C_r` of height `Ns = N/P` and
//! an extra B stripe for communication/computation overlap. Each of the
//! P iterations multiplies the `Ns×Ns` block `A_r[:, j·Ns..]` with the
//! currently-held B stripe `B_j` (workload `N·Ns·Ns`, as in the paper)
//! while the stripe simultaneously ring-shifts to the left neighbour.
//!
//! Two implementations share this module's setup and verification:
//! [`diomp::run`] (one-sided `ompx_put` + `ompx_fence`, GPUDirect paths
//! intra-node) and [`mpi::run`] (`MPI_Isend`/`Irecv`/`Waitall` over
//! CUDA-aware staging) — the Fig. 7 comparison.

pub mod diomp;
pub mod mpi;

use diomp_device::{DataMode, DeviceMem, KernelCost};
use diomp_sim::{Dur, PlatformSpec};

use crate::matgen;

/// Problem + machine configuration for one matmul run.
#[derive(Clone)]
pub struct CannonConfig {
    /// Hardware platform.
    pub platform: PlatformSpec,
    /// Total devices (= ranks; one device per rank).
    pub gpus: usize,
    /// Matrix dimension N (divisible by `gpus`).
    pub n: usize,
    /// Functional (verify) or CostOnly (paper scale).
    pub mode: DataMode,
    /// Check the result against the serial reference (Functional only).
    pub verify: bool,
}

impl CannonConfig {
    /// Stripe height. When N does not divide evenly (e.g. 30240 on 64
    /// GCDs), the matrix is padded up to the next multiple — the manual
    /// padding practice the paper itself recommends for symmetric
    /// allocation (§3.2). Functional verification requires exact
    /// divisibility.
    pub fn ns(&self) -> usize {
        if !self.n.is_multiple_of(self.gpus) {
            assert!(
                self.mode == DataMode::CostOnly,
                "Functional runs need N divisible by the device count"
            );
        }
        self.n.div_ceil(self.gpus)
    }

    /// Stripe size in bytes.
    pub fn stripe_bytes(&self) -> u64 {
        (self.ns() * self.n * 8) as u64
    }

    /// Kernel cost of one iteration's block GEMM.
    pub fn gemm_cost(&self) -> KernelCost {
        KernelCost::Gemm { m: self.ns() as u64, n: self.n as u64, k: self.ns() as u64, dtype: 8 }
    }

    /// Global heap needed per device: A, B×2, C stripes + slack, scaled
    /// so the symmetric region (75 % of the heap) holds them.
    pub fn heap_bytes(&self) -> u64 {
        (self.stripe_bytes() * 4 + (2 << 20)) * 3 / 2
    }
}

/// Result of one run.
#[derive(Clone, Copy, Debug)]
pub struct CannonResult {
    /// Virtual time of the compute+communication phase (max over ranks).
    pub elapsed: Dur,
    /// Whether verification ran and passed.
    pub verified: bool,
}

/// The GEMM body executed on real data in Functional mode:
/// `C += A[:, j*ns..(j+1)*ns] × Bcur`, all stripes row-major `ns×n`
/// resident in device memory at the given addresses.
pub(crate) fn gemm_body(
    mem: &DeviceMem,
    a_addr: u64,
    b_addr: u64,
    c_addr: u64,
    ns: usize,
    n: usize,
    j: usize,
) {
    let stripe = (ns * n * 8) as u64;
    let mut a = vec![0u8; stripe as usize];
    let mut b = vec![0u8; stripe as usize];
    let mut c = vec![0u8; stripe as usize];
    mem.read(a_addr, &mut a).expect("A stripe read");
    mem.read(b_addr, &mut b).expect("B stripe read");
    mem.read(c_addr, &mut c).expect("C stripe read");
    let a = matgen::from_bytes_f64(&a);
    let b = matgen::from_bytes_f64(&b);
    let mut c = matgen::from_bytes_f64(&c);
    for i in 0..ns {
        for k in 0..ns {
            let av = a[i * n + j * ns + k];
            if av == 0.0 {
                continue;
            }
            for col in 0..n {
                c[i * n + col] += av * b[k * n + col];
            }
        }
    }
    mem.write(c_addr, &matgen::to_bytes_f64(&c)).expect("C stripe write");
}

/// Verify a C stripe against the serial reference.
pub(crate) fn verify_stripe(c: &[f64], n: usize, rank: usize, ns: usize) -> bool {
    let reference = matgen::serial_matmul_stripe(n, rank * ns, ns);
    c.iter().zip(&reference).all(|(x, y)| (x - y).abs() < 1e-6)
}

/// Strong-scaling speedup series for Fig. 7: run every entry of
/// `gpus_list` once and report `(gpus, speedup)` relative to the first
/// entry (the single-node baseline in the paper). `baseline` overrides
/// the reference time when comparing implementations against a common
/// baseline (Fig. 8 uses MPI's single-node time for both curves).
pub fn speedup_series(
    runs: impl Fn(usize) -> CannonResult,
    gpus_list: &[usize],
    baseline: Option<Dur>,
) -> Vec<(usize, f64)> {
    let times: Vec<(usize, Dur)> = gpus_list.iter().map(|&g| (g, runs(g).elapsed)).collect();
    let base = baseline.unwrap_or(times[0].1).as_nanos() as f64;
    times.into_iter().map(|(g, t)| (g, base / t.as_nanos() as f64)).collect()
}
