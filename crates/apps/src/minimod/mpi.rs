//! MPI+OpenMP implementation of Minimod (paper Listing 2).
//!
//! The halo exchange needs per-neighbour `Isend`/`Irecv` pairs, a request
//! array, and `Waitall` — plus `use_device_ptr`-style device-buffer
//! handling — roughly double the lines of the DiOMP version.

use std::sync::Arc;

use diomp_device::{DataMode, DeviceTable, KernelBody};
use diomp_fabric::{FabricWorld, Loc, MpiRank, MpiReq};
use diomp_sim::{ClusterSpec, Dur, Sim, Topology};
use parking_lot::Mutex;

use crate::matgen;

use super::{
    assemble_wavefield, initial_slab, interior_bytes, serial_reference, stencil_body, verify_slab,
    MinimodConfig, MinimodResult, SlabParts, RADIUS,
};

/// Run the MPI+OpenMP Minimod.
pub fn run(cfg: &MinimodConfig) -> MinimodResult {
    let mut sim = Sim::new();
    let cluster = ClusterSpec::with_total_gpus(cfg.platform.clone(), cfg.gpus);
    let topo = Arc::new(Topology::build(&sim.handle(), cluster));
    let cap = cfg.heap_bytes().max(64 << 20);
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), cfg.mode, Some(cap));
    let world = FabricWorld::new(topo, devs, cfg.gpus);

    let out: Arc<Mutex<(Dur, bool)>> = Arc::new(Mutex::new((Dur::ZERO, true)));
    let parts: SlabParts = Arc::new(Mutex::new(Vec::new()));
    let want_verify = cfg.verify && cfg.mode == DataMode::Functional;
    let functional = cfg.mode == DataMode::Functional;
    let reference =
        if want_verify { Arc::new(serial_reference(cfg)) } else { Arc::new(Vec::new()) };

    for r in 0..cfg.gpus {
        let world = world.clone();
        let out = out.clone();
        let parts = parts.clone();
        let reference = reference.clone();
        let cfg = cfg.clone();
        sim.spawn(format!("mpi-rank{r}"), move |ctx| {
            let mpi = MpiRank::new(world.clone(), r);
            let p = cfg.gpus;
            let nzl = cfg.nz_local();
            let plane = cfg.plane_bytes();
            let halo = cfg.halo_bytes();
            let slab = cfg.slab_bytes();
            let dev = world.primary_dev(r).clone();

            let mut u = dev.malloc(slab, 256).unwrap();
            let mut up = dev.malloc(slab, 256).unwrap();
            let mut un = dev.malloc(slab, 256).unwrap();
            if cfg.mode == DataMode::Functional {
                dev.mem.write(u, &matgen::to_bytes_f32(&initial_slab(&cfg, r))).unwrap();
            }
            mpi.barrier(ctx);

            let t0 = ctx.now();
            for step in 0..cfg.steps {
                // Listing-2-style halo exchange: request array, Isend and
                // Irecv per neighbour, Waitall.
                let mut reqs: Vec<MpiReq> = Vec::with_capacity(4);
                let tag_up = 9000 + 2 * step as u64;
                let tag_dn = 9001 + 2 * step as u64;
                if r + 1 < p {
                    reqs.push(
                        mpi.irecv(
                            ctx,
                            Some(r + 1),
                            Some(tag_dn),
                            Loc::dev(r, u + (RADIUS + nzl) as u64 * plane),
                            halo,
                        )
                        .unwrap(),
                    );
                    reqs.push(
                        mpi.isend(ctx, r + 1, tag_up, Loc::dev(r, u + nzl as u64 * plane), halo)
                            .unwrap(),
                    );
                }
                if r > 0 {
                    reqs.push(
                        mpi.irecv(ctx, Some(r - 1), Some(tag_up), Loc::dev(r, u), halo).unwrap(),
                    );
                    reqs.push(
                        mpi.isend(ctx, r - 1, tag_dn, Loc::dev(r, u + RADIUS as u64 * plane), halo)
                            .unwrap(),
                    );
                }
                // Interior sweep overlaps with the halo transfers (same
                // optimisation as the DiOMP version, for a fair baseline).
                let (ua, upa, una) = (u, up, un);
                let (nx, ny) = (cfg.nx, cfg.ny);
                let (first, last) = (r == 0, r == p - 1);
                let functional = cfg.mode == DataMode::Functional;
                let mk_body = move |zl: std::ops::Range<usize>| -> Option<KernelBody> {
                    if !functional {
                        return None;
                    }
                    Some(Box::new(move |mem: &diomp_device::DeviceMem| {
                        stencil_body(mem, ua, upa, una, nx, ny, nzl, zl, first, last)
                    }))
                };
                let inner = cfg.interior_planes();
                let stream = dev.acquire_stream(ctx);
                if inner > 0 {
                    dev.launch(
                        ctx.handle(),
                        stream,
                        &cfg.stencil_cost(inner),
                        mk_body(RADIUS..nzl - RADIUS),
                    );
                }
                mpi.waitall(ctx, &reqs);
                // Boundary sweep after the halos land.
                let low = 0..RADIUS.min(nzl);
                let high = nzl.saturating_sub(RADIUS).max(RADIUS)..nzl;
                if !low.is_empty() {
                    dev.launch(ctx.handle(), stream, &cfg.stencil_cost(low.len()), mk_body(low));
                }
                if !high.is_empty() {
                    dev.launch(ctx.handle(), stream, &cfg.stencil_cost(high.len()), mk_body(high));
                }
                let tail = dev.pool.lock().tail(stream);
                dev.release_stream(stream);
                ctx.sleep_until(tail);
                mpi.barrier(ctx);

                let tmp = up;
                up = u;
                u = un;
                un = tmp;
            }
            mpi.barrier(ctx);
            let elapsed = ctx.now().since(t0);

            let mut ok = true;
            if cfg.mode == DataMode::Functional {
                let mut bytes = vec![0u8; slab as usize];
                dev.mem.read(u, &mut bytes).unwrap();
                if cfg.verify {
                    ok = verify_slab(&cfg, r, &matgen::from_bytes_f32(&bytes), &reference);
                    assert!(ok, "rank {r}: wavefield mismatch (MPI)");
                }
                parts.lock().push((r, interior_bytes(&cfg, &bytes)));
            }
            let mut o = out.lock();
            o.0 = o.0.max(elapsed);
            o.1 &= ok;
        });
    }
    let report = sim.run().unwrap();
    let (elapsed, verified) = *out.lock();
    let collected = std::mem::take(&mut *parts.lock());
    let wavefield = if functional { Some(assemble_wavefield(cfg, collected)) } else { None };
    MinimodResult {
        elapsed,
        verified: verified && want_verify,
        entries: report.entries_processed,
        wavefield,
    }
}
