//! DiOMP implementation of Minimod (paper Listing 1).
//!
//! Halo exchange is two one-sided `ompx_put` calls and one fence —
//! roughly half the code of the MPI version, which is the
//! programmability claim of §4.5 (quantified in `crate::loc`).

use std::sync::Arc;

use diomp_core::{DiompConfig, DiompRuntime, GPtr};
use diomp_device::{DataMode, KernelBody};
use diomp_sim::{ClusterSpec, Dur};
use parking_lot::Mutex;

use crate::matgen;

use super::{
    initial_slab, serial_reference, stencil_body, verify_slab, MinimodConfig, MinimodResult, RADIUS,
};

/// Run the DiOMP Minimod; returns the stepping-loop time (max over ranks).
pub fn run(cfg: &MinimodConfig) -> MinimodResult {
    let cluster = ClusterSpec::with_total_gpus(cfg.platform.clone(), cfg.gpus);
    let dcfg = DiompConfig::new(cluster)
        .with_mode(cfg.mode)
        .with_allocator(diomp_core::AllocKind::Linear)
        .with_heap(cfg.heap_bytes());
    let out: Arc<Mutex<(Dur, bool)>> = Arc::new(Mutex::new((Dur::ZERO, true)));
    let out2 = out.clone();
    let want_verify = cfg.verify && cfg.mode == DataMode::Functional;
    let reference =
        if want_verify { Arc::new(serial_reference(cfg)) } else { Arc::new(Vec::new()) };
    let cfg = cfg.clone();

    DiompRuntime::run(dcfg, move |ctx, rank| {
        let p = rank.nranks();
        let r = rank.rank;
        let nzl = cfg.nz_local();
        let plane = cfg.plane_bytes();
        let halo = cfg.halo_bytes();
        let slab = cfg.slab_bytes();
        let dev = rank.primary();

        // Three slabs rotate through the wave-equation time levels.
        let mut u = rank.alloc_sym(ctx, slab).unwrap();
        let mut up = rank.alloc_sym(ctx, slab).unwrap();
        let mut un = rank.alloc_sym(ctx, slab).unwrap();
        if cfg.mode == DataMode::Functional {
            rank.write_local(dev, u, 0, &matgen::to_bytes_f32(&initial_slab(&cfg, r)));
        }
        rank.barrier(ctx);

        let world = rank.shared.world_group();
        let t0 = ctx.now();
        for _step in 0..cfg.steps {
            // Listing-1-shaped halo exchange, overlapped with the interior
            // sweep (paper §3.2: "efficient overlap of communication and
            // computation"). Pull-based one-sided gets avoid the
            // documented Platform A put-path issue (Fig. 4a).
            if r + 1 < p {
                // upper neighbour's bottom RADIUS interior planes → my top halo
                rank.get(
                    ctx,
                    r + 1,
                    u,
                    RADIUS as u64 * plane,
                    u,
                    (RADIUS + nzl) as u64 * plane,
                    halo,
                )
                .unwrap();
            }
            if r > 0 {
                // lower neighbour's top RADIUS interior planes → my bottom halo
                rank.get(ctx, r - 1, u, nzl as u64 * plane, u, 0, halo).unwrap();
            }

            // Interior sweep needs no halo data: launch it concurrently
            // with the transfers.
            let (ua, upa, una) =
                (rank.dev_addr(dev, u.off), rank.dev_addr(dev, up.off), rank.dev_addr(dev, un.off));
            let (nx, ny) = (cfg.nx, cfg.ny);
            let (first, last) = (r == 0, r == p - 1);
            let functional = cfg.mode == DataMode::Functional;
            let mk_body = move |zl: std::ops::Range<usize>| -> Option<KernelBody> {
                if !functional {
                    return None;
                }
                Some(Box::new(move |mem: &diomp_device::DeviceMem| {
                    stencil_body(mem, ua, upa, una, nx, ny, nzl, zl, first, last)
                }))
            };
            let inner = cfg.interior_planes();
            if inner > 0 {
                rank.target_launch_nowait(
                    ctx,
                    dev,
                    &cfg.stencil_cost(inner),
                    mk_body(RADIUS..nzl - RADIUS),
                );
            }
            // Hybrid polling: one fence drains network completions and the
            // interior kernel's stream together (paper §3.2).
            rank.fence(ctx);

            // Boundary sweep once the halos are in place.
            let low = 0..RADIUS.min(nzl);
            let high = nzl.saturating_sub(RADIUS).max(RADIUS)..nzl;
            let planes = low.len() + high.len();
            if !low.is_empty() {
                rank.target_launch_nowait(ctx, dev, &cfg.stencil_cost(low.len()), mk_body(low));
            }
            if !high.is_empty() {
                rank.target_launch_nowait(ctx, dev, &cfg.stencil_cost(high.len()), mk_body(high));
            }
            let _ = planes;
            rank.fence(ctx);
            // Target-side quiescence: the next step's one-sided gets may
            // only read a neighbour's slab once its kernel has written it.
            rank.barrier_group(ctx, &world);

            // Rotate time levels: up ← u, u ← un, un ← old up.
            let tmp: GPtr = up;
            up = u;
            u = un;
            un = tmp;
        }
        rank.barrier(ctx);
        let elapsed = ctx.now().since(t0);

        let mut ok = true;
        if want_verify {
            let mut bytes = vec![0u8; slab as usize];
            rank.read_local(dev, u, 0, &mut bytes);
            ok = verify_slab(&cfg, r, &matgen::from_bytes_f32(&bytes), &reference);
            assert!(ok, "rank {r}: wavefield mismatch (DiOMP)");
        }
        let mut o = out2.lock();
        o.0 = o.0.max(elapsed);
        o.1 &= ok;
    })
    .unwrap();

    let (elapsed, verified) = *out.lock();
    MinimodResult { elapsed, verified: verified && want_verify }
}
