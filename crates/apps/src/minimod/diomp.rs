//! DiOMP implementation of Minimod (paper Listing 1).
//!
//! Halo exchange comes in three selectable styles ([`HaloStyle`]):
//!
//! * **Get** — two one-sided `ompx_get` calls, one fence and a group
//!   barrier per step: roughly half the code of the MPI version, which
//!   is the programmability claim of §4.5 (quantified in `crate::loc`).
//! * **NotifyOrdered** — push-based `ompx_put_notify` per face, drained
//!   with per-id ordered `notify_wait` calls. Notification ids are
//!   reused every step, so a per-step barrier keeps ranks in lockstep
//!   (a fast sender must not overwrite an unconsumed notification).
//! * **NotifyWaitsome** — the notification-driven exchange: ids carry a
//!   step-parity bit (`dir + 2·(step mod 2)`), making consecutive
//!   steps' id sets disjoint, and arrivals are drained with one ranged
//!   `notify_waitsome` loop. No per-step barrier runs at all — a rank
//!   can be at most one step ahead of its neighbours (it cannot finish
//!   step *s* before they post their step-*s* faces), and one step of
//!   skew touches only disjoint slab regions. Dropping the barrier is
//!   what the paper's lightweight remote-completion signalling buys.
//!
//! All styles produce byte-identical wavefields (asserted by the
//! `fig_halo` bench and the apps integration tests).

use std::sync::Arc;

use diomp_core::{Conduit, DiompConfig, DiompRuntime, GPtr};
use diomp_device::{DataMode, KernelBody};
use diomp_sim::{ClusterSpec, Dur};
use parking_lot::Mutex;

use crate::matgen;

use super::{
    assemble_wavefield, initial_slab, interior_bytes, serial_reference, stencil_body, verify_slab,
    HaloStyle, MinimodConfig, MinimodResult, SlabParts, RADIUS,
};

/// Notification id for the face arriving from the lower neighbour
/// (deposited into the bottom halo). The waitsome style adds
/// `2 · (step mod 2)` for parity.
const FROM_BELOW: u32 = 0;
/// Notification id for the face arriving from the upper neighbour.
const FROM_ABOVE: u32 = 1;

/// Run the DiOMP Minimod; returns the stepping-loop time (max over ranks).
pub fn run(cfg: &MinimodConfig) -> MinimodResult {
    let cluster = ClusterSpec::with_total_gpus(cfg.platform.clone(), cfg.gpus);
    let conduit = match cfg.halo {
        HaloStyle::Get => Conduit::GasnetEx,
        // Notifications are a GASPI concept: the notify styles run on the
        // GPI-2 conduit (InfiniBand platforms only).
        HaloStyle::NotifyOrdered | HaloStyle::NotifyWaitsome => Conduit::Gpi2,
    };
    let dcfg = DiompConfig::builder(cluster)
        .with_mode(cfg.mode)
        .with_conduit(conduit)
        .with_allocator(diomp_core::AllocKind::Linear)
        .with_heap(cfg.heap_bytes());
    // tuned() resolution happens once at build(), against the conduit
    // recorded above (explicit > tuned > disabled).
    let dcfg = if cfg.tuned { dcfg.tuned() } else { dcfg }.build();
    let out: Arc<Mutex<(Dur, bool)>> = Arc::new(Mutex::new((Dur::ZERO, true)));
    let out2 = out.clone();
    let parts: SlabParts = Arc::new(Mutex::new(Vec::new()));
    let parts2 = parts.clone();
    let want_verify = cfg.verify && cfg.mode == DataMode::Functional;
    let functional = cfg.mode == DataMode::Functional;
    let reference =
        if want_verify { Arc::new(serial_reference(cfg)) } else { Arc::new(Vec::new()) };
    let cfg = cfg.clone();
    let cfg_out = cfg.clone();

    let report = DiompRuntime::run(dcfg, move |ctx, rank| {
        let p = rank.nranks();
        let r = rank.rank;
        let nzl = cfg.nz_local();
        let plane = cfg.plane_bytes();
        let halo = cfg.halo_bytes();
        let slab = cfg.slab_bytes();
        let dev = rank.primary();

        // Three slabs rotate through the wave-equation time levels.
        let mut u = rank.alloc_sym(ctx, slab).unwrap();
        let mut up = rank.alloc_sym(ctx, slab).unwrap();
        let mut un = rank.alloc_sym(ctx, slab).unwrap();
        if cfg.mode == DataMode::Functional {
            rank.write_local(dev, u, 0, &matgen::to_bytes_f32(&initial_slab(&cfg, r)));
        }
        rank.barrier(ctx);

        let world = rank.shared.world_group();
        let t0 = ctx.now();
        for step in 0..cfg.steps {
            // Halo exchange, overlapped with the interior sweep (paper
            // §3.2: "efficient overlap of communication and computation").
            match cfg.halo {
                HaloStyle::Get => {
                    // Listing-1-shaped pull: one-sided gets avoid the
                    // documented Platform A put-path issue (Fig. 4a).
                    if r + 1 < p {
                        // upper neighbour's bottom RADIUS interior planes
                        // → my top halo
                        rank.get(
                            ctx,
                            r + 1,
                            u,
                            RADIUS as u64 * plane,
                            u,
                            (RADIUS + nzl) as u64 * plane,
                            halo,
                        )
                        .unwrap();
                    }
                    if r > 0 {
                        // lower neighbour's top RADIUS interior planes →
                        // my bottom halo
                        rank.get(ctx, r - 1, u, nzl as u64 * plane, u, 0, halo).unwrap();
                    }
                }
                HaloStyle::NotifyOrdered | HaloStyle::NotifyWaitsome => {
                    // Push-based: write my boundary interior planes into
                    // each neighbour's halo, notification trailing the
                    // payload. The value carries step+1 as a sanity tag.
                    let base = match cfg.halo {
                        HaloStyle::NotifyWaitsome => 2 * (step as u32 % 2),
                        _ => 0,
                    };
                    let value = step as u64 + 1;
                    if r + 1 < p {
                        // my top interior planes → (r+1)'s bottom halo
                        rank.put_notify(
                            ctx,
                            r + 1,
                            u,
                            0,
                            u,
                            nzl as u64 * plane,
                            halo,
                            base + FROM_BELOW,
                            value,
                        )
                        .unwrap();
                    }
                    if r > 0 {
                        // my bottom interior planes → (r-1)'s top halo
                        rank.put_notify(
                            ctx,
                            r - 1,
                            u,
                            (RADIUS + nzl) as u64 * plane,
                            u,
                            RADIUS as u64 * plane,
                            halo,
                            base + FROM_ABOVE,
                            value,
                        )
                        .unwrap();
                    }
                }
            }

            // Interior sweep needs no halo data: launch it concurrently
            // with the transfers.
            let (ua, upa, una) =
                (rank.dev_addr(dev, u.off), rank.dev_addr(dev, up.off), rank.dev_addr(dev, un.off));
            let (nx, ny) = (cfg.nx, cfg.ny);
            let (first, last) = (r == 0, r == p - 1);
            let functional = cfg.mode == DataMode::Functional;
            let mk_body = move |zl: std::ops::Range<usize>| -> Option<KernelBody> {
                if !functional {
                    return None;
                }
                Some(Box::new(move |mem: &diomp_device::DeviceMem| {
                    stencil_body(mem, ua, upa, una, nx, ny, nzl, zl, first, last)
                }))
            };
            let inner = cfg.interior_planes();
            if inner > 0 {
                rank.target_launch_nowait(
                    ctx,
                    dev,
                    &cfg.stencil_cost(inner),
                    mk_body(RADIUS..nzl - RADIUS),
                );
            }
            // Hybrid polling: one fence drains network completions and the
            // interior kernel's stream together (paper §3.2).
            rank.fence(ctx);

            // Incoming halos: the get styles are already remotely complete
            // after the fence; the notify styles drain arrivals here.
            let nnb = (r > 0) as u32 + (r + 1 < p) as u32;
            match cfg.halo {
                HaloStyle::Get => {}
                HaloStyle::NotifyOrdered => {
                    // Per-id ordered waits, fixed drain order.
                    if r > 0 {
                        assert_eq!(rank.notify_wait(ctx, FROM_BELOW), step as u64 + 1);
                    }
                    if r + 1 < p {
                        assert_eq!(rank.notify_wait(ctx, FROM_ABOVE), step as u64 + 1);
                    }
                }
                HaloStyle::NotifyWaitsome => {
                    // One ranged drain over this step's parity window:
                    // whichever face lands first is consumed first.
                    let base = 2 * (step as u32 % 2);
                    for _ in 0..nnb {
                        let (_, value) = rank.notify_waitsome(ctx, base, 2);
                        assert_eq!(value, step as u64 + 1, "stale-step notification");
                    }
                }
            }

            // Boundary sweep once the halos are in place.
            let low = 0..RADIUS.min(nzl);
            let high = nzl.saturating_sub(RADIUS).max(RADIUS)..nzl;
            if !low.is_empty() {
                rank.target_launch_nowait(ctx, dev, &cfg.stencil_cost(low.len()), mk_body(low));
            }
            if !high.is_empty() {
                rank.target_launch_nowait(ctx, dev, &cfg.stencil_cost(high.len()), mk_body(high));
            }
            rank.fence(ctx);
            match cfg.halo {
                // Target-side quiescence: the next step's one-sided gets
                // may only read a neighbour's slab once its kernel has
                // written it — and the ordered notify style reuses its id
                // set, so consumption must complete before the next posts.
                HaloStyle::Get | HaloStyle::NotifyOrdered => rank.barrier_group(ctx, &world),
                // Parity ids + the waitsome drain already order
                // everything: no per-step barrier.
                HaloStyle::NotifyWaitsome => {}
            }

            // Rotate time levels: up ← u, u ← un, un ← old up.
            let tmp: GPtr = up;
            up = u;
            u = un;
            un = tmp;
        }
        rank.barrier(ctx);
        let elapsed = ctx.now().since(t0);

        let mut ok = true;
        if functional {
            let mut bytes = vec![0u8; slab as usize];
            rank.read_local(dev, u, 0, &mut bytes);
            if want_verify {
                ok = verify_slab(&cfg, r, &matgen::from_bytes_f32(&bytes), &reference);
                assert!(ok, "rank {r}: wavefield mismatch (DiOMP {:?})", cfg.halo);
            }
            parts2.lock().push((r, interior_bytes(&cfg, &bytes)));
        }
        let mut o = out2.lock();
        o.0 = o.0.max(elapsed);
        o.1 &= ok;
    })
    .unwrap();

    let (elapsed, verified) = *out.lock();
    let collected = std::mem::take(&mut *parts.lock());
    let wavefield = if functional { Some(assemble_wavefield(&cfg_out, collected)) } else { None };
    MinimodResult {
        elapsed,
        verified: verified && want_verify,
        entries: report.entries_processed,
        wavefield,
    }
}
