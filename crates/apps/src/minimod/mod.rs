//! Minimod: acoustic-isotropic wave propagation (paper §4.5).
//!
//! The proxy app solves the finite-difference discretised wave equation
//! with an 8th-order (radius 4) stencil. This reproduction implements the
//! acoustic isotropic kernel on a `[z][y][x]` grid, 1-D-decomposed along
//! z across devices, with 4-plane halo exchange per time step:
//!
//! * [`diomp::run`] — the paper's DiOMP port (Listing 1): one `ompx_put`
//!   per neighbour and one fence, ~half the lines of the MPI version.
//!   Three halo-exchange styles are selectable via
//!   [`MinimodConfig::halo`] (see [`HaloStyle`]): the pull-based
//!   get+fence+barrier path, and two push-based GASPI-notification
//!   paths — per-id ordered waits, and a single ranged-waitsome drain
//!   with parity ids that needs no per-step barrier at all.
//! * [`mpi::run`] — the MPI+OpenMP baseline (Listing 2): per-neighbour
//!   `Isend`/`Irecv` with request arrays and `Waitall`.
//!
//! Verification (Functional mode) runs the same number of steps with the
//! serial reference kernel over the full grid and compares every rank's
//! interior slab. Functional runs additionally capture the assembled
//! global wavefield ([`MinimodResult::wavefield`]) so the halo styles can
//! be asserted byte-identical against each other and against MPI.

pub mod diomp;
pub mod mpi;

use diomp_device::{DataMode, DeviceMem, KernelCost};
use diomp_sim::{Dur, PlatformSpec};

use crate::matgen::{self, STENCIL_COEFF};

/// Stencil radius (8th order).
pub const RADIUS: usize = 4;

/// Wave-equation update coefficient (`c²·dt²/h²` folded into one scalar).
pub const K: f32 = 0.1;

/// Which halo-exchange protocol the DiOMP implementation runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HaloStyle {
    /// Pull-based: one `ompx_get` per neighbour, a fence, and a per-step
    /// group barrier for target-side quiescence (the paper's Listing-1
    /// shape). Runs on any conduit; this is the default.
    Get,
    /// Push-based GASPI notifications, drained with per-id ordered
    /// `notify_wait` calls. The conservative port: ids are reused every
    /// step, so a per-step barrier must keep ranks in lockstep to stop a
    /// fast sender overwriting an unconsumed notification. Requires the
    /// GPI-2 conduit (InfiniBand platforms).
    NotifyOrdered,
    /// Push-based GASPI notifications with step-parity ids, drained with
    /// one ranged `notify_waitsome` loop — the paper's notification-driven
    /// halo exchange. Parity makes neighbouring steps' ids disjoint, so
    /// no per-step barrier is needed at all: the waitsome drain is the
    /// only synchronisation. Requires the GPI-2 conduit.
    NotifyWaitsome,
}

/// Problem + machine configuration for one Minimod run.
#[derive(Clone)]
pub struct MinimodConfig {
    /// Hardware platform.
    pub platform: PlatformSpec,
    /// Total devices (= ranks).
    pub gpus: usize,
    /// Grid extents (nz divisible by `gpus`).
    pub nx: usize,
    /// Grid Y extent.
    pub ny: usize,
    /// Grid Z extent.
    pub nz: usize,
    /// Time steps.
    pub steps: usize,
    /// Functional (verify) or CostOnly (paper scale).
    pub mode: DataMode,
    /// Compare against the serial reference.
    pub verify: bool,
    /// Halo-exchange protocol for the DiOMP implementation (ignored by
    /// [`mpi::run`]).
    pub halo: HaloStyle,
    /// Apply the transport autotuner to the DiOMP runtime
    /// (`DiompConfig::tuned()`): knee-derived RMA pipeline parameters and
    /// protocol-selecting collectives. Byte-identical wavefields either
    /// way (property-tested); ignored by [`mpi::run`].
    pub tuned: bool,
}

impl MinimodConfig {
    /// Planes per rank.
    pub fn nz_local(&self) -> usize {
        if !self.nz.is_multiple_of(self.gpus) {
            // Pad the grid up to the next multiple of the rank count
            // (CostOnly sweeps only; Functional verification needs exact
            // divisibility).
            assert!(
                self.mode == DataMode::CostOnly,
                "Functional runs need nz divisible by the device count"
            );
        }
        let nzl = self.nz.div_ceil(self.gpus);
        assert!(nzl >= RADIUS, "slab of {nzl} planes cannot cover the stencil radius {RADIUS}");
        nzl
    }

    /// Bytes of one grid plane (f32).
    pub fn plane_bytes(&self) -> u64 {
        (self.nx * self.ny * 4) as u64
    }

    /// Bytes of one rank's slab including both halos.
    pub fn slab_bytes(&self) -> u64 {
        (self.nz_local() + 2 * RADIUS) as u64 * self.plane_bytes()
    }

    /// Bytes of one halo exchange message (RADIUS planes).
    pub fn halo_bytes(&self) -> u64 {
        RADIUS as u64 * self.plane_bytes()
    }

    /// Kernel cost of a stencil sweep over `planes` grid planes.
    /// Calibration: the fused acoustic kernel streams ~18 B/cell from
    /// DRAM after cache filtering and does ~61 flops/cell (25-point
    /// stencil + update).
    pub fn stencil_cost(&self, planes: usize) -> KernelCost {
        KernelCost::Stencil {
            cells: (self.nx * self.ny * planes) as u64,
            bytes_per_cell: 18.0,
            flops_per_cell: 61.0,
        }
    }

    /// Planes whose stencils need no halo data (updatable while the halo
    /// exchange is in flight): the slab interior minus RADIUS on each end.
    pub fn interior_planes(&self) -> usize {
        self.nz_local().saturating_sub(2 * RADIUS)
    }

    /// Global heap needed per device: three slabs + slack, scaled so the
    /// symmetric region (75 % of the heap) holds them.
    pub fn heap_bytes(&self) -> u64 {
        (self.slab_bytes() * 3 + (2 << 20)) * 3 / 2
    }
}

/// Result of one run.
#[derive(Clone, Debug)]
pub struct MinimodResult {
    /// Virtual time of the stepping loop (max over ranks).
    pub elapsed: Dur,
    /// Whether verification ran and passed.
    pub verified: bool,
    /// Scheduler queue entries the backing simulation processed — the
    /// wall-clock cost metric the batched wait primitives optimise.
    pub entries: u64,
    /// Final global wavefield (interior planes, rank-major z order),
    /// captured in Functional mode; `None` for CostOnly runs. Lets the
    /// halo styles be compared byte-for-byte.
    pub wavefield: Option<Vec<u8>>,
}

/// Shared collector of per-rank interior slabs: `(rank, bytes)` pairs
/// pushed by each rank task, assembled after the run.
pub(crate) type SlabParts = std::sync::Arc<parking_lot::Mutex<Vec<(usize, Vec<u8>)>>>;

/// Collect per-rank interior slabs (`(rank, bytes)` pairs, halos
/// stripped) into one contiguous rank-major wavefield.
pub(crate) fn assemble_wavefield(cfg: &MinimodConfig, mut parts: Vec<(usize, Vec<u8>)>) -> Vec<u8> {
    parts.sort_by_key(|&(r, _)| r);
    let mut field = Vec::with_capacity(parts.iter().map(|(_, b)| b.len()).sum());
    for (r, bytes) in parts.iter().enumerate() {
        assert_eq!(bytes.0, r, "missing interior slab for rank {r}");
        field.extend_from_slice(&bytes.1);
    }
    assert_eq!(field.len() as u64, cfg.gpus as u64 * cfg.nz_local() as u64 * cfg.plane_bytes());
    field
}

/// A rank's interior slab bytes (halos stripped) out of a full slab.
pub(crate) fn interior_bytes(cfg: &MinimodConfig, slab: &[u8]) -> Vec<u8> {
    let plane = cfg.plane_bytes() as usize;
    slab[RADIUS * plane..(RADIUS + cfg.nz_local()) * plane].to_vec()
}

/// Fill one rank's initial slab (interior planes only; halos zero).
pub(crate) fn initial_slab(cfg: &MinimodConfig, rank: usize) -> Vec<f32> {
    let (nx, ny) = (cfg.nx, cfg.ny);
    let nzl = cfg.nz_local();
    let mut slab = vec![0.0f32; nx * ny * (nzl + 2 * RADIUS)];
    for zl in 0..nzl {
        let zg = rank * nzl + zl;
        for y in 0..ny {
            for x in 0..nx {
                slab[((zl + RADIUS) * ny + y) * nx + x] =
                    matgen::initial_field(nx, ny, cfg.nz, x, y, zg);
            }
        }
    }
    slab
}

/// The stencil body run on real data: reads `u` (with halos) and `up`,
/// writes `un` for local planes `zl_range` (communication/computation
/// overlap splits a step into an interior sweep and a boundary sweep).
/// Addresses are device-space slab bases.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stencil_body(
    mem: &DeviceMem,
    u_addr: u64,
    up_addr: u64,
    un_addr: u64,
    nx: usize,
    ny: usize,
    nzl: usize,
    zl_range: std::ops::Range<usize>,
    first_rank: bool,
    last_rank: bool,
) {
    let slab_len = nx * ny * (nzl + 2 * RADIUS) * 4;
    let mut ub = vec![0u8; slab_len];
    let mut upb = vec![0u8; slab_len];
    mem.read(u_addr, &mut ub).expect("u slab read");
    mem.read(up_addr, &mut upb).expect("up slab read");
    let u = matgen::from_bytes_f32(&ub);
    let up = matgen::from_bytes_f32(&upb);
    // Read-modify-write of the target range only: the boundary sweep must
    // not clobber what the interior sweep already wrote.
    let mut unb = vec![0u8; slab_len];
    mem.read(un_addr, &mut unb).expect("un slab read");
    let mut un = matgen::from_bytes_f32(&unb);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for zl in zl_range {
        assert!(zl < nzl);
        let z = zl + RADIUS; // slab-local plane index
        for y in 0..ny {
            for x in 0..nx {
                let cidx = idx(x, y, z);
                let mut lap = 3.0 * STENCIL_COEFF[0] * u[cidx];
                for d in 1..=RADIUS {
                    let cd = STENCIL_COEFF[d];
                    let xm = if x >= d { u[idx(x - d, y, z)] } else { 0.0 };
                    let xp = if x + d < nx { u[idx(x + d, y, z)] } else { 0.0 };
                    let ym = if y >= d { u[idx(x, y - d, z)] } else { 0.0 };
                    let yp = if y + d < ny { u[idx(x, y + d, z)] } else { 0.0 };
                    // z neighbours come from the halo planes; global
                    // boundary ranks see zero-filled halos, matching the
                    // serial zero boundary.
                    let zm = if first_rank && z - d < RADIUS { 0.0 } else { u[idx(x, y, z - d)] };
                    let zp =
                        if last_rank && z + d >= RADIUS + nzl { 0.0 } else { u[idx(x, y, z + d)] };
                    lap += cd * (xm + xp + ym + yp + zm + zp);
                }
                un[cidx] = 2.0 * u[cidx] - up[cidx] + K * lap;
            }
        }
    }
    mem.write(un_addr, &matgen::to_bytes_f32(&un)).expect("un slab write");
}

/// Run the serial reference for `steps` and return the full final field.
pub(crate) fn serial_reference(cfg: &MinimodConfig) -> Vec<f32> {
    let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
    let mut u = vec![0.0f32; nx * ny * nz];
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                u[(z * ny + y) * nx + x] = matgen::initial_field(nx, ny, nz, x, y, z);
            }
        }
    }
    let mut up = vec![0.0f32; nx * ny * nz];
    let mut un = vec![0.0f32; nx * ny * nz];
    for _ in 0..cfg.steps {
        matgen::serial_step(nx, ny, nz, &u, &up, &mut un, K);
        std::mem::swap(&mut up, &mut u); // u -> up
        std::mem::swap(&mut u, &mut un); // un -> u
    }
    u
}

/// Compare a rank's interior slab against the serial field.
pub(crate) fn verify_slab(
    cfg: &MinimodConfig,
    rank: usize,
    slab: &[f32],
    reference: &[f32],
) -> bool {
    let (nx, ny) = (cfg.nx, cfg.ny);
    let nzl = cfg.nz_local();
    for zl in 0..nzl {
        let zg = rank * nzl + zl;
        for y in 0..ny {
            for x in 0..nx {
                let got = slab[((zl + RADIUS) * ny + y) * nx + x];
                let want = reference[(zg * ny + y) * nx + x];
                if (got - want).abs() > 1e-3 * want.abs().max(1.0) {
                    eprintln!("rank {rank} mismatch at ({x},{y},{zg}): {got} vs {want}");
                    return false;
                }
            }
        }
    }
    true
}
