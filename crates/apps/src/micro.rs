//! Micro-benchmark drivers: point-to-point (Figs. 3–5) and collective
//! (Fig. 6) measurements.
//!
//! Each driver boots a fresh deterministic simulation per data point and
//! returns `(message size, metric)` series. The paper averages 100
//! repetitions after warm-ups; the simulator is deterministic, so one
//! warm-up (to populate caches, streams and communicators) plus a small
//! number of measured repetitions is exact.

use std::sync::Arc;

use diomp_core::{CollEngine, Conduit, DiompConfig, DiompRuntime, PipelineConfig, ServerSpec};
use diomp_device::{DataMode, DeviceTable};
use diomp_fabric::{gasnet, gpi, FabricWorld, Loc, MpiRank, ReduceOp};
use diomp_sim::{bandwidth_gbps, ClusterSpec, PlatformSpec, Sim, SimTime, Topology, Wait};
use parking_lot::Mutex;

/// Which RMA direction a P2P micro-benchmark measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RmaOp {
    /// One-sided put (+ completion).
    Put,
    /// One-sided get.
    Get,
}

/// Which collective Fig. 6 measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollKind {
    /// Broadcast from rank 0.
    Broadcast,
    /// Sum all-reduce.
    AllReduce,
}

const WARMUP: usize = 2;
const REPS: usize = 3;

/// DiOMP P2P latency in µs for each size (inter-node, device buffers) —
/// the "DiOMP Put/Get" curves of Fig. 3. Runs through the default
/// (tuned) path; Fig. 3's sizes sit far below every tuned chunk size, so
/// the published latency curves are untouched by the pipeline.
pub fn diomp_p2p_latency(platform: &PlatformSpec, op: RmaOp, sizes: &[u64]) -> Vec<(u64, f64)> {
    diomp_p2p(platform, Conduit::GasnetEx, op, sizes, false)
}

/// DiOMP P2P bandwidth in GB/s for each size — the Fig. 4 curves.
/// Explicitly opts the pipeline *out*: the paper's published bandwidth
/// curves (including the Fig. 4a put anomaly) are unpipelined.
pub fn diomp_p2p_bandwidth(platform: &PlatformSpec, op: RmaOp, sizes: &[u64]) -> Vec<(u64, f64)> {
    diomp_p2p_raw(platform, Conduit::GasnetEx, op, sizes, true)
}

/// DiOMP P2P bandwidth with the chunked large-message pipeline under an
/// *explicit* legacy configuration ([`PipelineConfig::enabled`], the PR 1
/// constants) — the "corrected"/pipelined counterpart of the Fig. 4 put
/// curves, kept as the explicit-config example of the precedence chain.
pub fn diomp_p2p_bandwidth_pipelined(
    platform: &PlatformSpec,
    op: RmaOp,
    sizes: &[u64],
) -> Vec<(u64, f64)> {
    diomp_p2p_full(platform, Conduit::GasnetEx, op, sizes, true, PipelineConfig::enabled())
        .into_iter()
        .map(|(s, m, _)| (s, m))
        .collect()
}

/// DiOMP P2P over a chosen conduit (Fig. 5: GASNet-EX vs GPI-2).
///
/// Every conduit takes the tuned pipeline by default
/// ([`PipelineConfig::auto`] — previously only the GASNet path had a
/// pipelined driver); the precedence is **explicit config > tuned >
/// disabled**, with [`diomp_p2p_raw`] as the explicit opt-out for the
/// paper's published unpipelined curves and [`diomp_p2p_full`] for any
/// explicit configuration (the benches use it directly when they need
/// the scheduler-entry counts alongside the metric).
pub fn diomp_p2p(
    platform: &PlatformSpec,
    conduit: Conduit,
    op: RmaOp,
    sizes: &[u64],
    bandwidth: bool,
) -> Vec<(u64, f64)> {
    diomp_p2p_full(platform, conduit, op, sizes, bandwidth, PipelineConfig::auto(platform, conduit))
        .into_iter()
        .map(|(s, m, _)| (s, m))
        .collect()
}

/// DiOMP P2P with the pipeline explicitly disabled — the opt-out used to
/// reproduce the paper's published (unpipelined) curves.
pub fn diomp_p2p_raw(
    platform: &PlatformSpec,
    conduit: Conduit,
    op: RmaOp,
    sizes: &[u64],
    bandwidth: bool,
) -> Vec<(u64, f64)> {
    diomp_p2p_full(platform, conduit, op, sizes, bandwidth, PipelineConfig::disabled())
        .into_iter()
        .map(|(s, m, _)| (s, m))
        .collect()
}

/// Full-fidelity P2P driver: `(size, metric, scheduler entries)` rows.
/// The entry count is the whole run's `SimReport::entries_processed` —
/// the wall-clock scheduler cost tracked in `BENCH_*.json`.
pub fn diomp_p2p_full(
    platform: &PlatformSpec,
    conduit: Conduit,
    op: RmaOp,
    sizes: &[u64],
    bandwidth: bool,
    pipeline: PipelineConfig,
) -> Vec<(u64, f64, u64)> {
    sizes
        .iter()
        .map(|&size| {
            let heap = (4 * size + (1 << 20)).next_power_of_two();
            let cfg = DiompConfig::builder_on(platform.clone(), 2)
                .with_mode(DataMode::CostOnly)
                .with_conduit(conduit)
                .with_heap(heap)
                .with_pipeline(pipeline)
                .build();
            let out = Arc::new(Mutex::new(0.0f64));
            let out2 = out.clone();
            let target = platform.gpus_per_node; // first device on node 1
            let rep = DiompRuntime::run(cfg, move |ctx, rank| {
                let ptr = rank.alloc_sym(ctx, 2 * size.max(64)).unwrap();
                rank.barrier(ctx);
                if rank.rank == 0 {
                    let mut acc = 0.0;
                    for i in 0..WARMUP + REPS {
                        let t0 = ctx.now();
                        match op {
                            RmaOp::Put => rank.put(ctx, target, ptr, 0, ptr, 0, size).unwrap(),
                            RmaOp::Get => rank.get(ctx, target, ptr, 0, ptr, 0, size).unwrap(),
                        }
                        rank.fence(ctx);
                        if i >= WARMUP {
                            acc += ctx.now().since(t0).as_us();
                        }
                    }
                    *out2.lock() = acc / REPS as f64;
                }
                rank.barrier(ctx);
            })
            .unwrap();
            let us = *out.lock();
            let metric =
                if bandwidth { bandwidth_gbps(size, diomp_sim::Dur::micros(us)) } else { us };
            (size, metric, rep.entries_processed)
        })
        .collect()
}

/// MPI RMA latency (µs) or bandwidth (GB/s) per size — the "MPI Put/Get"
/// curves of Figs. 3–4 (window put/get + flush).
pub fn mpi_p2p(
    platform: &PlatformSpec,
    op: RmaOp,
    sizes: &[u64],
    bandwidth: bool,
) -> Vec<(u64, f64)> {
    sizes
        .iter()
        .map(|&size| {
            let mut sim = Sim::new();
            let spec = ClusterSpec::full_nodes(platform.clone(), 2);
            let per_node = spec.gpus_per_node;
            let nranks = spec.total_gpus();
            let topo = Arc::new(Topology::build(&sim.handle(), spec));
            let devs = DeviceTable::build(
                &sim.handle(),
                topo.clone(),
                DataMode::CostOnly,
                Some((4 * size + (1 << 20)).next_power_of_two()),
            );
            let world = FabricWorld::new(topo, devs, nranks);
            let out = Arc::new(Mutex::new(0.0f64));
            for r in 0..nranks {
                let world = world.clone();
                let out = out.clone();
                sim.spawn(format!("rank{r}"), move |ctx| {
                    let mpi = MpiRank::new(world.clone(), r);
                    let base = world.primary_dev(r).malloc(2 * size.max(64), 256).unwrap();
                    let win = mpi.win_create(ctx, Loc::dev(r, base), 2 * size.max(64));
                    if r == 0 {
                        let mut acc = 0.0;
                        for i in 0..WARMUP + REPS {
                            let t0 = ctx.now();
                            match op {
                                RmaOp::Put => {
                                    mpi.win_put(ctx, win, per_node, 0, Loc::dev(0, base), size)
                                        .unwrap();
                                }
                                RmaOp::Get => {
                                    mpi.win_get(ctx, win, per_node, 0, Loc::dev(0, base), size)
                                        .unwrap();
                                }
                            }
                            mpi.win_flush(ctx, win);
                            if i >= WARMUP {
                                acc += ctx.now().since(t0).as_us();
                            }
                        }
                        *out.lock() = acc / REPS as f64;
                    }
                    mpi.barrier(ctx);
                });
            }
            sim.run().unwrap();
            let us = *out.lock();
            let metric =
                if bandwidth { bandwidth_gbps(size, diomp_sim::Dur::micros(us)) } else { us };
            (size, metric)
        })
        .collect()
}

/// DiOMP collective latency (µs) per size over `nodes` full nodes —
/// the OMPCCL side of Fig. 6, through the default engine (the emergent
/// ring protocol). The communicator is initialised during warm-up, as in
/// the paper's methodology.
pub fn diomp_collective(
    platform: &PlatformSpec,
    nodes: usize,
    kind: CollKind,
    sizes: &[u64],
) -> Vec<(u64, f64)> {
    diomp_collective_full(platform, nodes, kind, sizes, CollEngine::default())
        .into_iter()
        .map(|(s, us, _)| (s, us))
        .collect()
}

/// Like [`diomp_collective`] but through the transport autotuner's
/// protocol-selecting engine (`CollEngine::Auto`): LL-style fused eager
/// sends over binomial trees below the table-derived crossover, the
/// chunk-pipelined ring above it. Returns the full-fidelity
/// `(size, µs, entries)` rows.
pub fn diomp_collective_auto(
    platform: &PlatformSpec,
    nodes: usize,
    kind: CollKind,
    sizes: &[u64],
) -> Vec<(u64, f64, u64)> {
    let engine = diomp_core::Tuner::new(platform, Conduit::GasnetEx).coll_engine();
    diomp_collective_full(platform, nodes, kind, sizes, engine)
}

/// Like [`diomp_collective`] but pinned to the double-binary-tree
/// engine (`CollEngine::Dbt`) with its table-derived chunking — the
/// mid-band protocol `CollEngine::Auto` selects between the LL/tree
/// and ring regimes. Returns the full-fidelity `(size, µs, entries)`
/// rows; used by `bench_gate` to lock the DBT-vs-ring win relation.
pub fn diomp_collective_dbt(
    platform: &PlatformSpec,
    nodes: usize,
    kind: CollKind,
    sizes: &[u64],
) -> Vec<(u64, f64, u64)> {
    let op = match kind {
        CollKind::Broadcast => diomp_core::XcclOp::Broadcast { root: 0 },
        CollKind::AllReduce => diomp_core::XcclOp::AllReduce { op: ReduceOp::SumF32 },
    };
    let nrings = diomp_core::default_nrings(platform);
    let engine = CollEngine::Dbt(diomp_core::RingConfig::auto(platform, &op, nrings));
    diomp_collective_full(platform, nodes, kind, sizes, engine)
}

/// Like [`diomp_collective`] but on a cluster whose trailing
/// `server_nodes` nodes are carved out as data-passive in-network
/// reduction servers, pinned to the reduction-server engine
/// (`CollEngine::ReductionServer`) with its table-derived chunking.
/// Only allreduce has a server schedule; other ops fall back to the
/// ring over the full communicator. Returns the full-fidelity
/// `(size, µs, entries)` rows; used by `bench_gate` to lock the
/// server-offload win region.
pub fn diomp_collective_rserver(
    platform: &PlatformSpec,
    nodes: usize,
    server_nodes: usize,
    kind: CollKind,
    sizes: &[u64],
) -> Vec<(u64, f64, u64)> {
    let op = match kind {
        CollKind::Broadcast => diomp_core::XcclOp::Broadcast { root: 0 },
        CollKind::AllReduce => diomp_core::XcclOp::AllReduce { op: ReduceOp::SumF32 },
    };
    let nrings = diomp_core::default_nrings(platform);
    let engine = CollEngine::ReductionServer(diomp_core::RingConfig::auto(platform, &op, nrings));
    diomp_collective_served(platform, nodes, server_nodes, kind, sizes, engine)
}

/// Like [`diomp_collective`] but through the calibrated whole-collective
/// profiles — the curve-fit ablation baseline the emergent ring curves
/// are asserted against.
pub fn diomp_collective_profiled(
    platform: &PlatformSpec,
    nodes: usize,
    kind: CollKind,
    sizes: &[u64],
) -> Vec<(u64, f64)> {
    diomp_collective_full(platform, nodes, kind, sizes, CollEngine::Profile)
        .into_iter()
        .map(|(s, us, _)| (s, us))
        .collect()
}

/// Full-fidelity collective driver: `(size, µs, scheduler entries)` rows
/// through a chosen [`CollEngine`]. The entry count is the whole run's
/// `SimReport::entries_processed` — the wall-clock scheduler cost the
/// batched `wait_any` wait-groups keep bounded for the ring engine.
pub fn diomp_collective_full(
    platform: &PlatformSpec,
    nodes: usize,
    kind: CollKind,
    sizes: &[u64],
    engine: CollEngine,
) -> Vec<(u64, f64, u64)> {
    diomp_collective_served(platform, nodes, 0, kind, sizes, engine)
}

/// Like [`diomp_collective_rserver`] but with the engine chosen by the
/// caller: the same `nodes`-node cluster with its trailing
/// `server_nodes` carved out as reduction servers, run under any
/// [`CollEngine`]. This is what makes the bench gate's win-region
/// comparison fair — ring, DBT and the server schedule are timed on the
/// *same* hardware with the *same* communicator membership, differing
/// only in which protocol moves the bytes.
pub fn diomp_collective_served(
    platform: &PlatformSpec,
    nodes: usize,
    server_nodes: usize,
    kind: CollKind,
    sizes: &[u64],
    engine: CollEngine,
) -> Vec<(u64, f64, u64)> {
    sizes
        .iter()
        .map(|&size| {
            let heap = (2 * size + (1 << 20)).next_power_of_two();
            let cfg = DiompConfig::builder_on(platform.clone(), nodes)
                .with_mode(DataMode::CostOnly)
                .with_heap(heap)
                .with_coll_engine(engine)
                .with_coll_servers(ServerSpec::tail(server_nodes))
                .build();
            let done = Arc::new(Mutex::new((SimTime::ZERO, SimTime::ZERO)));
            let done2 = done.clone();
            let rep = DiompRuntime::run(cfg, move |ctx, rank| {
                let world = rank.shared.world_group();
                let ptr = rank.alloc_sym(ctx, size.max(64)).unwrap();
                // Warm-up round initialises the communicator and rings.
                for _ in 0..WARMUP {
                    match kind {
                        CollKind::Broadcast => rank.bcast(ctx, &world, 0, ptr, size),
                        CollKind::AllReduce => {
                            rank.allreduce(ctx, &world, ptr, size, ReduceOp::SumF32)
                        }
                    }
                }
                rank.barrier(ctx);
                let t0 = ctx.now();
                let mut t1 = t0;
                for _ in 0..REPS {
                    match kind {
                        CollKind::Broadcast => rank.bcast(ctx, &world, 0, ptr, size),
                        CollKind::AllReduce => {
                            rank.allreduce(ctx, &world, ptr, size, ReduceOp::SumF32)
                        }
                    }
                    t1 = ctx.now();
                }
                if rank.rank == 0 {
                    *done2.lock() = (t0, t1);
                }
                rank.barrier(ctx);
            })
            .unwrap();
            let (t0, t1) = *done.lock();
            (size, t1.since(t0).as_us() / REPS as f64, rep.entries_processed)
        })
        .collect()
}

/// MPI collective latency (µs) per size — the MPI side of Fig. 6.
/// Completion is the latest rank's finish time, like the vendor-library
/// measurement.
pub fn mpi_collective(
    platform: &PlatformSpec,
    nodes: usize,
    kind: CollKind,
    sizes: &[u64],
) -> Vec<(u64, f64)> {
    sizes
        .iter()
        .map(|&size| {
            let mut sim = Sim::new();
            let spec = ClusterSpec::full_nodes(platform.clone(), nodes);
            let nranks = spec.total_gpus();
            let topo = Arc::new(Topology::build(&sim.handle(), spec));
            let devs = DeviceTable::build(
                &sim.handle(),
                topo.clone(),
                DataMode::CostOnly,
                Some((4 * size + (1 << 20)).next_power_of_two()),
            );
            let world = FabricWorld::new(topo, devs, nranks);
            // (start, latest finish) across ranks, per measured rep.
            let marks = Arc::new(Mutex::new((SimTime::ZERO, SimTime::ZERO)));
            for r in 0..nranks {
                let world = world.clone();
                let marks = marks.clone();
                sim.spawn(format!("rank{r}"), move |ctx| {
                    let mut mpi = MpiRank::new(world.clone(), r);
                    let base = world.primary_dev(r).malloc(size.max(64), 256).unwrap();
                    let buf = Loc::dev(r, base);
                    for _ in 0..WARMUP {
                        match kind {
                            CollKind::Broadcast => mpi.bcast(ctx, 0, buf.clone(), size).unwrap(),
                            CollKind::AllReduce => {
                                mpi.allreduce(ctx, buf.clone(), size, ReduceOp::SumF32).unwrap()
                            }
                        }
                    }
                    mpi.barrier(ctx);
                    let t0 = ctx.now();
                    for _ in 0..REPS {
                        match kind {
                            CollKind::Broadcast => mpi.bcast(ctx, 0, buf.clone(), size).unwrap(),
                            CollKind::AllReduce => {
                                mpi.allreduce(ctx, buf.clone(), size, ReduceOp::SumF32).unwrap()
                            }
                        }
                    }
                    let t1 = ctx.now();
                    let mut m = marks.lock();
                    if m.0 == SimTime::ZERO || t0 < m.0 {
                        m.0 = t0;
                    }
                    m.1 = m.1.max(t1);
                });
            }
            sim.run().unwrap();
            let (t0, t1) = *marks.lock();
            (size, t1.since(t0).as_us() / REPS as f64)
        })
        .collect()
}

/// Fig. 6's reported metric: `log10(t_MPI / t_DiOMP)` per size.
pub fn log_ratio(mpi: &[(u64, f64)], diomp: &[(u64, f64)]) -> Vec<(u64, f64)> {
    mpi.iter()
        .zip(diomp)
        .map(|(&(s, m), &(s2, d))| {
            assert_eq!(s, s2);
            (s, (m / d).log10())
        })
        .collect()
}

/// The per-figure GPU/node counts of the paper's §4.3 setup.
pub fn fig6_nodes(platform: &PlatformSpec) -> usize {
    match platform.id {
        diomp_sim::PlatformId::A => 16, // 64 GPUs
        diomp_sim::PlatformId::B => 8,  // 64 GCDs
        diomp_sim::PlatformId::C => 16, // 16 GPUs
        diomp_sim::PlatformId::Custom => 4,
    }
}

/// A `(message size, metric)` series, as returned by every driver here.
pub type Series = Vec<(u64, f64)>;

/// GPI-2 vs GASNet-EX bandwidth on the InfiniBand platform (Fig. 5).
pub fn conduit_bandwidth(op: RmaOp, sizes: &[u64]) -> (Series, Series) {
    let c = PlatformSpec::platform_c();
    let gasnet = diomp_p2p(&c, Conduit::GasnetEx, op, sizes, true);
    let gpi = diomp_p2p(&c, Conduit::Gpi2, op, sizes, true);
    (gasnet, gpi)
}

/// Raw-conduit single-op latency check used by tests: GASNet put vs GPI
/// write on platform C at one size.
pub fn conduit_single_put_us(conduit: Conduit, size: u64) -> f64 {
    let c = PlatformSpec::platform_c();
    let series = diomp_p2p(&c, conduit, RmaOp::Put, &[size], false);
    series[0].1
}

/// Convenience: make sure raw gasnet/gpi modules stay exercised from the
/// apps layer (compile-time link of the public conduit APIs).
#[allow(dead_code)]
fn _conduit_api_surface(
    ctx: &mut diomp_sim::Ctx,
    world: &Arc<FabricWorld>,
    seg: diomp_fabric::SegmentId,
) {
    let _ = gasnet::put_blocking(ctx, world, 0, Loc::dev(0, 0), seg, 0, 8);
    gpi::wait_queue(ctx, world, 0, gpi::QueueId(0), Wait::Block).unwrap();
    gpi::wait_all_queues(ctx, world, 0, Wait::Block).unwrap();
}

/// Which engine a scale-sweep cell runs (`fig_scale`, the O(10k)-rank
/// allreduce sweep).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleEngine {
    /// Chunk-pipelined ring, table-tuned chunking.
    Ring,
    /// Double binary tree, table-tuned chunking.
    Dbt,
    /// The four-regime Auto dispatcher.
    Auto,
}

impl ScaleEngine {
    /// Stable row tag used in `BENCH_scale.json` record names.
    pub fn tag(self) -> &'static str {
        match self {
            ScaleEngine::Ring => "ring",
            ScaleEngine::Dbt => "dbt",
            ScaleEngine::Auto => "auto",
        }
    }

    fn engine(self, platform: &PlatformSpec) -> CollEngine {
        let op = diomp_core::XcclOp::AllReduce { op: ReduceOp::SumF32 };
        match self {
            ScaleEngine::Ring => CollEngine::Ring(diomp_core::RingConfig::auto(platform, &op, 1)),
            ScaleEngine::Dbt => CollEngine::Dbt(diomp_core::RingConfig::auto(platform, &op, 1)),
            ScaleEngine::Auto => CollEngine::Auto(diomp_core::AutoConfig::for_platform(platform)),
        }
    }
}

/// One scale-sweep measurement: the virtual end time plus the
/// simulator's *own* scheduler cost for the run.
pub struct ScaleRun {
    /// Virtual end-of-run time in nanoseconds — bit-comparable between
    /// the coalesced and forced-explicit arms.
    pub end_ns: u64,
    /// Scheduler heap entries popped over the whole run.
    pub entries: u64,
    /// Chunk completions credited to coalesced wake entries (0 on the
    /// forced-explicit arm).
    pub coalesced: u64,
    /// Wall-clock milliseconds the scheduler loop itself took.
    pub sim_wall_ms: f64,
}

/// Run one `bytes`-byte allreduce over `nranks` single-GPU nodes of the
/// NDR-IB platform (C) in cost-only mode — one `fig_scale` cell. Every
/// rank is its own node, so the ring is single-rail and every edge
/// crosses the network; rank count, not node fan-out, is the swept
/// variable. With `forced_explicit` the run pins the per-chunk event
/// driver ([`Sim::force_explicit_schedules`]) — the uncoalesced
/// reference arm; virtual time must be bit-identical either way, which
/// `fig_scale` and the bench gate assert wherever both arms run.
pub fn scale_allreduce(
    nranks: usize,
    sel: ScaleEngine,
    bytes: u64,
    forced_explicit: bool,
) -> ScaleRun {
    use diomp_core::{CommOpts, DeviceBuf, UniqueId, XcclComm, XcclOp};
    let platform = PlatformSpec::platform_c();
    let mut sim = Sim::new();
    if forced_explicit {
        sim.force_explicit_schedules(true);
    }
    let spec = ClusterSpec { platform: platform.clone(), nodes: nranks, gpus_per_node: 1 };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let heap = (2 * bytes + (1 << 20)).next_power_of_two();
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::CostOnly, Some(heap));
    let world = FabricWorld::new(topo, devs, nranks);
    let engine = sel.engine(&platform);
    let id = UniqueId::generate();
    let ranks: Arc<Vec<usize>> = Arc::new((0..nranks).collect());
    for r in 0..nranks {
        let world = world.clone();
        let ranks = ranks.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let comm = XcclComm::init(
                ctx,
                &world,
                ranks.as_ref().clone(),
                r,
                id,
                CommOpts { engine, ..CommOpts::default() },
            );
            let dev = world.primary_dev(r);
            let off = dev.malloc(bytes.max(64), 256).unwrap();
            comm.collective(
                ctx,
                r,
                vec![DeviceBuf { flat: r, off }],
                XcclOp::AllReduce { op: ReduceOp::SumF32 },
                bytes,
            );
        });
    }
    let rep = sim.run().expect("scale sweep deadlocked");
    ScaleRun {
        end_ns: rep.end_time.nanos(),
        entries: rep.entries_processed,
        coalesced: rep.coalesced_chunks,
        sim_wall_ms: rep.sim_wall_ms,
    }
}
