//! Deterministic input generators and serial references.
//!
//! Inputs are pure functions of the index so every rank (and the serial
//! reference) can regenerate any part of the problem without
//! communication — the standard trick for verifying distributed kernels.

/// Deterministic A-matrix element.
pub fn a_elem(i: usize, j: usize) -> f64 {
    (((i * 31 + j * 17 + 3) % 13) as f64) - 6.0
}

/// Deterministic B-matrix element.
pub fn b_elem(i: usize, j: usize) -> f64 {
    (((i * 7 + j * 23 + 1) % 11) as f64) - 5.0
}

/// Row-major stripe `rows0..rows0+nrows` of the deterministic A matrix.
pub fn a_stripe(n: usize, rows0: usize, nrows: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(nrows * n);
    for i in rows0..rows0 + nrows {
        for j in 0..n {
            v.push(a_elem(i, j));
        }
    }
    v
}

/// Row-major stripe of the deterministic B matrix.
pub fn b_stripe(n: usize, rows0: usize, nrows: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(nrows * n);
    for i in rows0..rows0 + nrows {
        for j in 0..n {
            v.push(b_elem(i, j));
        }
    }
    v
}

/// Serial reference: rows `rows0..rows0+nrows` of `C = A × B`.
pub fn serial_matmul_stripe(n: usize, rows0: usize, nrows: usize) -> Vec<f64> {
    let mut c = vec![0.0; nrows * n];
    for i in 0..nrows {
        for k in 0..n {
            let a = a_elem(rows0 + i, k);
            if a == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += a * b_elem(k, j);
            }
        }
    }
    c
}

/// 8th-order centred second-derivative coefficients (radius 4), the
/// acoustic-isotropic stencil of Minimod.
pub const STENCIL_COEFF: [f32; 5] =
    [-205.0 / 72.0, 8.0 / 5.0, -1.0 / 5.0, 8.0 / 315.0, -1.0 / 560.0];

/// Initial wavefield: a small Gaussian-ish bump in the grid centre.
pub fn initial_field(nx: usize, ny: usize, nz: usize, x: usize, y: usize, z: usize) -> f32 {
    let dx = x as f64 - nx as f64 / 2.0;
    let dy = y as f64 - ny as f64 / 2.0;
    let dz = z as f64 - nz as f64 / 2.0;
    let r2 = dx * dx + dy * dy + dz * dz;
    (10.0 * (-r2 / 6.0).exp()) as f32
}

/// One serial acoustic step over the full grid (reference implementation,
/// zero boundary). Layout `[z][y][x]`, `u`/`up` are `nz*ny*nx` long.
/// Writes `2u - up + k·∇²u` into `out`.
pub fn serial_step(
    nx: usize,
    ny: usize,
    nz: usize,
    u: &[f32],
    up: &[f32],
    out: &mut [f32],
    k: f32,
) {
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let r = 4usize;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let c = idx(x, y, z);
                let mut lap = 3.0 * STENCIL_COEFF[0] * u[c];
                for d in 1..=r {
                    let cd = STENCIL_COEFF[d];
                    let xm = if x >= d { u[idx(x - d, y, z)] } else { 0.0 };
                    let xp = if x + d < nx { u[idx(x + d, y, z)] } else { 0.0 };
                    let ym = if y >= d { u[idx(x, y - d, z)] } else { 0.0 };
                    let yp = if y + d < ny { u[idx(x, y + d, z)] } else { 0.0 };
                    let zm = if z >= d { u[idx(x, y, z - d)] } else { 0.0 };
                    let zp = if z + d < nz { u[idx(x, y, z + d)] } else { 0.0 };
                    lap += cd * (xm + xp + ym + yp + zm + zp);
                }
                out[c] = 2.0 * u[c] - up[c] + k * lap;
            }
        }
    }
}

/// Bytes of a row-major f64 stripe.
pub fn to_bytes_f64(vals: &[f64]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Parse little-endian f64s.
pub fn from_bytes_f64(bytes: &[u8]) -> Vec<f64> {
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Bytes of an f32 slice.
pub fn to_bytes_f32(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Parse little-endian f32s.
pub fn from_bytes_f32(bytes: &[u8]) -> Vec<f32> {
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_matmul_matches_naive_full_product() {
        let n = 12;
        let mut full = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    full[i * n + j] += a_elem(i, k) * b_elem(k, j);
                }
            }
        }
        let stripe = serial_matmul_stripe(n, 4, 4);
        assert_eq!(&full[4 * n..8 * n], &stripe[..]);
    }

    #[test]
    fn byte_roundtrips() {
        let v = vec![1.5f64, -2.25, 0.0];
        assert_eq!(from_bytes_f64(&to_bytes_f64(&v)), v);
        let w = vec![1.5f32, -2.25];
        assert_eq!(from_bytes_f32(&to_bytes_f32(&w)), w);
    }

    #[test]
    fn stencil_coefficients_sum_matches_discrete_laplacian_property() {
        // Applying the stencil to a constant field must give ~0.
        let s: f32 = STENCIL_COEFF[0] + 2.0 * STENCIL_COEFF[1..].iter().sum::<f32>();
        assert!(s.abs() < 1e-5, "sum {s}");
    }

    #[test]
    fn serial_step_preserves_zero_field() {
        let (nx, ny, nz) = (8, 8, 8);
        let u = vec![0.0f32; nx * ny * nz];
        let up = vec![0.0f32; nx * ny * nz];
        let mut out = vec![9.0f32; nx * ny * nz];
        serial_step(nx, ny, nz, &u, &up, &mut out, 0.1);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}
