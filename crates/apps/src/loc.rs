//! Programmability metric: halo-exchange lines of code (paper §4.5,
//! Listings 1–2).
//!
//! The paper argues DiOMP needs roughly *half* the lines of MPI for the
//! same halo exchange. We reproduce the comparison twice: over the
//! paper's own listings (embedded verbatim) and over this repository's
//! actual Rust implementations.

/// Paper Listing 1 — Minimod halo exchange with DiOMP.
pub const LISTING_DIOMP: &str = r#"for (int r = 0; r < nranks; ++r) {
  llint gxmin, gxmax;
  RANK_XMIN_XMAX(r,gxmin,gxmax);
  if(rank == r) {
    if(rank != 0)
      ompx_put(...,D2D);
    if(rank != nranks - 1)
      ompx_put(...,D2D);
  }}
ompx_fence();"#;

/// Paper Listing 2 — Minimod halo exchange with MPI+OpenMP.
pub const LISTING_MPI: &str = r#"MPI_Request requests[4];
int req_cnts = 0;
for (int r=0; r<nranks; r++) {
  RANK_XMIN_XMAX(r,gxmin,gxmax);
  if (rank == r) {
    if (r != 0) {
      #pragma omp target data use_device_ptr(v)
      MPI_Isend(..., &requests[req_cnts++]);
    } if (r != nranks-1) {
      #pragma omp target data use_device_ptr(v)
      MPI_Isend(..., &requests[req_cnts++]);
    }
  } if (rank == r-1) {
    #pragma omp target data use_device_ptr(v)
    MPI_Irecv(..., &requests[req_cnts++]);
  }
  if (rank == r+1) {
    #pragma omp target data use_device_ptr(v)
    MPI_Irecv(..., &requests[req_cnts++]);
  }}
MPI_Waitall(req_cnts, requests, MPI_STATUSES_IGNORE);"#;

/// This repository's DiOMP halo exchange (extracted from
/// `minimod/diomp.rs`).
pub const RUST_DIOMP: &str = r#"if r + 1 < p {
    rank.get(ctx, r + 1, u, RADIUS as u64 * plane, u, (RADIUS + nzl) as u64 * plane, halo)
        .unwrap();
}
if r > 0 {
    rank.get(ctx, r - 1, u, nzl as u64 * plane, u, 0, halo).unwrap();
}
rank.fence_group(ctx, &world);"#;

/// This repository's notification-driven DiOMP halo exchange
/// (extracted from `minimod/diomp.rs`, `HaloStyle::NotifyWaitsome`):
/// push with step-parity ids, one ranged waitsome drain, no barrier.
pub const RUST_DIOMP_NOTIFY: &str = r#"let base = 2 * (step as u32 % 2);
if r + 1 < p {
    rank.put_notify(ctx, r + 1, u, 0, u, nzl as u64 * plane, halo,
        base + FROM_BELOW, step as u64 + 1).unwrap();
}
if r > 0 {
    rank.put_notify(ctx, r - 1, u, (RADIUS + nzl) as u64 * plane, u,
        RADIUS as u64 * plane, halo, base + FROM_ABOVE, step as u64 + 1).unwrap();
}
rank.fence(ctx);
for _ in 0..nnb {
    rank.notify_waitsome(ctx, base, 2);
}"#;

/// This repository's MPI halo exchange (extracted from
/// `minimod/mpi.rs`).
pub const RUST_MPI: &str = r#"let mut reqs: Vec<MpiReq> = Vec::with_capacity(4);
let tag_up = 9000 + 2 * step as u64;
let tag_dn = 9001 + 2 * step as u64;
if r + 1 < p {
    reqs.push(mpi.irecv(ctx, Some(r + 1), Some(tag_dn),
        Loc::dev(r, u + (RADIUS + nzl) as u64 * plane), halo).unwrap());
    reqs.push(mpi.isend(ctx, r + 1, tag_up,
        Loc::dev(r, u + nzl as u64 * plane), halo).unwrap());
}
if r > 0 {
    reqs.push(mpi.irecv(ctx, Some(r - 1), Some(tag_up),
        Loc::dev(r, u), halo).unwrap());
    reqs.push(mpi.isend(ctx, r - 1, tag_dn,
        Loc::dev(r, u + RADIUS as u64 * plane), halo).unwrap());
}
mpi.waitall(ctx, &reqs);
mpi.barrier(ctx);"#;

/// Count non-blank source lines.
pub fn count_loc(src: &str) -> usize {
    src.lines().filter(|l| !l.trim().is_empty()).count()
}

/// One row of the programmability table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocRow {
    /// Which implementation.
    pub name: &'static str,
    /// Non-blank lines of code.
    pub lines: usize,
}

/// The programmability table: paper listings and this repo's versions.
/// (The notified-halo row comes last so the long-standing indices of
/// the first four rows stay stable for downstream assertions.)
pub fn loc_table() -> Vec<LocRow> {
    vec![
        LocRow { name: "paper Listing 1 (DiOMP)", lines: count_loc(LISTING_DIOMP) },
        LocRow { name: "paper Listing 2 (MPI+OpenMP)", lines: count_loc(LISTING_MPI) },
        LocRow { name: "this repo, DiOMP halo", lines: count_loc(RUST_DIOMP) },
        LocRow { name: "this repo, MPI halo", lines: count_loc(RUST_MPI) },
        LocRow { name: "this repo, DiOMP notified halo", lines: count_loc(RUST_DIOMP_NOTIFY) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diomp_needs_roughly_half_the_lines() {
        // Paper §4.5: "approximately half the lines of code".
        let paper_d = count_loc(LISTING_DIOMP) as f64;
        let paper_m = count_loc(LISTING_MPI) as f64;
        assert!(paper_m / paper_d >= 1.8, "paper ratio {}", paper_m / paper_d);

        let rust_d = count_loc(RUST_DIOMP) as f64;
        let rust_m = count_loc(RUST_MPI) as f64;
        assert!(rust_m / rust_d >= 1.8, "repo ratio {}", rust_m / rust_d);
    }

    #[test]
    fn table_has_all_rows() {
        let t = loc_table();
        assert_eq!(t.len(), 5);
        assert!(t.iter().all(|r| r.lines > 0));
    }

    #[test]
    fn notified_halo_still_beats_mpi_on_lines() {
        // Even the barrier-free notified exchange stays well under the
        // MPI version's line count.
        let notify = count_loc(RUST_DIOMP_NOTIFY) as f64;
        let mpi = count_loc(RUST_MPI) as f64;
        assert!(mpi / notify >= 1.1, "ratio {}", mpi / notify);
    }
}
