//! Multi-tenant workload engine: overlapping jobs on one shared fabric.
//!
//! Replays a set of [`JobSpec`]s — each with its own arrival time, QoS
//! class and communicator — against a single simulated cluster. With
//! contention armed ([`diomp_sim::Sim::enable_contention`]) every wire
//! the jobs collide on is priced by the per-link weighted fair queue,
//! so a high-QoS job keeps a bounded share of each link no matter how
//! many tenants pile on; disarmed, the same workload replays on the
//! legacy serial link model bit for bit.
//!
//! Each job runs a deterministic, seeded sequence of collectives with
//! mixed operations and sizes over its own [`XcclComm`] (built with the
//! job's [`diomp_core::CommOpts`] so its chunk traffic carries the job's QoS
//! weight). The engine reports per-job p50/p99 collective latency and
//! achieved-vs-table wire bandwidth — the rows `bench_gate` gates the
//! canonical 8-job contention scenario on.

use std::sync::Arc;

use diomp_core::{
    default_nrings, Checkpoint, CollEngine, DeviceBuf, JobSpec, QosClass, RecoveryConfig, ReduceOp,
    RingConfig, ServerSpec, UniqueId, XcclComm, XcclOp,
};
use diomp_device::{DataMode, DeviceTable};
use diomp_fabric::FabricWorld;
use diomp_sim::{
    derive_seed, ClusterSpec, Dur, FaultPlan, Meter, PlatformSpec, Sim, SimTime, Topology, Wait,
};
use parking_lot::Mutex;

/// A multi-tenant workload: which jobs share the fabric, and what each
/// of them runs.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Hardware platform of the shared cluster.
    pub platform: PlatformSpec,
    /// Nodes in the shared cluster (one rank per GPU).
    pub nodes: usize,
    /// The tenant jobs. Every job's communicator spans all ranks, so
    /// concurrent jobs contend on every inter-node wire.
    pub jobs: Vec<JobSpec>,
    /// Collectives each job issues.
    pub iters: usize,
    /// Candidate payload sizes; each iteration draws one, seeded.
    pub sizes: Vec<u64>,
    /// Root seed for the per-job op/size draws.
    pub seed: u64,
    /// Arm the per-link weighted fair queue. Disarmed, transfers take
    /// the legacy serial link path bit for bit.
    pub contended: bool,
    /// Fault plan installed before the run (`None` = healthy fabric).
    /// Rank-kill entries are what the recovery loop reacts to.
    pub faults: Option<FaultPlan>,
    /// Arm elastic rank-failure recovery. `None` (the default scenarios)
    /// runs the historical blocking path — bit for bit, even with a
    /// fault plan installed. `Some` bounds every rendezvous park by
    /// [`RecoveryConfig::collective_timeout`], snapshots buffers every
    /// [`RecoveryConfig::checkpoint_every`] iterations, and on a
    /// confirmed member death shrinks the job's communicator to the
    /// agreed survivors, rolls back, and re-runs — up to each job's
    /// [`JobSpec::max_retries`].
    pub recovery: Option<RecoveryConfig>,
}

/// Per-job outcome of a workload run.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Job name, from its [`JobSpec`].
    pub name: String,
    /// QoS class the job's traffic was charged at.
    pub qos: QosClass,
    /// Collective latency samples observed (one per iteration).
    pub samples: usize,
    /// Median collective latency, µs.
    pub p50_us: f64,
    /// 99th-percentile collective latency, µs.
    pub p99_us: f64,
    /// Achieved per-port wire bandwidth over the job's busy time, GB/s:
    /// ring-algorithm wire bytes (`XcclOp::wire_factor`) divided by the
    /// time the job spent inside collectives.
    pub achieved_gbps: f64,
    /// The platform table's per-NIC wire bandwidth, GB/s — the ceiling
    /// `achieved_gbps` is reported against.
    pub table_gbps: f64,
    /// Wire bytes delivered on the job's reduction-server fan-back flow
    /// (the flow its carved server NICs charge; see
    /// `XcclComm::server_flow`). Zero for a job without servers — the
    /// flow is only created when servers are provisioned, so per-job
    /// fabric accounting attributes every server byte to its tenant.
    pub server_flow_bytes: u64,
    /// Communicator shrink/rebuild rounds this job rode out (0 on a
    /// healthy fabric or with recovery disarmed).
    pub retries: u32,
    /// Virtual time from the first aborted collective to the first
    /// completed collective on the shrunk communicator, µs — the job's
    /// end-to-end recovery latency. 0 when nothing aborted.
    pub recovery_us: f64,
}

/// Whole-workload outcome.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Per-job results, in `jobs` order.
    pub jobs: Vec<JobResult>,
    /// Virtual end-to-end time of the whole workload, µs.
    pub makespan_us: f64,
    /// Virtual end time of the simulation.
    pub end_time: SimTime,
    /// Scheduler entries processed — the wall-clock cost dimension.
    pub entries_processed: u64,
}

/// The seeded draw for iteration `iter` of job `job`: identical on
/// every rank (it only hashes the workload seed and indices), so all
/// participants of a collective agree on its op and size.
fn draw(seed: u64, job: usize, iter: usize, sizes: &[u64]) -> (XcclOp, u64) {
    let h = derive_seed(derive_seed(seed, 0x10B + job as u64), iter as u64);
    let size = sizes[(h % sizes.len() as u64) as usize];
    let op = if (h >> 32) & 1 == 0 {
        XcclOp::AllReduce { op: ReduceOp::SumF32 }
    } else {
        XcclOp::Broadcast { root: 0 }
    };
    (op, size)
}

/// Run a workload: one simulation, one fabric, all jobs.
///
/// Each `(job, rank)` pair is its own simulation task: it sleeps until
/// the job's arrival, collectively initialises the job's communicator
/// (with the job's QoS class), then issues the job's seeded collective
/// sequence. Latency is sampled on the job's rank 0.
pub fn run_workload(spec: &WorkloadSpec) -> WorkloadReport {
    let nranks = spec.nodes * spec.platform.gpus_per_node;
    let max_size = spec.sizes.iter().copied().max().expect("workload needs sizes");
    let mut sim = Sim::new();
    if spec.contended {
        sim.enable_contention();
    }
    if let Some(plan) = &spec.faults {
        sim.set_fault_plan(plan.clone());
    }
    let cluster = ClusterSpec {
        platform: spec.platform.clone(),
        nodes: spec.nodes,
        gpus_per_node: spec.platform.gpus_per_node,
    };
    let topo = Arc::new(Topology::build(&sim.handle(), cluster));
    let heap = (spec.jobs.len() as u64 * 2 * max_size + (1 << 20)).next_power_of_two();
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::CostOnly, Some(heap));
    let world = FabricWorld::new(topo, devs, nranks);
    // Attach the simulator so the health vector derives live from the
    // installed plan and rank kills arm their dead windows.
    world.attach_sim(&sim.handle());

    // Per-job accumulators: latency meter + wire-byte/busy-time totals,
    // filled in by the job's rank-0 task.
    struct JobAcc {
        meter: Meter,
        wire_bytes: f64,
        busy: Dur,
        // Every rank's comm registers its own server flow; the schedule
        // is driven by whichever rank arrives at the gate last, so the
        // job's fan-back bytes are the sum over all of them. A shrink
        // releases the old comm's flow slots (stats reset on reuse), so
        // the recovery path banks a flow's bytes here before retiring it.
        server_flows: Vec<diomp_sim::FlowId>,
        server_flow_retired: u64,
        retries: u32,
        recovery: Dur,
    }
    let accs: Vec<Arc<Mutex<JobAcc>>> = spec
        .jobs
        .iter()
        .map(|_| {
            Arc::new(Mutex::new(JobAcc {
                meter: Meter::new(),
                wire_bytes: 0.0,
                busy: Dur::ZERO,
                server_flows: Vec::new(),
                server_flow_retired: 0,
                retries: 0,
                recovery: Dur::ZERO,
            }))
        })
        .collect();

    for (j, job) in spec.jobs.iter().enumerate() {
        // Ids only key the communicator's rendezvous gate; a fresh one
        // per job per run keeps gates from leaking across runs in the
        // same process.
        let id = UniqueId::generate();
        for r in 0..nranks {
            let world = world.clone();
            let job = job.clone();
            let acc = accs[j].clone();
            let (iters, sizes, seed) = (spec.iters, spec.sizes.clone(), spec.seed);
            let recovery = spec.recovery;
            sim.spawn(format!("job{j}-{}-rank{r}", job.name), move |ctx| {
                ctx.delay(job.arrival);
                let mut comm = XcclComm::init(
                    ctx,
                    &world,
                    (0..world.nranks).collect(),
                    r,
                    id,
                    job.comm_opts(),
                );
                let buf_len = max_size.max(64);
                let off = world.primary_dev(r).malloc(buf_len, 256).unwrap();
                if let Some(f) = comm.server_flow() {
                    acc.lock().server_flows.push(f);
                }
                let Some(rc) = recovery else {
                    // Disarmed: the historical blocking path, bit for bit.
                    for i in 0..iters {
                        let (op, size) = draw(seed, j, i, &sizes);
                        let t0 = ctx.now();
                        let wire = op.wire_factor(world.nranks) * size as f64;
                        comm.collective(ctx, r, vec![DeviceBuf { flat: r, off }], op, size);
                        if r == 0 {
                            let d = ctx.now().since(t0);
                            let mut a = acc.lock();
                            a.meter.record(d);
                            a.wire_bytes += wire;
                            a.busy += d;
                        }
                    }
                    return;
                };
                // Armed: bounded rendezvous parks, checkpoint epochs,
                // shrink + rollback + exponential-backoff retry. Doomed
                // ranks always complete comm init (a process that dies
                // mid-run had joined), then leave at the first collective
                // boundary past their kill time.
                let my_kill = ctx.handle().fault_plan().and_then(|p| p.kill_time(r as u32));
                let bufs = [(r, off, buf_len)];
                let mut ck = Checkpoint::take(ctx, &world, &bufs, 0);
                let mut attempt = 0u32;
                // Iterations already sampled: rollback re-runs an epoch's
                // tail, which must not double-count latency or bytes.
                let mut recorded = 0usize;
                let mut abort_at: Option<SimTime> = None;
                let mut i = 0usize;
                while i < iters {
                    if my_kill.is_some_and(|t| t <= ctx.now()) {
                        return;
                    }
                    let (op, size) = draw(seed, j, i, &sizes);
                    let t0 = ctx.now();
                    let wire = op.wire_factor(comm.ranks.len()) * size as f64;
                    match comm.try_collective(
                        ctx,
                        r,
                        vec![DeviceBuf { flat: r, off }],
                        op,
                        size,
                        Wait::Until(rc.collective_timeout),
                    ) {
                        Ok(_) => {
                            if r == 0 && i >= recorded {
                                let d = ctx.now().since(t0);
                                let mut a = acc.lock();
                                a.meter.record(d);
                                a.wire_bytes += wire;
                                a.busy += d;
                                if let Some(at) = abort_at.take() {
                                    a.recovery += ctx.now().since(at);
                                }
                                recorded = i + 1;
                            }
                            i += 1;
                            if i < iters && (i as u32).is_multiple_of(rc.checkpoint_every) {
                                ck = Checkpoint::take(ctx, &world, &bufs, i as u64);
                            }
                        }
                        Err(abort) => {
                            // A rank the plan dooms is dead in the agreed
                            // survivor set even before its kill time
                            // (two kills straddling a detection window
                            // must not split the survivors) — it exits
                            // instead of shrinking.
                            if my_kill.is_some() {
                                return;
                            }
                            if attempt >= job.max_retries {
                                return; // retry budget exhausted: job gives up
                            }
                            let health = world.converged_health();
                            ck.restore(ctx, &world);
                            ctx.delay(rc.backoff_for(attempt));
                            // Shrink releases this rank's server flow
                            // slot for reuse: bank its bytes and drop
                            // the soon-stale id first, then track the
                            // replacement comm's flow.
                            if let Some(f) = comm.server_flow() {
                                let mut a = acc.lock();
                                if let Some(pos) = a.server_flows.iter().position(|&x| x == f) {
                                    a.server_flows.swap_remove(pos);
                                    a.server_flow_retired += ctx.handle().flow_stats(f).bytes;
                                }
                            }
                            comm = comm.shrink(ctx, &health, r);
                            if let Some(f) = comm.server_flow() {
                                acc.lock().server_flows.push(f);
                            }
                            if r == 0 {
                                acc.lock().retries += 1;
                                if abort_at.is_none() {
                                    abort_at = Some(abort.at);
                                }
                            }
                            attempt += 1;
                            i = ck.iter as usize;
                        }
                    }
                }
            });
        }
    }
    let handle = sim.handle();
    let rep = sim.run().expect("workload simulation deadlocked");
    let jobs = spec
        .jobs
        .iter()
        .zip(&accs)
        .map(|(job, acc)| {
            let a = acc.lock();
            let busy_ns = a.busy.as_nanos();
            JobResult {
                name: job.name.clone(),
                qos: job.qos,
                samples: a.meter.count(),
                p50_us: a.meter.p50_us(),
                p99_us: a.meter.p99_us(),
                achieved_gbps: if busy_ns == 0 { 0.0 } else { a.wire_bytes / busy_ns as f64 },
                table_gbps: spec.platform.net.nic_gbps,
                server_flow_bytes: a.server_flow_retired
                    + a.server_flows.iter().map(|&f| handle.flow_stats(f).bytes).sum::<u64>(),
                retries: a.retries,
                recovery_us: a.recovery.as_nanos() as f64 / 1000.0,
            }
        })
        .collect();
    WorkloadReport {
        jobs,
        makespan_us: rep.end_time.as_us(),
        end_time: rep.end_time,
        entries_processed: rep.entries_processed,
    }
}

/// The canonical mixed-QoS tenant set: job `4k` is High, job `4k+3` is
/// Low, the rest Normal; arrivals are seeded, spread over the first
/// `window`.
pub fn canonical_jobs(n: usize, seed: u64, window: Dur) -> Vec<JobSpec> {
    (0..n)
        .map(|j| {
            let qos = match j % 4 {
                0 => QosClass::High,
                3 => QosClass::Low,
                _ => QosClass::Normal,
            };
            let h = derive_seed(seed, 0xA221 + j as u64);
            let arrival = Dur::nanos(h % window.as_nanos().max(1));
            JobSpec::new(format!("{}{j}", qos_tag(qos)), qos, arrival)
        })
        .collect()
}

fn qos_tag(qos: QosClass) -> &'static str {
    match qos {
        QosClass::High => "high",
        QosClass::Normal => "normal",
        QosClass::Low => "low",
    }
}

/// The canonical 8-job contention scenario `bench_gate` gates: two
/// High, four Normal and two Low tenants on two platform-A nodes, mixed
/// 256 KiB – 4 MiB collectives, arrivals spread over the first 200 µs.
pub fn canonical_workload(contended: bool) -> WorkloadSpec {
    WorkloadSpec {
        platform: PlatformSpec::platform_a(),
        nodes: 2,
        jobs: canonical_jobs(8, 0xD10_1417, Dur::micros(200.0)),
        iters: 12,
        sizes: vec![256 << 10, 1 << 20, 4 << 20],
        seed: 0xD10_1417,
        contended,
        faults: None,
        recovery: None,
    }
}

/// The idle reference for the canonical scenario: the same fabric and
/// collective sequence, but a single tenant with the whole fabric to
/// itself. QoS weights only matter under contention, so one idle run
/// serves as the baseline for every class.
pub fn canonical_idle_workload(contended: bool) -> WorkloadSpec {
    let mut spec = canonical_workload(contended);
    spec.jobs.truncate(1);
    spec
}

/// The server-offload contention scenario `bench_gate` gates alongside
/// the canonical one: the same 8-tenant mix on a three-node platform-A
/// fabric, with one Normal tenant provisioned a reduction-server node
/// and pinned to the server engine. Its fan-back bytes are charged to
/// its own server flow, so `flow_stats` attributes every wire byte —
/// client and server side — to the owning tenant, and the other seven
/// jobs' QoS accounting is undisturbed.
pub fn server_workload(contended: bool) -> WorkloadSpec {
    let mut spec = canonical_workload(contended);
    spec.nodes = 3;
    let p = &spec.platform;
    let rc = RingConfig::auto(p, &XcclOp::AllReduce { op: ReduceOp::SumF32 }, default_nrings(p));
    spec.jobs[1] = spec.jobs[1]
        .clone()
        .with_engine(CollEngine::ReductionServer(rc))
        .with_servers(ServerSpec::tail(1));
    spec
}

/// The single-tenant reference for the server scenario: only the
/// server-equipped job, alone on the fabric.
pub fn server_idle_workload(contended: bool) -> WorkloadSpec {
    let mut spec = server_workload(contended);
    spec.jobs = vec![spec.jobs[1].clone()];
    spec
}

/// The elastic-recovery scenario `bench_gate` gates: the canonical
/// 8-job contention mix with recovery armed and rank 3 killed at
/// roughly 50% of the fault-free makespan. Every job detects the death
/// at its next collective boundary (bounded park → `gaspi_state_vec`
/// probe), shrinks its communicator to the agreed survivors, rolls back
/// one checkpoint epoch, and completes over the shrunk world.
pub fn recovery_workload() -> WorkloadSpec {
    let mut spec = canonical_workload(true);
    for job in &mut spec.jobs {
        *job = job.clone().with_max_retries(2);
    }
    // Half-way through the collective stream: the canonical run spends
    // its first ~90 ms in NCCL-style communicator init
    // (`xccl_init_us`) and runs its 12 iterations over ≈ 90–95 ms, so
    // the kill lands with roughly half of each job's iterations
    // committed and the rest re-run after the shrink.
    spec.faults = Some(FaultPlan::new().kill_rank(3, SimTime(92_500_000)));
    spec.recovery = Some(RecoveryConfig::default());
    spec
}

/// The fault-free armed reference for the recovery scenario: recovery
/// armed (checkpoints and bounded parks included), nothing killed. The
/// bench gate holds its makespan within 1.05× of the disarmed canonical
/// run — checkpoint epochs must not tax a healthy fabric.
pub fn recovery_idle_workload() -> WorkloadSpec {
    let mut spec = recovery_workload();
    spec.faults = None;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_rank_invariant_and_mixed() {
        let sizes = [256u64 << 10, 1 << 20, 4 << 20];
        let mut seen_sizes = std::collections::HashSet::new();
        let mut seen_ops = std::collections::HashSet::new();
        for i in 0..32 {
            let (op, size) = draw(7, 3, i, &sizes);
            assert_eq!((op, size), draw(7, 3, i, &sizes), "draw must be deterministic");
            seen_sizes.insert(size);
            seen_ops.insert(matches!(op, XcclOp::AllReduce { .. }));
        }
        assert!(seen_sizes.len() > 1, "sizes must actually mix");
        assert_eq!(seen_ops.len(), 2, "ops must actually mix");
    }

    #[test]
    fn canonical_jobs_cover_all_classes() {
        let jobs = canonical_jobs(8, 1, Dur::micros(200.0));
        assert_eq!(jobs.iter().filter(|j| j.qos == QosClass::High).count(), 2);
        assert_eq!(jobs.iter().filter(|j| j.qos == QosClass::Normal).count(), 4);
        assert_eq!(jobs.iter().filter(|j| j.qos == QosClass::Low).count(), 2);
        assert!(jobs.iter().all(|j| j.arrival < Dur::micros(200.0)));
    }

    #[test]
    fn single_job_workload_is_contention_invariant() {
        // One tenant: the weighted fair queue has a single backlogged
        // flow on every link, which collapses to the serial closed form
        // — the armed run must land on the same virtual end time.
        let disarmed = run_workload(&canonical_idle_workload(false));
        let armed = run_workload(&canonical_idle_workload(true));
        assert_eq!(disarmed.end_time, armed.end_time);
        assert_eq!(disarmed.jobs[0].p99_us, armed.jobs[0].p99_us);
    }

    #[test]
    fn single_server_job_workload_is_contention_invariant() {
        // The flow-partition invariant at workload level: a lone tenant
        // with carved servers splits its traffic across a client flow
        // (client NICs + ports) and a server flow (server NICs), but no
        // single wire ever carries both — so arming the fair queue still
        // changes nothing.
        let disarmed = run_workload(&server_idle_workload(false));
        let armed = run_workload(&server_idle_workload(true));
        assert_eq!(disarmed.end_time, armed.end_time);
        assert_eq!(disarmed.jobs[0].p99_us, armed.jobs[0].p99_us);
        assert_eq!(disarmed.jobs[0].server_flow_bytes, armed.jobs[0].server_flow_bytes);
    }

    #[test]
    fn server_fan_back_is_charged_to_the_owning_tenant_only() {
        let mut spec = server_workload(true);
        spec.iters = 6;
        let rep = run_workload(&spec);
        assert_eq!(rep.jobs.len(), 8);
        for (i, j) in rep.jobs.iter().enumerate() {
            assert_eq!(j.samples, 6, "{}: every iteration must be sampled", j.name);
            assert!(j.p99_us >= j.p50_us && j.p50_us > 0.0);
            if i == 1 {
                assert!(
                    j.server_flow_bytes > 0,
                    "the server job's fan-back must land on its server flow"
                );
            } else {
                assert_eq!(j.server_flow_bytes, 0, "{}: no servers, no server flow", j.name);
            }
        }
    }

    #[test]
    fn recovery_scenario_completes_every_job_over_the_survivors() {
        let rep = run_workload(&recovery_workload());
        assert_eq!(rep.jobs.len(), 8);
        let mut shrunk = 0;
        for j in &rep.jobs {
            assert_eq!(j.samples, 12, "{}: every iteration must complete", j.name);
            if j.retries > 0 {
                shrunk += 1;
                assert!(
                    j.recovery_us > 0.0,
                    "{}: a job that shrank must report its recovery latency",
                    j.name
                );
            } else {
                // A job whose collective stream finished before the
                // death was detectable never pays for recovery.
                assert_eq!(j.recovery_us, 0.0, "{}: no shrink, no recovery time", j.name);
            }
        }
        assert!(shrunk >= 4, "most tenants must ride out the mid-run kill (got {shrunk})");
    }

    #[test]
    fn recovery_scenario_replays_bit_identically() {
        let a = run_workload(&recovery_workload());
        let b = run_workload(&recovery_workload());
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.entries_processed, b.entries_processed);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.retries, y.retries, "{}: shrink count must replay", x.name);
            assert_eq!(x.recovery_us, y.recovery_us, "{}: recovery time must replay", x.name);
            assert_eq!(x.p99_us, y.p99_us, "{}: latency must replay", x.name);
        }
    }

    #[test]
    fn armed_recovery_on_a_healthy_fabric_never_shrinks() {
        let rep = run_workload(&recovery_idle_workload());
        for j in &rep.jobs {
            assert_eq!(j.samples, 12);
            assert_eq!(j.retries, 0, "{}: nothing died, nothing shrinks", j.name);
            assert_eq!(j.recovery_us, 0.0);
        }
    }

    #[test]
    fn contended_run_reports_all_jobs() {
        let mut spec = canonical_workload(true);
        spec.iters = 4;
        let rep = run_workload(&spec);
        assert_eq!(rep.jobs.len(), 8);
        for j in &rep.jobs {
            assert_eq!(j.samples, 4, "{}: every iteration must be sampled", j.name);
            assert!(j.p99_us >= j.p50_us && j.p50_us > 0.0);
            assert!(j.achieved_gbps > 0.0 && j.achieved_gbps < j.table_gbps);
        }
    }
}
