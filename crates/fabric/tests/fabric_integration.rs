//! Integration tests for the fabric: GASNet-EX conduit, GPI-2 conduit,
//! and the MPI baseline (P2P, RMA, collectives).

use std::sync::Arc;

use diomp_device::{DataMode, DeviceTable, HostBuf};
use diomp_fabric::{gasnet, gpi, FabricWorld, Loc, ReduceOp};
use diomp_sim::{ClusterSpec, Dur, PlatformSpec, Sim, Topology, Wait};

/// Build a world of `nranks` ranks, one device each, on `platform`.
fn boot(
    sim: &Sim,
    platform: PlatformSpec,
    nodes: usize,
    gpus_per_node: usize,
    nranks: usize,
) -> Arc<FabricWorld> {
    let spec = ClusterSpec { platform, nodes, gpus_per_node };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(4 << 20));
    FabricWorld::new(topo, devs, nranks)
}

fn world_a(sim: &Sim, nranks: usize) -> Arc<FabricWorld> {
    let nodes = nranks.div_ceil(4);
    boot(sim, PlatformSpec::platform_a(), nodes, 4, nranks)
}

#[test]
fn gasnet_put_moves_bytes_across_nodes() {
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    let w = world.clone();
    // Rank 4 (node 1) attaches a segment; rank 0 (node 0) puts into it.
    let seg = w.attach_device_segment(4, 4, 1 << 16).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let dev0 = w0.primary_dev(0).clone();
        dev0.mem.write(0, &[42u8; 256]).unwrap();
        gasnet::put_blocking(ctx, &w0, 0, Loc::dev(0, 0), seg, 512, 256).unwrap();
        // After remote completion the bytes are visible at the target.
        let seg_obj = w0.segment(seg);
        let target = seg_obj.loc(512);
        let bytes = target.snapshot(&w0.devs, 256).unwrap().unwrap();
        assert_eq!(bytes, vec![42u8; 256]);
    });
    sim.run().unwrap();
}

#[test]
fn gasnet_small_put_latency_matches_platform_a_calibration() {
    // Fig. 3a: DiOMP Put at small sizes ≈ 5 µs on Slingshot-11 + A100.
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    let seg = world.attach_device_segment(4, 4, 1 << 16).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let t0 = ctx.now();
        gasnet::put_blocking(ctx, &w0, 0, Loc::dev(0, 0), seg, 0, 8).unwrap();
        let us = ctx.now().since(t0).as_us();
        assert!((3.5..8.0).contains(&us), "8 B put latency {us:.2} µs out of band");
    });
    sim.run().unwrap();
}

#[test]
fn gasnet_get_latency_exceeds_put_latency() {
    // A get pays the request round trip; puts only the ack.
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    let seg = world.attach_device_segment(4, 4, 1 << 16).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let t0 = ctx.now();
        gasnet::put_blocking(ctx, &w0, 0, Loc::dev(0, 0), seg, 0, 8).unwrap();
        let put_us = ctx.now().since(t0).as_us();
        let t1 = ctx.now();
        gasnet::get_blocking(ctx, &w0, 0, Loc::dev(0, 64), seg, 0, 8).unwrap();
        let get_us = ctx.now().since(t1).as_us();
        assert!(get_us > put_us, "get {get_us:.2} µs should exceed put {put_us:.2} µs");
    });
    sim.run().unwrap();
}

#[test]
fn platform_a_put_anomaly_caps_bandwidth_but_get_is_unaffected() {
    // Fig. 4a: the documented driver issue caps DiOMP Put throughput.
    let measure = |anomaly: bool| -> (f64, f64) {
        let mut sim = Sim::new();
        let mut platform = PlatformSpec::platform_a();
        if !anomaly {
            platform.put_anomaly_gbps = None;
        }
        let world = boot(&sim, platform, 2, 4, 8);
        let seg = world.attach_device_segment(4, 4, 2 << 20).unwrap();
        let out = Arc::new(parking_lot::Mutex::new((0.0, 0.0)));
        let out2 = out.clone();
        let w0 = world.clone();
        sim.spawn("rank0", move |ctx| {
            let len = 1 << 20;
            let t0 = ctx.now();
            gasnet::put_blocking(ctx, &w0, 0, Loc::dev(0, 0), seg, 0, len).unwrap();
            let put_bw = diomp_sim::bandwidth_gbps(len, ctx.now().since(t0));
            let t1 = ctx.now();
            gasnet::get_blocking(ctx, &w0, 0, Loc::dev(0, 0), seg, 0, len).unwrap();
            let get_bw = diomp_sim::bandwidth_gbps(len, ctx.now().since(t1));
            *out2.lock() = (put_bw, get_bw);
        });
        sim.run().unwrap();
        let r = *out.lock();
        r
    };
    let (put_anom, get_anom) = measure(true);
    let (put_fixed, _) = measure(false);
    assert!(put_anom < 4.0, "anomalous put bw {put_anom:.1} GB/s should be capped ~3.2");
    assert!(put_fixed > 15.0, "corrected put bw {put_fixed:.1} GB/s should approach wire");
    assert!(get_anom > 15.0, "get is not affected by the put anomaly");
}

#[test]
fn gasnet_same_node_put_is_faster_than_internode() {
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    let seg_near = world.attach_device_segment(1, 1, 1 << 16).unwrap(); // same node as rank 0
    let seg_far = world.attach_device_segment(4, 4, 1 << 16).unwrap(); // other node
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let len = 64 << 10;
        let t0 = ctx.now();
        gasnet::put_blocking(ctx, &w0, 0, Loc::dev(0, 0), seg_near, 0, len).unwrap();
        let near = ctx.now().since(t0);
        let t1 = ctx.now();
        gasnet::put_blocking(ctx, &w0, 0, Loc::dev(0, 0), seg_far, 0, len).unwrap();
        let far = ctx.now().since(t1);
        assert!(near < far, "intra-node staging {near} should beat the NIC path {far}");
    });
    sim.run().unwrap();
}

#[test]
fn gasnet_active_message_runs_handler_at_target() {
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    let hits = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let hits2 = hits.clone();
    world.am.register(3, 7, move |_h, msg| {
        hits2.lock().push((msg.from, msg.args.clone()));
    });
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        gasnet::am_request(ctx, &w0, 0, 3, 7, vec![11, 22], None);
        ctx.delay(Dur::millis(1.0)); // let it land
    });
    sim.run().unwrap();
    assert_eq!(*hits.lock(), vec![(0, vec![11, 22])]);
}

#[test]
fn gpi_write_notify_roundtrip_on_platform_c() {
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_c(), 4, 1, 4);
    let seg = world.attach_device_segment(2, 2, 1 << 16).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let dev = w0.primary_dev(0).clone();
        dev.mem.write(0, &[9u8; 128]).unwrap();
        gpi::write_notify(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 256, 128, 42, 7)
            .unwrap();
        gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
    });
    let w2 = world.clone();
    sim.spawn("rank2", move |ctx| {
        let v = gpi::notify_wait(ctx, &w2, 2, 42);
        assert_eq!(v, 7);
        // Data arrived before/with the notification.
        let seg_obj = w2.segment(seg);
        let bytes = seg_obj.loc(256).snapshot(&w2.devs, 128).unwrap().unwrap();
        assert_eq!(bytes, vec![9u8; 128]);
    });
    sim.run().unwrap();
}

#[test]
fn gpi_wait_all_queues_drains_every_queue() {
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
    let seg = world.attach_device_segment(1, 1, 1 << 16).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let dev = w0.primary_dev(0).clone();
        dev.mem.write(0, &[5u8; 256]).unwrap();
        // Spread writes over four queues; a queue-0-only drain would
        // leave three completions unawaited.
        for q in 0..4u8 {
            gpi::write(
                ctx,
                &w0,
                0,
                gpi::QueueId(q),
                Loc::dev(0, 64 * q as u64),
                seg,
                64 * q as u64,
                64,
            )
            .unwrap();
        }
        gpi::wait_all_queues(ctx, &w0, 0, Wait::Block).unwrap();
        // After the drain every queue's data is visible at the target.
        let seg_obj = w0.segment(seg);
        let bytes = seg_obj.loc(0).snapshot(&w0.devs, 256).unwrap().unwrap();
        assert_eq!(bytes, vec![5u8; 256]);
        // And a second drain finds nothing pending (no deadlock, no-op).
        gpi::wait_all_queues(ctx, &w0, 0, Wait::Block).unwrap();
    });
    sim.run().unwrap();
}

#[test]
fn gpi_notify_waitsome_drains_a_range_in_arrival_id_order() {
    // Four notifications land on ids 10..14 in shuffled arrival order; a
    // waitsome loop over the range consumes each exactly once, returning
    // the lowest posted id first.
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_c(), 3, 1, 3);
    let seg = world.attach_device_segment(2, 2, 1 << 16).unwrap();
    for (src, ids) in [(0usize, [13u32, 10]), (1, [12, 11])] {
        let w = world.clone();
        sim.spawn(format!("producer{src}"), move |ctx| {
            let dev = w.primary_dev(src).clone();
            dev.mem.write(0, &[src as u8 + 1; 64]).unwrap();
            for (k, id) in ids.into_iter().enumerate() {
                ctx.delay(Dur::micros(30.0 * k as f64 + 10.0 * src as f64));
                gpi::write_notify(
                    ctx,
                    &w,
                    src,
                    gpi::QueueId(0),
                    Loc::dev(src, 0),
                    seg,
                    64 * id as u64,
                    64,
                    id,
                    id as u64 + 100,
                )
                .unwrap();
            }
            gpi::wait_queue(ctx, &w, src, gpi::QueueId(0), Wait::Block).unwrap();
        });
    }
    let w2 = world.clone();
    sim.spawn("consumer", move |ctx| {
        let mut got = Vec::new();
        for _ in 0..4 {
            let (id, v) = gpi::notify_waitsome(ctx, &w2, 2, 10, 4, Wait::Block).unwrap();
            assert_eq!(v, id as u64 + 100, "value must travel with its id");
            got.push(id);
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 11, 12, 13], "each id exactly once");
        // Nothing left on the board afterwards.
        for id in 10..14 {
            assert_eq!(gpi::notify_reset(ctx, &w2, 2, id), None);
        }
    });
    sim.run().unwrap();
}

#[test]
fn gpi_concurrent_waiters_on_one_id_both_complete() {
    // Regression: the pre-board notify_wait kept a single waiter slot per
    // id, so a second waiter overwrote the first's wake registration and
    // the first parked forever once its notification had been consumed.
    // Now arrival checking and consumption are atomic under the board
    // lock: two waiters + two sequenced posts must both return.
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
    let seg = world.attach_device_segment(1, 1, 1 << 16).unwrap();
    let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
    for name in ["waiter-a", "waiter-b"] {
        let w = world.clone();
        let sum = sum.clone();
        sim.spawn(name, move |ctx| {
            let v = gpi::notify_wait(ctx, &w, 1, 9);
            sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
        });
    }
    let w0 = world.clone();
    sim.spawn("producer", move |ctx| {
        for v in [5u64, 6] {
            gpi::write_notify(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 8, 9, v)
                .unwrap();
            // Space the posts so the first is consumed before the second
            // lands (posting to an unconsumed id overwrites it).
            ctx.delay(Dur::millis(1.0));
        }
        gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
    });
    sim.run().unwrap();
    assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 11, "both waiters woke");
}

#[test]
fn gpi_notification_never_overtakes_its_payload() {
    // A large write_notify: the notification control message must queue
    // behind the payload on the same NIC, so when the waiter wakes the
    // full deposit is already visible.
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
    let len: u64 = 2 << 20;
    let seg = world.attach_device_segment(1, 1, 4 << 20).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let dev = w0.primary_dev(0).clone();
        let pattern: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
        dev.mem.write(0, &pattern).unwrap();
        gpi::write_notify(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, len, 3, 1).unwrap();
        gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
    });
    let w1 = world.clone();
    sim.spawn("rank1", move |ctx| {
        let v = gpi::notify_wait(ctx, &w1, 1, 3);
        assert_eq!(v, 1);
        let bytes = w1.segment(seg).loc(0).snapshot(&w1.devs, len).unwrap().unwrap();
        let expect: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
        assert_eq!(bytes, expect, "payload fully deposited before the notification");
    });
    sim.run().unwrap();
}

#[test]
fn gpi_on_slingshot_platform_reports_conduit_unavailable() {
    // No panic: the missing conduit surfaces as a typed error the caller
    // can react to (fall back to GASNet, report, abort cleanly).
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    let seg = world.attach_device_segment(1, 1, 1 << 16).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let err = gpi::write(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 64)
            .expect_err("GPI-2 must be unavailable on Slingshot");
        assert!(matches!(err, diomp_fabric::FabricError::ConduitUnavailable { .. }), "{err:?}");
    });
    sim.run().unwrap();
}

// ---------------- MPI baseline ----------------

#[test]
fn mpi_eager_send_recv_delivers_posted_and_unexpected() {
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let mpi = diomp_fabric::MpiRank::new(w0.clone(), 0);
        let dev = w0.primary_dev(0).clone();
        dev.mem.write(0, &[1u8; 64]).unwrap();
        // First send races ahead of the recv (unexpected path)...
        mpi.send(ctx, 4, 100, Loc::dev(0, 0), 64).unwrap();
        ctx.delay(Dur::millis(1.0));
        // ...second send arrives after the recv was posted.
        dev.mem.write(0, &[2u8; 64]).unwrap();
        mpi.send(ctx, 4, 101, Loc::dev(0, 0), 64).unwrap();
    });
    let w4 = world.clone();
    sim.spawn("rank4", move |ctx| {
        let mpi = diomp_fabric::MpiRank::new(w4.clone(), 4);
        let dev = w4.primary_dev(4).clone();
        ctx.delay(Dur::micros(500.0)); // guarantee the unexpected path for tag 100
        mpi.recv(ctx, Some(0), Some(100), Loc::dev(4, 0), 64).unwrap();
        let r2 = mpi.irecv(ctx, Some(0), Some(101), Loc::dev(4, 64), 64).unwrap();
        mpi.wait(ctx, r2);
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        dev.mem.read(0, &mut a).unwrap();
        dev.mem.read(64, &mut b).unwrap();
        assert_eq!(a, [1u8; 64]);
        assert_eq!(b, [2u8; 64]);
    });
    sim.run().unwrap();
}

#[test]
fn mpi_rendezvous_transfers_large_payload() {
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    let len: u64 = 256 << 10; // far above eager_max = 8 KiB
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let mpi = diomp_fabric::MpiRank::new(w0.clone(), 0);
        let dev = w0.primary_dev(0).clone();
        let pattern: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        dev.mem.write(0, &pattern).unwrap();
        mpi.send(ctx, 4, 9, Loc::dev(0, 0), len).unwrap();
    });
    let w4 = world.clone();
    sim.spawn("rank4", move |ctx| {
        let mpi = diomp_fabric::MpiRank::new(w4.clone(), 4);
        let dev = w4.primary_dev(4).clone();
        mpi.recv(ctx, Some(0), Some(9), Loc::dev(4, 0), len).unwrap();
        let mut got = vec![0u8; len as usize];
        dev.mem.read(0, &mut got).unwrap();
        let expect: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        assert_eq!(got, expect);
    });
    sim.run().unwrap();
}

#[test]
fn mpi_wildcard_recv_matches_any_source() {
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    for r in [1usize, 2] {
        let w = world.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let mpi = diomp_fabric::MpiRank::new(w.clone(), r);
            let host = HostBuf::from_bytes(vec![r as u8; 16]);
            ctx.delay(Dur::micros(r as f64 * 50.0));
            mpi.send(ctx, 0, 5, Loc::host(host, 0), 16).unwrap();
        });
    }
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let mpi = diomp_fabric::MpiRank::new(w0.clone(), 0);
        let a = HostBuf::zeroed(16);
        let b = HostBuf::zeroed(16);
        mpi.recv(ctx, None, Some(5), Loc::host(a.clone(), 0), 16).unwrap();
        mpi.recv(ctx, None, Some(5), Loc::host(b.clone(), 0), 16).unwrap();
        let mut got = vec![a.to_bytes()[0], b.to_bytes()[0]];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    });
    sim.run().unwrap();
}

#[test]
fn mpi_rma_put_latency_exceeds_gasnet_put_latency() {
    // The Fig. 3 headline: DiOMP RMA beats MPI RMA at small sizes.
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    let seg = world.attach_device_segment(4, 4, 1 << 16).unwrap();
    for r in 0..8usize {
        let w = world.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let mpi = diomp_fabric::MpiRank::new(w.clone(), r);
            let win = mpi.win_create(ctx, Loc::dev(r, 1 << 15), 4096);
            if r == 0 {
                let t0 = ctx.now();
                mpi.win_put(ctx, win, 4, 0, Loc::dev(0, 0), 8).unwrap();
                mpi.win_flush(ctx, win);
                let mpi_us = ctx.now().since(t0).as_us();
                let t1 = ctx.now();
                gasnet::put_blocking(ctx, &w, 0, Loc::dev(0, 0), seg, 0, 8).unwrap();
                let gas_us = ctx.now().since(t1).as_us();
                assert!(
                    mpi_us > 1.3 * gas_us,
                    "MPI put+flush {mpi_us:.2} µs must exceed GASNet put {gas_us:.2} µs"
                );
            }
            mpi.barrier(ctx);
        });
    }
    sim.run().unwrap();
}

#[test]
fn mpi_rma_get_moves_correct_bytes() {
    let mut sim = Sim::new();
    let world = world_a(&sim, 8);
    for r in 0..8usize {
        let w = world.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let mpi = diomp_fabric::MpiRank::new(w.clone(), r);
            let dev = w.primary_dev(r).clone();
            dev.mem.write(0, &[r as u8 + 10; 64]).unwrap();
            let win = mpi.win_create(ctx, Loc::dev(r, 0), 4096);
            mpi.barrier(ctx);
            if r == 0 {
                mpi.win_get(ctx, win, 7, 0, Loc::dev(0, 2048), 64).unwrap();
                mpi.win_flush(ctx, win);
                let mut got = [0u8; 64];
                dev.mem.read(2048, &mut got).unwrap();
                assert_eq!(got, [17u8; 64]);
            }
            mpi.barrier(ctx);
        });
    }
    sim.run().unwrap();
}

fn run_allreduce(nranks: usize, elems: usize) {
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_a(), nranks, 1, nranks);
    for r in 0..nranks {
        let w = world.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let mut mpi = diomp_fabric::MpiRank::new(w.clone(), r);
            let dev = w.primary_dev(r).clone();
            let off = dev.malloc((elems * 8) as u64, 256).unwrap();
            let vals: Vec<f64> = (0..elems).map(|i| (r * elems + i) as f64).collect();
            let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            dev.mem.write(off, &bytes).unwrap();
            mpi.allreduce(ctx, Loc::dev(r, off), (elems * 8) as u64, ReduceOp::SumF64).unwrap();
            let mut out = vec![0u8; elems * 8];
            dev.mem.read(off, &mut out).unwrap();
            for i in 0..elems {
                let got = f64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().unwrap());
                let expect: f64 = (0..nranks).map(|k| (k * elems + i) as f64).sum();
                assert!(
                    (got - expect).abs() < 1e-9,
                    "rank {r} elem {i}: got {got}, expect {expect}"
                );
            }
        });
    }
    sim.run().unwrap();
}

#[test]
fn mpi_allreduce_matches_sequential_sum_power_of_two() {
    run_allreduce(8, 32);
}

#[test]
fn mpi_allreduce_matches_sequential_sum_odd_ranks() {
    run_allreduce(6, 17);
}

#[test]
fn mpi_allreduce_matches_sequential_sum_large_payload() {
    run_allreduce(4, 4096); // 32 KiB → rendezvous path inside the rounds
}

fn run_bcast(nranks: usize, len: u64, root: usize) {
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_a(), nranks, 1, nranks);
    for r in 0..nranks {
        let w = world.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let mut mpi = diomp_fabric::MpiRank::new(w.clone(), r);
            let dev = w.primary_dev(r).clone();
            let off = dev.malloc(len, 256).unwrap();
            if r == root {
                let pattern: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
                dev.mem.write(off, &pattern).unwrap();
            }
            mpi.bcast(ctx, root, Loc::dev(r, off), len).unwrap();
            let mut got = vec![0u8; len as usize];
            dev.mem.read(off, &mut got).unwrap();
            let expect: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
            assert_eq!(got, expect, "rank {r} bcast payload mismatch");
        });
    }
    sim.run().unwrap();
}

#[test]
fn mpi_bcast_binomial_small_message() {
    run_bcast(8, 4096, 0);
}

#[test]
fn mpi_bcast_nonzero_root() {
    run_bcast(6, 2048, 3);
}

#[test]
fn mpi_bcast_scatter_allgather_large_message() {
    run_bcast(8, 1 << 20, 0); // 1 MiB → van de Geijn path
}

#[test]
fn mpi_reduce_collects_at_root() {
    let nranks = 8;
    let mut sim = Sim::new();
    let world = world_a(&sim, nranks);
    for r in 0..nranks {
        let w = world.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let mut mpi = diomp_fabric::MpiRank::new(w.clone(), r);
            let dev = w.primary_dev(r).clone();
            let off = dev.malloc(64, 256).unwrap();
            let bytes: Vec<u8> = (0..8).flat_map(|i| ((r + i) as f64).to_le_bytes()).collect();
            dev.mem.write(off, &bytes).unwrap();
            mpi.reduce(ctx, 2, Loc::dev(r, off), 64, ReduceOp::SumF64).unwrap();
            if r == 2 {
                let mut out = vec![0u8; 64];
                dev.mem.read(off, &mut out).unwrap();
                for i in 0..8usize {
                    let got = f64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().unwrap());
                    let expect: f64 = (0..nranks).map(|k| (k + i) as f64).sum();
                    assert!((got - expect).abs() < 1e-9);
                }
            }
        });
    }
    sim.run().unwrap();
}

#[test]
fn fabric_runs_are_deterministic() {
    let run = || -> u64 {
        let mut sim = Sim::new();
        let world = world_a(&sim, 8);
        let done = Arc::new(parking_lot::Mutex::new(0u64));
        for r in 0..8usize {
            let w = world.clone();
            let done = done.clone();
            sim.spawn(format!("rank{r}"), move |ctx| {
                let mut mpi = diomp_fabric::MpiRank::new(w.clone(), r);
                mpi.allreduce(ctx, Loc::dev(r, 0), 1024, ReduceOp::SumF64).unwrap();
                mpi.barrier(ctx);
                if r == 0 {
                    *done.lock() = ctx.now().nanos();
                }
            });
        }
        sim.run().unwrap();
        let v = *done.lock();
        v
    };
    assert_eq!(run(), run());
}

// ---------------- Timeouts, faults, and recovery (GASPI fault model) ----------------

use diomp_fabric::{FabricError, RankHealth};
use diomp_sim::{fault_key, CtrlFault, FaultPlan, SimTime};

#[test]
fn gpi_wait_queue_timeout_then_blocking_wait_drains() {
    // A cross-node write cannot complete within 1 ns of virtual time:
    // the timed wait must return GASPI_TIMEOUT-style, leave the
    // operation queued, and a later blocking wait must still drain it
    // (partial state preserved, nothing lost or double-freed).
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
    let seg = world.attach_device_segment(1, 1, 1 << 16).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        gpi::write(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 1 << 14).unwrap();
        let err = gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Until(Dur::nanos(1)))
            .expect_err("a cross-node write cannot finish in 1 ns");
        assert!(matches!(err, FabricError::Timeout { .. }), "{err:?}");
        gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
    });
    sim.run().unwrap();
}

#[test]
fn gpi_wait_timeout_retires_completed_ops_and_requeues_the_rest() {
    // Two writes on one queue: a tiny one (completes in ~µs) and a huge
    // one. A timed wait placed between their completion times errors,
    // but must retire the finished op; the survivor drains later.
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
    let seg = world.attach_device_segment(1, 1, 1 << 20).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        gpi::write(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 8).unwrap();
        gpi::write(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 64), seg, 64, 1 << 20).unwrap();
        let err = gpi::wait_all_queues(ctx, &w0, 0, Wait::Until(Dur::micros(30.0)))
            .expect_err("the 1 MiB write outlives a 30 µs deadline");
        assert!(matches!(err, FabricError::Timeout { .. }), "{err:?}");
        // The small write was retired by the timed wait; the big one is
        // still queued and must drain on the unbounded wait.
        gpi::wait_all_queues(ctx, &w0, 0, Wait::Block).unwrap();
    });
    sim.run().unwrap();
}

#[test]
fn gpi_injected_queue_drop_errors_queue_until_purged() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().ctrl_fault(fault_key("gpi-queue", 0, 0), CtrlFault::Drop));
    let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
    let seg = world.attach_device_segment(1, 1, 1 << 16).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        let q = gpi::QueueId(0);
        let err = gpi::write(ctx, &w0, 0, q, Loc::dev(0, 0), seg, 0, 64)
            .expect_err("injected drop must error the queue");
        assert_eq!(err, FabricError::QueueError { rank: 0, queue: q });
        assert!(gpi::queue_errored(&w0, 0, q));
        // Error state is sticky: the next post fails without a new fault.
        let err2 = gpi::write(ctx, &w0, 0, q, Loc::dev(0, 0), seg, 0, 64).unwrap_err();
        assert_eq!(err2, FabricError::QueueError { rank: 0, queue: q });
        // An unrelated queue is unaffected.
        gpi::write(ctx, &w0, 0, gpi::QueueId(1), Loc::dev(0, 0), seg, 0, 64).unwrap();
        // Purge re-arms the queue; posting and draining work again.
        gpi::queue_purge(ctx.handle(), &w0, 0, q);
        assert!(!gpi::queue_errored(&w0, 0, q));
        gpi::write(ctx, &w0, 0, q, Loc::dev(0, 0), seg, 0, 64).unwrap();
        gpi::wait_all_queues(ctx, &w0, 0, Wait::Block).unwrap();
    });
    let h = sim.handle();
    sim.run().unwrap();
    assert_eq!(h.faults_injected(), 1, "exactly the one injected drop was charged");
}

#[test]
fn gpi_queue_purge_abandons_inflight_completions_without_leaking() {
    // Purge a queue while its write is still on the wire: the completion
    // event must recycle itself when the ack lands (auto-free), not
    // panic, not leak, and not wake anyone.
    let mut sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
    let seg = world.attach_device_segment(1, 1, 1 << 20).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        gpi::write(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 1 << 20).unwrap();
        gpi::queue_purge(ctx.handle(), &w0, 0, gpi::QueueId(0));
        // Nothing left to wait on; an immediate drain returns at once.
        let t0 = ctx.now();
        gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
        assert_eq!(ctx.now(), t0, "purged queue has no completions to wait for");
    });
    sim.run().unwrap();
}

#[test]
fn gpi_lost_notification_recovered_by_timeout_and_retry() {
    // The canonical GASPI failure: the payload lands but its notification
    // is lost in flight. The consumer's timed waitsome fires, it asks the
    // producer to re-notify, and the retry (fault already consumed)
    // delivers. End state: payload visible, value observed exactly once.
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().ctrl_fault(fault_key("gpi-notify", 1, 7), CtrlFault::Drop));
    let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
    let seg = world.attach_device_segment(1, 1, 1 << 16).unwrap();
    let retry = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let w0 = world.clone();
    let retry0 = retry.clone();
    sim.spawn("producer", move |ctx| {
        let dev = w0.primary_dev(0).clone();
        dev.mem.write(0, &[9u8; 64]).unwrap();
        gpi::write_notify(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 64, 7, 77).unwrap();
        gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
        // Await the consumer's re-notify request (virtual-time poll).
        while !retry0.load(std::sync::atomic::Ordering::Relaxed) {
            ctx.delay(Dur::micros(20.0));
        }
        gpi::write_notify(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 64, 7, 77).unwrap();
        gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
    });
    let w1 = world.clone();
    sim.spawn("consumer", move |ctx| {
        let err = gpi::notify_waitsome(ctx, &w1, 1, 0, 16, Wait::Until(Dur::millis(1.0)))
            .expect_err("the first notification was dropped");
        assert!(matches!(err, FabricError::Timeout { .. }), "{err:?}");
        retry.store(true, std::sync::atomic::Ordering::Relaxed);
        let (id, value) = gpi::notify_waitsome(ctx, &w1, 1, 0, 16, Wait::Block).unwrap();
        assert_eq!((id, value), (7, 77));
        let bytes = w1.segment(seg).loc(0).snapshot(&w1.devs, 64).unwrap().unwrap();
        assert_eq!(bytes, vec![9u8; 64], "payload landed despite the lost notification");
    });
    sim.run().unwrap();
}

#[test]
fn health_vector_reflects_fault_plan_per_rank() {
    let sim = Sim::new();
    let world = boot(&sim, PlatformSpec::platform_c(), 4, 1, 4);
    let nic1 = world.primary_dev(1).nic;
    let nic3 = world.primary_dev(3).nic;
    let plan =
        FaultPlan::new().degrade_link(nic1, SimTime(0), SimTime(u64::MAX), 400).kill_link(nic3);
    world.refresh_health_from_plan(&plan);
    let hv = world.health();
    assert_eq!(hv.rank_health(0), RankHealth::Healthy);
    assert_eq!(hv.rank_health(1), RankHealth::Degraded { factor_milli: 400 });
    assert_eq!(hv.rank_health(2), RankHealth::Healthy);
    assert_eq!(hv.rank_health(3), RankHealth::Dead);
    assert!(hv.any_dead());
    assert_eq!(hv.worst_live_factor_milli(), 400, "dead ranks priced out, not in");
    assert_eq!(hv.link_factor_milli(nic1), 400);
    assert_eq!(hv.link_factor_milli(nic3), 0);
    assert_eq!(hv.link_factor_milli(world.primary_dev(0).nic), 1000);
    drop(sim);
}

#[test]
fn gpi_concurrent_waiters_survive_injected_notification_delays() {
    // The PR 3 lost-wake regression (two waiters, one id) re-run with the
    // injector delaying both notification messages: the stretched post
    // times must not resurrect the overwrite/forever-park bug, at any of
    // several fixed seeds' delay combinations.
    for (d0, d1) in [(5.0, 900.0), (900.0, 5.0), (250.0, 250.0)] {
        let mut sim = Sim::new();
        sim.set_fault_plan(
            FaultPlan::new()
                .ctrl_fault(fault_key("gpi-notify", 1, 9), CtrlFault::Delay(Dur::micros(d0)))
                .ctrl_fault(fault_key("gpi-notify", 1, 9), CtrlFault::Delay(Dur::micros(d1))),
        );
        let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
        let seg = world.attach_device_segment(1, 1, 1 << 16).unwrap();
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for name in ["waiter-a", "waiter-b"] {
            let w = world.clone();
            let sum = sum.clone();
            sim.spawn(name, move |ctx| {
                let v = gpi::notify_wait(ctx, &w, 1, 9);
                sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
            });
        }
        let w0 = world.clone();
        sim.spawn("producer", move |ctx| {
            for v in [5u64, 6] {
                gpi::write_notify(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 8, 9, v)
                    .unwrap();
                // Wide spacing so the two posts stay distinguishable even
                // under the injected skews above.
                ctx.delay(Dur::millis(2.0));
            }
            gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
        });
        sim.run().unwrap();
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::Relaxed),
            11,
            "both waiters woke under delays ({d0}, {d1})"
        );
    }
}

#[test]
fn gpi_timed_wait_against_a_killed_peer_times_out_at_the_deadline() {
    // Rank 1 is killed before rank 0 reads from its segment: the kill's
    // dead windows replay the corpse's links 1000× slow, so the
    // transfer sourced at its NIC cannot complete inside the bounded
    // wait. The timed wait (GASPI_TIMEOUT discipline via
    // `wait_all_with(Wait::Until)`) must surface `FabricError::Timeout`
    // *exactly at the deadline* — the budget bounds detection, not the
    // stretched transfer — and a later blocking wait still drains it
    // (dead links are slow, never wedged).
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill_rank(1, SimTime::ZERO));
    let world = boot(&sim, PlatformSpec::platform_c(), 2, 1, 2);
    // Attach the simulator so the rank kill expands into dead link
    // windows (what the runtime does at build).
    world.attach_sim(&sim.handle());
    let seg = world.attach_device_segment(1, 1, 1 << 16).unwrap();
    let w0 = world.clone();
    sim.spawn("rank0", move |ctx| {
        gpi::read(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 1 << 16).unwrap();
        let t0 = ctx.now();
        let budget = Dur::micros(200.0);
        let err = gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Until(budget))
            .expect_err("a read sourced at a killed peer cannot finish inside the budget");
        assert!(matches!(err, FabricError::Timeout { .. }), "{err:?}");
        assert_eq!(
            ctx.now(),
            t0 + budget,
            "the timeout fires at the deadline, not after the 1000x-stretched transfer"
        );
        gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
    });
    sim.run().unwrap();
}
