//! Reusable dissemination-style barrier domains.
//!
//! A [`BarrierDomain`] synchronises a fixed set of `n` participants. The
//! cost model is that of a dissemination barrier: the barrier completes
//! ⌈log2 n⌉ network latencies after the last participant arrives. The
//! same object backs `MPI_Barrier`, GASNet barriers and the group-scoped
//! `ompx_barrier` of the DiOMP runtime.

use std::collections::VecDeque;

use diomp_sim::{Ctx, Dur, EventId};
use parking_lot::Mutex;

struct Episode {
    ev: EventId,
    arrived: usize,
    /// Participants still inside `arrive_and_wait` (for event recycling).
    inside: usize,
}

/// A reusable barrier for `n` participants.
///
/// Episodes are queued: a fast participant may re-enter the barrier (the
/// next episode) while slow participants are still leaving the previous
/// one — exactly what back-to-back barriers in an application do.
pub struct BarrierDomain {
    n: usize,
    hop: Dur,
    episodes: Mutex<VecDeque<Episode>>,
}

impl BarrierDomain {
    /// Barrier over `n` participants with per-hop latency `hop`.
    pub fn new(n: usize, hop: Dur) -> Self {
        assert!(n >= 1);
        BarrierDomain { n, hop, episodes: Mutex::new(VecDeque::new()) }
    }

    /// Number of participants.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Enter the barrier and block until all `n` participants have
    /// entered (plus the modelled ⌈log2 n⌉ hop fan-in/fan-out latency).
    pub fn arrive_and_wait(&self, ctx: &mut Ctx) {
        if self.n == 1 {
            return;
        }
        let ev = {
            let mut eps = self.episodes.lock();
            let needs_new = eps.back().map(|e| e.arrived == self.n).unwrap_or(true);
            if needs_new {
                eps.push_back(Episode { ev: ctx.new_event(), arrived: 0, inside: 0 });
            }
            let ep = eps.back_mut().unwrap();
            ep.arrived += 1;
            ep.inside += 1;
            let ev = ep.ev;
            if ep.arrived == self.n {
                let hops = usize::BITS - (self.n - 1).leading_zeros(); // ⌈log2 n⌉
                let done = ctx.now() + Dur::nanos(self.hop.as_nanos() * hops as u64);
                ctx.complete_at(ev, done);
            }
            ev
        };
        ctx.wait(ev);
        let mut eps = self.episodes.lock();
        let pos = eps.iter().position(|e| e.ev == ev).expect("barrier episode vanished");
        eps[pos].inside -= 1;
        if eps[pos].inside == 0 {
            let done = eps.remove(pos).unwrap();
            ctx.free_event(done.ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diomp_sim::{Sim, SimTime};
    use std::sync::Arc;

    #[test]
    fn all_ranks_leave_after_last_arrival_plus_hops() {
        let mut sim = Sim::new();
        let bar = Arc::new(BarrierDomain::new(4, Dur::micros(1.0)));
        for r in 0..4u64 {
            let bar = bar.clone();
            sim.spawn(format!("r{r}"), move |ctx| {
                ctx.delay(Dur::micros(r as f64 * 10.0));
                bar.arrive_and_wait(ctx);
                // Last arrival at 30 µs; ⌈log2 4⌉ = 2 hops of 1 µs.
                assert_eq!(ctx.now(), SimTime(32_000));
            });
        }
        sim.run().unwrap();
    }

    #[test]
    fn barrier_is_reusable_across_episodes() {
        let mut sim = Sim::new();
        let bar = Arc::new(BarrierDomain::new(3, Dur::micros(0.5)));
        for r in 0..3u64 {
            let bar = bar.clone();
            sim.spawn(format!("r{r}"), move |ctx| {
                for round in 0..5u64 {
                    ctx.delay(Dur::micros((r + 1) as f64));
                    bar.arrive_and_wait(ctx);
                    let _ = round;
                }
            });
        }
        sim.run().unwrap();
    }

    #[test]
    fn single_rank_barrier_is_free() {
        let mut sim = Sim::new();
        let bar = Arc::new(BarrierDomain::new(1, Dur::micros(1.0)));
        sim.spawn("solo", move |ctx| {
            bar.arrive_and_wait(ctx);
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        sim.run().unwrap();
    }

    #[test]
    fn barrier_events_are_recycled() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let bar = Arc::new(BarrierDomain::new(2, Dur::micros(0.1)));
        for r in 0..2 {
            let bar = bar.clone();
            sim.spawn(format!("r{r}"), move |ctx| {
                for _ in 0..100 {
                    bar.arrive_and_wait(ctx);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(h.live_events(), 0, "barrier must free its events");
    }
}
