//! Bootstrap all-gather domains.
//!
//! An [`ExchangeDomain`] lets `n` participants each contribute one value
//! and receive everyone's contributions — the CPU-side bootstrap primitive
//! used for segment-address exchange at attach time and for broadcasting
//! the XCCL UniqueId (paper §3.3: "identifiers are broadcast across
//! processes via a CPU-side communication mechanism").

use std::collections::VecDeque;

use diomp_sim::{Ctx, Dur, EventId};
use parking_lot::Mutex;

struct Episode<T> {
    ev: EventId,
    slots: Vec<Option<T>>,
    arrived: usize,
    inside: usize,
}

/// A reusable all-gather over `n` participants.
pub struct ExchangeDomain<T> {
    n: usize,
    hop: Dur,
    episodes: Mutex<VecDeque<Episode<T>>>,
}

impl<T: Clone + Send> ExchangeDomain<T> {
    /// Domain over `n` participants with per-hop latency `hop`.
    pub fn new(n: usize, hop: Dur) -> Self {
        assert!(n >= 1);
        ExchangeDomain { n, hop, episodes: Mutex::new(VecDeque::new()) }
    }

    /// Contribute `value` as participant `idx`; blocks until every
    /// participant of this episode contributed, then returns all values in
    /// participant order.
    pub fn exchange(&self, ctx: &mut Ctx, idx: usize, value: T) -> Vec<T> {
        assert!(idx < self.n);
        let ev = {
            let mut eps = self.episodes.lock();
            // Join the newest incomplete episode, or open a fresh one.
            let needs_new = eps.back().map(|e| e.arrived == self.n).unwrap_or(true);
            if needs_new {
                eps.push_back(Episode {
                    ev: ctx.new_event(),
                    slots: vec![None; self.n],
                    arrived: 0,
                    inside: 0,
                });
            }
            let ep = eps.back_mut().unwrap();
            assert!(ep.slots[idx].is_none(), "participant {idx} contributed twice");
            ep.slots[idx] = Some(value);
            ep.arrived += 1;
            ep.inside += 1;
            if ep.arrived == self.n {
                let hops = usize::BITS - (self.n - 1).leading_zeros();
                let done = ctx.now() + Dur::nanos(self.hop.as_nanos() * hops.max(1) as u64);
                ctx.complete_at(ep.ev, done);
            }
            ep.ev
        };
        ctx.wait(ev);
        let mut eps = self.episodes.lock();
        let pos = eps.iter().position(|e| e.ev == ev).expect("episode vanished");
        let result: Vec<T> =
            eps[pos].slots.iter().map(|s| s.clone().expect("missing contribution")).collect();
        eps[pos].inside -= 1;
        if eps[pos].inside == 0 {
            let done = eps.remove(pos).unwrap();
            ctx.free_event(done.ev);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diomp_sim::Sim;
    use std::sync::Arc;

    #[test]
    fn everyone_sees_all_values_in_order() {
        let mut sim = Sim::new();
        let dom = Arc::new(ExchangeDomain::new(4, Dur::micros(0.5)));
        for r in 0..4usize {
            let dom = dom.clone();
            sim.spawn(format!("r{r}"), move |ctx| {
                ctx.delay(Dur::micros(r as f64));
                let vals = dom.exchange(ctx, r, (r * 100) as u64);
                assert_eq!(vals, vec![0, 100, 200, 300]);
            });
        }
        sim.run().unwrap();
    }

    #[test]
    fn domain_is_reusable_back_to_back() {
        let mut sim = Sim::new();
        let dom = Arc::new(ExchangeDomain::new(3, Dur::micros(0.1)));
        for r in 0..3usize {
            let dom = dom.clone();
            sim.spawn(format!("r{r}"), move |ctx| {
                for round in 0..10u64 {
                    let vals = dom.exchange(ctx, r, round * 10 + r as u64);
                    assert_eq!(vals.len(), 3);
                    for (i, v) in vals.iter().enumerate() {
                        assert_eq!(*v, round * 10 + i as u64);
                    }
                }
            });
        }
        sim.run().unwrap();
    }

    #[test]
    fn exchange_events_are_recycled() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let dom: Arc<ExchangeDomain<u8>> = Arc::new(ExchangeDomain::new(2, Dur::micros(0.1)));
        for r in 0..2usize {
            let dom = dom.clone();
            sim.spawn(format!("r{r}"), move |ctx| {
                for _ in 0..50 {
                    dom.exchange(ctx, r, r as u8);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(h.live_events(), 0);
    }
}
