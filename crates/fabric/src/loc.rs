//! Buffer locations: where communication payloads live.

use diomp_device::{DeviceTable, HostBuf, MemError};

/// A communication buffer endpoint: device memory (by flat device index +
/// offset) or host memory (a [`HostBuf`] + offset).
#[derive(Clone)]
pub enum Loc {
    /// Device memory.
    Dev {
        /// Flat device index.
        flat: usize,
        /// Offset within the device address space.
        off: u64,
    },
    /// Host memory.
    Host {
        /// Host storage.
        buf: HostBuf,
        /// Offset within the buffer.
        off: u64,
    },
}

impl Loc {
    /// Device-memory location.
    pub fn dev(flat: usize, off: u64) -> Loc {
        Loc::Dev { flat, off }
    }

    /// Host-memory location.
    pub fn host(buf: HostBuf, off: u64) -> Loc {
        Loc::Host { buf, off }
    }

    /// Snapshot `len` bytes for an in-flight message. Returns `None` in
    /// CostOnly mode (nothing to carry).
    pub fn snapshot(&self, devs: &DeviceTable, len: u64) -> Result<Option<Vec<u8>>, MemError> {
        match self {
            Loc::Dev { flat, off } => {
                let dev = devs.dev(*flat);
                if off + len > dev.mem.capacity() {
                    return Err(MemError::OutOfBounds {
                        offset: *off,
                        len,
                        capacity: dev.mem.capacity(),
                    });
                }
                if dev.mem.mode() == diomp_device::DataMode::CostOnly {
                    return Ok(None);
                }
                let mut v = vec![0u8; len as usize];
                dev.mem.read(*off, &mut v)?;
                Ok(Some(v))
            }
            Loc::Host { buf, off } => {
                if !buf.is_backed() {
                    return Ok(None);
                }
                let mut v = vec![0u8; len as usize];
                buf.read(*off, &mut v);
                Ok(Some(v))
            }
        }
    }

    /// Write delivered bytes into this location (used from scheduled
    /// delivery actions).
    pub fn deposit(&self, devs: &DeviceTable, bytes: &[u8]) {
        match self {
            Loc::Dev { flat, off } => {
                devs.dev(*flat).mem.write(*off, bytes).expect("bounds checked at initiation");
            }
            Loc::Host { buf, off } => buf.write(*off, bytes),
        }
    }

    /// Validate that `[off, off+len)` fits this location.
    pub fn check(&self, devs: &DeviceTable, len: u64) -> Result<(), MemError> {
        match self {
            Loc::Dev { flat, off } => {
                let cap = devs.dev(*flat).mem.capacity();
                if off + len > cap {
                    return Err(MemError::OutOfBounds { offset: *off, len, capacity: cap });
                }
                Ok(())
            }
            Loc::Host { buf, off } => {
                if off + len > buf.len() {
                    return Err(MemError::OutOfBounds { offset: *off, len, capacity: buf.len() });
                }
                Ok(())
            }
        }
    }

    /// The node this location lives on (`None` for host buffers, which are
    /// node-agnostic in the model — callers supply the owning rank's node).
    pub fn dev_flat(&self) -> Option<usize> {
        match self {
            Loc::Dev { flat, .. } => Some(*flat),
            Loc::Host { .. } => None,
        }
    }

    /// Shift the offset by `delta` bytes (sub-ranges of a buffer).
    pub fn offset_by(&self, delta: u64) -> Loc {
        match self {
            Loc::Dev { flat, off } => Loc::Dev { flat: *flat, off: off + delta },
            Loc::Host { buf, off } => Loc::Host { buf: buf.clone(), off: off + delta },
        }
    }
}
