//! The fabric world: ranks, their devices, and shared conduit state.

use std::sync::Arc;

use std::collections::BTreeMap;

use diomp_device::{Device, DeviceTable, MemError};
use diomp_sim::{Dur, FaultPlan, PlatformSpec, SimHandle, Topology};
use parking_lot::Mutex;

use crate::barrier::BarrierDomain;
use crate::exchange::ExchangeDomain;
use crate::health::HealthVec;
use crate::mpi::MpiWorld;
use crate::segment::{Segment, SegmentId, SegmentMem};

/// Shared state of a fabric job: `nranks` ranks spread over the cluster,
/// each bound to `gpus_per_rank` consecutive devices (paper §3.3's
/// "hierarchical device binding": one device per rank for MPI
/// compatibility, or several for the single-process multi-GPU mode).
pub struct FabricWorld {
    /// Cluster topology.
    pub topo: Arc<Topology>,
    /// All devices in the job.
    pub devs: Arc<DeviceTable>,
    /// Number of ranks.
    pub nranks: usize,
    /// Devices bound to each rank.
    pub gpus_per_rank: usize,
    /// The platform's calibrated software models.
    pub platform: PlatformSpec,
    /// World barrier (GASNet named barrier / `MPI_Barrier`).
    pub barrier: BarrierDomain,
    /// CPU-side bootstrap all-gather (segment exchange, UniqueId bcast).
    pub bootstrap: ExchangeDomain<u64>,
    /// Registered segments, per rank.
    pub(crate) segments: Mutex<Vec<Vec<Segment>>>,
    /// MPI baseline state (match queues, windows).
    pub(crate) mpi: MpiWorld,
    /// GASNet active-message handler tables.
    pub am: crate::gasnet::AmRegistry,
    /// GPI-2 conduit state (queues, notifications).
    pub(crate) gpi: crate::gpi::GpiState,
    /// Per-rank health vector (`gaspi_state_vec`), refreshed from the
    /// installed fault plan via [`FabricWorld::refresh_health_from_plan`].
    health: Mutex<HealthVec>,
    /// Simulator handle, when attached ([`FabricWorld::attach_sim`]).
    /// With a handle present, [`FabricWorld::health`] derives from the
    /// *currently installed* fault plan at the *current* virtual time —
    /// the live `gaspi_state_vec` — instead of the build-time snapshot.
    sim: Mutex<Option<SimHandle>>,
}

impl FabricWorld {
    /// Create a world of `nranks` ranks over the given devices. The device
    /// count must be divisible by `nranks`; each rank gets a contiguous
    /// block of devices.
    pub fn new(topo: Arc<Topology>, devs: Arc<DeviceTable>, nranks: usize) -> Arc<FabricWorld> {
        assert!(
            nranks >= 1 && devs.len().is_multiple_of(nranks),
            "devices must divide evenly into ranks"
        );
        let gpus_per_rank = devs.len() / nranks;
        let platform = topo.spec.platform.clone();
        let hop = Dur::micros(platform.net.latency_us);
        Arc::new(FabricWorld {
            topo,
            devs,
            nranks,
            gpus_per_rank,
            platform,
            barrier: BarrierDomain::new(nranks, hop),
            bootstrap: ExchangeDomain::new(nranks, hop),
            segments: Mutex::new(vec![Vec::new(); nranks]),
            mpi: MpiWorld::new(nranks),
            am: crate::gasnet::AmRegistry::new(nranks),
            gpi: crate::gpi::GpiState::new(nranks),
            health: Mutex::new(HealthVec::healthy(nranks)),
            sim: Mutex::new(None),
        })
    }

    /// Attach the simulator to the world, switching [`FabricWorld::health`]
    /// to the live refresh path and expanding any rank-kill events in the
    /// installed fault plan into kernel-side dead windows over the
    /// rank's *exclusively owned* link resources (its PCIe lanes, fabric
    /// port, copy engine — and its NIC only when no surviving rank
    /// shares it). Transfers still targeting a dead rank then crawl at
    /// 1000× slowdown, tripping the GASPI timeout surfaces, while
    /// shared node NICs stay live for the survivors. Call once, at
    /// build, after the plan is installed.
    pub fn attach_sim(&self, h: &SimHandle) {
        if let Some(plan) = h.fault_plan() {
            let owners = self.link_owners();
            let mut windows = Vec::new();
            for (rank, at) in plan.rank_kills() {
                let rank = rank as usize;
                if rank >= self.nranks {
                    continue;
                }
                for flat in self.devices_of(rank) {
                    let d = self.devs.dev(flat);
                    for res in [d.nic, d.pcie, d.port, d.d2d_engine] {
                        let exclusive =
                            owners.get(&res.index()).is_none_or(|rs| rs.iter().all(|&r| r == rank));
                        if exclusive && !windows.contains(&(res, at)) {
                            windows.push((res, at));
                        }
                    }
                }
            }
            h.arm_rank_kill_windows(&windows);
        }
        *self.sim.lock() = Some(h.clone());
    }

    /// Current health vector (`gaspi_state_vec`): one entry per rank.
    ///
    /// With a simulator attached ([`FabricWorld::attach_sim`]) this is
    /// *live*: the stored vector is merged with the currently installed
    /// fault plan — whole-run-worst link degradations plus every
    /// rank-kill whose time has come marked [`RankHealth::Dead`](crate::health::RankHealth::Dead)
    /// (`now >= kill_at`). Health only worsens, GASPI-style: a rank once
    /// observed corrupt stays corrupt. Without a handle it is the stored
    /// snapshot, exactly as before attachment existed.
    pub fn health(&self) -> HealthVec {
        self.derive_live().unwrap_or_else(|| self.health.lock().clone())
    }

    /// GASPI `gaspi_state_vec` probe: recompute live health *and commit
    /// it* to the stored vector, so the death transition persists even
    /// for later un-attached reads. The conduit timeout surfaces
    /// ([`crate::gpi::wait_queue`], [`crate::gpi::notify_waitsome`]) call
    /// this on every expired deadline — the GASPI discipline of
    /// `gaspi_wait(timeout) == GASPI_TIMEOUT ⇒ gaspi_state_vec_get`.
    pub fn probe_health(&self) -> HealthVec {
        match self.derive_live() {
            Some(v) => {
                *self.health.lock() = v.clone();
                v
            }
            None => self.health.lock().clone(),
        }
    }

    /// The survivor-agreement fixpoint: live health with *every* planned
    /// rank kill applied, including those whose time has not yet come.
    /// A pure function of the installed fault plan, identical on every
    /// rank that computes it at any time — so all survivors of a failure
    /// deterministically agree on the same shrunk world without a
    /// consensus round, and chaos runs replay bit-identically.
    pub fn converged_health(&self) -> HealthVec {
        let mut v = self.health();
        if let Some(h) = self.sim.lock().clone() {
            if let Some(plan) = h.fault_plan() {
                for (rank, _) in plan.rank_kills() {
                    if (rank as usize) < self.nranks {
                        v.observe(rank as usize, 0);
                    }
                }
            }
        }
        v
    }

    /// Live derivation: stored vector ⊔ current plan (worst-wins merge),
    /// or `None` when no simulator is attached / no plan is installed.
    fn derive_live(&self) -> Option<HealthVec> {
        let h = self.sim.lock().clone()?;
        let plan = h.fault_plan()?;
        let now = h.now();
        let mut v = self.health.lock().clone();
        let owners = self.link_owners();
        for (res, factor) in plan.degraded_links() {
            v.observe_link(res, factor);
            if let Some(ranks) = owners.get(&res.index()) {
                for &r in ranks {
                    v.observe(r, factor);
                }
            }
        }
        for (rank, at) in plan.rank_kills() {
            if now >= at && (rank as usize) < self.nranks {
                v.observe(rank as usize, 0);
            }
        }
        Some(v)
    }

    /// Replace the health vector wholesale (tests, external monitors).
    pub fn set_health(&self, v: HealthVec) {
        assert_eq!(v.nranks(), self.nranks, "health vector covers wrong rank count");
        *self.health.lock() = v;
    }

    /// The ranks owning a device endpoint on each link resource (NICs are
    /// commonly shared by all ranks of a node; PCIe lanes, fabric ports
    /// and copy engines are per-device).
    fn link_owners(&self) -> BTreeMap<usize, Vec<usize>> {
        let mut owners: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for flat in 0..self.devs.len() {
            let d = self.devs.dev(flat);
            let rank = self.rank_of_dev(flat);
            for res in [d.nic, d.pcie, d.port, d.d2d_engine] {
                let ranks = owners.entry(res.index()).or_default();
                if !ranks.contains(&rank) {
                    ranks.push(rank);
                }
            }
        }
        owners
    }

    /// Rebuild the health vector from a fault plan: each degraded link is
    /// attributed to every rank owning a device endpoint on it (NIC,
    /// PCIe, fabric port, copy engine — NICs are commonly shared by all
    /// ranks of a node, so one dead NIC degrades several ranks).
    pub fn refresh_health_from_plan(&self, plan: &FaultPlan) {
        let owners = self.link_owners();
        let mut v = HealthVec::healthy(self.nranks);
        for (res, factor) in plan.degraded_links() {
            v.observe_link(res, factor);
            if let Some(ranks) = owners.get(&res.index()) {
                for &r in ranks {
                    v.observe(r, factor);
                }
            }
        }
        *self.health.lock() = v;
    }

    /// The node a rank's process runs on.
    pub fn node_of(&self, rank: usize) -> usize {
        self.devs.dev(rank * self.gpus_per_rank).loc.node
    }

    /// The flat indices of the devices bound to `rank`.
    pub fn devices_of(&self, rank: usize) -> std::ops::Range<usize> {
        rank * self.gpus_per_rank..(rank + 1) * self.gpus_per_rank
    }

    /// A rank's first (primary) device.
    pub fn primary_dev(&self, rank: usize) -> &Arc<Device> {
        self.devs.dev(rank * self.gpus_per_rank)
    }

    /// The rank that owns a device.
    pub fn rank_of_dev(&self, flat: usize) -> usize {
        flat / self.gpus_per_rank
    }

    /// Register a device segment for `rank` by carving `len` bytes out of
    /// the device allocator (the conduit pins this memory; the DiOMP
    /// runtime then sub-allocates its global heap from it).
    pub fn attach_device_segment(
        &self,
        rank: usize,
        flat: usize,
        len: u64,
    ) -> Result<SegmentId, MemError> {
        assert!(self.devices_of(rank).contains(&flat), "rank {rank} does not own device {flat}");
        let base = self.devs.dev(flat).malloc(len, 4096)?;
        let mut segs = self.segments.lock();
        let index = segs[rank].len();
        segs[rank].push(Segment { rank, mem: SegmentMem::Device { flat, base }, len });
        Ok(SegmentId { rank, index })
    }

    /// Register a host segment for `rank`.
    pub fn attach_host_segment(&self, rank: usize, buf: diomp_device::HostBuf) -> SegmentId {
        let mut segs = self.segments.lock();
        let index = segs[rank].len();
        let len = buf.len();
        segs[rank].push(Segment { rank, mem: SegmentMem::Host { buf }, len });
        SegmentId { rank, index }
    }

    /// Look up a segment.
    pub fn segment(&self, id: SegmentId) -> Segment {
        self.segments.lock()[id.rank]
            .get(id.index)
            .cloned()
            .unwrap_or_else(|| panic!("unknown segment {id:?}"))
    }
}
