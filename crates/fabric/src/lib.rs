//! # diomp-fabric — communication substrates
//!
//! The three communication layers the paper builds on or compares with:
//!
//! * [`gasnet`] — a GASNet-EX-like conduit (segments, one-sided Put/Get
//!   with events, active messages): DiOMP's default middleware.
//! * [`gpi`] — a GPI-2-like conduit (queues, ranged notifications): the
//!   InfiniBand alternative of Fig. 5.
//! * [`mpi`] — the full MPI baseline (eager/rendezvous P2P with match
//!   queues, RMA windows, binomial/recursive-doubling/ring collectives).
//!
//! All three run over the same modelled links ([`path`]) and the same
//! simulated devices, so their performance differences come from
//! *protocol structure* and the calibrated per-middleware software costs.
//!
//! # Segments, queues, and completion signalling
//!
//! A [`FabricWorld`] holds the job-wide conduit state: every rank
//! *attaches* segments ([`FabricWorld::attach_device_segment`]) — pinned
//! regions of device (or host) memory that remote ranks may target with
//! one-sided operations by `(SegmentId, offset)`, never by raw pointer.
//! On top of that shared substrate the two PGAS conduits expose
//! different completion models:
//!
//! * **GASNet-EX** tracks each operation with *events*: `put_nb` returns
//!   local/remote completion [`diomp_sim::EventId`]s the initiator
//!   waits on. The target learns nothing unless an active message is
//!   sent.
//! * **GPI-2 (GASPI)** orders completions on initiator-side *queues*
//!   ([`gpi::QueueId`], drained by `gpi::wait_queue`) and signals
//!   *targets* with lightweight **notifications**: a
//!   [`gpi::write_notify`] makes `(id, value)` visible on the target's
//!   notification board strictly after the payload, and the target
//!   blocks on a whole id *range* with [`gpi::notify_waitsome`] — one
//!   park, no per-id polling — then consumes atomically.
//!
//! # GASNet-EX ↔ GPI-2 semantics map
//!
//! | concept                | GASNet-EX (here)            | GPI-2 / GASPI (here)                      |
//! |------------------------|-----------------------------|-------------------------------------------|
//! | registered memory      | segment (`attach_*`)        | segment (same [`SegmentId`] space)        |
//! | one-sided write        | `gasnet::put_nb`            | [`gpi::write`]                            |
//! | one-sided read         | `gasnet::get_nb`            | [`gpi::read`]                             |
//! | initiator completion   | per-op events (`wait_free`) | per-queue lists ([`gpi::wait_queue`])     |
//! | bulk drain             | `Ctx::wait_all` over events | [`gpi::wait_all_queues`]                  |
//! | target-side signal     | active message ([`gasnet::am_request`]) | notification ([`gpi::write_notify`]) |
//! | target-side wait       | AM handler side effects     | [`gpi::notify_waitsome`] / [`gpi::notify_wait`] |
//! | signal consumption     | n/a (handler runs once)     | [`gpi::notify_reset`] (atomic take)       |
//! | fault visibility       | conduit aborts              | `gaspi_state_vec`: [`HealthVec`] ([`FabricWorld::health`]) |
//! | queue recovery         | n/a                         | `gaspi_queue_purge`: [`gpi::queue_purge`] after [`FabricError::QueueError`] |
//!
//! **Bounded waits.** Every GASPI waiting primitive takes a timeout
//! argument — `GASPI_BLOCK` to wait forever, `GASPI_TIMEOUT(ms)` for a
//! deadline. The reproduction mirrors that shape *once*, with one
//! parameter type instead of parallel `_timeout` entry points:
//! [`gpi::wait_queue`], [`gpi::wait_all_queues`] and
//! [`gpi::notify_waitsome`] all take a [`diomp_sim::Wait`] —
//! [`diomp_sim::Wait::Block`] maps to `GASPI_BLOCK` (cannot fail),
//! [`diomp_sim::Wait::Until`] maps to `GASPI_TIMEOUT` and surfaces
//! [`FabricError::Timeout`] with the partial state preserved (completed
//! queue entries retired, survivors re-queued; unconsumed notifications
//! left posted). GASNet-EX events have no native bounded wait; the
//! equivalent discipline is `Ctx::wait_all_with` over the event set.
//!
//! # Example: notified write, driven through the simulator
//!
//! A two-node InfiniBand world where rank 0 writes 64 bytes into rank
//! 1's segment with notification id 5; rank 1 blocks on the id range
//! `[0, 8)` and sees the payload the moment the notification fires:
//!
//! ```
//! use std::sync::Arc;
//! use diomp_device::{DataMode, DeviceTable};
//! use diomp_fabric::{gpi, FabricWorld, Loc};
//! use diomp_sim::{ClusterSpec, PlatformSpec, Sim, Topology, Wait};
//!
//! let mut sim = Sim::new();
//! let spec = ClusterSpec { platform: PlatformSpec::platform_c(), nodes: 2, gpus_per_node: 1 };
//! let topo = Arc::new(Topology::build(&sim.handle(), spec));
//! let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(1 << 20));
//! let world = FabricWorld::new(topo, devs, 2);
//!
//! let seg = world.attach_device_segment(1, 1, 1 << 16).unwrap();
//! let w0 = world.clone();
//! sim.spawn("rank0", move |ctx| {
//!     w0.primary_dev(0).mem.write(0, &[7u8; 64]).unwrap();
//!     gpi::write_notify(ctx, &w0, 0, gpi::QueueId(0), Loc::dev(0, 0), seg, 0, 64, 5, 42)
//!         .unwrap();
//!     // Initiator-side completion: GASPI_BLOCK cannot time out.
//!     gpi::wait_queue(ctx, &w0, 0, gpi::QueueId(0), Wait::Block).unwrap();
//! });
//! let w1 = world.clone();
//! sim.spawn("rank1", move |ctx| {
//!     let (id, value) = gpi::notify_waitsome(ctx, &w1, 1, 0, 8, Wait::Block).unwrap();
//!     assert_eq!((id, value), (5, 42));
//!     let bytes = w1.segment(seg).loc(0).snapshot(&w1.devs, 64).unwrap().unwrap();
//!     assert_eq!(bytes, vec![7u8; 64]); // payload landed before the notification
//! });
//! sim.run().unwrap();
//! ```

#![warn(missing_docs)]

pub mod barrier;
mod error;
pub mod exchange;
pub mod gasnet;
pub mod gpi;
mod health;
mod loc;
pub mod mpi;
pub mod path;
mod segment;
mod world;

pub use barrier::BarrierDomain;
pub use error::FabricError;
pub use exchange::ExchangeDomain;
pub use health::{HealthVec, RankHealth};
pub use loc::Loc;
pub use mpi::{MpiRank, MpiReq, ReduceOp, WinId};
pub use path::{End, PathTimes};
pub use segment::{Segment, SegmentId, SegmentMem};
pub use world::FabricWorld;
