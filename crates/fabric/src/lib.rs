//! # diomp-fabric — communication substrates
//!
//! The three communication layers the paper builds on or compares with:
//!
//! * [`gasnet`] — a GASNet-EX-like conduit (segments, one-sided Put/Get
//!   with events, active messages): DiOMP's default middleware.
//! * [`gpi`] — a GPI-2-like conduit (queues, notifications): the
//!   InfiniBand alternative of Fig. 5.
//! * [`mpi`] — the full MPI baseline (eager/rendezvous P2P with match
//!   queues, RMA windows, binomial/recursive-doubling/ring collectives).
//!
//! All three run over the same modelled links ([`path`]) and the same
//! simulated devices, so their performance differences come from
//! *protocol structure* and the calibrated per-middleware software costs.

#![warn(missing_docs)]

pub mod barrier;
pub mod exchange;
pub mod gasnet;
pub mod gpi;
mod loc;
pub mod mpi;
pub mod path;
mod segment;
mod world;

pub use barrier::BarrierDomain;
pub use exchange::ExchangeDomain;
pub use loc::Loc;
pub use mpi::{MpiRank, MpiReq, ReduceOp, WinId};
pub use path::{End, PathTimes};
pub use segment::{Segment, SegmentId, SegmentMem};
pub use world::FabricWorld;
