//! Raw transport paths between endpoints.
//!
//! Given source/destination endpoints and a payload size, reserve the
//! modelled link resources and return departure/arrival times. Protocol
//! layers (GASNet, GPI, MPI) add their software overheads around these.

use diomp_device::DeviceTable;
use diomp_sim::{SimHandle, SimTime};

/// Modelled times of a raw path traversal.
#[derive(Clone, Copy, Debug)]
pub struct PathTimes {
    /// Source-side resources released (sender buffer reusable).
    pub depart: SimTime,
    /// Last byte visible at the destination.
    pub arrive: SimTime,
}

/// Endpoint of a raw transfer: a device or a node's host memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum End {
    /// Device endpoint (flat index).
    Dev(usize),
    /// Host endpoint on a node.
    Node(usize),
}

impl End {
    fn node(self, devs: &DeviceTable) -> usize {
        match self {
            End::Dev(f) => devs.dev(f).loc.node,
            End::Node(n) => n,
        }
    }
}

/// Charge the raw path from `src` to `dst` for `bytes / eff` wire bytes,
/// with the payload ready at `ready`.
///
/// Path selection mirrors the hierarchy of paper §3.2 as seen by a
/// *conduit* (no GPUDirect P2P here — direct peer transfers are a DiOMP
/// runtime optimisation layered above, see `diomp-core::rma`):
///
/// * inter-node  → source NIC (GPU-direct RDMA),
/// * intra-node device↔device (different processes) → IPC staging
///   (PCIe → host shm → PCIe, pipelined),
/// * same device → local copy engine,
/// * host↔host intra-node → shared-memory copy.
pub fn raw_path(
    h: &SimHandle,
    devs: &DeviceTable,
    src: End,
    dst: End,
    ready: SimTime,
    bytes: u64,
    eff: f64,
) -> PathTimes {
    assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
    let wire = ((bytes as f64 / eff).ceil() as u64).max(1);
    let (sn, dn) = (src.node(devs), dst.node(devs));
    if sn != dn {
        // Inter-node: serialise on the source's NIC.
        let nic = match src {
            End::Dev(f) => devs.dev(f).nic,
            End::Node(n) => devs.topo.nic_for(diomp_sim::DevLoc { node: n, gpu: 0 }),
        };
        let tr = h.transfer_from(nic, ready, wire);
        return PathTimes { depart: tr.depart, arrive: tr.arrive };
    }
    match (src, dst) {
        (End::Dev(a), End::Dev(b)) if a == b => {
            let tr = h.transfer_from(devs.dev(a).d2d_engine, ready, wire);
            PathTimes { depart: tr.depart, arrive: tr.arrive }
        }
        (End::Dev(a), End::Dev(_)) => {
            // Intra-node device-to-device via IPC handles over the GPU
            // fabric (NVLink/xGMI): what CUDA-aware MPI and GASNet's PSHM
            // path both do on P2P-capable nodes. The host-shm bounce only
            // exists for P2P-incapable pairs (see
            // `diomp_device::copy::d2d_ipc`, used by the DiOMP runtime's
            // explicit no-P2P fallback).
            let tr = h.transfer_from(devs.dev(a).port, ready, wire);
            PathTimes { depart: tr.depart, arrive: tr.arrive }
        }
        (End::Dev(a), End::Node(_)) => {
            let tr = h.transfer_from(devs.dev(a).pcie, ready, wire);
            PathTimes { depart: tr.depart, arrive: tr.arrive }
        }
        (End::Node(_), End::Dev(b)) => {
            let tr = h.transfer_from(devs.dev(b).pcie, ready, wire);
            PathTimes { depart: tr.depart, arrive: tr.arrive }
        }
        (End::Node(n), End::Node(_)) => {
            let tr = h.transfer_from(devs.topo.shm(n), ready, wire);
            PathTimes { depart: tr.depart, arrive: tr.arrive }
        }
    }
}

/// Charge a minimal control message (RTS/CTS/ack) along the path: pure
/// latency plus a tiny wire cost, no meaningful bandwidth.
pub fn control_msg(
    h: &SimHandle,
    devs: &DeviceTable,
    src: End,
    dst: End,
    ready: SimTime,
) -> SimTime {
    raw_path(h, devs, src, dst, ready, 64, 1.0).arrive
}
