//! The MPI baseline: two-sided P2P, one-sided windows, collectives.
//!
//! This is the comparator the paper measures DiOMP against (Cray MPICH on
//! platforms A/B, OpenMPI on C). It is a real protocol implementation —
//! eager/rendezvous matching with posted/unexpected queues, RMA windows
//! with flush/fence synchronisation, binomial/recursive-doubling/ring
//! collectives — whose *costs* come from the calibrated platform model.
//! The structural differences to DiOMP (target-side matching, window
//! synchronisation, per-byte software pipelines, separate memory
//! registration) are what produce the performance gaps of Figs. 3–6.

mod coll;
mod p2p;
mod rma;

pub use coll::ReduceOp;
pub use rma::WinId;

use std::sync::Arc;

use diomp_sim::EventId;
use parking_lot::Mutex;

use crate::loc::Loc;
use crate::world::FabricWorld;

/// Wildcard source (`MPI_ANY_SOURCE`) / tag (`MPI_ANY_TAG`) are `None`.
pub(crate) struct Posted {
    pub src: Option<usize>,
    pub tag: Option<u64>,
    pub dst: Loc,
    pub len: u64,
    pub ev: EventId,
}

pub(crate) enum UnexKind {
    /// Eager payload parked in the unexpected queue.
    Eager { data: Option<Vec<u8>>, len: u64 },
    /// Rendezvous ready-to-send awaiting a matching receive.
    Rts { src_loc: Loc, len: u64, sender_ev: EventId },
}

pub(crate) struct Unexpected {
    pub src: usize,
    pub tag: u64,
    pub kind: UnexKind,
}

#[derive(Default)]
pub(crate) struct RankMatch {
    pub posted: Vec<Posted>,
    pub unexpected: Vec<Unexpected>,
}

pub(crate) struct WinPart {
    pub base: Loc,
    pub len: u64,
}

/// Pending origin-side completions, per origin rank.
pub(crate) type PendingByOrigin = Vec<Vec<EventId>>;

/// Per-rank window contributions staged during collective creation.
pub(crate) type WinStage = Option<Vec<Option<(Loc, u64)>>>;

pub(crate) struct Window {
    pub parts: Vec<WinPart>,
    pub pending: PendingByOrigin,
}

/// Shared MPI state for a world.
pub struct MpiWorld {
    pub(crate) matching: Vec<Mutex<RankMatch>>,
    pub(crate) windows: Mutex<Vec<Window>>,
    pub(crate) win_stage: Mutex<WinStage>,
    pub(crate) last_win: Mutex<usize>,
}

impl MpiWorld {
    pub(crate) fn new(nranks: usize) -> Self {
        MpiWorld {
            matching: (0..nranks).map(|_| Mutex::new(RankMatch::default())).collect(),
            windows: Mutex::new(Vec::new()),
            win_stage: Mutex::new(None),
            last_win: Mutex::new(usize::MAX),
        }
    }
}

/// A non-blocking request (`MPI_Request`).
#[derive(Clone, Copy, Debug)]
pub struct MpiReq {
    pub(crate) ev: EventId,
}

/// Per-rank MPI handle — owned by the rank's task, carries the collective
/// sequence number that keeps collective tags aligned across ranks (all
/// ranks must invoke collectives in the same order, as in real MPI).
pub struct MpiRank {
    /// The world this rank communicates in.
    pub world: Arc<FabricWorld>,
    /// This rank's id.
    pub rank: usize,
    pub(crate) coll_seq: u64,
}

impl MpiRank {
    /// Create the per-rank handle (`MPI_Init`).
    pub fn new(world: Arc<FabricWorld>, rank: usize) -> Self {
        assert!(rank < world.nranks);
        MpiRank { world, rank, coll_seq: 0 }
    }

    /// Number of ranks (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.world.nranks
    }

    /// Block until a request completes (`MPI_Wait`).
    pub fn wait(&self, ctx: &mut diomp_sim::Ctx, req: MpiReq) {
        ctx.wait_free(req.ev);
    }

    /// Block until all requests complete (`MPI_Waitall`).
    pub fn waitall(&self, ctx: &mut diomp_sim::Ctx, reqs: &[MpiReq]) {
        for r in reqs {
            ctx.wait_free(r.ev);
        }
    }

    /// Barrier over all ranks (`MPI_Barrier`).
    pub fn barrier(&self, ctx: &mut diomp_sim::Ctx) {
        self.world.barrier.arrive_and_wait(ctx);
    }
}
