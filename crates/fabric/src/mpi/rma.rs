//! MPI one-sided: windows, Put/Get, flush and fence.
//!
//! The Fig. 3/4 baseline. Structural costs relative to DiOMP's conduit
//! RMA (paper Fig. 1a): device memory must be registered into a *window*
//! (separately from the OpenMP mapping tables), every operation drags a
//! per-byte software pipeline, and visibility requires explicit window
//! synchronisation (`flush`/`fence`) on top of the transfer itself.

use diomp_device::MemError;
use diomp_sim::{Ctx, Dur};

use crate::loc::Loc;
use crate::path::{control_msg, raw_path, End};

use super::{MpiRank, WinPart, Window};

/// The per-byte software pipeline applies to the small-message path only;
/// above this size the implementation switches to zero-copy RDMA and
/// throughput is governed by the `put_eff`/`get_eff` wire efficiencies
/// (Fig. 3 shows the climb, Fig. 4 the saturating large-message curves).
const RMA_PIPELINE_MAX_BYTES: u64 = 16 << 10;

/// Window handle (index into the world's window table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WinId(pub usize);

fn end_of(world: &crate::world::FabricWorld, rank: usize, loc: &Loc) -> End {
    match loc.dev_flat() {
        Some(f) => End::Dev(f),
        None => End::Node(world.node_of(rank)),
    }
}

impl MpiRank {
    /// Collective window creation (`MPI_Win_create`): every rank
    /// contributes its local region; costs registration time and a
    /// metadata exchange.
    pub fn win_create(&self, ctx: &mut Ctx, base: Loc, len: u64) -> WinId {
        let world = self.world.clone();
        let m = world.platform.mpi_rma.clone();
        ctx.delay(Dur::micros(m.win_create_us));
        {
            let mut stage = world.mpi.win_stage.lock();
            let slots = stage.get_or_insert_with(|| vec![None; world.nranks]);
            assert!(slots[self.rank].is_none(), "rank {} double-staged a window", self.rank);
            slots[self.rank] = Some((base, len));
        }
        world.barrier.arrive_and_wait(ctx);
        {
            let mut stage = world.mpi.win_stage.lock();
            if let Some(slots) = stage.take() {
                let parts = slots
                    .into_iter()
                    .map(|s| {
                        let (base, len) = s.expect("missing window contribution");
                        WinPart { base, len }
                    })
                    .collect();
                let mut wins = world.mpi.windows.lock();
                wins.push(Window { parts, pending: vec![Vec::new(); world.nranks] });
                *world.mpi.last_win.lock() = wins.len() - 1;
            }
        }
        let id = WinId(*world.mpi.last_win.lock());
        // Second barrier: nobody may stage the next window (or use this
        // one) before everyone has read the id.
        world.barrier.arrive_and_wait(ctx);
        id
    }

    /// One-sided put into `target`'s window region (`MPI_Put`). Completion
    /// at the origin requires [`MpiRank::win_flush`].
    pub fn win_put(
        &self,
        ctx: &mut Ctx,
        win: WinId,
        target: usize,
        target_off: u64,
        src: Loc,
        len: u64,
    ) -> Result<(), MemError> {
        let world = self.world.clone();
        let m = world.platform.mpi_rma.clone();
        src.check(&world.devs, len)?;
        let dst_loc = {
            let wins = world.mpi.windows.lock();
            let part = &wins[win.0].parts[target];
            assert!(target_off + len <= part.len, "put beyond window part");
            part.base.offset_by(target_off)
        };
        // Origin software: fixed cost plus the per-byte pipeline that makes
        // MPI RMA latency climb across Fig. 3's 4 B – 8 KB range (capped:
        // the large-message path is zero-copy).
        let sw = len.min(RMA_PIPELINE_MAX_BYTES) as f64 * m.per_byte_ns;
        ctx.delay(Dur::micros(m.put_o_us) + Dur::nanos(sw as u64));
        let src_end = end_of(&world, self.rank, &src);
        let dst_end = end_of(&world, target, &dst_loc);
        let snapshot = src.snapshot(&world.devs, len)?;
        let h = ctx.handle();
        let times = raw_path(h, &world.devs, src_end, dst_end, ctx.now(), len, m.put_eff);
        if let Some(bytes) = snapshot {
            let devs = world.devs.clone();
            h.schedule_at(times.arrive, move |_| dst_loc.deposit(&devs, &bytes));
        }
        let ev = h.new_event();
        let ack = control_msg(h, &world.devs, dst_end, src_end, times.arrive);
        h.complete_at(ev, ack);
        world.mpi.windows.lock()[win.0].pending[self.rank].push(ev);
        Ok(())
    }

    /// One-sided get from `target`'s window region (`MPI_Get`).
    pub fn win_get(
        &self,
        ctx: &mut Ctx,
        win: WinId,
        target: usize,
        target_off: u64,
        dst: Loc,
        len: u64,
    ) -> Result<(), MemError> {
        let world = self.world.clone();
        let m = world.platform.mpi_rma.clone();
        dst.check(&world.devs, len)?;
        let src_loc = {
            let wins = world.mpi.windows.lock();
            let part = &wins[win.0].parts[target];
            assert!(target_off + len <= part.len, "get beyond window part");
            part.base.offset_by(target_off)
        };
        let sw = len.min(RMA_PIPELINE_MAX_BYTES) as f64 * m.per_byte_ns;
        ctx.delay(Dur::micros(m.get_o_us) + Dur::nanos(sw as u64));
        let local_end = end_of(&world, self.rank, &dst);
        let remote_end = end_of(&world, target, &src_loc);
        let h = ctx.handle().clone();
        let req = control_msg(&h, &world.devs, local_end, remote_end, ctx.now());
        let times = raw_path(&h, &world.devs, remote_end, local_end, req, len, m.get_eff);
        let devs = world.devs.clone();
        let h2 = h.clone();
        h.schedule_at(times.depart, move |_| {
            if let Some(bytes) = src_loc.snapshot(&devs, len).expect("bounds pre-checked") {
                let devs2 = devs.clone();
                h2.schedule_at(times.arrive, move |_| dst.deposit(&devs2, &bytes));
            }
        });
        let ev = h.new_event();
        h.complete_at(ev, times.arrive);
        world.mpi.windows.lock()[win.0].pending[self.rank].push(ev);
        Ok(())
    }

    /// Flush all of this origin's pending operations on the window
    /// (`MPI_Win_flush_all`).
    pub fn win_flush(&self, ctx: &mut Ctx, win: WinId) {
        let m = self.world.platform.mpi_rma.clone();
        ctx.delay(Dur::micros(m.flush_us));
        let pending = std::mem::take(&mut self.world.mpi.windows.lock()[win.0].pending[self.rank]);
        for ev in pending {
            ctx.wait_free(ev);
        }
    }

    /// Collective fence (`MPI_Win_fence`): flush own ops, then barrier.
    pub fn win_fence(&self, ctx: &mut Ctx, win: WinId) {
        self.win_flush(ctx, win);
        self.world.barrier.arrive_and_wait(ctx);
    }
}
