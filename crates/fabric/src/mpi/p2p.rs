//! Two-sided point-to-point: eager / rendezvous with match queues.
//!
//! Small messages travel eagerly: the payload is shipped immediately and
//! parked in the target's *unexpected queue* if no receive is posted —
//! costing an extra copy. Large messages use rendezvous: a ready-to-send
//! (RTS) control message arrives first, and the payload only moves once a
//! matching receive exists (clear-to-send), adding a round trip. Both
//! protocols require target-side matching — the structural overhead that
//! one-sided DiOMP puts avoid entirely.

use std::sync::Arc;

use diomp_device::MemError;
use diomp_sim::{Ctx, Dur, EventId, SimHandle};

use crate::loc::Loc;
use crate::path::{control_msg, raw_path, End};
use crate::world::FabricWorld;

use super::{MpiRank, MpiReq, Posted, UnexKind, Unexpected};

fn end_of(world: &FabricWorld, rank: usize, loc: &Loc) -> End {
    match loc.dev_flat() {
        Some(f) => End::Dev(f),
        None => End::Node(world.node_of(rank)),
    }
}

fn matches(posted: &Posted, src: usize, tag: u64) -> bool {
    posted.src.map(|s| s == src).unwrap_or(true) && posted.tag.map(|t| t == tag).unwrap_or(true)
}

/// Launch the rendezvous data transfer once both sides are known.
/// Callable from task context (receive found an RTS) or action context
/// (RTS arrival found a posted receive).
#[allow(clippy::too_many_arguments)]
fn start_rndv(
    h: &SimHandle,
    world: &Arc<FabricWorld>,
    from: usize,
    to: usize,
    src_loc: Loc,
    dst_loc: Loc,
    len: u64,
    sender_ev: EventId,
    recv_ev: EventId,
) {
    let m = world.platform.mpi_p2p.clone();
    let src_end = end_of(world, from, &src_loc);
    let dst_end = end_of(world, to, &dst_loc);
    // Clear-to-send travels back to the sender...
    let cts = control_msg(h, &world.devs, dst_end, src_end, h.now());
    let data_start = cts + Dur::micros(m.rndv_hs_us);
    // ...then the payload streams over the path.
    let times = raw_path(h, &world.devs, src_end, dst_end, data_start, len, m.eff);
    let devs = world.devs.clone();
    let h2 = h.clone();
    h.schedule_at(times.depart, move |_| {
        if let Some(bytes) = src_loc.snapshot(&devs, len).expect("bounds pre-checked") {
            let devs2 = devs.clone();
            h2.schedule_at(times.arrive, move |_| dst_loc.deposit(&devs2, &bytes));
        }
    });
    h.complete_at(sender_ev, times.depart);
    h.complete_at(recv_ev, times.arrive + Dur::micros(m.recv_o_us));
}

impl MpiRank {
    /// Non-blocking send (`MPI_Isend`).
    pub fn isend(
        &self,
        ctx: &mut Ctx,
        to: usize,
        tag: u64,
        src: Loc,
        len: u64,
    ) -> Result<MpiReq, MemError> {
        let world = &self.world;
        let m = world.platform.mpi_p2p.clone();
        src.check(&world.devs, len)?;
        ctx.delay(Dur::micros(m.send_o_us));
        let h = ctx.handle().clone();
        let sender_ev = h.new_event();
        let from = self.rank;

        if len <= m.eager_max {
            // Eager: ship now, match (or park) at arrival.
            let src_end = end_of(world, from, &src);
            // Destination end is decided by the receive buffer; for path
            // purposes route to the target's node (header goes there; the
            // payload path to a device buffer differs negligibly at eager
            // sizes).
            let dst_end = End::Node(world.node_of(to));
            let snapshot = src.snapshot(&world.devs, len)?;
            let times = raw_path(&h, &world.devs, src_end, dst_end, ctx.now(), len.max(1), m.eff);
            h.complete_at(sender_ev, times.depart);
            let world2 = world.clone();
            h.schedule_at(times.arrive, move |h| {
                let mut ms = world2.mpi.matching[to].lock();
                if let Some(i) = ms.posted.iter().position(|p| matches(p, from, tag)) {
                    let p = ms.posted.remove(i);
                    assert!(len <= p.len, "eager message longer than receive buffer");
                    drop(ms);
                    if let Some(bytes) = &snapshot {
                        p.dst.deposit(&world2.devs, bytes);
                    }
                    h.complete_at(p.ev, h.now() + Dur::micros(m.recv_o_us));
                } else {
                    ms.unexpected.push(Unexpected {
                        src: from,
                        tag,
                        kind: UnexKind::Eager { data: snapshot, len },
                    });
                }
            });
        } else {
            // Rendezvous: RTS first, data once matched.
            let src_end = End::Node(world.node_of(from));
            let dst_end = End::Node(world.node_of(to));
            let rts_arrive = {
                let t = raw_path(&h, &world.devs, src_end, dst_end, ctx.now(), 64, 1.0);
                t.arrive
            };
            let world2 = world.clone();
            let src2 = src.clone();
            h.schedule_at(rts_arrive, move |h| {
                let mut ms = world2.mpi.matching[to].lock();
                if let Some(i) = ms.posted.iter().position(|p| matches(p, from, tag)) {
                    let p = ms.posted.remove(i);
                    assert!(len <= p.len, "rendezvous message longer than receive buffer");
                    drop(ms);
                    start_rndv(h, &world2, from, to, src2, p.dst, len, sender_ev, p.ev);
                } else {
                    ms.unexpected.push(Unexpected {
                        src: from,
                        tag,
                        kind: UnexKind::Rts { src_loc: src2, len, sender_ev },
                    });
                }
            });
        }
        Ok(MpiReq { ev: sender_ev })
    }

    /// Non-blocking receive (`MPI_Irecv`). `src`/`tag` of `None` are the
    /// `MPI_ANY_SOURCE` / `MPI_ANY_TAG` wildcards.
    pub fn irecv(
        &self,
        ctx: &mut Ctx,
        src: Option<usize>,
        tag: Option<u64>,
        dst: Loc,
        len: u64,
    ) -> Result<MpiReq, MemError> {
        let world = &self.world;
        let m = world.platform.mpi_p2p.clone();
        dst.check(&world.devs, len)?;
        let h = ctx.handle().clone();
        let ev = h.new_event();
        let to = self.rank;

        let mut ms = world.mpi.matching[to].lock();
        let hit = ms.unexpected.iter().position(|u| {
            src.map(|s| s == u.src).unwrap_or(true) && tag.map(|t| t == u.tag).unwrap_or(true)
        });
        match hit {
            Some(i) => {
                let u = ms.unexpected.remove(i);
                drop(ms);
                match u.kind {
                    UnexKind::Eager { data, len: mlen } => {
                        assert!(mlen <= len, "unexpected message longer than receive buffer");
                        if let Some(bytes) = &data {
                            dst.deposit(&world.devs, bytes);
                        }
                        // Unexpected-queue hit pays an extra staging copy.
                        let copy = Dur::nanos(
                            (mlen as f64 / world.platform.host_memcpy_gbps).ceil() as u64,
                        );
                        h.complete_at(ev, ctx.now() + Dur::micros(m.recv_o_us) + copy);
                    }
                    UnexKind::Rts { src_loc, len: mlen, sender_ev } => {
                        assert!(mlen <= len, "rendezvous message longer than receive buffer");
                        start_rndv(&h, world, u.src, to, src_loc, dst, mlen, sender_ev, ev);
                    }
                }
            }
            None => {
                ms.posted.push(Posted { src, tag, dst, len, ev });
            }
        }
        Ok(MpiReq { ev })
    }

    /// Blocking send (`MPI_Send`).
    pub fn send(
        &self,
        ctx: &mut Ctx,
        to: usize,
        tag: u64,
        src: Loc,
        len: u64,
    ) -> Result<(), MemError> {
        let r = self.isend(ctx, to, tag, src, len)?;
        self.wait(ctx, r);
        Ok(())
    }

    /// Blocking receive (`MPI_Recv`).
    pub fn recv(
        &self,
        ctx: &mut Ctx,
        src: Option<usize>,
        tag: Option<u64>,
        dst: Loc,
        len: u64,
    ) -> Result<(), MemError> {
        let r = self.irecv(ctx, src, tag, dst, len)?;
        self.wait(ctx, r);
        Ok(())
    }

    /// Paired exchange (`MPI_Sendrecv`): both transfers in flight at once.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        ctx: &mut Ctx,
        to: usize,
        stag: u64,
        src: Loc,
        slen: u64,
        from: Option<usize>,
        rtag: Option<u64>,
        dst: Loc,
        rlen: u64,
    ) -> Result<(), MemError> {
        let rr = self.irecv(ctx, from, rtag, dst, rlen)?;
        let sr = self.isend(ctx, to, stag, src, slen)?;
        self.wait(ctx, sr);
        self.wait(ctx, rr);
        Ok(())
    }
}
