//! MPI collectives: broadcast, reduce, allreduce.
//!
//! Real algorithm implementations over the two-sided layer, matching what
//! Cray MPICH / OpenMPI run on GPU buffers:
//!
//! * **Bcast** — binomial tree for small messages; scatter + ring
//!   allgather (van de Geijn) for large ones.
//! * **Allreduce** — recursive doubling (with the standard fold-in for
//!   non-power-of-two rank counts). Each round moves the *full* vector,
//!   which is exactly why MPI allreduce on GPU buffers falls behind
//!   NCCL's bandwidth-optimal rings at large sizes (Fig. 6b).
//! * **Reduce** — binomial tree.
//!
//! Data movement is real (Functional mode): the reduction arithmetic runs
//! on the actual payload bytes, so collective correctness is testable
//! against a sequential reference.

use diomp_device::MemError;
use diomp_sim::{Ctx, Dur};

use crate::loc::Loc;

use super::MpiRank;

/// Tag space reserved for collective rounds (above user tags).
const COLL_TAG_BASE: u64 = 1 << 32;

/// Bcast switches from binomial tree to scatter+allgather at this size.
const BCAST_LARGE: u64 = 512 << 10;

/// Element-wise reduction operators over raw little-endian buffers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Sum of f64 elements.
    SumF64,
    /// Sum of f32 elements.
    SumF32,
    /// Max of f64 elements.
    MaxF64,
    /// Wrapping sum of u64 elements.
    SumU64,
}

impl ReduceOp {
    /// Size of one element in bytes. Ring reduce-scatter segment
    /// boundaries must fall on element boundaries so partial combines
    /// never split an element.
    pub fn elem_bytes(self) -> u64 {
        match self {
            ReduceOp::SumF32 => 4,
            ReduceOp::SumF64 | ReduceOp::MaxF64 | ReduceOp::SumU64 => 8,
        }
    }

    /// `acc ⊕= other`, element-wise.
    pub fn combine(self, acc: &mut [u8], other: &[u8]) {
        assert_eq!(acc.len(), other.len(), "reduce operand length mismatch");
        match self {
            ReduceOp::SumF64 => {
                for (a, b) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
                    let v = f64::from_le_bytes(a[..8].try_into().unwrap())
                        + f64::from_le_bytes(b[..8].try_into().unwrap());
                    a.copy_from_slice(&v.to_le_bytes());
                }
            }
            ReduceOp::SumF32 => {
                for (a, b) in acc.chunks_exact_mut(4).zip(other.chunks_exact(4)) {
                    let v = f32::from_le_bytes(a[..4].try_into().unwrap())
                        + f32::from_le_bytes(b[..4].try_into().unwrap());
                    a.copy_from_slice(&v.to_le_bytes());
                }
            }
            ReduceOp::MaxF64 => {
                for (a, b) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
                    let x = f64::from_le_bytes(a[..8].try_into().unwrap());
                    let y = f64::from_le_bytes(b[..8].try_into().unwrap());
                    a.copy_from_slice(&x.max(y).to_le_bytes());
                }
            }
            ReduceOp::SumU64 => {
                for (a, b) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
                    let v = u64::from_le_bytes(a[..8].try_into().unwrap())
                        .wrapping_add(u64::from_le_bytes(b[..8].try_into().unwrap()));
                    a.copy_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
}

impl MpiRank {
    fn next_coll_tag(&mut self) -> u64 {
        self.coll_seq += 1;
        COLL_TAG_BASE + self.coll_seq
    }

    /// Charge the local reduction cost for `len` bytes at `loc`.
    fn charge_reduce(&self, ctx: &mut Ctx, loc: &Loc, len: u64) {
        let ns = match loc.dev_flat() {
            Some(_) => {
                // GPU reduction kernel: launch + 3 streaming passes.
                let gpu = &self.world.platform.gpu;
                gpu.launch_us * 1e3 + 3.0 * len as f64 / (gpu.hbm_gbps * 0.5)
            }
            None => len as f64 / self.world.platform.host_memcpy_gbps,
        };
        ctx.delay(Dur::nanos(ns.ceil() as u64));
    }

    /// Combine `scratch` into `buf` in place (task context, post-wait).
    fn combine_local(&self, ctx: &mut Ctx, buf: &Loc, scratch: &Loc, len: u64, op: ReduceOp) {
        self.charge_reduce(ctx, buf, len);
        let a = buf.snapshot(&self.world.devs, len).expect("bounds pre-checked");
        let b = scratch.snapshot(&self.world.devs, len).expect("bounds pre-checked");
        if let (Some(mut a), Some(b)) = (a, b) {
            op.combine(&mut a, &b);
            buf.deposit(&self.world.devs, &a);
        }
    }

    /// Allocate a scratch buffer with the same locality as `like`.
    fn scratch_like(&self, like: &Loc, len: u64) -> Result<(Loc, Option<(usize, u64)>), MemError> {
        match like.dev_flat() {
            Some(f) => {
                let off = self.world.devs.dev(f).malloc(len.max(1), 256)?;
                Ok((Loc::dev(f, off), Some((f, off))))
            }
            None => Ok((Loc::host(diomp_device::HostBuf::zeroed(len), 0), None)),
        }
    }

    fn free_scratch(&self, hold: Option<(usize, u64)>) {
        if let Some((f, off)) = hold {
            self.world.devs.dev(f).mfree(off).expect("scratch free");
        }
    }

    /// Broadcast `len` bytes at `buf` from `root` to all ranks
    /// (`MPI_Bcast`).
    pub fn bcast(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        buf: Loc,
        len: u64,
    ) -> Result<(), MemError> {
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let tag = self.next_coll_tag();
        if len < BCAST_LARGE {
            self.bcast_binomial(ctx, root, &buf, len, tag)
        } else {
            self.bcast_scatter_allgather(ctx, root, &buf, len, tag)
        }
    }

    fn bcast_binomial(
        &self,
        ctx: &mut Ctx,
        root: usize,
        buf: &Loc,
        len: u64,
        tag: u64,
    ) -> Result<(), MemError> {
        let p = self.size();
        let vrank = (self.rank + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % p;
                self.recv(ctx, Some(src), Some(tag), buf.clone(), len)?;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                let dst = (vrank + mask + root) % p;
                self.send(ctx, dst, tag, buf.clone(), len)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Van de Geijn large-message broadcast: scatter chunks, then a ring
    /// allgather. (Scatter is modelled as direct root sends — the root NIC
    /// serialises the same total bytes a binomial scatter would.)
    fn bcast_scatter_allgather(
        &self,
        ctx: &mut Ctx,
        root: usize,
        buf: &Loc,
        len: u64,
        tag: u64,
    ) -> Result<(), MemError> {
        let p = self.size();
        let chunk = len.div_ceil(p as u64);
        let chunk_range = |i: usize| -> (u64, u64) {
            let lo = (i as u64 * chunk).min(len);
            let hi = ((i as u64 + 1) * chunk).min(len);
            (lo, hi - lo)
        };
        // Scatter phase.
        if self.rank == root {
            let mut reqs = Vec::new();
            for i in 0..p {
                if i == root {
                    continue;
                }
                let (off, n) = chunk_range(i);
                if n > 0 {
                    reqs.push(self.isend(ctx, i, tag, buf.offset_by(off), n)?);
                }
            }
            self.waitall(ctx, &reqs);
        } else {
            let (off, n) = chunk_range(self.rank);
            if n > 0 {
                self.recv(ctx, Some(root), Some(tag), buf.offset_by(off), n)?;
            }
        }
        // Ring allgather phase: after step s, a rank holds chunks
        // (rank - s .. rank).
        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;
        for s in 0..p - 1 {
            let send_chunk = (self.rank + p - s) % p;
            let recv_chunk = (self.rank + p - s - 1) % p;
            let (soff, sn) = chunk_range(send_chunk);
            let (roff, rn) = chunk_range(recv_chunk);
            let rtag = tag + 1 + s as u64;
            let rr = if rn > 0 {
                Some(self.irecv(ctx, Some(left), Some(rtag), buf.offset_by(roff), rn)?)
            } else {
                None
            };
            if sn > 0 {
                self.send(ctx, right, rtag, buf.offset_by(soff), sn)?;
            }
            if let Some(rr) = rr {
                self.wait(ctx, rr);
            }
        }
        Ok(())
    }

    /// All-reduce `len` bytes at `buf` with `op` (`MPI_Allreduce`),
    /// recursive doubling with non-power-of-two fold-in.
    pub fn allreduce(
        &mut self,
        ctx: &mut Ctx,
        buf: Loc,
        len: u64,
        op: ReduceOp,
    ) -> Result<(), MemError> {
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let tag = self.next_coll_tag();
        let pof2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
        let rem = p - pof2;
        let (scratch, hold) = self.scratch_like(&buf, len)?;

        // Fold: the first 2*rem ranks pair up; evens push their data to
        // odds and sit out the doubling phase.
        let newrank: isize = if self.rank < 2 * rem {
            if self.rank.is_multiple_of(2) {
                self.send(ctx, self.rank + 1, tag, buf.clone(), len)?;
                -1
            } else {
                self.recv(ctx, Some(self.rank - 1), Some(tag), scratch.clone(), len)?;
                self.combine_local(ctx, &buf, &scratch, len, op);
                (self.rank / 2) as isize
            }
        } else {
            (self.rank - rem) as isize
        };

        if newrank >= 0 {
            let to_real = |nr: usize| if nr < rem { nr * 2 + 1 } else { nr + rem };
            let mut mask = 1usize;
            let mut round = 0u64;
            while mask < pof2 {
                let partner = to_real(newrank as usize ^ mask);
                let rtag = tag + 1 + round;
                self.sendrecv(
                    ctx,
                    partner,
                    rtag,
                    buf.clone(),
                    len,
                    Some(partner),
                    Some(rtag),
                    scratch.clone(),
                    len,
                )?;
                self.combine_local(ctx, &buf, &scratch, len, op);
                mask <<= 1;
                round += 1;
            }
        }

        // Unfold: odds push the finished vector back to their even partner.
        if self.rank < 2 * rem {
            let ftag = tag + 100;
            if self.rank.is_multiple_of(2) {
                self.recv(ctx, Some(self.rank + 1), Some(ftag), buf.clone(), len)?;
            } else {
                self.send(ctx, self.rank - 1, ftag, buf.clone(), len)?;
            }
        }
        self.free_scratch(hold);
        Ok(())
    }

    /// Reduce to `root` (`MPI_Reduce`), binomial tree. The result lands in
    /// `buf` on the root; other ranks' buffers are clobbered with partial
    /// sums (as permitted for the scratch semantics used here).
    pub fn reduce(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        buf: Loc,
        len: u64,
        op: ReduceOp,
    ) -> Result<(), MemError> {
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let tag = self.next_coll_tag();
        let (scratch, hold) = self.scratch_like(&buf, len)?;
        let vrank = (self.rank + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let dst = (vrank - mask + root) % p;
                self.send(ctx, dst, tag, buf.clone(), len)?;
                break;
            }
            if vrank + mask < p {
                let src = (vrank + mask + root) % p;
                self.recv(ctx, Some(src), Some(tag), scratch.clone(), len)?;
                self.combine_local(ctx, &buf, &scratch, len, op);
            }
            mask <<= 1;
        }
        self.free_scratch(hold);
        Ok(())
    }
}
