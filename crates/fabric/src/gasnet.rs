//! GASNet-EX-like conduit: one-sided RMA, active messages, barriers.
//!
//! This is DiOMP's default communication layer (paper §3.1). The key
//! semantic property — and the root of the Fig. 3 latency advantage over
//! MPI RMA — is that a Put/Get against an attached segment involves **no
//! target-side software**: the initiator pays a small, constant conduit
//! overhead and the payload is deposited by the (modelled) NIC at the
//! computed arrival time. MPI one-sided, by contrast, drags window
//! synchronisation and a per-byte software pipeline along (see
//! `crate::mpi::rma`).

use std::collections::HashMap;
use std::sync::Arc;

use diomp_device::MemError;
use diomp_sim::{Ctx, Dur, EventId, SimHandle};
use parking_lot::Mutex;

use crate::loc::Loc;
use crate::path::{control_msg, raw_path, End};
use crate::segment::SegmentId;
use crate::world::FabricWorld;

/// Completion events of a non-blocking Put.
#[derive(Clone, Copy, Debug)]
pub struct PutHandle {
    /// Source buffer reusable (local completion, `GEX_EVENT_LC`).
    pub local: EventId,
    /// Data visible at the target and acknowledged (what `ompx_fence`
    /// waits for).
    pub remote: EventId,
}

fn ends(world: &FabricWorld, rank: usize, loc: &Loc) -> End {
    match loc.dev_flat() {
        Some(f) => End::Dev(f),
        None => End::Node(world.node_of(rank)),
    }
}

fn initiator_overhead(world: &FabricWorld, src: &Loc, dst: &Loc, base_us: f64) -> Dur {
    let g = &world.platform.gasnet;
    let touches_device = src.dev_flat().is_some() || dst.dev_flat().is_some();
    Dur::micros(base_us + if touches_device { g.gpu_reg_us } else { 0.0 })
}

/// Transfers below this size are unaffected by the Platform A put
/// anomaly: the paper's Fig. 3a latency curves (4 B – 8 KB) stay flat
/// while the Fig. 4a bandwidth curves (16 KB up) are capped, so the
/// documented driver issue bites the bulk-transfer path only.
const PUT_ANOMALY_MIN_BYTES: u64 = 16 << 10;

/// The anomaly's efficiency ceiling for a device-source Put of `len`
/// bytes, if it applies to this transfer at all. Single source of truth
/// for the anomaly predicate: both the charged efficiency ([`put_eff`])
/// and the pipeline's staging decision ([`put_capped`]) derive from it.
fn anomaly_eff(world: &FabricWorld, inter_node: bool, len: u64) -> Option<f64> {
    match world.platform.put_anomaly_gbps {
        Some(cap) if inter_node && len >= PUT_ANOMALY_MIN_BYTES => {
            Some(cap / world.platform.net.nic_gbps)
        }
        _ => None,
    }
}

/// Effective wire efficiency for a device Put, applying the documented
/// Platform A hardware/driver anomaly (Fig. 4a) for inter-node device
/// sources.
fn put_eff(world: &FabricWorld, src_end: End, dst_end: End, inter_node: bool, len: u64) -> f64 {
    let g = &world.platform.gasnet;
    let device_src = matches!(src_end, End::Dev(_)) && matches!(dst_end, End::Dev(_));
    match anomaly_eff(world, inter_node, len) {
        Some(cap_eff) if device_src => g.eff.min(cap_eff),
        _ => g.eff,
    }
}

/// Would a direct device-source Put of `len` bytes between these nodes
/// run below the conduit's nominal efficiency because of the documented
/// Platform A put cap (Fig. 4a)?
///
/// The DiOMP runtime's large-message pipeline uses this to decide whether
/// staging chunks through host memory pays: a host-source Put is not
/// subject to the cap, so D2H-then-Put chunks overlap into the full wire
/// rate exactly as paper §3.2's copy/transfer overlap describes.
pub fn put_capped(world: &FabricWorld, inter_node: bool, len: u64) -> bool {
    anomaly_eff(world, inter_node, len).is_some_and(|cap_eff| cap_eff < world.platform.gasnet.eff)
}

/// Non-blocking one-sided Put of `len` bytes from a local buffer into a
/// remote segment (`gex_RMA_PutNB`).
pub fn put_nb(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    src_rank: usize,
    src: Loc,
    dst: SegmentId,
    dst_off: u64,
    len: u64,
) -> Result<PutHandle, MemError> {
    let seg = world.segment(dst);
    let dst_loc = seg.loc(dst_off);
    src.check(&world.devs, len)?;
    dst_loc.check(&world.devs, len)?;

    // Initiator-side conduit software (serialises on the calling thread,
    // bounding the achievable message rate).
    ctx.delay(initiator_overhead(world, &src, &dst_loc, world.platform.gasnet.put_o_us));

    let src_end = ends(world, src_rank, &src);
    let dst_end = ends(world, dst.rank, &dst_loc);
    let inter = world.node_of(src_rank) != world.node_of(dst.rank);
    let eff = put_eff(world, src_end, dst_end, inter, len);

    let snapshot = src.snapshot(&world.devs, len)?;
    let h = ctx.handle();
    let times = raw_path(h, &world.devs, src_end, dst_end, ctx.now(), len, eff);

    if let Some(bytes) = snapshot {
        let devs = world.devs.clone();
        h.schedule_at(times.arrive, move |_| dst_loc.deposit(&devs, &bytes));
    }

    let local = h.new_event();
    h.complete_at(local, times.depart);
    let remote = h.new_event();
    let ack = control_msg(h, &world.devs, dst_end, src_end, times.arrive);
    h.complete_at(remote, ack);
    Ok(PutHandle { local, remote })
}

/// Non-blocking one-sided Get of `len` bytes from a remote segment into a
/// local buffer (`gex_RMA_GetNB`). The returned event completes when the
/// data has landed locally.
pub fn get_nb(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    rank: usize,
    dst: Loc,
    src: SegmentId,
    src_off: u64,
    len: u64,
) -> Result<EventId, MemError> {
    get_nb_timed(ctx, world, rank, dst, src, src_off, len).map(|(ev, _)| ev)
}

/// Like [`get_nb`] but also returns the modelled arrival instant, so
/// staged pipelines can schedule follow-on work (e.g. an H2D upload out
/// of a bounce buffer) *at* the moment the chunk lands — without
/// synchronising the issuing task on the arrival. Actions scheduled at
/// the returned time after this call run strictly after the deposit
/// (same instant, later sequence number).
pub fn get_nb_timed(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    rank: usize,
    dst: Loc,
    src: SegmentId,
    src_off: u64,
    len: u64,
) -> Result<(EventId, diomp_sim::SimTime), MemError> {
    let seg = world.segment(src);
    let src_loc = seg.loc(src_off);
    dst.check(&world.devs, len)?;
    src_loc.check(&world.devs, len)?;

    ctx.delay(initiator_overhead(world, &src_loc, &dst, world.platform.gasnet.get_o_us));

    let local_end = ends(world, rank, &dst);
    let remote_end = ends(world, src.rank, &src_loc);
    let h = ctx.handle().clone();
    // Request travels to the data owner's NIC...
    let req_arrive = control_msg(&h, &world.devs, local_end, remote_end, ctx.now());
    // ...which streams the payload back without target-CPU involvement.
    let eff = world.platform.gasnet.eff;
    let times = raw_path(&h, &world.devs, remote_end, local_end, req_arrive, len, eff);

    // Snapshot at the remote read time for causal correctness: the bytes
    // leave the owner when the NIC reads them, i.e. at transfer start.
    // Both stages are scheduled *now*, in order, so the deposit's
    // sequence number precedes any action a caller schedules at the
    // arrival instant after this returns — the ordering `get_nb_timed`
    // documents. CostOnly runs carry no bytes at all: no actions are
    // scheduled, keeping scheduler entries free of pure bookkeeping.
    let ev = h.new_event();
    if world.devs.mode == diomp_device::DataMode::Functional {
        let devs = world.devs.clone();
        let in_flight: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        let fill = in_flight.clone();
        let devs2 = devs.clone();
        h.schedule_at(times.start_or_arrive().0, move |_| {
            *fill.lock() = src_loc.snapshot(&devs2, len).expect("bounds pre-checked");
        });
        h.schedule_at(times.arrive, move |_| {
            if let Some(bytes) = in_flight.lock().take() {
                dst.deposit(&devs, &bytes);
            }
        });
    }
    h.complete_at(ev, times.arrive);
    Ok((ev, times.arrive))
}

impl crate::path::PathTimes {
    /// `(start-of-wire, arrival)` pair — the snapshot and deposit instants
    /// of a one-sided read.
    pub fn start_or_arrive(&self) -> (diomp_sim::SimTime, diomp_sim::SimTime) {
        (self.depart, self.arrive)
    }
}

/// Blocking Put: initiate and wait for remote completion.
pub fn put_blocking(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    src_rank: usize,
    src: Loc,
    dst: SegmentId,
    dst_off: u64,
    len: u64,
) -> Result<(), MemError> {
    let hdl = put_nb(ctx, world, src_rank, src, dst, dst_off, len)?;
    ctx.wait_free(hdl.local);
    ctx.wait_free(hdl.remote);
    Ok(())
}

/// Blocking Get.
pub fn get_blocking(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    rank: usize,
    dst: Loc,
    src: SegmentId,
    src_off: u64,
    len: u64,
) -> Result<(), MemError> {
    let ev = get_nb(ctx, world, rank, dst, src, src_off, len)?;
    ctx.wait_free(ev);
    Ok(())
}

/// An active message delivered to a rank: small scalar arguments plus an
/// optional payload (GASNet "medium" AM).
pub struct AmMsg {
    /// Sending rank.
    pub from: usize,
    /// Scalar arguments.
    pub args: Vec<u64>,
    /// Optional payload bytes.
    pub payload: Option<Vec<u8>>,
}

type Handler = Arc<dyn Fn(&SimHandle, AmMsg) + Send + Sync>;

/// Per-rank active-message handler tables.
pub struct AmRegistry {
    tables: Mutex<Vec<HashMap<u16, Handler>>>,
}

impl AmRegistry {
    pub(crate) fn new(nranks: usize) -> Self {
        AmRegistry { tables: Mutex::new(vec![HashMap::new(); nranks]) }
    }

    /// Register handler `index` on `rank`.
    pub fn register(
        &self,
        rank: usize,
        index: u16,
        f: impl Fn(&SimHandle, AmMsg) + Send + Sync + 'static,
    ) {
        self.tables.lock()[rank].insert(index, Arc::new(f));
    }

    fn get(&self, rank: usize, index: u16) -> Handler {
        self.tables.lock()[rank]
            .get(&index)
            .unwrap_or_else(|| panic!("no AM handler {index} on rank {rank}"))
            .clone()
    }
}

/// Send an active message; the handler runs on the target at the modelled
/// arrival time (plus handler dispatch cost).
pub fn am_request(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    from: usize,
    to: usize,
    index: u16,
    args: Vec<u64>,
    payload: Option<Vec<u8>>,
) {
    let g = &world.platform.gasnet;
    ctx.delay(Dur::micros(g.am_o_us));
    let bytes = 64 + payload.as_ref().map(|p| p.len() as u64).unwrap_or(0);
    let src_end = End::Node(world.node_of(from));
    let dst_end = End::Node(world.node_of(to));
    let h = ctx.handle();
    let times = raw_path(h, &world.devs, src_end, dst_end, ctx.now(), bytes, 1.0);
    let handler = world.am.get(to, index);
    let dispatch = Dur::micros(g.am_o_us);
    h.schedule_at(times.arrive + dispatch, move |h| {
        handler(h, AmMsg { from, args, payload });
    });
}
