//! Registered memory segments (the PGAS attach step).
//!
//! A segment is a contiguous region of device (or host) memory registered
//! with the conduit so one-sided operations can target it without further
//! handshakes — GASNet-EX's `gex_Segment_Attach` / GPI-2's
//! `gaspi_segment_create`. The DiOMP runtime attaches one device segment
//! per device at startup and carves its global heap out of it (paper
//! §3.1–3.2).

use diomp_device::HostBuf;

/// Identifies a registered segment: `(owning rank, index)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SegmentId {
    /// Owning rank.
    pub rank: usize,
    /// Index in the rank's segment table.
    pub index: usize,
}

/// Where a segment's memory lives.
#[derive(Clone)]
pub enum SegmentMem {
    /// Device memory: flat device index + base offset in device space.
    Device {
        /// Flat device index.
        flat: usize,
        /// Base offset of the segment inside the device address space.
        base: u64,
    },
    /// Host memory.
    Host {
        /// Backing host buffer.
        buf: HostBuf,
    },
}

/// One registered segment.
#[derive(Clone)]
pub struct Segment {
    /// Owning rank.
    pub rank: usize,
    /// Storage location.
    pub mem: SegmentMem,
    /// Length in bytes.
    pub len: u64,
}

impl Segment {
    /// Resolve an offset within this segment to a transfer location.
    pub fn loc(&self, off: u64) -> crate::loc::Loc {
        assert!(off <= self.len, "segment offset {off} beyond length {}", self.len);
        match &self.mem {
            SegmentMem::Device { flat, base } => crate::loc::Loc::dev(*flat, base + off),
            SegmentMem::Host { buf } => crate::loc::Loc::host(buf.clone(), off),
        }
    }

    /// The endpoint for path selection.
    pub fn end(&self, node_of_rank: usize) -> crate::path::End {
        match &self.mem {
            SegmentMem::Device { flat, .. } => crate::path::End::Dev(*flat),
            SegmentMem::Host { .. } => crate::path::End::Node(node_of_rank),
        }
    }
}
