//! GPI-2-like conduit (InfiniBand only, paper §4.1 / Fig. 5).
//!
//! GPI-2 (GASPI) exposes one-sided `write`/`read` over *queues* plus
//! lightweight *notifications* for remote completion signalling. DiOMP can
//! use it as an alternative communication middleware to GASNet-EX; the
//! paper's Fig. 5 compares the two over NDR InfiniBand, with GPI-2's
//! leaner per-message path winning for small/medium writes.
//!
//! # Notification model
//!
//! Each rank owns a *notification board*: a sparse `u32 → u64` array of
//! level-triggered flags ([`diomp_sim::BoardId`], a kernel primitive).
//! [`write_notify`] makes a notification visible at the target strictly
//! *after* its payload (the notification control message is charged on
//! the same FIFO NIC resource as the data, so it cannot overtake).
//! Consumers drain the board with:
//!
//! * [`notify_waitsome`] — block on a *range* `[first, first + num)` of
//!   ids and atomically consume the lowest posted one
//!   (`gaspi_notify_waitsome` fused with `gaspi_notify_reset`, which is
//!   how virtually every GASPI program uses the pair). The wait parks the
//!   task exactly once regardless of range width — no per-id polling.
//! * [`notify_wait`] — the single-id special case.
//! * [`notify_reset`] — non-blocking consume (`gaspi_notify_reset` alone).
//!
//! Values must be non-zero (a GASPI requirement: 0 is the reset state).
//! Re-posting an unconsumed id overwrites its value, so protocols that
//! must observe every post use disjoint id sets — e.g. the parity scheme
//! of the minimod notified halo exchange (`diomp-apps`).
//!
//! # Timeouts, queue errors and recovery
//!
//! GASPI's fault model is cooperative: blocking calls take a timeout and
//! return `GASPI_TIMEOUT` instead of hanging, a failed operation moves
//! its queue into an *error state* (every later post on it returns
//! `GASPI_ERROR`), and `gaspi_queue_purge` abandons the queue's
//! outstanding operations and re-arms it. The conduit mirrors all three:
//!
//! * [`wait_queue`] / [`wait_all_queues`] / [`notify_waitsome`] called
//!   with [`Wait::Until`] return [`FabricError::Timeout`] when the
//!   virtual-time deadline fires, leaving already-completed operations
//!   retired and incomplete ones re-queued for a later wait. Every
//!   expired deadline also probes the `gaspi_state_vec`
//!   ([`FabricWorld::probe_health`]): a timeout is GASPI's failure
//!   *signal*, and the probe is how a rank-kill becomes visible as
//!   [`crate::RankHealth::Dead`] mid-run so survivors can shrink and
//!   rebuild instead of re-waiting forever.
//! * [`write()`](write()) / [`read()`](read) consult the deterministic fault injector
//!   ([`diomp_sim::FaultPlan::ctrl_fault`] keyed
//!   `fault_key("gpi-queue", rank, queue)`) — an injected `Drop` errors
//!   the queue, a `Delay` stretches the posting overhead.
//! * [`queue_purge`] releases the queue's in-flight completions (the
//!   data may still land; nobody will wait on it) and clears the error
//!   state. [`queue_errored`] exposes the flag for health monitoring.
//!
//! [`write_notify`]'s notification message has its own injection point
//! (`fault_key("gpi-notify", dst_rank, id)`): `Drop` models the
//! notification lost in flight *after* the payload landed — the classic
//! failure a timeout-and-retry protocol must survive.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use diomp_sim::{fault_key, BoardId, CtrlFault, Ctx, Dur, EventId, SimHandle, Wait};
use parking_lot::Mutex;

use crate::error::FabricError;
use crate::loc::Loc;
use crate::path::{control_msg, raw_path, End};
use crate::segment::SegmentId;
use crate::world::FabricWorld;

/// Queue handle (GASPI queues order completions, not data).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct QueueId(pub u8);

/// Per-world GPI-2 state: queue completion lists and notification boards.
pub struct GpiState {
    /// `[rank] → queue → pending remote-completion events`. Ordered map:
    /// draining *all* queues must visit them in a deterministic order.
    queues: Mutex<Vec<BTreeMap<QueueId, Vec<EventId>>>>,
    /// `[rank] → notification board`, created lazily (board allocation
    /// needs a kernel handle, which `FabricWorld::new` does not take).
    boards: Mutex<Vec<Option<BoardId>>>,
    /// `[rank] → queues in the error state (GASPI `GASPI_ERROR`)`: an
    /// operation posted to them failed in flight. Posts fail until
    /// [`queue_purge`] re-arms the queue.
    errors: Mutex<Vec<BTreeSet<QueueId>>>,
}

impl GpiState {
    pub(crate) fn new(nranks: usize) -> Self {
        GpiState {
            queues: Mutex::new(vec![BTreeMap::new(); nranks]),
            boards: Mutex::new(vec![None; nranks]),
            errors: Mutex::new(vec![BTreeSet::new(); nranks]),
        }
    }
}

/// The notification board of `rank`, creating it on first use.
fn board(h: &SimHandle, world: &FabricWorld, rank: usize) -> BoardId {
    let mut boards = world.gpi.boards.lock();
    *boards[rank].get_or_insert_with(|| h.new_board())
}

fn model(world: &FabricWorld) -> Result<&diomp_sim::GpiModel, FabricError> {
    world.platform.gpi.as_ref().ok_or(FabricError::ConduitUnavailable {
        needed: "GPI-2 requires an InfiniBand platform (paper §4.1)",
    })
}

/// Is `queue` of `rank` in the error state?
pub fn queue_errored(world: &Arc<FabricWorld>, rank: usize, queue: QueueId) -> bool {
    world.gpi.errors.lock()[rank].contains(&queue)
}

/// Gate a post on `queue`: refuse if the queue is already errored, then
/// consult the fault injector for this queue's control stream. `Drop`
/// moves the queue into the error state (the post is the operation that
/// failed); `Delay` stretches the posting overhead but succeeds.
fn check_queue(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    rank: usize,
    queue: QueueId,
) -> Result<(), FabricError> {
    if queue_errored(world, rank, queue) {
        return Err(FabricError::QueueError { rank, queue });
    }
    match ctx.handle().take_ctrl_fault(fault_key("gpi-queue", rank as u64, queue.0 as u64)) {
        Some(CtrlFault::Drop) => {
            world.gpi.errors.lock()[rank].insert(queue);
            Err(FabricError::QueueError { rank, queue })
        }
        Some(CtrlFault::Delay(d)) => {
            ctx.delay(d);
            Ok(())
        }
        None => Ok(()),
    }
}

fn end_of(world: &FabricWorld, rank: usize, loc: &Loc) -> End {
    match loc.dev_flat() {
        Some(f) => End::Dev(f),
        None => End::Node(world.node_of(rank)),
    }
}

/// One-sided write into a remote segment (`gaspi_write`). Completion is
/// tracked on `queue`; use [`wait_queue`] to drain.
///
/// Fails with [`FabricError::QueueError`] when the queue is (or just
/// became, via injection) in the error state; recover with
/// [`queue_purge`] and retry.
#[allow(clippy::too_many_arguments)]
pub fn write(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    src_rank: usize,
    queue: QueueId,
    src: Loc,
    dst: SegmentId,
    dst_off: u64,
    len: u64,
) -> Result<(), FabricError> {
    check_queue(ctx, world, src_rank, queue)?;
    let m = model(world)?.clone();
    let seg = world.segment(dst);
    let dst_loc = seg.loc(dst_off);
    src.check(&world.devs, len)?;
    dst_loc.check(&world.devs, len)?;

    ctx.delay(Dur::micros(m.put_o_us));
    let src_end = end_of(world, src_rank, &src);
    let dst_end = end_of(world, dst.rank, &dst_loc);
    let snapshot = src.snapshot(&world.devs, len)?;
    let h = ctx.handle();
    let times = raw_path(h, &world.devs, src_end, dst_end, ctx.now(), len, m.eff);
    if let Some(bytes) = snapshot {
        let devs = world.devs.clone();
        h.schedule_at(times.arrive, move |_| dst_loc.deposit(&devs, &bytes));
    }
    let ev = h.new_event();
    let ack = control_msg(h, &world.devs, dst_end, src_end, times.arrive);
    h.complete_at(ev, ack);
    world.gpi.queues.lock()[src_rank].entry(queue).or_default().push(ev);
    Ok(())
}

/// One-sided read from a remote segment (`gaspi_read`).
#[allow(clippy::too_many_arguments)]
pub fn read(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    rank: usize,
    queue: QueueId,
    dst: Loc,
    src: SegmentId,
    src_off: u64,
    len: u64,
) -> Result<(), FabricError> {
    check_queue(ctx, world, rank, queue)?;
    let m = model(world)?.clone();
    let seg = world.segment(src);
    let src_loc = seg.loc(src_off);
    dst.check(&world.devs, len)?;
    src_loc.check(&world.devs, len)?;

    ctx.delay(Dur::micros(m.get_o_us));
    let local_end = end_of(world, rank, &dst);
    let remote_end = end_of(world, src.rank, &src_loc);
    let h = ctx.handle().clone();
    let req = control_msg(&h, &world.devs, local_end, remote_end, ctx.now());
    let times = raw_path(&h, &world.devs, remote_end, local_end, req, len, m.eff);
    let devs = world.devs.clone();
    let h2 = h.clone();
    h.schedule_at(times.depart, move |_| {
        if let Some(bytes) = src_loc.snapshot(&devs, len).expect("bounds pre-checked") {
            let devs2 = devs.clone();
            h2.schedule_at(times.arrive, move |_| dst.deposit(&devs2, &bytes));
        }
    });
    let ev = h.new_event();
    h.complete_at(ev, times.arrive);
    world.gpi.queues.lock()[rank].entry(queue).or_default().push(ev);
    Ok(())
}

/// Drain a queue (`gaspi_wait`): wait until every posted operation on
/// it has completed, under the given wait discipline — [`Wait::Block`]
/// maps to `GASPI_BLOCK`, [`Wait::Until`] to a real timeout. Like the
/// GASPI original, the timeout is part of the one signature, not a
/// separate entry point.
///
/// One batched wait either way: the task parks once regardless of how
/// many completions are pending. On [`FabricError::Timeout`] the
/// partial state is preserved, not discarded: operations that *did*
/// complete are retired, the incomplete ones go back on the queue for a
/// later wait (or a [`queue_purge`]).
pub fn wait_queue(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    rank: usize,
    queue: QueueId,
    wait: Wait,
) -> Result<(), FabricError> {
    let pending: Vec<EventId> = {
        let mut q = world.gpi.queues.lock();
        q[rank].get_mut(&queue).map(std::mem::take).unwrap_or_default()
    };
    if matches!(wait, Wait::Block) {
        ctx.wait_all_free(&pending);
        return Ok(());
    }
    match ctx.wait_all_with(&pending, wait) {
        Ok(()) => {
            for ev in pending {
                ctx.handle().free_event(ev);
            }
            Ok(())
        }
        Err(t) => {
            let mut left = Vec::new();
            for ev in pending {
                if ctx.handle().event_done(ev) {
                    ctx.handle().free_event(ev);
                } else {
                    left.push(ev);
                }
            }
            {
                let mut q = world.gpi.queues.lock();
                let slot = q[rank].entry(queue).or_default();
                // Anything posted while we were parked stays behind the
                // survivors: queue order is completion-tracking order.
                left.append(slot);
                *slot = left;
            }
            world.probe_health();
            Err(t.into())
        }
    }
}

/// Remove and return every pending completion event across *all* of
/// `rank`'s queues, in queue order. Callers decide how to wait (the
/// fence uses one batched `wait_all`; the unbatched ablation loops).
pub fn take_pending_all(world: &Arc<FabricWorld>, rank: usize) -> Vec<EventId> {
    let mut q = world.gpi.queues.lock();
    let rankq = std::mem::take(&mut q[rank]);
    rankq.into_values().flatten().collect()
}

/// Drain every queue of `rank` with a single batched wait
/// (`gaspi_wait` over the whole queue set), under the given wait
/// discipline. Completions posted to *any* queue are awaited — not just
/// queue 0. Same partial-completion contract as [`wait_queue`] on
/// timeout, per queue.
pub fn wait_all_queues(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    rank: usize,
    wait: Wait,
) -> Result<(), FabricError> {
    if matches!(wait, Wait::Block) {
        let pending = take_pending_all(world, rank);
        ctx.wait_all_free(&pending);
        return Ok(());
    }
    let rankq: BTreeMap<QueueId, Vec<EventId>> = std::mem::take(&mut world.gpi.queues.lock()[rank]);
    let all: Vec<EventId> = rankq.values().flatten().copied().collect();
    match ctx.wait_all_with(&all, wait) {
        Ok(()) => {
            for ev in all {
                ctx.handle().free_event(ev);
            }
            Ok(())
        }
        Err(t) => {
            let mut survivors: Vec<(QueueId, EventId)> = Vec::new();
            for (qu, evs) in rankq {
                for ev in evs {
                    if ctx.handle().event_done(ev) {
                        ctx.handle().free_event(ev);
                    } else {
                        survivors.push((qu, ev));
                    }
                }
            }
            {
                let mut q = world.gpi.queues.lock();
                for (qu, ev) in survivors {
                    q[rank].entry(qu).or_default().push(ev);
                }
            }
            world.probe_health();
            Err(t.into())
        }
    }
}

/// Purge a queue (`gaspi_queue_purge`): abandon every operation posted
/// on it and clear its error state so posts succeed again. In-flight
/// data may still land at the target — purging discards *completion
/// tracking*, not bytes already on the wire — but nobody will ever wait
/// on the abandoned operations and their slots recycle themselves once
/// the wire drains. This is the GASPI recovery sequence after a
/// [`FabricError::QueueError`].
pub fn queue_purge(h: &SimHandle, world: &Arc<FabricWorld>, rank: usize, queue: QueueId) {
    let pending: Vec<EventId> = {
        let mut q = world.gpi.queues.lock();
        q[rank].get_mut(&queue).map(std::mem::take).unwrap_or_default()
    };
    for ev in pending {
        h.release_event(ev);
    }
    world.gpi.errors.lock()[rank].remove(&queue);
}

/// Write with a remote notification (`gaspi_write_notify`): after the data
/// lands, notification `id` with `value` becomes visible at the target.
///
/// `value` must be non-zero (GASPI reserves 0 for the reset state). The
/// notification control message is charged on the *same* endpoints as
/// the payload, so the FIFO link model guarantees it arrives strictly
/// after the last data byte — a waitsome wake-up implies the halo bytes
/// are already deposited.
#[allow(clippy::too_many_arguments)]
pub fn write_notify(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    src_rank: usize,
    queue: QueueId,
    src: Loc,
    dst: SegmentId,
    dst_off: u64,
    len: u64,
    id: u32,
    value: u64,
) -> Result<(), FabricError> {
    assert!(value != 0, "GASPI notification values must be non-zero");
    let m = model(world)?.clone();
    let dst_loc = world.segment(dst).loc(dst_off);
    let src_end = end_of(world, src_rank, &src);
    write(ctx, world, src_rank, queue, src, dst, dst_off, len)?;
    ctx.delay(Dur::micros(m.notify_us));
    // The notification rides behind the data: same source/destination
    // endpoints, hence the same FIFO NIC resources, one control message
    // issued after the write — it queues behind the payload and becomes
    // visible only once the data is deposited.
    let dst_rank = dst.rank;
    let dst_end = end_of(world, dst_rank, &dst_loc);
    let h = ctx.handle();
    let mut when = control_msg(h, &world.devs, src_end, dst_end, ctx.now());
    // Injection point for the notification message itself: a dropped
    // flag models the payload landing while its completion signal is
    // lost — the caller's timeout-and-retry path must cover this.
    match h.take_ctrl_fault(fault_key("gpi-notify", dst_rank as u64, id as u64)) {
        Some(CtrlFault::Drop) => return Ok(()),
        Some(CtrlFault::Delay(d)) => when += d,
        None => {}
    }
    let b = board(h, world, dst_rank);
    h.schedule_at(when, move |h| h.board_post(b, id, value));
    Ok(())
}

/// Block until some notification in `[first_id, first_id + num_ids)` has
/// arrived at `rank`'s board; atomically consume the lowest such id and
/// return `(id, value)`.
///
/// This is `gaspi_notify_waitsome` fused with the `gaspi_notify_reset`
/// that consumes the winning id — the reset happens under the same board
/// lock, so a value is handed to exactly one waiter even when waitsome
/// ranges overlap. The task parks once on the whole range (a single
/// generation-tagged wait group, [`diomp_sim::Ctx::board_waitsome`]), not
/// once per id.
///
/// Like the GASPI original, the wait discipline is an argument of the
/// one signature: [`Wait::Block`] is `GASPI_BLOCK` (cannot time out);
/// [`Wait::Until`] returns [`FabricError::Timeout`] if nothing in the
/// range is posted by the deadline — notifications arriving later stay
/// on the board for the next wait, nothing is consumed on the error
/// path.
pub fn notify_waitsome(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    rank: usize,
    first_id: u32,
    num_ids: u32,
    wait: Wait,
) -> Result<(u32, u64), FabricError> {
    let b = board(ctx.handle(), world, rank);
    match ctx.board_waitsome_with(b, first_id, num_ids, wait) {
        Ok(hit) => Ok(hit),
        Err(t) => {
            // GASPI discipline: an expired deadline is the failure
            // signal — probe the state vector before surfacing it.
            world.probe_health();
            Err(t.into())
        }
    }
}

/// Non-blocking consume of notification `id` (`gaspi_notify_reset`):
/// returns the posted value, or `None` if nothing unconsumed is there.
pub fn notify_reset(ctx: &Ctx, world: &Arc<FabricWorld>, rank: usize, id: u32) -> Option<u64> {
    let b = board(ctx.handle(), world, rank);
    ctx.handle().board_reset(b, id)
}

/// Block until notification `id` arrives; returns its value and resets the
/// slot. The single-id special case of [`notify_waitsome`].
///
/// Unlike the pre-board implementation — which kept one waiter slot per
/// id and could silently overwrite (and so forever-park) a concurrent
/// waiter, or re-park a task whose notification was consumed between its
/// wake and its re-check — arrival checking and value consumption happen
/// atomically under the board lock.
pub fn notify_wait(ctx: &mut Ctx, world: &Arc<FabricWorld>, rank: usize, id: u32) -> u64 {
    notify_waitsome(ctx, world, rank, id, 1, Wait::Block).expect("GASPI_BLOCK cannot time out").1
}
