//! GPI-2-like conduit (InfiniBand only, paper §4.1 / Fig. 5).
//!
//! GPI-2 (GASPI) exposes one-sided `write`/`read` over *queues* plus
//! lightweight *notifications* for remote completion signalling. DiOMP can
//! use it as an alternative communication middleware to GASNet-EX; the
//! paper's Fig. 5 compares the two over NDR InfiniBand, with GPI-2's
//! leaner per-message path winning for small/medium writes.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use diomp_device::MemError;
use diomp_sim::{Ctx, Dur, EventId};
use parking_lot::Mutex;

use crate::loc::Loc;
use crate::path::{control_msg, raw_path, End};
use crate::segment::SegmentId;
use crate::world::FabricWorld;

/// Queue handle (GASPI queues order completions, not data).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct QueueId(pub u8);

struct NotifySlot {
    value: Option<u64>,
    waiter: Option<EventId>,
}

/// Per-world GPI-2 state: queue completion lists and notification boards.
pub struct GpiState {
    /// `[rank] → queue → pending remote-completion events`. Ordered map:
    /// draining *all* queues must visit them in a deterministic order.
    queues: Mutex<Vec<BTreeMap<QueueId, Vec<EventId>>>>,
    /// `[rank] → notification id → slot`.
    notifications: Mutex<Vec<HashMap<u32, NotifySlot>>>,
}

impl GpiState {
    pub(crate) fn new(nranks: usize) -> Self {
        GpiState {
            queues: Mutex::new(vec![BTreeMap::new(); nranks]),
            notifications: Mutex::new((0..nranks).map(|_| HashMap::new()).collect()),
        }
    }
}

impl Clone for NotifySlot {
    fn clone(&self) -> Self {
        NotifySlot { value: self.value, waiter: self.waiter }
    }
}

fn model(world: &FabricWorld) -> &diomp_sim::GpiModel {
    world.platform.gpi.as_ref().expect("GPI-2 conduit requires an InfiniBand platform (paper §4.1)")
}

fn end_of(world: &FabricWorld, rank: usize, loc: &Loc) -> End {
    match loc.dev_flat() {
        Some(f) => End::Dev(f),
        None => End::Node(world.node_of(rank)),
    }
}

/// One-sided write into a remote segment (`gaspi_write`). Completion is
/// tracked on `queue`; use [`wait_queue`] to drain.
#[allow(clippy::too_many_arguments)]
pub fn write(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    src_rank: usize,
    queue: QueueId,
    src: Loc,
    dst: SegmentId,
    dst_off: u64,
    len: u64,
) -> Result<(), MemError> {
    let m = model(world).clone();
    let seg = world.segment(dst);
    let dst_loc = seg.loc(dst_off);
    src.check(&world.devs, len)?;
    dst_loc.check(&world.devs, len)?;

    ctx.delay(Dur::micros(m.put_o_us));
    let src_end = end_of(world, src_rank, &src);
    let dst_end = end_of(world, dst.rank, &dst_loc);
    let snapshot = src.snapshot(&world.devs, len)?;
    let h = ctx.handle();
    let times = raw_path(h, &world.devs, src_end, dst_end, ctx.now(), len, m.eff);
    if let Some(bytes) = snapshot {
        let devs = world.devs.clone();
        h.schedule_at(times.arrive, move |_| dst_loc.deposit(&devs, &bytes));
    }
    let ev = h.new_event();
    let ack = control_msg(h, &world.devs, dst_end, src_end, times.arrive);
    h.complete_at(ev, ack);
    world.gpi.queues.lock()[src_rank].entry(queue).or_default().push(ev);
    Ok(())
}

/// One-sided read from a remote segment (`gaspi_read`).
#[allow(clippy::too_many_arguments)]
pub fn read(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    rank: usize,
    queue: QueueId,
    dst: Loc,
    src: SegmentId,
    src_off: u64,
    len: u64,
) -> Result<(), MemError> {
    let m = model(world).clone();
    let seg = world.segment(src);
    let src_loc = seg.loc(src_off);
    dst.check(&world.devs, len)?;
    src_loc.check(&world.devs, len)?;

    ctx.delay(Dur::micros(m.get_o_us));
    let local_end = end_of(world, rank, &dst);
    let remote_end = end_of(world, src.rank, &src_loc);
    let h = ctx.handle().clone();
    let req = control_msg(&h, &world.devs, local_end, remote_end, ctx.now());
    let times = raw_path(&h, &world.devs, remote_end, local_end, req, len, m.eff);
    let devs = world.devs.clone();
    let h2 = h.clone();
    h.schedule_at(times.depart, move |_| {
        if let Some(bytes) = src_loc.snapshot(&devs, len).expect("bounds pre-checked") {
            let devs2 = devs.clone();
            h2.schedule_at(times.arrive, move |_| dst.deposit(&devs2, &bytes));
        }
    });
    let ev = h.new_event();
    h.complete_at(ev, times.arrive);
    world.gpi.queues.lock()[rank].entry(queue).or_default().push(ev);
    Ok(())
}

/// Drain a queue: block until every posted operation on it has completed
/// (`gaspi_wait`). One batched wait: the task parks once regardless of
/// how many completions are pending.
pub fn wait_queue(ctx: &mut Ctx, world: &Arc<FabricWorld>, rank: usize, queue: QueueId) {
    let pending: Vec<EventId> = {
        let mut q = world.gpi.queues.lock();
        q[rank].get_mut(&queue).map(std::mem::take).unwrap_or_default()
    };
    ctx.wait_all_free(&pending);
}

/// Remove and return every pending completion event across *all* of
/// `rank`'s queues, in queue order. Callers decide how to wait (the
/// fence uses one batched `wait_all`; the unbatched ablation loops).
pub fn take_pending_all(world: &Arc<FabricWorld>, rank: usize) -> Vec<EventId> {
    let mut q = world.gpi.queues.lock();
    let rankq = std::mem::take(&mut q[rank]);
    rankq.into_values().flatten().collect()
}

/// Drain every queue of `rank` with a single batched wait
/// (`gaspi_wait` over the whole queue set). Completions posted to *any*
/// queue are awaited — not just queue 0.
pub fn wait_all_queues(ctx: &mut Ctx, world: &Arc<FabricWorld>, rank: usize) {
    let pending = take_pending_all(world, rank);
    ctx.wait_all_free(&pending);
}

/// Write with a remote notification (`gaspi_write_notify`): after the data
/// lands, notification `id` with `value` becomes visible at the target.
#[allow(clippy::too_many_arguments)]
pub fn write_notify(
    ctx: &mut Ctx,
    world: &Arc<FabricWorld>,
    src_rank: usize,
    queue: QueueId,
    src: Loc,
    dst: SegmentId,
    dst_off: u64,
    len: u64,
    id: u32,
    value: u64,
) -> Result<(), MemError> {
    let m = model(world).clone();
    write(ctx, world, src_rank, queue, src, dst, dst_off, len)?;
    ctx.delay(Dur::micros(m.notify_us));
    // The notification rides behind the data on the same path; model its
    // visibility one control-message after the write is posted.
    let dst_rank = dst.rank;
    let src_end = End::Node(world.node_of(src_rank));
    let dst_end = End::Node(world.node_of(dst_rank));
    let h = ctx.handle();
    let when = control_msg(h, &world.devs, src_end, dst_end, ctx.now());
    let world2 = world.clone();
    h.schedule_at(when, move |h| {
        let mut boards = world2.gpi.notifications.lock();
        let slot = boards[dst_rank].entry(id).or_insert(NotifySlot { value: None, waiter: None });
        slot.value = Some(value);
        if let Some(ev) = slot.waiter.take() {
            h.complete(ev);
        }
    });
    Ok(())
}

/// Block until notification `id` arrives; returns its value and resets the
/// slot (`gaspi_notify_waitsome` + `gaspi_notify_reset`).
pub fn notify_wait(ctx: &mut Ctx, world: &Arc<FabricWorld>, rank: usize, id: u32) -> u64 {
    loop {
        let ev = {
            let mut boards = world.gpi.notifications.lock();
            let slot = boards[rank].entry(id).or_insert(NotifySlot { value: None, waiter: None });
            if let Some(v) = slot.value.take() {
                return v;
            }
            let ev = ctx.new_event();
            slot.waiter = Some(ev);
            ev
        };
        ctx.wait(ev);
        ctx.free_event(ev);
    }
}
