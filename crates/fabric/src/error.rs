//! Typed fabric-level errors (the GASPI return-code model).
//!
//! GASPI calls never panic on recoverable conditions: blocking calls
//! return `GASPI_TIMEOUT` when their deadline fires, queue operations
//! return `GASPI_ERROR` and leave the queue in an error state until
//! `gaspi_queue_purge`, and configuration mismatches are reported, not
//! asserted. [`FabricError`] is that contract for this crate's conduits;
//! `diomp-core` converts it into its own `DiompError`.

use diomp_device::MemError;
use diomp_sim::{SimTime, WaitTimeout};

use crate::gpi::QueueId;

/// Errors surfaced by the fabric conduits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A blocking call's virtual-time deadline fired before its wake
    /// condition was met (`GASPI_TIMEOUT`). Already-completed work is
    /// left intact; the caller may inspect partial state and retry.
    Timeout {
        /// Virtual time at which the deadline fired.
        at: SimTime,
    },
    /// A queue is in the error state (`GASPI_ERROR` from a queue op):
    /// an operation on it failed in flight. Further posts fail until the
    /// queue is purged ([`crate::gpi::queue_purge`]).
    QueueError {
        /// Rank owning the queue.
        rank: usize,
        /// The errored queue.
        queue: QueueId,
    },
    /// The requested conduit is not available on this platform (e.g.
    /// GPI-2 on a non-InfiniBand fabric, paper §4.1).
    ConduitUnavailable {
        /// What was required and missing.
        needed: &'static str,
    },
    /// An underlying device-memory error.
    Mem(MemError),
}

impl From<MemError> for FabricError {
    fn from(e: MemError) -> Self {
        FabricError::Mem(e)
    }
}

impl From<WaitTimeout> for FabricError {
    fn from(t: WaitTimeout) -> Self {
        FabricError::Timeout { at: t.at }
    }
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Timeout { at } => write!(f, "fabric wait timed out at {at}"),
            FabricError::QueueError { rank, queue } => {
                write!(f, "queue {} of rank {rank} is in the error state", queue.0)
            }
            FabricError::ConduitUnavailable { needed } => {
                write!(f, "conduit unavailable: {needed}")
            }
            FabricError::Mem(e) => write!(f, "device memory error: {e}"),
        }
    }
}
impl std::error::Error for FabricError {}
