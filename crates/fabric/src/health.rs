//! Per-rank health vector (`gaspi_state_vec`).
//!
//! GASPI exposes fault information through `gaspi_state_vec`: a vector
//! with one entry per rank, marked healthy or corrupt, refreshed by the
//! runtime as timeouts and queue errors are observed. The simulated
//! equivalent is fed from the installed [`diomp_sim::FaultPlan`]: any
//! rank whose
//! NIC endpoint appears in a degradation window is reported `Degraded`
//! (with the worst bandwidth factor), and a dead link (factor 0) marks
//! the rank `Dead`. Collectives consult this vector to blacklist rails
//! and re-price regime crossovers against the bandwidth they will
//! actually observe.

use std::collections::BTreeMap;

use diomp_sim::ResourceId;

/// Health classification of one rank, GASPI `gaspi_state_vec` style but
/// with an extra `Degraded` level so collectives can re-price rather
/// than only avoid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankHealth {
    /// All of the rank's links run at nominal bandwidth.
    Healthy,
    /// Some link touching the rank is degraded to `factor_milli`/1000 of
    /// nominal bandwidth (worst window over the run).
    Degraded {
        /// Worst bandwidth factor in thousandths of nominal (1..=999).
        factor_milli: u32,
    },
    /// A link touching the rank is marked dead (`GASPI_STATE_CORRUPT`).
    Dead,
}

impl RankHealth {
    /// Bandwidth factor this health level implies, in thousandths of
    /// nominal. `Dead` reports 0.
    pub fn factor_milli(self) -> u32 {
        match self {
            RankHealth::Healthy => 1000,
            RankHealth::Degraded { factor_milli } => factor_milli,
            RankHealth::Dead => 0,
        }
    }
}

/// The state vector: per-rank health plus the raw per-link factors it
/// was derived from.
#[derive(Clone, Debug)]
pub struct HealthVec {
    ranks: Vec<RankHealth>,
    links: BTreeMap<u32, u32>,
}

impl HealthVec {
    /// An all-healthy vector for `nranks` ranks (no fault plan installed).
    pub fn healthy(nranks: usize) -> HealthVec {
        HealthVec { ranks: vec![RankHealth::Healthy; nranks], links: BTreeMap::new() }
    }

    /// Record an observed bandwidth factor for a link, keeping the worst.
    /// Links not owned by any rank (e.g. switch trunks) still show up via
    /// [`HealthVec::link_factor_milli`] even though no rank degrades.
    pub fn observe_link(&mut self, res: ResourceId, factor_milli: u32) {
        let e = self.links.entry(res.index() as u32).or_insert(1000);
        if factor_milli < *e {
            *e = factor_milli;
        }
    }

    /// Record an observed bandwidth factor for a rank, keeping the worst.
    pub fn observe(&mut self, rank: usize, factor_milli: u32) {
        let cur = self.ranks[rank].factor_milli();
        if factor_milli < cur {
            self.ranks[rank] = match factor_milli {
                0 => RankHealth::Dead,
                f => RankHealth::Degraded { factor_milli: f },
            };
        }
    }

    /// Health of one rank.
    pub fn rank_health(&self, rank: usize) -> RankHealth {
        self.ranks[rank]
    }

    /// Number of ranks covered.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Worst factor recorded for a specific link (1000 when untouched).
    pub fn link_factor_milli(&self, res: ResourceId) -> u32 {
        self.links.get(&(res.index() as u32)).copied().unwrap_or(1000)
    }

    /// The worst factor across every rank still alive, used to re-price
    /// collectives: 1000 when nothing is degraded. Dead ranks are
    /// excluded — they are blacklisted, not priced.
    pub fn worst_live_factor_milli(&self) -> u32 {
        self.ranks.iter().map(|h| h.factor_milli()).filter(|&f| f > 0).min().unwrap_or(1000)
    }

    /// True when any rank is reported `Dead`.
    pub fn any_dead(&self) -> bool {
        self.ranks.iter().any(|h| matches!(h, RankHealth::Dead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_vector_reports_nominal_everywhere() {
        let v = HealthVec::healthy(4);
        assert_eq!(v.nranks(), 4);
        assert_eq!(v.rank_health(2), RankHealth::Healthy);
        assert_eq!(v.worst_live_factor_milli(), 1000);
        assert!(!v.any_dead());
    }

    #[test]
    fn observe_keeps_worst_and_zero_means_dead() {
        let mut v = HealthVec::healthy(2);
        v.observe(0, 600);
        v.observe(0, 800); // better than current, ignored
        assert_eq!(v.rank_health(0), RankHealth::Degraded { factor_milli: 600 });
        v.observe(1, 0);
        assert_eq!(v.rank_health(1), RankHealth::Dead);
        assert!(v.any_dead());
        // Dead ranks are excluded from the pricing factor.
        assert_eq!(v.worst_live_factor_milli(), 600);
    }
}
