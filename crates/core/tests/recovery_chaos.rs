//! Elastic-recovery chaos matrix (DESIGN.md D17): mid-run rank kills
//! replayed against every collective engine, including the reduction
//! server with a killed *server* rank.
//!
//! Each cell drives the full recovery protocol at the communicator
//! level — bounded waits at the rendezvous gate, `gaspi_state_vec`
//! probe on timeout, checkpoint rollback, survivor-agreement shrink,
//! re-run — and asserts the tentpole's acceptance criteria:
//!
//! * **Survivor byte-identity** — survivor buffers equal a *sequential
//!   reference* folded over the participation the protocol
//!   deterministically produces: full membership for iterations before
//!   the abort epoch, the agreed survivor set after.
//! * **Single-shrink convergence** — survivor agreement is the fixpoint
//!   over the installed plan ([`FabricWorld::converged_health`] marks
//!   every planned kill dead at first detection), so even kills that
//!   straddle a detection window converge in at most one rebuild.
//! * **Determinism** — the same randomized kill plan replays the same
//!   end time, the same abort epoch, and the same bytes, twice.

use std::sync::Arc;

use diomp_core::{
    AutoConfig, Checkpoint, CollEngine, CommOpts, DeviceBuf, RecoveryConfig, ReduceOp, RingConfig,
    ServerSpec, UniqueId, XcclComm, XcclOp,
};
use diomp_device::{DataMode, DeviceTable};
use diomp_fabric::FabricWorld;
use diomp_sim::{
    ClusterSpec, Dur, FaultPlan, PlatformSpec, ResourceId, Sim, SimTime, Topology, Wait,
};
use parking_lot::Mutex;

const NODES: usize = 2;
const PER_NODE: usize = 4;
const NRANKS: usize = NODES * PER_NODE;
const ITERS: usize = 6;
const LEN: u64 = 64 << 10;

fn boot(sim: &Sim, plan: &FaultPlan) -> Arc<FabricWorld> {
    sim.set_fault_plan(plan.clone());
    let spec =
        ClusterSpec { platform: PlatformSpec::platform_a(), nodes: NODES, gpus_per_node: PER_NODE };
    let topo = Arc::new(Topology::build(&sim.handle(), spec));
    let devs = DeviceTable::build(&sim.handle(), topo.clone(), DataMode::Functional, Some(8 << 20));
    let world = FabricWorld::new(topo, devs, NRANKS);
    // Live health: kill windows arm over the doomed ranks' links and
    // `converged_health` can see the plan (what the runtime does too).
    world.attach_sim(&sim.handle());
    world.refresh_health_from_plan(plan);
    world
}

fn all_links(world: &FabricWorld) -> Vec<ResourceId> {
    (0..world.devs.len())
        .flat_map(|f| {
            let d = world.devs.dev(f);
            [d.nic, d.port]
        })
        .collect()
}

fn engines() -> Vec<CollEngine> {
    let p = PlatformSpec::platform_a();
    vec![
        CollEngine::Profile,
        CollEngine::Ring(RingConfig::default()),
        CollEngine::Dbt(RingConfig::default()),
        CollEngine::ReductionServer(RingConfig::default()),
        CollEngine::Auto(AutoConfig::for_platform(&p)),
    ]
}

/// What one recovery run observed (recorded by rank 0, which the kill
/// samplers never target).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RunStats {
    end: SimTime,
    /// First iteration whose collective aborted (`None`: no abort).
    abort_iter: Option<usize>,
    shrinks: u32,
}

/// Drive `ITERS` allreduce iterations under the armed recovery
/// protocol: per-iteration compute, checkpoint at every collective
/// boundary, bounded gate waits, rollback + survivor-agreement shrink
/// on a confirmed death. Returns the stats and every rank's final
/// buffer (empty for ranks that died or were excluded by agreement).
fn run_recovery(
    engine: CollEngine,
    plan: &FaultPlan,
    servers: ServerSpec,
    compute: Dur,
    tag: &str,
) -> (RunStats, Vec<Vec<f64>>) {
    let mut sim = Sim::new();
    let world = boot(&sim, plan);
    let id = UniqueId::generate();
    let results: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(vec![Vec::new(); NRANKS]));
    let stats: Arc<Mutex<(Option<usize>, u32)>> = Arc::new(Mutex::new((None, 0)));
    for r in 0..NRANKS {
        let world = world.clone();
        let results = results.clone();
        let stats = stats.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let rc = RecoveryConfig::default();
            let bits = world.bootstrap.exchange(ctx, r, if r == 0 { id.bits() } else { 0 })[0];
            let mut comm = XcclComm::init(
                ctx,
                &world,
                (0..NRANKS).collect(),
                r,
                UniqueId::from_bits(bits),
                CommOpts { engine, servers, ..CommOpts::default() },
            );
            let dev = world.primary_dev(r);
            let off = dev.malloc(LEN, 256).unwrap();
            let vals: Vec<u8> = (0..LEN / 8)
                .flat_map(|i| (((r as u64 + 1) * (i % 13 + 1)) as f64).to_le_bytes())
                .collect();
            dev.mem.write(off, &vals).unwrap();
            let my_kill = ctx.handle().fault_plan().and_then(|p| p.kill_time(r as u32));
            let bufs = [(r, off, LEN)];
            let mut ck = Checkpoint::take(ctx, &world, &bufs, 0);
            let mut attempt = 0u32;
            let mut i = 0usize;
            while i < ITERS {
                ctx.delay(compute);
                // A doomed rank exits at the first collective boundary
                // past its kill time — kills take effect at boundaries.
                if my_kill.is_some_and(|t| t <= ctx.now()) {
                    return;
                }
                match comm.try_collective(
                    ctx,
                    r,
                    vec![DeviceBuf { flat: r, off }],
                    XcclOp::AllReduce { op: ReduceOp::SumF64 },
                    LEN,
                    Wait::Until(rc.collective_timeout),
                ) {
                    Ok(_) => {
                        i += 1;
                        if i < ITERS {
                            ck = Checkpoint::take(ctx, &world, &bufs, i as u64);
                        }
                    }
                    Err(_) => {
                        // Survivor agreement may exclude a doomed rank
                        // whose time has not yet come; it exits rather
                        // than shrinking a comm it has no place in.
                        if my_kill.is_some() {
                            return;
                        }
                        assert!(attempt < 4, "recovery did not converge");
                        let health = world.converged_health();
                        ck.restore(ctx, &world);
                        ctx.delay(rc.backoff_for(attempt));
                        comm = comm.shrink(ctx, &health, r);
                        if r == 0 {
                            let mut s = stats.lock();
                            if s.0.is_none() {
                                s.0 = Some(i);
                            }
                            s.1 += 1;
                        }
                        attempt += 1;
                        i = ck.iter as usize;
                    }
                }
            }
            let mut out = vec![0u8; LEN as usize];
            dev.mem.read(off, &mut out).unwrap();
            results.lock()[r] =
                out.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        });
    }
    let end = sim.run().unwrap_or_else(|e| panic!("{tag}: {e:?}")).end_time;
    let (abort_iter, shrinks) = *stats.lock();
    assert!(shrinks <= 1, "{tag}: survivor agreement must converge in one shrink, saw {shrinks}");
    let bytes = results.lock().clone();
    (RunStats { end, abort_iter, shrinks }, bytes)
}

/// The sequential reference: iterations before the abort epoch fold
/// over `clients_full`, iterations from it on over `clients_shrunk`
/// (non-participants keep their bytes — the server pass-through and the
/// excluded-rank cases fall out of the same rule).
fn reference(
    abort_iter: Option<usize>,
    clients_full: &[usize],
    clients_shrunk: &[usize],
) -> Vec<Vec<f64>> {
    let d = abort_iter.unwrap_or(ITERS);
    let mut vals: Vec<Vec<f64>> = (0..NRANKS)
        .map(|r| (0..LEN / 8).map(|i| ((r as u64 + 1) * (i % 13 + 1)) as f64).collect())
        .collect();
    for it in 0..ITERS {
        let parts = if it < d { clients_full } else { clients_shrunk };
        let sums: Vec<f64> =
            (0..LEN as usize / 8).map(|i| parts.iter().map(|&p| vals[p][i]).sum()).collect();
        for &p in parts {
            vals[p] = sums.clone();
        }
    }
    vals
}

/// Check every rank the plan does not kill against the reference.
fn assert_survivors_match(
    plan: &FaultPlan,
    stats: RunStats,
    got: &[Vec<f64>],
    clients_full: &[usize],
    clients_shrunk: &[usize],
    tag: &str,
) {
    let expect = reference(stats.abort_iter, clients_full, clients_shrunk);
    let killed: Vec<u32> = plan.rank_kills().iter().map(|&(r, _)| r).collect();
    for r in 0..NRANKS {
        if killed.contains(&(r as u32)) {
            continue;
        }
        assert_eq!(
            got[r], expect[r],
            "{tag}: survivor rank {r} diverged from the sequential reference \
             (abort at {:?})",
            stats.abort_iter
        );
    }
}

#[test]
fn mid_run_rank_kill_recovers_byte_identical_on_every_engine() {
    // Rank 3 dies mid-stream (iterations span ~[90 ms, 102 ms] after
    // the communicator init; the kill lands halfway). Every engine must
    // detect, shrink once, roll back, and finish with survivor buffers
    // equal to the sequential reference.
    let plan = FaultPlan::new().kill_rank(3, SimTime(96_000_000));
    let full: Vec<usize> = (0..NRANKS).collect();
    let shrunk: Vec<usize> = (0..NRANKS).filter(|&r| r != 3).collect();
    for engine in engines() {
        let tag = format!("kill-rank3 {engine:?}");
        let (stats, got) =
            run_recovery(engine, &plan, ServerSpec::default(), Dur::millis(2.0), &tag);
        assert_eq!(stats.shrinks, 1, "{tag}: the mid-stream kill must force exactly one shrink");
        let d = stats.abort_iter.expect("a shrink records its epoch");
        assert!((1..ITERS).contains(&d), "{tag}: the kill must land mid-stream, aborted at {d}");
        assert_survivors_match(&plan, stats, &got, &full, &shrunk, &tag);
    }
}

#[test]
fn double_kill_straddling_detection_converges_in_one_shrink() {
    // Two kills whose times straddle the first detection window: the
    // survivor-agreement fixpoint marks *both* dead at first detection,
    // so one rebuild excludes both — the not-yet-dead rank 6 exits on
    // the agreement rather than rejoining a comm it is doomed to wedge.
    let plan =
        FaultPlan::new().kill_rank(3, SimTime(96_000_000)).kill_rank(6, SimTime(100_000_000));
    let full: Vec<usize> = (0..NRANKS).collect();
    let shrunk: Vec<usize> = (0..NRANKS).filter(|&r| r != 3 && r != 6).collect();
    for engine in [
        CollEngine::Ring(RingConfig::default()),
        CollEngine::Auto(AutoConfig::for_platform(&PlatformSpec::platform_a())),
    ] {
        let tag = format!("double-kill {engine:?}");
        let (stats, got) =
            run_recovery(engine, &plan, ServerSpec::default(), Dur::millis(2.0), &tag);
        assert_eq!(stats.shrinks, 1, "{tag}: straddling kills must converge in one shrink");
        assert_survivors_match(&plan, stats, &got, &full, &shrunk, &tag);
    }
}

#[test]
fn killed_server_rank_shrinks_the_offload_comm_and_the_client_fold_survives() {
    // The reduction-server matrix cell: the comm dedicates the second
    // node as servers (`tail(1)`), and a *server* rank dies mid-stream.
    // Detection and shrink work exactly as for a client death (servers
    // are members and arrive at the gate); the re-carved comm keeps the
    // tail node as servers, the client fold never loses a contributor,
    // and surviving server buffers pass through untouched.
    let plan = FaultPlan::new().kill_rank(5, SimTime(96_000_000));
    let clients: Vec<usize> = (0..PER_NODE).collect();
    let engine = CollEngine::ReductionServer(RingConfig::default());
    let tag = "killed-server";
    let (stats, got) = run_recovery(engine, &plan, ServerSpec::tail(1), Dur::millis(2.0), tag);
    assert_eq!(stats.shrinks, 1, "{tag}: the dead server must force exactly one shrink");
    assert_survivors_match(&plan, stats, &got, &clients, &clients, tag);
    // Replay determinism for the offload recovery path.
    let (again, got2) = run_recovery(engine, &plan, ServerSpec::tail(1), Dur::millis(2.0), tag);
    assert_eq!(stats, again, "{tag}: the recovery trace must replay bit-identically");
    assert_eq!(got, got2, "{tag}: the recovered bytes must replay bit-identically");
}

#[test]
fn killed_client_rank_reshapes_the_server_fold() {
    // A *client* of the offload comm dies: the shrunk comm re-carves
    // with the tail node still serving, and iterations after the abort
    // epoch fold over the three surviving clients only.
    let plan = FaultPlan::new().kill_rank(2, SimTime(96_000_000));
    let clients_full: Vec<usize> = (0..PER_NODE).collect();
    let clients_shrunk: Vec<usize> = (0..PER_NODE).filter(|&r| r != 2).collect();
    let engine = CollEngine::ReductionServer(RingConfig::default());
    let tag = "killed-client-of-server-comm";
    let (stats, got) = run_recovery(engine, &plan, ServerSpec::tail(1), Dur::millis(2.0), tag);
    assert_eq!(stats.shrinks, 1, "{tag}: the dead client must force exactly one shrink");
    assert_survivors_match(&plan, stats, &got, &clients_full, &clients_shrunk, tag);
}

#[test]
fn randomized_kill_plans_replay_bit_identically_on_every_engine() {
    // The full matrix: randomized link faults + stragglers + sampled
    // mid-run rank kills, every engine, each cell run twice. Byte
    // identity against the participation-aware reference and two-run
    // trace identity must hold whether the sampled kills land before,
    // inside, or after the collective stream; across the matrix at
    // least one cell must actually exercise a shrink.
    let probe = Sim::new();
    let world = boot(&probe, &FaultPlan::new());
    let links = all_links(&world);
    drop(probe);
    let prefixes = vec!["rank2".to_string(), "rank5".to_string()];
    // 30 ms compute per iteration stretches the stream over
    // ~[90 ms, 270 ms]; the kill sampler's window is [h/4, 3h/4).
    let horizon = Dur::millis(360.0);
    let compute = Dur::millis(30.0);
    let full: Vec<usize> = (0..NRANKS).collect();
    let mut total_shrinks = 0u32;
    for seed in [11u64, 29, 43] {
        let plan = FaultPlan::randomized(seed, &links, &prefixes, Dur::millis(5.0))
            .randomized_rank_kills(seed, NRANKS as u32, horizon);
        let killed: Vec<u32> = plan.rank_kills().iter().map(|&(r, _)| r).collect();
        let shrunk: Vec<usize> = (0..NRANKS).filter(|&r| !killed.contains(&(r as u32))).collect();
        for engine in engines() {
            let tag = format!("seed {seed} {engine:?} kills {killed:?}");
            let (a, bytes_a) = run_recovery(engine, &plan, ServerSpec::default(), compute, &tag);
            let (b, bytes_b) = run_recovery(engine, &plan, ServerSpec::default(), compute, &tag);
            assert_eq!(a, b, "{tag}: the recovery trace must replay bit-identically");
            assert_eq!(bytes_a, bytes_b, "{tag}: recovered bytes must replay bit-identically");
            assert_survivors_match(&plan, a, &bytes_a, &full, &shrunk, &tag);
            total_shrinks += a.shrinks;
        }
    }
    assert!(total_shrinks > 0, "the sampled matrix never exercised a shrink");
}
