//! Runtime-level fault recovery: the GASPI retry loop around GPI-2
//! posts, timed fences with partial-completion reporting, and the
//! timeout-driven lost-notification protocol — all under the
//! deterministic injector.

use std::sync::Arc;

use diomp_core::{
    Conduit, DiompConfig, DiompConfigBuilder, DiompError, DiompRank, DiompRuntime, FabricError,
    PtrCache,
};
use diomp_sim::{fault_key, ClusterSpec, CtrlFault, Dur, FaultPlan, PlatformSpec, Sim, Wait};
use parking_lot::Mutex;

fn two_nodes(platform: PlatformSpec) -> DiompConfigBuilder {
    DiompConfig::builder(ClusterSpec { platform, nodes: 2, gpus_per_node: 1 })
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(31) + 7) as u8).collect()
}

/// Boot a job with a fault plan installed, run `f` per rank, return the
/// per-rank retry counts.
fn run_with_plan<F>(cfg: DiompConfig, plan: FaultPlan, f: F) -> Vec<u64>
where
    F: Fn(&mut diomp_sim::Ctx, &mut DiompRank) + Send + Sync + 'static,
{
    let mut sim = Sim::new();
    sim.set_fault_plan(plan);
    let shared = DiompRuntime::build(&sim, cfg);
    let retries = Arc::new(Mutex::new(vec![0u64; shared.world.nranks]));
    let f = Arc::new(f);
    for r in 0..shared.world.nranks {
        let shared = shared.clone();
        let f = f.clone();
        let retries = retries.clone();
        sim.spawn(format!("diomp-rank{r}"), move |ctx| {
            let mut rank = DiompRank { shared, rank: r, cache: PtrCache::new(), rma_retries: 0 };
            f(ctx, &mut rank);
            retries.lock()[r] = rank.rma_retries;
        });
    }
    sim.run().unwrap();
    let v = retries.lock().clone();
    v
}

#[test]
fn gpi_put_recovers_from_injected_queue_error() {
    // One injected queue drop on rank 0's queue 0: the put must purge,
    // back off, repost, and end byte-identical — with exactly one retry
    // counted and no error surfaced to the caller.
    let len: u64 = 64 << 10;
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    let retries = run_with_plan(
        two_nodes(PlatformSpec::platform_c()).with_conduit(Conduit::Gpi2).build(),
        FaultPlan::new().ctrl_fault(fault_key("gpi-queue", 0, 0), CtrlFault::Drop),
        move |ctx, rank| {
            let ptr = rank.alloc_sym(ctx, len).unwrap();
            if rank.rank == 0 {
                rank.write_local(rank.primary(), ptr, 0, &pattern(len as usize));
            }
            rank.barrier(ctx);
            if rank.rank == 0 {
                rank.put(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
                rank.fence(ctx);
            }
            rank.barrier(ctx);
            if rank.rank == 1 {
                let mut got = vec![0u8; len as usize];
                rank.read_local(rank.primary(), ptr, 0, &mut got);
                *out2.lock() = got;
            }
        },
    );
    assert_eq!(*out.lock(), pattern(len as usize), "retried put must stay byte-identical");
    assert_eq!(retries, vec![1, 0], "exactly one recovery loop, on rank 0 only");
}

#[test]
fn gpi_put_exhausted_retry_budget_propagates_queue_error() {
    // Five drops queued against a budget of 2: the recovery loop runs
    // twice (purge clears the error, the next post consumes the next
    // drop) and the third failure propagates as a typed error.
    let errs = Arc::new(Mutex::new(Vec::new()));
    let errs2 = errs.clone();
    let plan = (0..5)
        .fold(FaultPlan::new(), |p, _| p.ctrl_fault(fault_key("gpi-queue", 0, 0), CtrlFault::Drop));
    let retries = run_with_plan(
        two_nodes(PlatformSpec::platform_c())
            .with_conduit(Conduit::Gpi2)
            .with_rma_retry(2, 10.0)
            .build(),
        plan,
        move |ctx, rank| {
            let ptr = rank.alloc_sym(ctx, 4096).unwrap();
            rank.barrier(ctx);
            if rank.rank == 0 {
                let err = rank.put(ctx, 1, ptr, 0, ptr, 0, 4096).unwrap_err();
                errs2.lock().push(err);
            }
            rank.barrier(ctx);
        },
    );
    let errs = errs.lock();
    assert_eq!(errs.len(), 1);
    assert!(
        matches!(&errs[0], DiompError::Fabric(FabricError::QueueError { rank: 0, .. })),
        "{:?}",
        errs[0]
    );
    assert_eq!(retries, vec![2, 0], "budget of 2 fully spent before giving up");
}

#[test]
fn fence_timeout_reports_partial_completion_then_full_fence_drains() {
    // A tiny put and a large put in one fence window: a deadline between
    // their completions must report the split and keep the in-flight
    // completions tracked so the follow-up (unbounded) fence finishes
    // the job — byte-identically.
    let len: u64 = 1 << 20;
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    let seen = Arc::new(Mutex::new(None));
    let seen2 = seen.clone();
    run_with_plan(
        two_nodes(PlatformSpec::platform_a()).with_heap(8 << 20).build(),
        FaultPlan::new(),
        move |ctx, rank| {
            let ptr = rank.alloc_sym(ctx, len).unwrap();
            if rank.rank == 0 {
                rank.write_local(rank.primary(), ptr, 0, &pattern(len as usize));
            }
            rank.barrier(ctx);
            if rank.rank == 0 {
                rank.put(ctx, 1, ptr, 0, ptr, 0, 8).unwrap();
                rank.put(ctx, 1, ptr, 0, ptr, 0, len).unwrap();
                let err = rank
                    .fence_with(ctx, Wait::Until(Dur::micros(30.0)))
                    .expect_err("1 MiB cannot cross nodes in 30 µs");
                assert!(err.completed >= 1, "the 8 B put completed inside the window");
                assert!(!err.in_flight.is_empty(), "the 1 MiB put is still in flight");
                *seen2.lock() = Some((err.completed, err.in_flight.len()));
                rank.fence(ctx);
            }
            rank.barrier(ctx);
            if rank.rank == 1 {
                let mut got = vec![0u8; len as usize];
                rank.read_local(rank.primary(), ptr, 0, &mut got);
                *out2.lock() = got;
            }
        },
    );
    assert_eq!(*out.lock(), pattern(len as usize));
    assert!(seen.lock().is_some());
}

#[test]
fn put_notify_retry_and_consumer_timeout_protocol_deliver_exactly_once() {
    // Lost notification end-to-end at the ompx level: the producer's
    // put_notify has its notification dropped in flight; the consumer's
    // timed waitsome fires, requests a resend, and the second notify
    // lands. The payload is read exactly once, after the notification.
    let len: u64 = 16 << 10;
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = got.clone();
    let resend = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let resend2 = resend.clone();
    run_with_plan(
        two_nodes(PlatformSpec::platform_c()).with_conduit(Conduit::Gpi2).build(),
        FaultPlan::new().ctrl_fault(fault_key("gpi-notify", 1, 4), CtrlFault::Drop),
        move |ctx, rank| {
            let ptr = rank.alloc_sym(ctx, len).unwrap();
            if rank.rank == 0 {
                rank.write_local(rank.primary(), ptr, 0, &pattern(len as usize));
            }
            rank.barrier(ctx);
            if rank.rank == 0 {
                rank.put_notify(ctx, 1, ptr, 0, ptr, 0, len, 4, 9).unwrap();
                rank.fence(ctx);
                while !resend2.load(std::sync::atomic::Ordering::Relaxed) {
                    ctx.delay(Dur::micros(20.0));
                }
                rank.put_notify(ctx, 1, ptr, 0, ptr, 0, len, 4, 9).unwrap();
                rank.fence(ctx);
            } else {
                let err = rank
                    .notify_waitsome_with(ctx, 0, 8, Wait::Until(Dur::millis(1.0)))
                    .expect_err("first notification was dropped");
                assert!(matches!(err, DiompError::Fabric(FabricError::Timeout { .. })), "{err:?}");
                resend.store(true, std::sync::atomic::Ordering::Relaxed);
                let (id, value) = rank.notify_waitsome(ctx, 0, 8);
                assert_eq!((id, value), (4, 9));
                let mut bytes = vec![0u8; len as usize];
                rank.read_local(rank.primary(), ptr, 0, &mut bytes);
                *got2.lock() = bytes;
            }
        },
    );
    assert_eq!(*got.lock(), pattern(len as usize));
}

#[test]
fn healthy_fabric_never_counts_retries() {
    // The zero-cost-when-disabled guarantee at the runtime level: with no
    // plan installed, the recovery loop body never runs.
    let retries = run_with_plan(
        two_nodes(PlatformSpec::platform_c()).with_conduit(Conduit::Gpi2).build(),
        FaultPlan::new(),
        move |ctx, rank| {
            let ptr = rank.alloc_sym(ctx, 32 << 10).unwrap();
            rank.barrier(ctx);
            if rank.rank == 0 {
                rank.put(ctx, 1, ptr, 0, ptr, 0, 32 << 10).unwrap();
                rank.fence(ctx);
            }
            rank.barrier(ctx);
        },
    );
    assert_eq!(retries, vec![0, 0]);
}

#[test]
fn notify_waitsome_with_against_a_killed_peer_times_out_at_the_deadline() {
    // The producer is killed before it can post: the consumer's timed
    // waitsome must surface `FabricError::Timeout` exactly at its
    // deadline — GASPI's contract that the budget, not a parked
    // transfer, bounds failure detection — and the follow-up
    // `gaspi_state_vec` probe names the corpse.
    use diomp_core::RankHealth;
    use diomp_sim::SimTime;
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill_rank(0, SimTime::ZERO));
    let cfg = two_nodes(PlatformSpec::platform_c()).with_conduit(Conduit::Gpi2).build();
    let shared = DiompRuntime::build(&sim, cfg);
    sim.spawn("diomp-rank0", move |_ctx| {
        // Dead from t = 0: never posts its notification.
    });
    let shared1 = shared.clone();
    sim.spawn("diomp-rank1", move |ctx| {
        let mut rank =
            DiompRank { shared: shared1, rank: 1, cache: PtrCache::new(), rma_retries: 0 };
        let t0 = ctx.now();
        let budget = Dur::millis(1.0);
        let err = rank
            .notify_waitsome_with(ctx, 7, 1, Wait::Until(budget))
            .expect_err("no notification can arrive from a killed producer");
        assert!(matches!(err, DiompError::Fabric(FabricError::Timeout { .. })), "{err:?}");
        assert_eq!(ctx.now(), t0 + budget, "the timeout fires at the deadline");
        assert_eq!(
            rank.shared.world.probe_health().rank_health(0),
            RankHealth::Dead,
            "the expired deadline's state-vec probe names the corpse"
        );
    });
    sim.run().unwrap();
}
